/**
 * @file
 * Reproduces Figure 10: "The effect of stream programming
 * optimizations on the performance of 179.art at 800 MHz" — the
 * SPEC-like AoS layout with one pass per vector operation versus
 * the SoA + fused-loop restructure, both on the cache-based model.
 *
 * Expected shape (Section 6): "the impact on performance is
 * dramatic, even at small core counts (7x speedup)" — the
 * restructure removes the sparse stride-32 access pattern and the
 * large temporary vectors.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 10: stream-programming optimizations, "
                "cache-based 179.art @ 800 MHz\n\n");

    WorkloadParams orig = benchParams();
    orig.streamOptimized = false;
    WorkloadParams opt = benchParams();

    SweepSpec spec("fig10_stream_opt_art");
    spec.base(makeConfig(16, MemModel::CC))
        .workloads({"art"})
        .axis("cores", {2, 4, 8, 16},
              [](SystemConfig &cfg, double v) { cfg.cores = int(v); },
              0)
        .axis("variant",
              {{"orig", [orig](SweepJob &j) { j.params = orig; }},
               {"opt", [opt](SweepJob &j) { j.params = opt; }}});
    spec.baseline({"art/base", "art", makeConfig(1, MemModel::CC),
                   opt, {},
                   {{"workload", "art"}, {"role", "baseline"}}});
    SweepResult res = runBenchSweep(spec);

    const RunResult &base = res.runOf("art/base");
    TextTable table({"CPUs", "variant", "total", "useful", "sync",
                     "load", "store", "speedup", "verified"});
    for (int cores : {2, 4, 8, 16}) {
        double orig_total = 0;
        for (bool optimized : {false, true}) {
            const RunResult &r = res.runOf(
                fmt("art/cores=%d/variant=%s", cores,
                    optimized ? "opt" : "orig"));
            NormBreakdown b =
                normalizedBreakdown(r.stats, base.stats.execTicks);
            if (!optimized)
                orig_total = b.total();
            table.addRow(
                {fmt("%d", cores), optimized ? "CC-optimized" : "CC-orig",
                 fmtF(b.total(), 3), fmtF(b.useful, 3),
                 fmtF(b.sync, 3), fmtF(b.load, 3), fmtF(b.store, 3),
                 optimized ? fmt("%.1fx", orig_total / b.total())
                           : std::string("-"),
                 r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
