/**
 * @file
 * Reproduces Figure 7: "The effect of hardware prefetching on
 * performance. P4 refers to the prefetch depth of 4. Measured on 2
 * cores at 3.2 GHz with a 12.8 GB/s memory channel" — MergeSort and
 * 179.art as CC, CC+P4, and STR.
 *
 * Expected shape (Section 5.4): "hardware prefetching significantly
 * improves the latency tolerance of the cache-based systems; data
 * stalls are virtually eliminated ... a small degree of prefetching
 * is sufficient to hide over 200 cycles of memory latency."
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 7: hardware prefetching, 2 cores @ 3.2 GHz, "
                "12.8 GB/s\n\n");

    SweepSpec spec("fig7_prefetch");
    for (const char *name : {"merge", "art"}) {
        const std::string base_id = std::string(name) + "/base";
        spec.point({base_id, name,
                    makeConfig(1, MemModel::CC, 0.8, 12.8),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});

        SystemConfig cc = makeConfig(2, MemModel::CC, 3.2, 12.8);
        SystemConfig p4 = cc;
        p4.hwPrefetch = true;
        p4.prefetchDepth = 4;
        SystemConfig str = makeConfig(2, MemModel::STR, 3.2, 12.8);
        spec.point({std::string(name) + "/CC", name, cc, benchParams(),
                    {base_id},
                    {{"workload", name}, {"config", "CC"}}});
        spec.point({std::string(name) + "/CC+P4", name, p4,
                    benchParams(), {base_id},
                    {{"workload", name}, {"config", "CC+P4"}}});
        spec.point({std::string(name) + "/STR", name, str,
                    benchParams(), {base_id},
                    {{"workload", name}, {"config", "STR"}}});
    }
    SweepResult res = runBenchSweep(spec);

    TextTable table({"Application", "config", "total", "useful",
                     "sync", "load", "store", "pf issued",
                     "pf useful"});
    for (const char *name : {"merge", "art"}) {
        const RunResult &base =
            res.runOf(std::string(name) + "/base");
        for (const char *label : {"CC", "CC+P4", "STR"}) {
            const RunResult &r =
                res.runOf(std::string(name) + "/" + label);
            NormBreakdown b =
                normalizedBreakdown(r.stats, base.stats.execTicks);
            table.addRow(
                {name, label, fmtF(b.total(), 4), fmtF(b.useful, 4),
                 fmtF(b.sync, 4), fmtF(b.load, 4), fmtF(b.store, 4),
                 fmt("%llu", (unsigned long long)
                                 r.stats.l1Total.prefetchesIssued),
                 fmt("%llu", (unsigned long long)
                                 r.stats.l1Total.prefetchesUseful)});
        }
    }

    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
