/**
 * @file
 * Ablation for the paper's Section 7 hybrid proposal: "bulk transfer
 * primitives for cache-based systems could enable more efficient
 * macroscopic prefetching."
 *
 * A streaming-style copy-transform loop runs three ways on 2 cores
 * at 3.2 GHz with a 12.8 GB/s channel (a latency-dominated point):
 * plain cache-based (reactive, blocking misses),
 * cache-based with software bulk prefetch of the next block
 * (macroscopic prefetching on cache hardware), and the streaming
 * model (DMA double-buffering). The hybrid should recover most of
 * the streaming latency tolerance without abandoning caches.
 *
 * The three points are custom-run sweep jobs (they bind hand-written
 * kernels rather than a registry workload), so they still execute on
 * the engine's pool and land in the JSON artifact.
 */

#include <cstdio>

#include "cmpmem.hh"
#include "sim/log.hh"

using namespace cmpmem;

namespace
{

constexpr std::uint32_t kElems = 1u << 16;
constexpr std::uint32_t kBlock = 256;

KernelTask
kernCc(Context &ctx, Addr in, Addr out, Barrier &bar, bool hybrid)
{
    Range r = splitRange(kElems, ctx.tid(), ctx.nthreads());
    for (auto base = r.begin; base < r.end; base += kBlock) {
        auto count =
            std::uint32_t(std::min<std::uint64_t>(kBlock, r.end - base));
        if (hybrid && base + kBlock < r.end) {
            // Macroscopic prefetch of the next block, input and
            // output (the output lines still need ownership).
            co_await ctx.prefetchBlock(in + (base + kBlock) * 4,
                                       kBlock * 4);
        }
        for (std::uint32_t i = 0; i < count; ++i) {
            auto v = co_await ctx.load<std::uint32_t>(
                in + (base + i) * 4);
            co_await ctx.compute(2);
            co_await ctx.storeNA<std::uint32_t>(out + (base + i) * 4,
                                                v * 3 + 1);
        }
    }
    co_await ctx.barrier(bar);
}

KernelTask
kernStr(Context &ctx, Addr in, Addr out, Barrier &bar)
{
    Range r = splitRange(kElems, ctx.tid(), ctx.nthreads());
    const std::uint32_t lsIn[2] = {0, kBlock * 4};
    const std::uint32_t lsOut = 2 * kBlock * 4;
    Context::Ticket get[2] = {0, 0};
    int buf = 0;
    if (r.begin < r.end) {
        get[0] = co_await ctx.dmaGet(in + r.begin * 4, lsIn[0],
                                     kBlock * 4);
    }
    for (auto base = r.begin; base < r.end; base += kBlock, buf ^= 1) {
        auto count =
            std::uint32_t(std::min<std::uint64_t>(kBlock, r.end - base));
        if (base + kBlock < r.end) {
            get[buf ^ 1] = co_await ctx.dmaGet(
                in + (base + kBlock) * 4, lsIn[buf ^ 1], kBlock * 4);
        }
        co_await ctx.dmaWait(get[buf]);
        for (std::uint32_t i = 0; i < count; ++i) {
            auto v = co_await ctx.lsRead<std::uint32_t>(lsIn[buf] +
                                                        i * 4);
            co_await ctx.compute(2);
            co_await ctx.lsWrite<std::uint32_t>(lsOut + i * 4,
                                                v * 3 + 1);
        }
        auto put = co_await ctx.dmaPut(out + base * 4, lsOut,
                                       count * 4);
        co_await ctx.dmaWait(put);
    }
    co_await ctx.barrier(bar);
}

RunResult
run(MemModel model, bool hybrid)
{
    // Latency-dominated point (2 cores, ample bandwidth), where
    // macroscopic prefetching has room to act -- at channel
    // saturation no prefetch scheme can help (see fig6).
    SystemConfig cfg = makeConfig(2, model, 3.2, 12.8);
    CmpSystem sys(cfg);
    Addr in = sys.mem().alloc(kElems * 4);
    Addr out = sys.mem().alloc(kElems * 4);
    for (std::uint32_t i = 0; i < kElems; ++i)
        sys.mem().write<std::uint32_t>(in + Addr(i) * 4, i);
    Barrier bar(sys.cores());
    for (int i = 0; i < sys.cores(); ++i) {
        if (model == MemModel::STR)
            sys.bindKernel(i, kernStr(sys.context(i), in, out, bar));
        else
            sys.bindKernel(i,
                           kernCc(sys.context(i), in, out, bar, hybrid));
    }
    sys.simulate();

    RunResult result;
    result.stats = sys.collectStats();
    result.stats.workload = "copy_transform";
    result.stats.variant = hybrid ? "hybrid" : "base";
    result.energy = EnergyModel(cfg.energy).compute(result.stats);
    result.verified = true;
    for (std::uint32_t i = 0; i < kElems; ++i) {
        if (sys.mem().read<std::uint32_t>(out + Addr(i) * 4) !=
            i * 3 + 1) {
            warn("hybrid ablation kernel produced wrong data");
            result.verified = false;
            break;
        }
    }
    return result;
}

SweepJob
job(const char *id, MemModel model, bool hybrid)
{
    SweepJob j;
    j.id = id;
    j.cfg = makeConfig(2, model, 3.2, 12.8);
    j.tags = {{"config", id}};
    j.run = [model, hybrid] { return run(model, hybrid); };
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Ablation: Section 7 hybrid bulk-prefetch primitive "
                "(copy-transform, 2 cores @ 3.2 GHz, 12.8 GB/s)\n\n");

    SweepSpec spec("ablation_hybrid");
    spec.point(job("CC", MemModel::CC, false));
    spec.point(job("CC+bulk", MemModel::CC, true));
    spec.point(job("STR", MemModel::STR, false));
    SweepResult res = runBenchSweep(spec);

    auto us = [&](const char *id) {
        return double(res.runOf(id).stats.execTicks) /
               double(ticksPerUs);
    };
    double cc = us("CC");
    double hybrid = us("CC+bulk");
    double str = us("STR");

    TextTable table({"config", "exec (us)", "vs CC"});
    table.addRow({"CC (reactive)", fmtF(cc, 2), "1.00x"});
    table.addRow({"CC + bulk prefetch", fmtF(hybrid, 2),
                  fmt("%.2fx", cc / hybrid)});
    table.addRow({"STR (DMA double-buffer)", fmtF(str, 2),
                  fmt("%.2fx", cc / str)});
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
