/**
 * @file
 * Miss-path microbenchmark on the sweep engine: measures host
 * misses/sec for the transaction shapes the allocation-free miss
 * path (DESIGN.md §18) is built for, tracked PR over PR in
 * BENCH_micro_miss.json. Every job also reports the run's
 * miss-path host-allocation counter, which must be 0: the MSHR
 * waiter pool, store-buffer set, and DMA scratch buffers are sized
 * at construction and must never touch the heap in steady state.
 *
 * Jobs (all custom-run, deterministic):
 *   miss_storm    - line-stride loads over a buffer 4x the L1: every
 *                   access a demand miss, i.e. pure MSHR
 *                   allocate/complete churn.
 *   mshr_merge_fanin - the same walk with the hardware prefetcher
 *                   on: demand loads land on in-flight prefetch
 *                   fills and park as MSHR waiters (the merge/fan-in
 *                   path), plus stores chaining ensureOwnership
 *                   waiters behind fills.
 *   shared_invalidate_pingpong - two CC cores take barrier-separated
 *                   turns over a shared line set: every turn each
 *                   line costs a cache-to-cache supplied load miss
 *                   (M->S downgrade + writeback at the peer) and an
 *                   invalidating upgrade, plus barrier waiter churn.
 *   dma_stream    - STR model double-buffered get/put streaming: the
 *                   DMA command/completion path (ticket ring, chunk
 *                   staging, bounce buffers).
 *
 * CMPMEM_SCALE scales the iteration counts (0 = smoke);
 * CMPMEM_BENCH_SCALE divides them (sanitized-tree TIMEOUT relief).
 */

#include <cstdio>

#include "cmpmem.hh"
#include "core/context.hh"

using namespace cmpmem;

namespace
{

// Matches SystemConfig::lineBytes; checked at the top of main().
constexpr std::uint64_t kLineBytes = 32;
constexpr std::uint64_t kWordsPerLine = kLineBytes / 8;

/** Package a finished custom run as a sweep RunResult. */
RunResult
missResult(CmpSystem &sys, double host_seconds)
{
    RunResult r;
    r.stats = sys.collectStats();
    r.hostSeconds = host_seconds;
    r.verified = true;
    return r;
}

/** Simulated miss-side transactions (see RunResult::missesPerSec). */
std::uint64_t
misses(const RunResult &r)
{
    return r.stats.l1Total.demandMisses() + r.stats.l1Total.pfsStores +
           r.stats.dmaAccesses;
}

KernelTask
lineWalkKernel(Context &ctx, Addr base, std::uint64_t lines,
               std::uint64_t iters)
{
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i)
        acc += co_await ctx.load<std::uint64_t>(base +
                                                (i % lines) * kLineBytes);
    co_await ctx.storeNA<std::uint64_t>(base, acc);
}

KernelTask
mergeFaninKernel(Context &ctx, Addr base, std::uint64_t lines,
                 std::uint64_t iters)
{
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        Addr line = base + (i % lines) * kLineBytes;
        acc += co_await ctx.load<std::uint64_t>(line);
        // Every 4th line also takes a store, chaining an
        // ensureOwnership waiter behind whatever fill (demand or
        // prefetch) is in flight for a neighbouring line.
        if ((i & 3) == 0)
            co_await ctx.store<std::uint64_t>(line + 8, acc);
    }
    co_await ctx.storeNA<std::uint64_t>(base, acc);
}

KernelTask
pingpongKernel(Context &ctx, Barrier &bar, Addr base, std::uint64_t lines,
               std::uint64_t rounds, int id)
{
    // The barrier alternates ownership of the whole line set between
    // the cores. Overlap-free turns matter: two cores whose exclusive
    // fetches to the same cold line are simultaneously in flight each
    // snoop before the other installs, and the lines go quiet — with
    // turns, every round is a full supply/downgrade + upgrade/
    // invalidate ping-pong (two demand misses per line per turn).
    std::uint64_t acc = 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        if ((r & 1) == std::uint64_t(id & 1)) {
            for (std::uint64_t i = 0; i < lines; ++i) {
                Addr line = base + i * kLineBytes;
                acc += co_await ctx.load<std::uint64_t>(line);
                co_await ctx.store<std::uint64_t>(line, acc);
            }
        }
        co_await ctx.barrier(bar);
    }
    co_await ctx.storeNA<std::uint64_t>(base + 8 + 8 * std::uint64_t(id),
                                        acc);
}

KernelTask
dmaStreamKernel(Context &ctx, Addr base, std::uint64_t iters)
{
    constexpr std::uint32_t kChunk = 4096;
    Context::Ticket tickets[2] = {0, 0};
    bool valid[2] = {false, false};
    for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint32_t buf = i & 1;
        if (valid[buf])
            co_await ctx.dmaWait(tickets[buf]);
        Addr mem = base + (i % 64) * kChunk;
        co_await ctx.dmaGet(mem, buf * kChunk, kChunk);
        tickets[buf] = co_await ctx.dmaPut(mem, buf * kChunk, kChunk);
        valid[buf] = true;
    }
    co_await ctx.dmaWaitAll();
}

/** 4096 lines (128 KiB, 4x the 32 KiB L1): every load misses. */
RunResult
runMissStorm()
{
    constexpr std::uint64_t kLines = 4096;
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              kLines * kWordsPerLine);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, lineWalkKernel(sys.context(0), buf.at(0), kLines,
                                     benchIters(20000)));
    sys.simulate();
    return missResult(sys, threadCpuSeconds() - t0);
}

/** The same walk with the prefetcher streaming ahead of demand. */
RunResult
runMergeFanin()
{
    constexpr std::uint64_t kLines = 4096;
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    cfg.hwPrefetch = true;
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              kLines * kWordsPerLine);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, mergeFaninKernel(sys.context(0), buf.at(0), kLines,
                                       benchIters(20000)));
    sys.simulate();
    return missResult(sys, threadCpuSeconds() - t0);
}

/** Two cores trade 64 shared lines turn by turn: coherence ping-pong. */
RunResult
runPingpong()
{
    constexpr std::uint64_t kSharedLines = 64; // 2 KiB, fits either L1
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              kSharedLines * kWordsPerLine);
    Barrier bar(2);
    double t0 = threadCpuSeconds();
    for (int c = 0; c < 2; ++c)
        sys.bindKernel(c, pingpongKernel(sys.context(c), bar, buf.at(0),
                                         kSharedLines, benchIters(300), c));
    sys.simulate();
    return missResult(sys, threadCpuSeconds() - t0);
}

/** Double-buffered 4 KiB get/put streaming on one STR core. */
RunResult
runDmaStream()
{
    SystemConfig cfg = makeConfig(1, MemModel::STR);
    CmpSystem sys(cfg);
    // 64 x 4 KiB of streamed memory (see dmaStreamKernel).
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              64 * 4096 / 8);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, dmaStreamKernel(sys.context(0), buf.at(0),
                                      benchIters(1000)));
    sys.simulate();
    return missResult(sys, threadCpuSeconds() - t0);
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    if (makeConfig(1, MemModel::CC).lineBytes != kLineBytes) {
        std::fprintf(stderr, "micro_miss: kLineBytes out of sync with "
                             "SystemConfig::lineBytes\n");
        return 1;
    }
    std::printf("Miss-path microbenchmark (misses/sec, higher is "
                "better; miss-path allocs must be 0)\n\n");

    std::vector<SweepJob> jobs;
    jobs.emplace_back("miss_storm", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "miss_storm"}},
                      runMissStorm);
    jobs.emplace_back("mshr_merge_fanin", "", SystemConfig{},
                      WorkloadParams{}, std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "mshr_merge_fanin"}},
                      runMergeFanin);
    jobs.emplace_back("shared_invalidate_pingpong", "", SystemConfig{},
                      WorkloadParams{}, std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "shared_invalidate_pingpong"}},
                      runPingpong);
    jobs.emplace_back("dma_stream", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "dma_stream"}},
                      runDmaStream);

    // Serial on purpose: misses/sec is a latency measurement, and
    // concurrent jobs would steal cache and memory bandwidth from
    // each other.
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res = runBenchJobs("micro_miss", std::move(jobs), opts);

    TextTable table({"job", "misses", "host ms", "misses/sec",
                     "miss-path allocs", "events/sec"});
    for (const JobResult &jr : res.jobs()) {
        table.addRow({jr.job.id,
                      fmt("%llu", (unsigned long long)misses(jr.run)),
                      fmtF(jr.run.hostSeconds * 1e3, 2),
                      fmt("%.3g", jr.run.missesPerSec()),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.missPathAllocs),
                      fmt("%.3g", jr.run.eventsPerSec())});
    }
    std::printf("%s", table.format().c_str());

    int rc = finishBench(res);
    // The zero-allocation contract is part of what this bench pins:
    // a nonzero counter means a miss-path structure outgrew its
    // construction-time reservation.
    for (const JobResult &jr : res.jobs()) {
        if (jr.run.stats.missPathAllocs != 0) {
            std::fprintf(stderr,
                         "micro_miss: job %s took %llu miss-path host "
                         "allocation(s), expected 0\n",
                         jr.job.id.c_str(),
                         (unsigned long long)jr.run.stats.missPathAllocs);
            if (rc == 0)
                rc = 1;
        }
    }
    return rc;
}
