/**
 * @file
 * Event-engine microbenchmark on the sweep engine: measures raw
 * scheduler throughput (events/sec) for the access patterns the
 * calendar queue must serve, plus one full-system point so the
 * simulator-wide events/sec trajectory is tracked PR over PR in
 * BENCH_micro_events.json.
 *
 * Jobs (all custom-run, single-threaded, deterministic event
 * streams):
 *   churn  - 64 self-rescheduling chains with mixed strides inside
 *            the calendar window: the schedule/dispatch hot loop.
 *   burst  - same-tick fan-out bursts: the now-FIFO path.
 *   far    - horizons beyond the calendar ring: overflow heap and
 *            migration on window advance.
 *   far_tuned - the same far-future stream under auto-tuned calendar
 *            geometry (a dry-run sample picks the bucket shift via
 *            EventQueue::recommendBucketShift): same events, a
 *            fraction of the overflows.
 *   stress - the full-system randomized "stress" workload (CC,
 *            4 cores), where model code dominates each event.
 *
 * CMPMEM_SCALE scales the event counts (0 = smoke);
 * CMPMEM_BENCH_SCALE divides them (sanitized-tree TIMEOUT relief).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

namespace
{

/** Package a finished queue run as a sweep RunResult. */
RunResult
queueResult(const EventQueue &eq, double host_seconds)
{
    RunResult r;
    r.stats.eventsExecuted = eq.executed();
    r.stats.peakPendingEvents = eq.peakPending();
    r.stats.calendarOverflows = eq.calendarOverflows();
    r.stats.calendarBucketShift = eq.bucketShift();
    r.stats.execTicks = eq.now();
    r.hostSeconds = host_seconds;
    r.verified = true;
    return r;
}

/** 64 interleaved chains, strides 100..692 ticks (in-window). */
RunResult
runChurn()
{
    constexpr int kChains = 64;
    const std::uint64_t perChain = benchIters(2000);

    EventQueue eq;
    std::uint64_t fired = 0;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;
        Tick stride;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                if (--left)
                    arm(when + stride);
            });
        }
    };
    std::vector<Chain> chains(kChains);
    double t0 = threadCpuSeconds();
    for (int i = 0; i < kChains; ++i) {
        chains[i] = {&eq, &fired, perChain, Tick(100 + 37 * (i % 17))};
        chains[i].arm(Tick(i));
    }
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

/** Same-tick fan-out: one trigger spawns a 63-event burst, repeat. */
RunResult
runBurst()
{
    constexpr int kBurst = 63;
    const std::uint64_t rounds = benchIters(2000);

    EventQueue eq;
    std::uint64_t fired = 0;
    struct Driver
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                for (int i = 0; i < kBurst; ++i)
                    eq->schedule(when, [this] { ++*fired; });
                if (--left)
                    arm(when + 1000);
            });
        }
    };
    Driver d{&eq, &fired, rounds};
    double t0 = threadCpuSeconds();
    d.arm(0);
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

struct FarChain
{
    EventQueue *eq;
    std::uint64_t *fired;
    std::uint64_t left;
    Tick stride;

    void
    arm(Tick when)
    {
        eq->schedule(when, [this, when] {
            ++*fired;
            if (--left)
                arm(when + stride);
        });
    }
};

/** Launch the far-future chain set on @p eq (strides 300k..940k). */
void
armFarChains(EventQueue &eq, std::vector<FarChain> &chains,
             std::uint64_t *fired, std::uint64_t per_chain)
{
    for (std::size_t i = 0; i < chains.size(); ++i) {
        // Well past the default ~262k-tick window so every hop
        // overflows under the stock geometry.
        chains[i] = {&eq, fired, per_chain, Tick(300000 + 40001 * i)};
        chains[i].arm(Tick(i));
    }
}

/** Chains whose stride exceeds the calendar window (overflow path). */
RunResult
runFar()
{
    constexpr int kChains = 16;
    const std::uint64_t perChain = benchIters(2000);

    EventQueue eq;
    std::uint64_t fired = 0;
    std::vector<FarChain> chains(kChains);
    double t0 = threadCpuSeconds();
    armFarChains(eq, chains, &fired, perChain);
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

/**
 * The same far-future stream under auto-tuned geometry: a short
 * dry-run sample under the default shift feeds
 * recommendBucketShift(), and the measured run uses the result. The
 * simulated stream is bit-identical to runFar() — same events, same
 * final tick — with the overflow heap nearly idle (the artifact
 * records both, which is the before/after the perf gate watches).
 */
RunResult
runFarTuned()
{
    constexpr int kChains = 16;
    const std::uint64_t perChain = benchIters(2000);

    unsigned shift;
    {
        EventQueue sample;
        std::uint64_t fired = 0;
        std::vector<FarChain> chains(kChains);
        armFarChains(sample, chains, &fired, perChain);
        sample.runUntil(4 * sample.horizonTicks());
        shift = sample.recommendBucketShift();
    }

    EventQueue eq;
    eq.setBucketShift(shift);
    std::uint64_t fired = 0;
    std::vector<FarChain> chains(kChains);
    double t0 = threadCpuSeconds();
    armFarChains(eq, chains, &fired, perChain);
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Event-engine microbenchmark (events/sec, higher is "
                "better)\n\n");

    WorkloadParams stress_params = benchParams();
    stress_params.seed = 42;

    std::vector<SweepJob> jobs;
    jobs.emplace_back("churn", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "churn"}},
                      runChurn);
    jobs.emplace_back("burst", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "burst"}},
                      runBurst);
    jobs.emplace_back("far", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "far"}},
                      runFar);
    jobs.emplace_back("far_tuned", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "far_tuned"}},
                      runFarTuned);
    jobs.emplace_back("stress/model=CC", "stress",
                      makeConfig(4, MemModel::CC), stress_params,
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "stress"}});

    // Serial on purpose: events/sec is a latency measurement, and
    // concurrent jobs would steal cache and memory bandwidth from
    // each other.
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res =
        runBenchJobs("micro_events", std::move(jobs), opts);

    TextTable table({"job", "events", "host ms", "events/sec",
                     "peak pending", "overflows", "shift"});
    for (const JobResult &jr : res.jobs()) {
        table.addRow({jr.job.id,
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.eventsExecuted),
                      fmtF(jr.run.hostSeconds * 1e3, 2),
                      fmt("%.3g", jr.run.eventsPerSec()),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.peakPendingEvents),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.calendarOverflows),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.calendarBucketShift)});
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
