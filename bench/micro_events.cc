/**
 * @file
 * Event-engine microbenchmark on the sweep engine: measures raw
 * scheduler throughput (events/sec) for the access patterns the
 * calendar queue must serve, plus one full-system point so the
 * simulator-wide events/sec trajectory is tracked PR over PR in
 * BENCH_micro_events.json.
 *
 * Jobs (all custom-run, single-threaded, deterministic event
 * streams):
 *   churn  - 64 self-rescheduling chains with mixed strides inside
 *            the calendar window: the schedule/dispatch hot loop.
 *   burst  - same-tick fan-out bursts: the now-FIFO path.
 *   far    - horizons beyond the calendar ring: overflow heap and
 *            migration on window advance.
 *   stress - the full-system randomized "stress" workload (CC,
 *            4 cores), where model code dominates each event.
 *
 * CMPMEM_SCALE scales the event counts (0 = smoke).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

namespace
{

/** Event-count multiplier from CMPMEM_SCALE (0 -> smoke). */
std::uint64_t
scaleFactor()
{
    int scale = benchParams().scale;
    if (scale <= 0)
        return 1;
    return 20 * std::uint64_t(scale);
}

/** Package a finished queue run as a sweep RunResult. */
RunResult
queueResult(const EventQueue &eq, double host_seconds)
{
    RunResult r;
    r.stats.eventsExecuted = eq.executed();
    r.stats.peakPendingEvents = eq.peakPending();
    r.stats.calendarOverflows = eq.calendarOverflows();
    r.stats.execTicks = eq.now();
    r.hostSeconds = host_seconds;
    r.verified = true;
    return r;
}

/** 64 interleaved chains, strides 100..692 ticks (in-window). */
RunResult
runChurn()
{
    constexpr int kChains = 64;
    const std::uint64_t perChain = 2000 * scaleFactor();

    EventQueue eq;
    std::uint64_t fired = 0;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;
        Tick stride;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                if (--left)
                    arm(when + stride);
            });
        }
    };
    std::vector<Chain> chains(kChains);
    double t0 = threadCpuSeconds();
    for (int i = 0; i < kChains; ++i) {
        chains[i] = {&eq, &fired, perChain, Tick(100 + 37 * (i % 17))};
        chains[i].arm(Tick(i));
    }
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

/** Same-tick fan-out: one trigger spawns a 63-event burst, repeat. */
RunResult
runBurst()
{
    constexpr int kBurst = 63;
    const std::uint64_t rounds = 2000 * scaleFactor();

    EventQueue eq;
    std::uint64_t fired = 0;
    struct Driver
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                for (int i = 0; i < kBurst; ++i)
                    eq->schedule(when, [this] { ++*fired; });
                if (--left)
                    arm(when + 1000);
            });
        }
    };
    Driver d{&eq, &fired, rounds};
    double t0 = threadCpuSeconds();
    d.arm(0);
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

/** Chains whose stride exceeds the calendar window (overflow path). */
RunResult
runFar()
{
    constexpr int kChains = 16;
    const std::uint64_t perChain = 2000 * scaleFactor();

    EventQueue eq;
    std::uint64_t fired = 0;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;
        Tick stride;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                if (--left)
                    arm(when + stride);
            });
        }
    };
    std::vector<Chain> chains(kChains);
    double t0 = threadCpuSeconds();
    for (int i = 0; i < kChains; ++i) {
        // Well past the ~262k-tick window so every hop overflows.
        chains[i] = {&eq, &fired, perChain, Tick(300000 + 40001 * i)};
        chains[i].arm(Tick(i));
    }
    eq.run();
    return queueResult(eq, threadCpuSeconds() - t0);
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Event-engine microbenchmark (events/sec, higher is "
                "better)\n\n");

    WorkloadParams stress_params = benchParams();
    stress_params.seed = 42;

    std::vector<SweepJob> jobs;
    jobs.emplace_back("churn", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "churn"}},
                      runChurn);
    jobs.emplace_back("burst", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "burst"}},
                      runBurst);
    jobs.emplace_back("far", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "far"}},
                      runFar);
    jobs.emplace_back("stress/model=CC", "stress",
                      makeConfig(4, MemModel::CC), stress_params,
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "stress"}});

    // Serial on purpose: events/sec is a latency measurement, and
    // concurrent jobs would steal cache and memory bandwidth from
    // each other.
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res = runJobs("micro_events", std::move(jobs), opts);

    TextTable table({"job", "events", "host ms", "events/sec",
                     "peak pending", "overflows"});
    for (const JobResult &jr : res.jobs()) {
        table.addRow({jr.job.id,
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.eventsExecuted),
                      fmtF(jr.run.hostSeconds * 1e3, 2),
                      fmt("%.3g", jr.run.eventsPerSec()),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.peakPendingEvents),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.calendarOverflows)});
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
