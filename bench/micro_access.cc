/**
 * @file
 * Memory-access microbenchmark on the sweep engine: measures host
 * accesses/sec for the access patterns the fast path (DESIGN.md §13)
 * is built for, tracked PR over PR in BENCH_micro_access.json.
 *
 * Jobs (all custom-run, single core, CC model, deterministic):
 *   hit_loop    - repeated loads within one cache line: the per-core
 *                 line-hit micro path, every access after the first a
 *                 fastpath hit.
 *   stride      - line-stride walk over an L1-resident buffer: every
 *                 access a full-probe hit on a different set (the
 *                 MRU-way / shift-mask lookup path).
 *   chase       - pointer chase through a permuted ring of lines:
 *                 dependent full-probe hits, no spatial locality.
 *   store_burst - bursts of stores to a Modified line: the micro
 *                 store path plus store-buffer/upgrade traffic at
 *                 burst boundaries.
 *
 * CMPMEM_SCALE scales the access counts (0 = smoke);
 * CMPMEM_BENCH_SCALE divides them (sanitized-tree TIMEOUT relief).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

namespace
{

// Matches SystemConfig::lineBytes; checked at the top of main().
constexpr std::uint64_t kLineBytes = 32;
constexpr std::uint64_t kWordsPerLine = kLineBytes / 8;

/** Package a finished single-core run as a sweep RunResult. */
RunResult
accessResult(CmpSystem &sys, double host_seconds)
{
    RunResult r;
    r.stats = sys.collectStats();
    r.hostSeconds = host_seconds;
    r.verified = true;
    return r;
}

KernelTask
hitLoopKernel(Context &ctx, Addr base, std::uint64_t iters)
{
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i)
        acc += co_await ctx.load<std::uint64_t>(
            base + ((i & (kWordsPerLine - 1)) << 3));
    co_await ctx.storeNA<std::uint64_t>(base, acc);
}

KernelTask
strideKernel(Context &ctx, Addr base, std::uint64_t lines,
             std::uint64_t iters)
{
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i)
        acc += co_await ctx.load<std::uint64_t>(base +
                                                (i % lines) * kLineBytes);
    co_await ctx.storeNA<std::uint64_t>(base, acc);
}

KernelTask
chaseKernel(Context &ctx, ArrayRef<std::uint64_t> ring, std::uint64_t hops)
{
    std::uint64_t idx = 0;
    for (std::uint64_t i = 0; i < hops; ++i)
        idx = co_await ctx.load<std::uint64_t>(ring.at(idx * kWordsPerLine));
    co_await ctx.storeNA<std::uint64_t>(ring.at(0), idx);
}

KernelTask
storeBurstKernel(Context &ctx, Addr base, std::uint64_t iters)
{
    constexpr std::uint64_t kBurst = 64;
    constexpr std::uint64_t kLines = 4;
    for (std::uint64_t i = 0; i < iters; ++i) {
        Addr line = base + ((i / kBurst) % kLines) * kLineBytes;
        co_await ctx.store<std::uint64_t>(
            line + ((i & (kWordsPerLine - 1)) << 3), i);
    }
}

/** One line, loads only: the micro-path best case. */
RunResult
runHitLoop()
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(), kWordsPerLine);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, hitLoopKernel(sys.context(0), buf.at(0),
                                    benchIters(60000)));
    sys.simulate();
    return accessResult(sys, threadCpuSeconds() - t0);
}

/** 128 lines (4 KiB, L1-resident), line-stride sweep. */
RunResult
runStride()
{
    constexpr std::uint64_t kLines = 128;
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              kLines * kWordsPerLine);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, strideKernel(sys.context(0), buf.at(0), kLines,
                                   benchIters(40000)));
    sys.simulate();
    return accessResult(sys, threadCpuSeconds() - t0);
}

/** Dependent loads through a random single-cycle ring of 128 lines. */
RunResult
runChase()
{
    constexpr std::uint64_t kLines = 128;
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    auto ring = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                               kLines * kWordsPerLine);

    // Sattolo's algorithm: a uniform permutation with one cycle, so
    // the chase visits every line before repeating.
    std::vector<std::uint64_t> next(kLines);
    for (std::uint64_t i = 0; i < kLines; ++i)
        next[i] = i;
    Rng rng(7);
    for (std::uint64_t i = kLines - 1; i > 0; --i)
        std::swap(next[i], next[rng.nextBelow(i)]);
    for (std::uint64_t i = 0; i < kLines; ++i)
        sys.mem().write<std::uint64_t>(ring.at(i * kWordsPerLine), next[i]);

    double t0 = threadCpuSeconds();
    sys.bindKernel(0, chaseKernel(sys.context(0), ring,
                                  benchIters(40000)));
    sys.simulate();
    return accessResult(sys, threadCpuSeconds() - t0);
}

/** 64-store bursts round-robin over 4 lines. */
RunResult
runStoreBurst()
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    auto buf = ArrayRef<std::uint64_t>::alloc(sys.mem(),
                                              4 * kWordsPerLine);
    double t0 = threadCpuSeconds();
    sys.bindKernel(0, storeBurstKernel(sys.context(0), buf.at(0),
                                       benchIters(40000)));
    sys.simulate();
    return accessResult(sys, threadCpuSeconds() - t0);
}

std::uint64_t
accesses(const RunResult &r)
{
    const CoreStats &c = r.stats.coreTotal;
    return c.loads + c.stores + c.atomics + c.lsReads + c.lsWrites;
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    if (makeConfig(1, MemModel::CC).lineBytes != kLineBytes) {
        std::fprintf(stderr, "micro_access: kLineBytes out of sync with "
                             "SystemConfig::lineBytes\n");
        return 1;
    }
    std::printf("Memory-access microbenchmark (accesses/sec, higher is "
                "better)\n\n");

    std::vector<SweepJob> jobs;
    jobs.emplace_back("hit_loop", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "hit_loop"}},
                      runHitLoop);
    jobs.emplace_back("stride", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "stride"}},
                      runStride);
    jobs.emplace_back("chase", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{{"job", "chase"}},
                      runChase);
    jobs.emplace_back("store_burst", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{
                          {"job", "store_burst"}},
                      runStoreBurst);

    // Serial on purpose: accesses/sec is a latency measurement, and
    // concurrent jobs would steal cache and memory bandwidth from
    // each other.
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res =
        runBenchJobs("micro_access", std::move(jobs), opts);

    TextTable table({"job", "accesses", "host ms", "accesses/sec",
                     "fastpath hits", "events/sec"});
    for (const JobResult &jr : res.jobs()) {
        table.addRow({jr.job.id,
                      fmt("%llu", (unsigned long long)accesses(jr.run)),
                      fmtF(jr.run.hostSeconds * 1e3, 2),
                      fmt("%.3g", jr.run.accessesPerSec()),
                      fmt("%llu", (unsigned long long)
                                      jr.run.stats.l1Total.fastpathHits),
                      fmt("%.3g", jr.run.eventsPerSec())});
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
