/**
 * @file
 * Reproduces Table 3: "Memory characteristics of the applications
 * measured on the cache-based model using 16 cores running at
 * 800 MHz."
 *
 * Columns: L1 D-miss rate, L2 D-miss rate, instructions per L1
 * D-miss, core cycles per L2 D-miss (execution cycles divided by L2
 * misses, per core), and off-chip bandwidth. Absolute values depend
 * on the scaled inputs (see EXPERIMENTS.md); the cross-application
 * ordering is the reproduction target: compute-bound codecs at the
 * top, the data-bound FIR/sort/art group with high bandwidth and
 * low instructions-per-miss at the bottom.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Table 3: memory characteristics, CC model, 16 cores "
                "@ 800 MHz\n\n");

    SweepSpec spec("table3");
    spec.base(makeConfig(16, MemModel::CC))
        .baseParams(benchParams())
        .workloads(workloadNames());
    SweepResult res = runBenchSweep(spec);

    TextTable table({"Application", "L1 D-miss", "L2 D-miss",
                     "Instr/L1-miss", "Cycles/L2-miss", "Off-chip B/W",
                     "verified"});
    SystemConfig cfg = makeConfig(16, MemModel::CC);
    for (const auto &name : workloadNames()) {
        const RunResult &r = res.runOf(name);
        const RunStats &s = r.stats;

        double instr_per_miss =
            s.l1Total.demandMisses()
                ? double(s.coreTotal.instructions()) /
                      double(s.l1Total.demandMisses())
                : 0.0;
        double cycles = double(s.execTicks) /
                        double(cfg.coreClock().period());
        double cyc_per_l2 =
            s.l2Misses ? cycles * cfg.cores / double(s.l2Misses) : 0.0;

        table.addRow({name, fmtPct(s.l1MissRate()),
                      fmtPct(s.l2MissRate()), fmtF(instr_per_miss, 1),
                      fmtF(cyc_per_l2, 1),
                      fmt("%.1f MB/s", s.offChipBytesPerSec() / 1e6),
                      r.verified ? "yes" : "NO"});
    }

    std::printf("%s\n", table.format().c_str());
    std::printf("Paper reference rows (Table 3): MPEG-2 0.58%%/85.3%%/"
                "324.8/135.4/292 MB/s ... FIR 0.63%%/99.8%%/14.6/20.4/"
                "1839 MB/s; see EXPERIMENTS.md for the full "
                "comparison.\n");
    return finishBench(res);
}
