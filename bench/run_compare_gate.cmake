# Perf-regression gate step (cmake -P): run one microbench at smoke
# scale into ARTIFACT_DIR, then diff the fresh artifact against the
# committed baseline with bench_compare (DESIGN.md §14).
#
# Required -D variables:
#   BENCH_EXE    - the microbench binary to run
#   COMPARE_EXE  - the bench_compare binary
#   BASELINE     - committed baselines/BENCH_<name>.json
#   ARTIFACT     - where the fresh BENCH_<name>.json lands
#   ARTIFACT_DIR - directory the bench writes artifacts into
#
# Host mode comes from the CMPMEM_GATE_HOST_MODE environment variable
# (default "warn": ctest runs tests concurrently, so host throughput
# is noisy here — scripts/check.sh --full runs the strict gate with
# repeats on a quiet machine).

foreach(var BENCH_EXE COMPARE_EXE BASELINE ARTIFACT ARTIFACT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_compare_gate.cmake needs -D${var}=...")
    endif()
endforeach()

if(DEFINED ENV{CMPMEM_GATE_HOST_MODE})
    set(host_mode "$ENV{CMPMEM_GATE_HOST_MODE}")
else()
    set(host_mode "warn")
endif()

# Baselines are produced at smoke scale with no iteration divisor;
# pin both so the comparison is like-for-like.
set(ENV{CMPMEM_SCALE} 0)
set(ENV{CMPMEM_BENCH_SCALE} 1)
set(ENV{CMPMEM_ARTIFACT_DIR} "${ARTIFACT_DIR}")

execute_process(COMMAND "${BENCH_EXE}" RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH_EXE} failed (rc ${bench_rc})")
endif()

execute_process(
    COMMAND "${COMPARE_EXE}" "--host-mode=${host_mode}" --annotate
            "${BASELINE}" "${ARTIFACT}"
    RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
    message(FATAL_ERROR
            "bench_compare failed (rc ${compare_rc}) for ${ARTIFACT}")
endif()
