/**
 * @file
 * Reproduces Figure 6: "The effect of increased off-chip bandwidth
 * on FIR performance. Measured on 16 cores at 3.2 GHz" — channel
 * bandwidth swept 1.6 to 12.8 GB/s for both models, plus the
 * hardware-prefetching point at 12.8 GB/s.
 *
 * Expected shape (Section 5.4): with more bandwidth the effect of
 * superfluous refills shrinks and the cache-based system approaches
 * the streaming one; "when hardware prefetching is introduced at
 * 12.8 GB/s, load stalls are reduced to 3% of the total execution
 * time".
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 6: FIR vs off-chip bandwidth, 16 cores @ "
                "3.2 GHz\n\n");

    // Bandwidth x model cross-product over the declared axes, with
    // the 1-core baseline and the two prefetch remedies as explicit
    // points ("the introduction of techniques such as hardware
    // prefetching and non-allocating stores to the cache-based model
    // eliminates the streaming advantage" -- Abstract).
    SweepSpec spec("fig6_bandwidth");
    spec.base(makeConfig(16, MemModel::CC, 3.2))
        .baseParams(benchParams())
        .workloads({"fir"})
        .axis("gbps", {1.6, 3.2, 6.4, 12.8},
              [](SystemConfig &cfg, double v) {
                  cfg.dram.bandwidthGBps = v;
              })
        .modelAxis();
    spec.baseline({"fir/base", "fir",
                   makeConfig(1, MemModel::CC, 0.8), benchParams(),
                   {}, {{"workload", "fir"}, {"role", "baseline"}}});
    for (bool pfs : {false, true}) {
        SystemConfig pf = makeConfig(16, MemModel::CC, 3.2, 12.8);
        pf.hwPrefetch = true;
        pf.prefetchDepth = 8;
        pf.pfsEnabled = pfs;
        spec.point({pfs ? "fir/pref+pfs" : "fir/pref", "fir", pf,
                    benchParams(), {"fir/base"},
                    {{"workload", "fir"},
                     {"config", pfs ? "CC+pref+PFS" : "CC+pref"}}});
    }
    SweepResult res = runBenchSweep(spec);

    const RunResult &base = res.runOf("fir/base");
    TextTable table({"GB/s", "config", "total", "useful", "sync",
                     "load", "store", "load frac"});
    auto addRow = [&](const std::string &id, const std::string &gbps,
                      const std::string &label) {
        const RunResult &r = res.runOf(id);
        NormBreakdown b =
            normalizedBreakdown(r.stats, base.stats.execTicks);
        table.addRow({gbps, label, fmtF(b.total(), 4),
                      fmtF(b.useful, 4), fmtF(b.sync, 4),
                      fmtF(b.load, 4), fmtF(b.store, 4),
                      fmtPct(b.load / b.total())});
    };
    for (double gbps : {1.6, 3.2, 6.4, 12.8}) {
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            addRow(fmt("fir/gbps=%.1f/model=%s", gbps, to_string(m)),
                   fmtF(gbps, 1), to_string(m));
        }
    }
    addRow("fir/pref", "12.8", "CC+pref");
    addRow("fir/pref+pfs", "12.8", "CC+pref+PFS");

    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
