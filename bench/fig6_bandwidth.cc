/**
 * @file
 * Reproduces Figure 6: "The effect of increased off-chip bandwidth
 * on FIR performance. Measured on 16 cores at 3.2 GHz" — channel
 * bandwidth swept 1.6 to 12.8 GB/s for both models, plus the
 * hardware-prefetching point at 12.8 GB/s.
 *
 * Expected shape (Section 5.4): with more bandwidth the effect of
 * superfluous refills shrinks and the cache-based system approaches
 * the streaming one; "when hardware prefetching is introduced at
 * 12.8 GB/s, load stalls are reduced to 3% of the total execution
 * time".
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("Figure 6: FIR vs off-chip bandwidth, 16 cores @ "
                "3.2 GHz\n\n");

    RunResult base = runWorkload("fir", makeConfig(1, MemModel::CC, 0.8),
                                 benchParams());

    TextTable table({"GB/s", "config", "total", "useful", "sync",
                     "load", "store", "load frac"});
    for (double gbps : {1.6, 3.2, 6.4, 12.8}) {
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            RunResult r = runWorkload(
                "fir", makeConfig(16, m, 3.2, gbps), benchParams());
            NormBreakdown b =
                normalizedBreakdown(r.stats, base.stats.execTicks);
            table.addRow({fmtF(gbps, 1), to_string(m),
                          fmtF(b.total(), 4), fmtF(b.useful, 4),
                          fmtF(b.sync, 4), fmtF(b.load, 4),
                          fmtF(b.store, 4),
                          fmtPct(b.load / b.total())});
        }
    }

    // CC with hardware prefetching at the top bandwidth, and the
    // paper's full remedy: prefetching plus non-allocating stores
    // ("the introduction of techniques such as hardware prefetching
    // and non-allocating stores to the cache-based model eliminates
    // the streaming advantage" -- Abstract).
    SystemConfig pf = makeConfig(16, MemModel::CC, 3.2, 12.8);
    pf.hwPrefetch = true;
    pf.prefetchDepth = 8;
    for (bool pfs : {false, true}) {
        pf.pfsEnabled = pfs;
        RunResult r = runWorkload("fir", pf, benchParams());
        NormBreakdown b =
            normalizedBreakdown(r.stats, base.stats.execTicks);
        table.addRow({"12.8", pfs ? "CC+pref+PFS" : "CC+pref",
                      fmtF(b.total(), 4), fmtF(b.useful, 4),
                      fmtF(b.sync, 4), fmtF(b.load, 4),
                      fmtF(b.store, 4), fmtPct(b.load / b.total())});
    }

    std::printf("%s", table.format().c_str());
    return 0;
}
