/**
 * @file
 * Reproduces Figure 9: "The effect of stream programming
 * optimizations on the off-chip bandwidth and performance of MPEG-2
 * at 800 MHz" — the original kernel-per-frame code versus the
 * restructured per-macroblock (blocked + fused) code, both on the
 * cache-based model.
 *
 * Expected shape (Section 6): "the improved producer-consumer
 * locality reduced write-backs from L1 caches by 60%" and the
 * restructured code is significantly faster at every core count,
 * while "instruction cache misses are notably increased in the
 * streaming-optimized code".
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 9: stream-programming optimizations, "
                "cache-based MPEG-2 @ 800 MHz\n\n");

    WorkloadParams orig = benchParams();
    orig.streamOptimized = false;
    WorkloadParams opt = benchParams();

    // The variant (workload-parameter) axis rides the cross-product
    // alongside the core-count axis.
    SweepSpec spec("fig9_stream_opt_mpeg2");
    spec.base(makeConfig(16, MemModel::CC))
        .workloads({"mpeg2"})
        .axis("cores", {2, 4, 8, 16},
              [](SystemConfig &cfg, double v) { cfg.cores = int(v); },
              0)
        .axis("variant",
              {{"orig", [orig](SweepJob &j) { j.params = orig; }},
               {"opt", [opt](SweepJob &j) { j.params = opt; }}});
    spec.baseline({"mpeg2/base", "mpeg2", makeConfig(1, MemModel::CC),
                   opt, {},
                   {{"workload", "mpeg2"}, {"role", "baseline"}}});
    SweepResult res = runBenchSweep(spec);

    const RunResult &base = res.runOf("mpeg2/base");
    TextTable table({"CPUs", "variant", "exec", "read", "write",
                     "L1 wb", "I$ misses", "verified"});
    double denom_traffic =
        double(base.stats.dramReadBytes + base.stats.dramWriteBytes);

    double wb_orig_16 = 0, wb_opt_16 = 0;
    for (int cores : {2, 4, 8, 16}) {
        for (bool optimized : {false, true}) {
            const RunResult &r = res.runOf(
                fmt("mpeg2/cores=%d/variant=%s", cores,
                    optimized ? "opt" : "orig"));
            if (cores == 16) {
                (optimized ? wb_opt_16 : wb_orig_16) =
                    double(r.stats.l1Total.writebacks);
            }
            table.addRow(
                {fmt("%d", cores), optimized ? "CC-optimized" : "CC-orig",
                 fmtF(double(r.stats.execTicks) /
                          double(base.stats.execTicks),
                      3),
                 fmtF(r.stats.dramReadBytes / denom_traffic, 3),
                 fmtF(r.stats.dramWriteBytes / denom_traffic, 3),
                 fmt("%llu",
                     (unsigned long long)r.stats.l1Total.writebacks),
                 fmt("%llu", (unsigned long long)r.stats.icacheMisses),
                 r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s\n", table.format().c_str());
    if (wb_orig_16 > 0) {
        std::printf("L1 write-backs reduced %.0f%% by the "
                    "stream-programming restructure (paper: 60%%)\n",
                    100.0 * (1.0 - wb_opt_16 / wb_orig_16));
    }
    return finishBench(res);
}
