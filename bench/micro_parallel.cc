/**
 * @file
 * Parallel-engine microbenchmark (DESIGN.md §17): isolates the two
 * host costs the intra-run sharding adds — window-barrier
 * synchronization and shard imbalance — on synthetic compute kernels
 * whose simulated stats are bit-identical at every hostThreads value
 * (which is exactly what the perf gate pins).
 *
 * Jobs (all custom-run, deterministic):
 *   barrier/j1, barrier/j4 - 16 balanced compute-only cores under a
 *            deliberately short window (4 quanta), so the run is
 *            dominated by window setup + barrier + replay machinery.
 *            j4/j1 host-seconds is the barrier-overhead factor.
 *   imbalance/j1, imbalance/j4 - core 0 carries 8x the compute of
 *            the other 15 under the default window: the worst case
 *            for shard load balance (every window waits on shard 0).
 *
 * CMPMEM_SCALE scales the compute rounds (0 = smoke);
 * CMPMEM_BENCH_SCALE divides them (sanitized-tree TIMEOUT relief).
 */

#include <chrono>
#include <cstdio>

#include "cmpmem.hh"
#include "core/context.hh"

using namespace cmpmem;

namespace
{

KernelTask
computeRounds(Context &ctx, std::uint64_t rounds)
{
    for (std::uint64_t i = 0; i < rounds; ++i)
        co_await ctx.compute(Cycles(100));
}

/**
 * Run 16 compute-only cores, core 0 weighted by @p skew, at
 * @p host_threads. The simulated machine is identical for every
 * host_threads value, so each job's stats pin one deterministic
 * point while host_seconds tracks the engine overhead.
 */
RunResult
runCompute(int host_threads, std::uint64_t rounds, int skew,
           Cycles window_cycles)
{
    double t0 = threadCpuSeconds();
    auto w0 = std::chrono::steady_clock::now();

    SystemConfig cfg = makeConfig(16, MemModel::CC);
    cfg.hostThreads = host_threads;
    cfg.hostWindowCycles = window_cycles;
    CmpSystem sys(cfg);
    for (int i = 0; i < cfg.cores; ++i) {
        std::uint64_t r = i == 0 ? rounds * std::uint64_t(skew)
                                 : rounds;
        sys.bindKernel(i, computeRounds(sys.context(i), r));
    }
    sys.simulate();

    RunResult result;
    result.stats = sys.collectStats();
    result.verified = true;
    result.hostSeconds =
        host_threads > 1
            ? std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - w0)
                  .count()
            : threadCpuSeconds() - t0;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Parallel-engine microbenchmark (barrier overhead "
                "and shard imbalance)\n\n");

    const std::uint64_t rounds = benchIters(2000);
    const SystemConfig tag_cfg = makeConfig(16, MemModel::CC);

    std::vector<SweepJob> jobs;
    for (int j : {1, 4}) {
        jobs.emplace_back(
            fmt("barrier/j%d", j), "", tag_cfg, WorkloadParams{},
            std::vector<std::string>{},
            std::map<std::string, std::string>{
                {"job", "barrier"}, {"host_threads", fmt("%d", j)}},
            [rounds, j] {
                // 4-quanta windows: maximal barrier frequency.
                return runCompute(j, rounds, 1, Cycles(400));
            });
    }
    for (int j : {1, 4}) {
        jobs.emplace_back(
            fmt("imbalance/j%d", j), "", tag_cfg, WorkloadParams{},
            std::vector<std::string>{},
            std::map<std::string, std::string>{
                {"job", "imbalance"}, {"host_threads", fmt("%d", j)}},
            [rounds, j] {
                return runCompute(j, rounds / 4, 8, Cycles(0));
            });
    }

    // Serial on purpose: each job times the engine against the wall
    // clock, and concurrent jobs would contend for the same host
    // cores the sharded run is trying to use.
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res =
        runBenchJobs("micro_parallel", std::move(jobs), opts);

    TextTable table({"job", "events", "host ms", "windows",
                     "parallel", "barrier wait ms"});
    for (const JobResult &jr : res.jobs()) {
        table.addRow(
            {jr.job.id,
             fmt("%llu",
                 (unsigned long long)jr.run.stats.eventsExecuted),
             fmtF(jr.run.hostSeconds * 1e3, 2),
             fmt("%llu", (unsigned long long)jr.run.stats.hostWindows),
             fmt("%llu", (unsigned long long)
                             jr.run.stats.hostParallelWindows),
             fmtF(jr.run.stats.hostBarrierWaitSeconds * 1e3, 2)});
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
