/**
 * @file
 * Cache-policy design space: the policy axis (four insertion/
 * replacement policies under the paper's stream prefetcher, plus the
 * Markov and stream-buffer prefetch engines under LRU) crossed with
 * the two memory models, on two paper workloads that bracket the
 * locality spectrum (fir: streaming/data-bound; mpeg2: compute-bound
 * with long-term reuse). DESIGN.md §15 describes the policy-trait
 * architecture this sweeps.
 *
 * Every point is a declarative SweepSpec job, so the policy labels
 * land in the artifact's tags and the policy identity lands in each
 * job's config block — bench_compare refuses cross-policy diffs.
 *
 * CMPMEM_POLICY_WORKLOAD restricts the workload axis to one name
 * (the sanitizer smoke in scripts/check.sh --full uses this to keep
 * the ASan-scaled run quick).
 */

#include <cstdio>
#include <cstdlib>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);

    std::vector<std::string> wl = {"fir", "mpeg2"};
    if (const char *only = std::getenv("CMPMEM_POLICY_WORKLOAD")) {
        if (*only)
            wl = {only};
    }

    std::printf("Policy design space: {LRU, MIP, LIP, BIP} x "
                "{stream, markov, stream buffers} x {CC, STR}, "
                "4 cores @ 800 MHz\n\n");

    // modelAxis before policyAxis: a policy point's hwPrefetch
    // request is gated on the job's model, and axes apply in
    // insertion order.
    SweepSpec spec("policy_space");
    spec.base(makeConfig(4, MemModel::CC))
        .baseParams(benchParams())
        .workloads(wl)
        .modelAxis()
        .policyAxis();
    SweepResult res = runBenchSweep(spec);

    TextTable table({"Workload", "Model", "Policy", "L1 D-miss",
                     "L2 D-miss", "Exec ms", "Prefetch useful",
                     "verified"});
    for (const auto &jr : res.jobs()) {
        if (!jr.ran) {
            table.addRow({jr.job.tags.at("workload"),
                          jr.job.tags.at("model"),
                          jr.job.tags.at("policy"), "-", "-", "-", "-",
                          "ERROR"});
            continue;
        }
        const RunStats &s = jr.run.stats;
        table.addRow({jr.job.tags.at("workload"),
                      jr.job.tags.at("model"),
                      jr.job.tags.at("policy"),
                      fmtPct(s.l1MissRate()), fmtPct(s.l2MissRate()),
                      fmtF(s.execSeconds() * 1e3, 3),
                      fmt("%llu", (unsigned long long)
                              s.l1Total.prefetchesUseful),
                      jr.run.verified ? "yes" : "NO"});
    }

    std::printf("%s\n", table.format().c_str());
    std::printf("The STR rows repeat per policy with hwPrefetch off: "
                "local-store traffic bypasses the L1 arrays, so only "
                "the residual cached accesses move.\n");
    return finishBench(res);
}
