/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates
 * themselves: event-queue throughput, cache-array lookups, resource
 * interval scheduling, and end-to-end simulated-instruction rate.
 * These guard the simulator's host performance (the full Figure 2
 * sweep runs hundreds of millions of simulated operations).
 *
 * Iteration control stays with google-benchmark (its timing loop is
 * the whole point), but the run drops the same machine-readable
 * artifact as the sweep-engine benches: BENCH_microbench.json via
 * the library's JSON reporter, at the sweep engine's artifact path.
 */

#include <cstring>
#include <vector>

#include <benchmark/benchmark.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(Tick(i * 10), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray cache({32 * 1024, 2, 32});
    CacheArray::Victim v;
    for (Addr a = 0; a < 32 * 1024; a += 32)
        cache.allocate(a, v).state = MesiState::Exclusive;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a));
        a = (a + 32) & (32 * 1024 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_ResourceAcquire(benchmark::State &state)
{
    Resource r("bench");
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(r.acquire(t, 10));
        t += 7;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceAcquire);

void
BM_FunctionalMemory(benchmark::State &state)
{
    FunctionalMemory mem;
    Addr a = mem.alloc(1 << 20);
    std::uint64_t i = 0;
    for (auto _ : state) {
        mem.write<std::uint32_t>(a + (i * 4 & 0xfffff),
                                 std::uint32_t(i));
        benchmark::DoNotOptimize(
            mem.read<std::uint32_t>(a + (i * 4 & 0xfffff)));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalMemory);

/** End-to-end: simulated ops per host second through a full system. */
void
BM_SimulatedVectorSum(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg = makeConfig(4, MemModel::CC);
        CmpSystem sys(cfg);
        Addr a = sys.mem().alloc(64 * 1024);
        struct Kern
        {
            static KernelTask
            run(Context &ctx, Addr a, int n)
            {
                std::uint64_t sum = 0;
                for (int i = 0; i < n; ++i)
                    sum += co_await ctx.load<std::uint32_t>(
                        a + Addr(i) * 4);
                benchmark::DoNotOptimize(sum);
            }
        };
        for (int c = 0; c < 4; ++c)
            sys.bindKernel(c, Kern::run(sys.context(c), a, 4096));
        sys.simulate();
    }
    state.SetItemsProcessed(state.iterations() * 4 * 4096);
}
BENCHMARK(BM_SimulatedVectorSum);

} // namespace
} // namespace cmpmem

int
main(int argc, char **argv)
{
    // Route the JSON artifact through the library's own output
    // plumbing (--benchmark_out); an explicit flag on the command
    // line wins over the default path.
    std::string path = cmpmem::artifactPath("microbench");
    std::string out_flag = "--benchmark_out=" + path;
    std::vector<char *> args(argv, argv + argc);
    bool user_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            user_out = true;
    }
    if (!user_out)
        args.push_back(out_flag.data());
    int nargs = int(args.size());
    benchmark::Initialize(&nargs, args.data());
    if (benchmark::ReportUnrecognizedArguments(nargs, args.data()))
        return 1;

    benchmark::RunSpecifiedBenchmarks();
    if (!user_out)
        std::printf("artifact: %s\n", path.c_str());
    benchmark::Shutdown();
    return 0;
}
