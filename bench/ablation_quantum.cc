/**
 * @file
 * Ablation for DESIGN.md decision #3: the lazy-local-time quantum.
 * Sweeps the core time-quantum and shows that reported execution
 * times are stable (the quantum is a simulation-speed knob, not a
 * hardware parameter) while the host cost of simulation varies.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Ablation: core time-quantum sweep (FIR and merge, "
                "16 cores CC)\n\n");

    // The q=100 point doubles as the reference row (the pre-engine
    // version simulated it twice).
    SweepSpec spec("ablation_quantum");
    spec.base(makeConfig(16, MemModel::CC))
        .baseParams(benchParams())
        .workloads({"fir", "merge"})
        .axis("q", {10, 50, 100, 400, 1600},
              [](SystemConfig &cfg, double v) {
                  cfg.quantumCycles = Cycles(v);
              },
              0);
    SweepResult res = runBenchSweep(spec);

    TextTable table({"workload", "quantum (cycles)", "exec (ms)",
                     "vs q=100", "host (s)", "verified"});
    for (const char *name : {"fir", "merge"}) {
        double ref = res.runOf(fmt("%s/q=100", name))
                         .stats.execSeconds() *
                     1e3;
        for (int q : {10, 50, 100, 400, 1600}) {
            const RunResult &r = res.runOf(fmt("%s/q=%d", name, q));
            double ms = r.stats.execSeconds() * 1e3;
            table.addRow({name, fmt("%d", q), fmtF(ms, 4),
                          fmt("%+.2f%%", 100.0 * (ms - ref) / ref),
                          fmtF(r.hostSeconds, 2),
                          r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    std::printf("\n(small |%%| deltas everywhere are the expected "
                "result)\n");
    return finishBench(res);
}
