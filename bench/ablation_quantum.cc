/**
 * @file
 * Ablation for DESIGN.md decision #3: the lazy-local-time quantum.
 * Sweeps the core time-quantum and shows that reported execution
 * times are stable (the quantum is a simulation-speed knob, not a
 * hardware parameter) while the host cost of simulation varies.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("Ablation: core time-quantum sweep (FIR and merge, "
                "16 cores CC)\n\n");
    TextTable table({"workload", "quantum (cycles)", "exec (ms)",
                     "vs q=100", "host (s)", "verified"});

    for (const char *name : {"fir", "merge"}) {
        SystemConfig ref_cfg = makeConfig(16, MemModel::CC);
        ref_cfg.quantumCycles = 100;
        double ref = runWorkload(name, ref_cfg, benchParams())
                         .stats.execSeconds() *
                     1e3;
        for (Cycles q : {10u, 50u, 100u, 400u, 1600u}) {
            SystemConfig cfg = makeConfig(16, MemModel::CC);
            cfg.quantumCycles = q;
            RunResult r = runWorkload(name, cfg, benchParams());
            double ms = r.stats.execSeconds() * 1e3;
            table.addRow({name, fmt("%llu", (unsigned long long)q),
                          fmtF(ms, 4),
                          fmt("%+.2f%%", 100.0 * (ms - ref) / ref),
                          fmtF(r.hostSeconds, 2),
                          r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    std::printf("\n(small |%%| deltas everywhere are the expected "
                "result)\n");
    return 0;
}
