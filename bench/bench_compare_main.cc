/**
 * @file
 * CLI for the perf-regression gate (DESIGN.md §14):
 *
 *   bench_compare [options] BASELINE.json FRESH.json [FRESH2.json ...]
 *
 * Diffs one or more fresh BENCH artifacts (repeats of the same
 * sweep) against the committed baseline. Simulated stats must be
 * bit-identical on every repeat; host throughput is compared
 * median-vs-baseline with a tolerance.
 *
 * Options:
 *   --host-mode=strict|warn|off   strict (default): a >tolerance
 *                                 throughput drop fails the gate;
 *                                 warn: printed only; off: skipped
 *   --tolerance=FRAC              relative drop that flags a host
 *                                 regression (default 0.10)
 *   --annotate                    write the comparison summary back
 *                                 into the first fresh artifact as a
 *                                 top-level "compare" member
 *
 * Exit codes: 0 clean, 1 simulated-stats identity mismatch,
 * 2 usage or artifact parse error, 3 host throughput regression
 * (strict mode only).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/bench_compare.hh"
#include "sim/sim_error.hh"

using namespace cmpmem;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--host-mode=strict|warn|off] "
                 "[--tolerance=FRAC] [--annotate] BASELINE FRESH "
                 "[FRESH...]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions opts;
    bool annotate = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--host-mode=", 12) == 0) {
            try {
                opts.hostMode = parseHostMode(arg + 12);
            } catch (const SimError &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                return 2;
            }
        } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
            char *end = nullptr;
            opts.hostTolerance = std::strtod(arg + 12, &end);
            if (!end || *end || opts.hostTolerance < 0)
                usage(argv[0]);
        } else if (std::strcmp(arg, "--annotate") == 0) {
            annotate = true;
        } else if (arg[0] == '-') {
            usage(argv[0]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() < 2)
        usage(argv[0]);

    try {
        JsonValue baseline = JsonValue::parseFile(paths[0]);
        std::vector<JsonValue> fresh;
        for (std::size_t i = 1; i < paths.size(); ++i)
            fresh.push_back(JsonValue::parseFile(paths[i]));

        CompareReport report = compareArtifacts(baseline, fresh, opts);
        std::printf("%s", report.format().c_str());
        if (annotate)
            annotateArtifact(paths[1], report);
        return report.exitCode();
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }
}
