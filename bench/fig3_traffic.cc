/**
 * @file
 * Reproduces Figure 3: "Off-chip traffic for the cache-based and
 * streaming systems with 16 CPUs, normalized to a single caching
 * core", split into reads and writes, for FEM, MPEG-2, FIR and
 * BitonicSort.
 *
 * Expected shape (Section 5.1): streaming moves fewer bytes for
 * MPEG-2 and FIR (no write-allocate refills on output streams),
 * about the same for FEM, and *more* for BitonicSort (it writes
 * whole blocks back even when no elements were swapped, while the
 * cache keeps clean lines from writing back).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 3: off-chip traffic, 16 CPUs @ 800 MHz, "
                "normalized to one caching core\n\n");

    SweepSpec spec("fig3_traffic");
    for (const char *name : {"fem", "mpeg2", "fir", "bitonic"}) {
        const std::string base_id = std::string(name) + "/base";
        spec.point({base_id, name, makeConfig(1, MemModel::CC),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            spec.point({fmt("%s/model=%s", name, to_string(m)), name,
                        makeConfig(16, m), benchParams(), {base_id},
                        {{"workload", name}, {"model", to_string(m)}}});
        }
    }
    SweepResult res = runBenchSweep(spec);

    TextTable table({"Application", "model", "read", "write", "total",
                     "verified"});
    for (const char *name : {"fem", "mpeg2", "fir", "bitonic"}) {
        const RunResult &base =
            res.runOf(std::string(name) + "/base");
        double denom =
            double(base.stats.dramReadBytes + base.stats.dramWriteBytes);
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            const RunResult &r =
                res.runOf(fmt("%s/model=%s", name, to_string(m)));
            table.addRow({name, to_string(m),
                          fmtF(r.stats.dramReadBytes / denom, 3),
                          fmtF(r.stats.dramWriteBytes / denom, 3),
                          fmtF((r.stats.dramReadBytes +
                                r.stats.dramWriteBytes) /
                                   denom,
                               3),
                          r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
