/**
 * @file
 * Reproduces Figure 3: "Off-chip traffic for the cache-based and
 * streaming systems with 16 CPUs, normalized to a single caching
 * core", split into reads and writes, for FEM, MPEG-2, FIR and
 * BitonicSort.
 *
 * Expected shape (Section 5.1): streaming moves fewer bytes for
 * MPEG-2 and FIR (no write-allocate refills on output streams),
 * about the same for FEM, and *more* for BitonicSort (it writes
 * whole blocks back even when no elements were swapped, while the
 * cache keeps clean lines from writing back).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("Figure 3: off-chip traffic, 16 CPUs @ 800 MHz, "
                "normalized to one caching core\n\n");
    TextTable table({"Application", "model", "read", "write", "total",
                     "verified"});

    for (const char *name : {"fem", "mpeg2", "fir", "bitonic"}) {
        RunResult base = runWorkload(name, makeConfig(1, MemModel::CC),
                                     benchParams());
        double denom =
            double(base.stats.dramReadBytes + base.stats.dramWriteBytes);
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            RunResult r =
                runWorkload(name, makeConfig(16, m), benchParams());
            table.addRow({name, to_string(m),
                          fmtF(r.stats.dramReadBytes / denom, 3),
                          fmtF(r.stats.dramWriteBytes / denom, 3),
                          fmtF((r.stats.dramReadBytes +
                                r.stats.dramWriteBytes) /
                                   denom,
                               3),
                          r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    return 0;
}
