/**
 * @file
 * Ablation of the DRAM model: the paper (following DRAMsim) uses a
 * flat 70 ns random-access channel; this sweep adds the optional
 * bank/open-row model and shows how row locality shifts absolute
 * numbers while leaving the CC-vs-STR comparison intact — evidence
 * that the paper's flat-latency simplification is safe for its
 * conclusions.
 *
 * Row-hit statistics come straight from RunStats (the pre-engine
 * version hand-built a third CmpSystem just to read the channel
 * counters).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Ablation: flat vs bank/open-row DRAM model "
                "(16 cores @ 800 MHz)\n\n");

    SweepSpec spec("ablation_dram");
    spec.base(makeConfig(16, MemModel::CC))
        .baseParams(benchParams())
        .workloads({"fir", "merge"})
        .axis("dram",
              {{"flat", [](SweepJob &j) { j.cfg.dram.bankModel = false; }},
               {"banked", [](SweepJob &j) { j.cfg.dram.bankModel = true; }}})
        .modelAxis();
    SweepResult res = runBenchSweep(spec);

    TextTable table({"workload", "dram model", "CC exec (ms)",
                     "STR exec (ms)", "STR/CC", "row hit rate"});
    for (const char *name : {"fir", "merge"}) {
        for (const char *dram : {"flat", "banked"}) {
            const RunResult &cc = res.runOf(
                fmt("%s/dram=%s/model=CC", name, dram));
            const RunResult &str = res.runOf(
                fmt("%s/dram=%s/model=STR", name, dram));
            double cc_ms = cc.stats.execSeconds() * 1e3;
            double str_ms = str.stats.execSeconds() * 1e3;
            double row_hits = double(cc.stats.dramRowHits);
            double row_total =
                row_hits + double(cc.stats.dramRowMisses);
            table.addRow(
                {name,
                 dram == std::string("banked") ? "bank/open-row"
                                               : "flat 70ns",
                 fmtF(cc_ms, 3), fmtF(str_ms, 3),
                 fmtF(str_ms / cc_ms, 3),
                 row_total > 0 ? fmtPct(row_hits / row_total)
                               : std::string("-")});
        }
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
