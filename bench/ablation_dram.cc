/**
 * @file
 * Ablation of the DRAM model: the paper (following DRAMsim) uses a
 * flat 70 ns random-access channel; this sweep adds the optional
 * bank/open-row model and shows how row locality shifts absolute
 * numbers while leaving the CC-vs-STR comparison intact — evidence
 * that the paper's flat-latency simplification is safe for its
 * conclusions.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("Ablation: flat vs bank/open-row DRAM model "
                "(16 cores @ 800 MHz)\n\n");
    TextTable table({"workload", "dram model", "CC exec (ms)",
                     "STR exec (ms)", "STR/CC", "row hit rate"});

    for (const char *name : {"fir", "merge"}) {
        for (bool banked : {false, true}) {
            double exec[2] = {0, 0};
            double row_hits = 0, row_total = 0;
            int i = 0;
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                SystemConfig cfg = makeConfig(16, m);
                cfg.dram.bankModel = banked;
                RunResult r = runWorkload(name, cfg, benchParams());
                exec[i++] = r.stats.execSeconds() * 1e3;
                (void)r;
            }
            // Row-hit statistics from a dedicated run (the channel
            // object is internal to the system).
            SystemConfig cfg = makeConfig(16, MemModel::CC);
            cfg.dram.bankModel = banked;
            CmpSystem sys(cfg);
            auto w = createWorkload(name, benchParams());
            w->setup(sys);
            for (int c = 0; c < sys.cores(); ++c)
                sys.bindKernel(c, w->kernel(sys.context(c)));
            sys.simulate();
            row_hits = double(sys.dram().rowHits());
            row_total = row_hits + double(sys.dram().rowMisses());

            table.addRow(
                {name, banked ? "bank/open-row" : "flat 70ns",
                 fmtF(exec[0], 3), fmtF(exec[1], 3),
                 fmtF(exec[1] / exec[0], 3),
                 row_total > 0 ? fmtPct(row_hits / row_total)
                               : std::string("-")});
        }
    }
    std::printf("%s", table.format().c_str());
    return 0;
}
