/**
 * @file
 * Reproduces Figure 5: "Normalized execution time as the computation
 * rate of processor cores is increased (16 cores)" — MPEG-2, FIR and
 * BitonicSort at 0.8/1.6/3.2/6.4 GHz with the on-chip network, L2
 * and memory system held constant.
 *
 * Expected shape (Section 5.3): latency-sensitive MPEG-2 lets the
 * streaming version pull ahead (~9% at 6.4 GHz in the paper);
 * bandwidth-sensitive FIR saturates the channel — CC first, due to
 * superfluous refills (streaming ~36% faster at the top); Bitonic
 * saturates the *streaming* version first because it writes more
 * (CC ~19% faster).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 5: computational-throughput scaling, 16 cores"
                "\n\n");

    SweepSpec spec("fig5_comp_throughput");
    for (const char *name : {"mpeg2", "fir", "bitonic"}) {
        const std::string base_id = std::string(name) + "/base";
        spec.point({base_id, name, makeConfig(1, MemModel::CC, 0.8),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});
        for (double ghz : {0.8, 1.6, 3.2, 6.4}) {
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                spec.point({fmt("%s/ghz=%.1f/model=%s", name, ghz,
                                to_string(m)),
                            name, makeConfig(16, m, ghz),
                            benchParams(), {base_id},
                            {{"workload", name},
                             {"ghz", fmtF(ghz, 1)},
                             {"model", to_string(m)}}});
            }
        }
    }
    SweepResult res = runBenchSweep(spec);

    for (const char *name : {"mpeg2", "fir", "bitonic"}) {
        const RunResult &base =
            res.runOf(std::string(name) + "/base");
        std::printf("%s (baseline 1-core CC @ 0.8 GHz)\n", name);

        TextTable table({"GHz", "model", "total", "useful", "sync",
                         "load", "store", "STR/CC"});
        for (double ghz : {0.8, 1.6, 3.2, 6.4}) {
            double cc_total = 0;
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                const RunResult &r =
                    res.runOf(fmt("%s/ghz=%.1f/model=%s", name, ghz,
                                  to_string(m)));
                NormBreakdown b = normalizedBreakdown(
                    r.stats, base.stats.execTicks);
                if (m == MemModel::CC)
                    cc_total = b.total();
                table.addRow(
                    {fmtF(ghz, 1), to_string(m), fmtF(b.total(), 4),
                     fmtF(b.useful, 4), fmtF(b.sync, 4),
                     fmtF(b.load, 4), fmtF(b.store, 4),
                     m == MemModel::STR
                         ? fmtF(b.total() / cc_total, 3)
                         : std::string("-")});
            }
        }
        std::printf("%s\n", table.format().c_str());
    }
    return finishBench(res);
}
