/**
 * @file
 * Reproduces Figure 8: "The effect of 'Prepare for Store' (PFS)
 * instructions on the off-chip traffic for the cache-based system,
 * normalized to a single caching core. Also shown is energy
 * consumption for FIR with 16 cores at 800 MHz."
 *
 * Expected shape (Section 5.5): eliminating superfluous refills
 * "brings the memory traffic and energy consumption of the
 * cache-based model into parity with the streaming model. For
 * MPEG-2, the memory traffic due to write misses was reduced 56%."
 *
 * One sweep serves both tables: the FIR energy rows reuse the same
 * job results as the FIR traffic rows (the pre-engine version of
 * this bench simulated those points twice).
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 8: PFS (non-allocating stores), 16 cores @ "
                "800 MHz\n\n");

    SweepSpec spec("fig8_pfs");
    for (const char *name : {"fir", "merge", "mpeg2"}) {
        const std::string base_id = std::string(name) + "/base";
        spec.point({base_id, name, makeConfig(1, MemModel::CC),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});

        SystemConfig pfs = makeConfig(16, MemModel::CC);
        pfs.pfsEnabled = true;
        spec.point({std::string(name) + "/CC", name,
                    makeConfig(16, MemModel::CC), benchParams(),
                    {base_id},
                    {{"workload", name}, {"config", "CC"}}});
        spec.point({std::string(name) + "/CC+PFS", name, pfs,
                    benchParams(), {base_id},
                    {{"workload", name}, {"config", "CC+PFS"}}});
        spec.point({std::string(name) + "/STR", name,
                    makeConfig(16, MemModel::STR), benchParams(),
                    {base_id},
                    {{"workload", name}, {"config", "STR"}}});
    }
    SweepResult res = runBenchSweep(spec);

    TextTable traffic({"Application", "config", "read", "write",
                       "total", "pfs stores"});
    double mpeg2_read_cc = 0, mpeg2_read_pfs = 0;
    for (const char *name : {"fir", "merge", "mpeg2"}) {
        const RunResult &base =
            res.runOf(std::string(name) + "/base");
        double denom =
            double(base.stats.dramReadBytes + base.stats.dramWriteBytes);
        for (const char *label : {"CC", "CC+PFS", "STR"}) {
            const RunResult &r =
                res.runOf(std::string(name) + "/" + label);
            if (name == std::string("mpeg2")) {
                if (label == std::string("CC"))
                    mpeg2_read_cc = double(r.stats.dramReadBytes);
                else if (label == std::string("CC+PFS"))
                    mpeg2_read_pfs = double(r.stats.dramReadBytes);
            }
            traffic.addRow(
                {name, label, fmtF(r.stats.dramReadBytes / denom, 3),
                 fmtF(r.stats.dramWriteBytes / denom, 3),
                 fmtF((r.stats.dramReadBytes + r.stats.dramWriteBytes) /
                          denom,
                      3),
                 fmt("%llu", (unsigned long long)
                                 r.stats.l1Total.pfsStores)});
        }
    }
    std::printf("%s\n", traffic.format().c_str());

    if (mpeg2_read_cc > 0) {
        std::printf("MPEG-2 read traffic reduced %.0f%% by PFS "
                    "(paper: write-miss traffic -56%%)\n\n",
                    100.0 * (1.0 - mpeg2_read_pfs / mpeg2_read_cc));
    }

    // FIR energy with and without PFS, from the same job results.
    TextTable energy({"FIR config", "core", "I$", "D$/LMem", "net",
                      "L2", "DRAM", "total"});
    double denom = res.runOf("fir/base").energy.totalMj();
    for (const char *label : {"CC", "CC+PFS", "STR"}) {
        const EnergyBreakdown &e =
            res.runOf(std::string("fir/") + label).energy;
        energy.addRow({label, fmtF(e.coreMj / denom, 3),
                       fmtF(e.icacheMj / denom, 3),
                       fmtF(e.dstoreMj / denom, 3),
                       fmtF(e.networkMj / denom, 3),
                       fmtF(e.l2Mj / denom, 3),
                       fmtF(e.dramMj / denom, 3),
                       fmtF(e.totalMj() / denom, 3)});
    }
    std::printf("%s", energy.format().c_str());
    return finishBench(res);
}
