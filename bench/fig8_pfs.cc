/**
 * @file
 * Reproduces Figure 8: "The effect of 'Prepare for Store' (PFS)
 * instructions on the off-chip traffic for the cache-based system,
 * normalized to a single caching core. Also shown is energy
 * consumption for FIR with 16 cores at 800 MHz."
 *
 * Expected shape (Section 5.5): eliminating superfluous refills
 * "brings the memory traffic and energy consumption of the
 * cache-based model into parity with the streaming model. For
 * MPEG-2, the memory traffic due to write misses was reduced 56%."
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("Figure 8: PFS (non-allocating stores), 16 cores @ "
                "800 MHz\n\n");

    TextTable traffic({"Application", "config", "read", "write",
                       "total", "pfs stores"});
    double mpeg2_read_cc = 0, mpeg2_read_pfs = 0;

    for (const char *name : {"fir", "merge", "mpeg2"}) {
        RunResult base = runWorkload(name, makeConfig(1, MemModel::CC),
                                     benchParams());
        double denom =
            double(base.stats.dramReadBytes + base.stats.dramWriteBytes);

        auto addRow = [&](const char *label, SystemConfig cfg,
                          double *read_out = nullptr) {
            RunResult r = runWorkload(name, cfg, benchParams());
            if (read_out)
                *read_out = double(r.stats.dramReadBytes);
            traffic.addRow(
                {name, label, fmtF(r.stats.dramReadBytes / denom, 3),
                 fmtF(r.stats.dramWriteBytes / denom, 3),
                 fmtF((r.stats.dramReadBytes + r.stats.dramWriteBytes) /
                          denom,
                      3),
                 fmt("%llu", (unsigned long long)
                                 r.stats.l1Total.pfsStores)});
        };

        addRow("CC", makeConfig(16, MemModel::CC),
               name == std::string("mpeg2") ? &mpeg2_read_cc : nullptr);
        SystemConfig pfs = makeConfig(16, MemModel::CC);
        pfs.pfsEnabled = true;
        addRow("CC+PFS", pfs,
               name == std::string("mpeg2") ? &mpeg2_read_pfs
                                            : nullptr);
        addRow("STR", makeConfig(16, MemModel::STR));
    }
    std::printf("%s\n", traffic.format().c_str());

    if (mpeg2_read_cc > 0) {
        std::printf("MPEG-2 read traffic reduced %.0f%% by PFS "
                    "(paper: write-miss traffic -56%%)\n\n",
                    100.0 * (1.0 - mpeg2_read_pfs / mpeg2_read_cc));
    }

    // FIR energy with and without PFS.
    TextTable energy({"FIR config", "core", "I$", "D$/LMem", "net",
                      "L2", "DRAM", "total"});
    RunResult base = runWorkload("fir", makeConfig(1, MemModel::CC),
                                 benchParams());
    double denom = base.energy.totalMj();
    auto addEnergy = [&](const char *label, SystemConfig cfg) {
        RunResult r = runWorkload("fir", cfg, benchParams());
        const EnergyBreakdown &e = r.energy;
        energy.addRow({label, fmtF(e.coreMj / denom, 3),
                       fmtF(e.icacheMj / denom, 3),
                       fmtF(e.dstoreMj / denom, 3),
                       fmtF(e.networkMj / denom, 3),
                       fmtF(e.l2Mj / denom, 3),
                       fmtF(e.dramMj / denom, 3),
                       fmtF(e.totalMj() / denom, 3)});
    };
    addEnergy("CC", makeConfig(16, MemModel::CC));
    SystemConfig pfs = makeConfig(16, MemModel::CC);
    pfs.pfsEnabled = true;
    addEnergy("CC+PFS", pfs);
    addEnergy("STR", makeConfig(16, MemModel::STR));
    std::printf("%s", energy.format().c_str());
    return 0;
}
