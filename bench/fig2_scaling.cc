/**
 * @file
 * Reproduces Figure 2: "Execution times for the two memory models as
 * the number of cores is increased, normalized to a single caching
 * core" — the paper's headline comparison. For every application it
 * prints, per core count and model, the normalized execution time
 * broken into Useful / Sync / Load / Store.
 *
 * Expected shapes (Section 5.1): the seven compute-bound apps are
 * nearly identical across models; 179.art, FIR, MergeSort show CC
 * load stalls that STR double-buffering removes; BitonicSort STR
 * loses at 16 cores; H.264 and MergeSort grow Sync components.
 *
 * Execution goes through the sweep engine: per workload, one 1-core
 * CC baseline job plus the {cores} x {model} points that depend on
 * it, all scheduled on the worker pool.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 2: normalized execution time breakdown "
                "(800 MHz, no prefetching)\n\n");

    SweepSpec spec("fig2_scaling");
    for (const auto &name : workloadNames()) {
        const std::string base_id = name + "/base";
        spec.point({base_id, name, makeConfig(1, MemModel::CC),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});
        for (int cores : {2, 4, 8, 16}) {
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                spec.point({fmt("%s/cores=%d/model=%s", name.c_str(),
                                cores, to_string(m)),
                            name, makeConfig(cores, m), benchParams(),
                            {base_id},
                            {{"workload", name},
                             {"cores", fmt("%d", cores)},
                             {"model", to_string(m)}}});
            }
        }
    }
    SweepResult res = runBenchSweep(spec);

    for (const auto &name : workloadNames()) {
        const RunResult &base = res.runOf(name + "/base");
        std::printf("%s (baseline 1-core CC: %.3f ms)%s\n",
                    name.c_str(), base.stats.execSeconds() * 1e3,
                    base.verified ? "" : " [VERIFY FAILED]");

        TextTable table({"CPUs", "model", "total", "useful", "sync",
                         "load", "store", "verified"});
        for (int cores : {2, 4, 8, 16}) {
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                const RunResult &r = res.runOf(
                    fmt("%s/cores=%d/model=%s", name.c_str(), cores,
                        to_string(m)));
                NormBreakdown b = normalizedBreakdown(
                    r.stats, base.stats.execTicks);
                table.addRow({fmt("%d", cores), to_string(m),
                              fmtF(b.total(), 3), fmtF(b.useful, 3),
                              fmtF(b.sync, 3), fmtF(b.load, 3),
                              fmtF(b.store, 3),
                              r.verified ? "yes" : "NO"});
            }
        }
        std::printf("%s\n", table.format().c_str());
    }
    return finishBench(res);
}
