/**
 * @file
 * Ablation for DESIGN.md decision #2: interconnect provisioning.
 * Sweeps the cluster-bus width and the crossbar port width to show
 * that the paper's Table 2 configuration leaves the hierarchical
 * interconnect un-bottlenecked (the comparison is about the memory
 * models, not about starving the network), and to show where an
 * under-provisioned network would start to distort results.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Ablation: interconnect width sweep (16 cores CC @ "
                "3.2 GHz, bandwidth-hungry FIR)\n\n");

    SweepSpec spec("ablation_interconnect");
    spec.base(makeConfig(16, MemModel::CC, 3.2))
        .baseParams(benchParams())
        .workloads({"fir"})
        .axis("bus", {8, 16, 32, 64},
              [](SystemConfig &cfg, double v) {
                  cfg.net.busWidthBytes = std::uint32_t(v);
              },
              0)
        .axis("xbar", {8, 16},
              [](SystemConfig &cfg, double v) {
                  cfg.net.xbarWidthBytes = std::uint32_t(v);
              },
              0);
    SweepResult res = runBenchSweep(spec);

    TextTable table({"bus bytes", "xbar bytes", "exec (ms)",
                     "bus busy frac", "verified"});
    for (std::uint32_t bus : {8u, 16u, 32u, 64u}) {
        for (std::uint32_t xbar : {8u, 16u}) {
            const RunResult &r =
                res.runOf(fmt("fir/bus=%u/xbar=%u", bus, xbar));
            SystemConfig cfg = makeConfig(16, MemModel::CC, 3.2);
            // Bus utilization from aggregate bytes and beat time.
            double busy =
                double(r.stats.busBytes / bus) *
                double(cfg.net.busBeat) /
                (double(r.stats.execTicks) * cfg.clusters());
            table.addRow({fmt("%u", bus), fmt("%u", xbar),
                          fmtF(r.stats.execSeconds() * 1e3, 4),
                          fmtPct(busy),
                          r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
