/**
 * @file
 * Reproduces Figure 4: "Energy consumption for the cache-based and
 * streaming systems with 16 CPUs, normalized to a single caching
 * core" — per-component breakdown (core, I-cache, D-cache/local
 * memory, network, L2, DRAM) for FEM, MPEG-2, FIR and BitonicSort.
 *
 * Expected shape (Section 5.2): where streaming eliminates
 * superfluous refills it saves 10-25% energy, "the energy
 * differential in nearly every case comes from the DRAM system";
 * the D-cache-vs-local-store difference is insignificant because
 * per-access energy is dominated by off-chip accesses.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv);
    std::printf("Figure 4: energy breakdown, 16 CPUs @ 800 MHz, "
                "normalized to one caching core\n\n");

    SweepSpec spec("fig4_energy");
    for (const char *name : {"fem", "mpeg2", "fir", "bitonic"}) {
        const std::string base_id = std::string(name) + "/base";
        spec.point({base_id, name, makeConfig(1, MemModel::CC),
                    benchParams(), {},
                    {{"workload", name}, {"role", "baseline"}}});
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            spec.point({fmt("%s/model=%s", name, to_string(m)), name,
                        makeConfig(16, m), benchParams(), {base_id},
                        {{"workload", name}, {"model", to_string(m)}}});
        }
    }
    SweepResult res = runBenchSweep(spec);

    TextTable table({"Application", "model", "core", "I$", "D$/LMem",
                     "net", "L2", "DRAM", "total", "verified"});
    for (const char *name : {"fem", "mpeg2", "fir", "bitonic"}) {
        double denom =
            res.runOf(std::string(name) + "/base").energy.totalMj();
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            const RunResult &r =
                res.runOf(fmt("%s/model=%s", name, to_string(m)));
            const EnergyBreakdown &e = r.energy;
            table.addRow(
                {name, to_string(m), fmtF(e.coreMj / denom, 3),
                 fmtF(e.icacheMj / denom, 3),
                 fmtF(e.dstoreMj / denom, 3),
                 fmtF(e.networkMj / denom, 3), fmtF(e.l2Mj / denom, 3),
                 fmtF(e.dramMj / denom, 3),
                 fmtF(e.totalMj() / denom, 3),
                 r.verified ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.format().c_str());
    return finishBench(res);
}
