/**
 * @file
 * Tests for the modelled-hardware extensions: local-store FIFO mode,
 * the Section 7 hybrid bulk-prefetch primitive, the optional
 * bank/open-row DRAM model, and the stats export formats.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

//
// Local-store FIFO mode.
//

TEST(LsFifo, PushPopRoundTrip)
{
    LocalStore ls(1024);
    ls.fifoConfig(0, 128, 64);
    std::uint8_t in[16], out[16];
    for (int i = 0; i < 16; ++i)
        in[i] = std::uint8_t(i * 3);
    EXPECT_TRUE(ls.fifoPush(0, in, 16));
    EXPECT_EQ(ls.fifoDepth(0), 16u);
    EXPECT_TRUE(ls.fifoPop(0, out, 16));
    EXPECT_EQ(std::memcmp(in, out, 16), 0);
    EXPECT_EQ(ls.fifoDepth(0), 0u);
}

TEST(LsFifo, WrapsAroundItsRegion)
{
    LocalStore ls(256);
    ls.fifoConfig(1, 0, 24);
    std::uint8_t buf[16];
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 16; ++i)
            buf[i] = std::uint8_t(round * 16 + i);
        ASSERT_TRUE(ls.fifoPush(1, buf, 16));
        std::uint8_t got[16];
        ASSERT_TRUE(ls.fifoPop(1, got, 16));
        EXPECT_EQ(std::memcmp(buf, got, 16), 0);
    }
}

TEST(LsFifo, RefusesOverflowAndUnderflow)
{
    LocalStore ls(256);
    ls.fifoConfig(0, 0, 8);
    std::uint8_t buf[12] = {};
    EXPECT_FALSE(ls.fifoPush(0, buf, 12)); // larger than region
    EXPECT_TRUE(ls.fifoPush(0, buf, 8));
    EXPECT_FALSE(ls.fifoPush(0, buf, 1)); // full
    std::uint8_t out[12];
    EXPECT_TRUE(ls.fifoPop(0, out, 8));
    EXPECT_FALSE(ls.fifoPop(0, out, 1)); // empty
}

TEST(LsFifo, IndependentChannels)
{
    LocalStore ls(256);
    ls.fifoConfig(0, 0, 32);
    ls.fifoConfig(1, 32, 32);
    std::uint8_t a = 1, b = 2, got = 0;
    EXPECT_TRUE(ls.fifoPush(0, &a, 1));
    EXPECT_TRUE(ls.fifoPush(1, &b, 1));
    EXPECT_TRUE(ls.fifoPop(1, &got, 1));
    EXPECT_EQ(got, 2);
    EXPECT_TRUE(ls.fifoPop(0, &got, 1));
    EXPECT_EQ(got, 1);
}

//
// Hybrid bulk prefetch.
//

KernelTask
prefetchedScan(Context &ctx, Addr base, int lines, Tick *stall_out)
{
    co_await ctx.prefetchBlock(base, std::uint32_t(lines) * 32);
    // Give the prefetches time to land.
    co_await ctx.compute(1000);
    for (int i = 0; i < lines; ++i)
        co_await ctx.load<std::uint32_t>(base + Addr(i) * 32);
    *stall_out = ctx.core().stats().loadStallTicks;
}

KernelTask
coldScan(Context &ctx, Addr base, int lines, Tick *stall_out)
{
    co_await ctx.compute(1000);
    for (int i = 0; i < lines; ++i)
        co_await ctx.load<std::uint32_t>(base + Addr(i) * 32);
    *stall_out = ctx.core().stats().loadStallTicks;
}

TEST(HybridPrefetch, BulkPrefetchHidesScanLatency)
{
    Tick stall_pf = 0, stall_cold = 0;
    {
        SystemConfig cfg = makeConfig(1, MemModel::CC);
        CmpSystem sys(cfg);
        Addr a = sys.mem().alloc(64 * 32);
        sys.bindKernel(0, prefetchedScan(sys.context(0), a, 64,
                                         &stall_pf));
        sys.simulate();
        EXPECT_GT(sys.collectStats().l1Total.prefetchesIssued, 0u);
    }
    {
        SystemConfig cfg = makeConfig(1, MemModel::CC);
        CmpSystem sys(cfg);
        Addr a = sys.mem().alloc(64 * 32);
        sys.bindKernel(0, coldScan(sys.context(0), a, 64,
                                   &stall_cold));
        sys.simulate();
    }
    EXPECT_LT(stall_pf, stall_cold / 4);
}

//
// Bank/open-row DRAM model.
//

TEST(DramBankModel, RowHitsAreFaster)
{
    DramConfig cfg;
    cfg.bankModel = true;
    DramChannel d(cfg);
    Tick miss = d.read(0, 0x0, 32) - d.occupancyFor(32);
    EXPECT_EQ(miss, cfg.accessLatency);
    // Same row, adjacent line: open-row hit.
    Tick t1 = d.nextFreeHint();
    Tick hit = d.read(t1, 0x20, 32) - t1 - d.occupancyFor(32);
    EXPECT_EQ(hit, cfg.rowHitLatency);
    EXPECT_EQ(d.rowHits(), 1u);
    EXPECT_EQ(d.rowMisses(), 1u);
}

TEST(DramBankModel, BankConflictReopensRow)
{
    DramConfig cfg;
    cfg.bankModel = true;
    DramChannel d(cfg);
    Addr row_span = Addr(cfg.rowBytes) * cfg.banks;
    d.read(0, 0x0, 32);
    d.read(0, row_span, 32); // same bank, different row
    d.read(0, 0x0, 32);      // original row was closed
    EXPECT_EQ(d.rowHits(), 0u);
    EXPECT_EQ(d.rowMisses(), 3u);
}

TEST(DramBankModel, FlatModelUnaffected)
{
    DramChannel d(DramConfig{});
    d.read(0, 0x0, 32);
    d.read(0, 0x20, 32);
    EXPECT_EQ(d.rowHits(), 0u);
    EXPECT_EQ(d.rowMisses(), 0u);
}

TEST(DramBankModel, WorkloadStillVerifies)
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    cfg.dram.bankModel = true;
    WorkloadParams p;
    p.scale = 0;

    // Run manually so the channel's row statistics are observable.
    CmpSystem sys(cfg);
    auto w = createWorkload("fir", p);
    w->setup(sys);
    sys.bindKernel(0, w->kernel(sys.context(0)));
    Tick banked = sys.simulate();
    EXPECT_TRUE(w->verify(sys));
    // FIR's sequential streams see open-row hits, though its input
    // and output streams land in the same banks (the arrays are a
    // multiple of the bank span apart) and ping-pong rows -- real
    // DRAM behaviour the flat model cannot show.
    EXPECT_GT(sys.dram().rowHits(), 1000u);

    RunResult flat =
        runWorkload("fir", makeConfig(1, MemModel::CC), p);
    EXPECT_LT(banked, flat.stats.execTicks);
}

//
// Stats export.
//

TEST(StatsExport, JsonAndCsvShapes)
{
    StatSet s;
    s.set("alpha", 1.5);
    s.set("beta", 2);
    EXPECT_EQ(s.toJson(), "{\"alpha\": 1.5, \"beta\": 2}");
    EXPECT_EQ(s.toCsv(), "alpha,beta\n1.5,2\n");
}

} // namespace
} // namespace cmpmem
