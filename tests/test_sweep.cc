/**
 * @file
 * Sweep-engine tests: spec expansion (cross-product, axes, tags,
 * baselines), the job-graph executor (dependency ordering under the
 * pool, failure isolation, log capture), JSON artifact validity, and
 * the determinism contract — parallel and serial execution of the
 * same spec produce bit-identical simulated tick counts per point
 * (the SweepIntegration suite, labelled "long" in ctest).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "cmpmem.hh"
#include "sim/log.hh"

namespace cmpmem
{
namespace
{

/**
 * Minimal recursive-descent JSON syntax checker — enough to assert
 * the artifacts are machine-readable without a JSON dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return i == s.size();
    }

  private:
    const std::string &s;
    std::size_t i = 0;

    void
    ws()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    lit(const char *t)
    {
        std::size_t n = std::string::traits_type::length(t);
        if (s.compare(i, n, t) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    str()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }

    bool
    object()
    {
        ++i; // '{'
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        for (;;) {
            ws();
            if (!str())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            ws();
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        ++i; // '['
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        for (;;) {
            ws();
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }

    bool
    value()
    {
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return str();
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }
};

/** A custom-run job that records its scheduling order. */
SweepJob
orderedJob(const std::string &id, std::atomic<int> &seq,
           std::vector<std::string> deps, int *out,
           bool fail = false, bool verified = true)
{
    SweepJob j;
    j.id = id;
    j.deps = std::move(deps);
    j.run = [&seq, out, fail, verified] {
        *out = seq.fetch_add(1);
        if (fail)
            throw std::runtime_error("injected failure");
        RunResult r;
        r.stats.execTicks = 42;
        r.verified = verified;
        return r;
    };
    return j;
}

TEST(SweepSpec, CrossProductExpansion)
{
    SweepSpec spec("t");
    spec.base(makeConfig(16, MemModel::CC))
        .workloads({"fir", "merge"})
        .axis("cores", {2, 4},
              [](SystemConfig &cfg, double v) { cfg.cores = int(v); },
              0)
        .modelAxis();

    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
    // Workload outermost, then axes in insertion order.
    EXPECT_EQ(jobs[0].id, "fir/cores=2/model=CC");
    EXPECT_EQ(jobs[1].id, "fir/cores=2/model=STR");
    EXPECT_EQ(jobs[2].id, "fir/cores=4/model=CC");
    EXPECT_EQ(jobs[4].id, "merge/cores=2/model=CC");
    EXPECT_EQ(jobs[7].id, "merge/cores=4/model=STR");

    EXPECT_EQ(jobs[3].workload, "fir");
    EXPECT_EQ(jobs[3].cfg.cores, 4);
    EXPECT_EQ(jobs[3].cfg.model, MemModel::STR);
    EXPECT_EQ(jobs[3].tags.at("workload"), "fir");
    EXPECT_EQ(jobs[3].tags.at("cores"), "4");
    EXPECT_EQ(jobs[3].tags.at("model"), "STR");
    EXPECT_TRUE(jobs[3].deps.empty());
}

TEST(SweepSpec, BaselineMakesCrossJobsDependOnIt)
{
    SweepSpec spec("t");
    spec.workloads({"fir"}).modelAxis();
    spec.baseline({"fir/base", "fir", makeConfig(1, MemModel::CC),
                   {}, {}, {}, {}});

    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].id, "fir/base");
    EXPECT_TRUE(jobs[0].deps.empty());
    for (std::size_t i = 1; i < jobs.size(); ++i) {
        ASSERT_EQ(jobs[i].deps.size(), 1u);
        EXPECT_EQ(jobs[i].deps[0], "fir/base");
    }
}

TEST(SweepSpec, ExplicitPointsRideAlong)
{
    SweepSpec spec("t");
    spec.workloads({"fir"});
    SweepJob p;
    p.id = "extra";
    p.workload = "merge";
    spec.point(p);
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, "fir");
    EXPECT_EQ(jobs[1].id, "extra");
}

// EXPECT_DEATH wrappers (commas in braced initializers confuse the
// macro, so each bad graph is built in a helper).
void
graphWithDuplicateIds()
{
    std::atomic<int> seq{0};
    int o = 0;
    std::vector<SweepJob> jobs = {orderedJob("a", seq, {}, &o),
                                  orderedJob("a", seq, {}, &o)};
    runJobs("t", std::move(jobs));
}

void
graphWithUnknownDep()
{
    std::atomic<int> seq{0};
    int o = 0;
    std::vector<SweepJob> jobs = {orderedJob("a", seq, {"ghost"}, &o)};
    runJobs("t", std::move(jobs));
}

void
graphWithCycle()
{
    std::atomic<int> seq{0};
    int a = 0, b = 0;
    std::vector<SweepJob> jobs = {orderedJob("a", seq, {"b"}, &a),
                                  orderedJob("b", seq, {"a"}, &b)};
    runJobs("t", std::move(jobs));
}

void
graphWithEmptyJob()
{
    SweepJob j;
    j.id = "empty";
    runJobs("t", {j});
}

TEST(SweepExecutorDeath, RejectsBadGraphs)
{
    EXPECT_DEATH(graphWithDuplicateIds(), "duplicate");
    EXPECT_DEATH(graphWithUnknownDep(), "unknown");
    EXPECT_DEATH(graphWithCycle(), "cycle");
    EXPECT_DEATH(graphWithEmptyJob(), "neither");
}

TEST(SweepExecutor, DependencyOrderingHoldsUnderPool)
{
    // One baseline, a fan of dependents, and a chain — run on
    // several workers and check every constraint from the recorded
    // global completion order.
    std::atomic<int> seq{0};
    int base = -1, chain1 = -1, chain2 = -1;
    int fan[6] = {-1, -1, -1, -1, -1, -1};

    std::vector<SweepJob> jobs;
    jobs.push_back(orderedJob("chain1", seq, {"base"}, &chain1));
    jobs.push_back(orderedJob("chain2", seq, {"chain1"}, &chain2));
    for (int i = 0; i < 6; ++i) {
        jobs.push_back(orderedJob(fmt("fan%d", i), seq, {"base"},
                                  &fan[i]));
    }
    jobs.push_back(orderedJob("base", seq, {}, &base));

    SweepOptions opts;
    opts.jobs = 4;
    opts.echoLogs = false;
    // The recorded order lives in this process's memory; a forked
    // sandbox (CMPMEM_ISOLATE=1 in the environment) would strand the
    // side effects in the child. Ordering semantics are isolation-
    // independent, so pin the in-process path.
    opts.isolate = SweepIsolate::Off;
    SweepResult res = runJobs("order", std::move(jobs), opts);

    EXPECT_TRUE(res.allRan());
    EXPECT_EQ(base, 0) << "baseline must run before every dependent";
    for (int i = 0; i < 6; ++i)
        EXPECT_GT(fan[i], base);
    EXPECT_GT(chain1, base);
    EXPECT_GT(chain2, chain1);

    // Results come back in job-graph order, not completion order.
    EXPECT_EQ(res.jobs()[0].job.id, "chain1");
    EXPECT_EQ(res.jobs().back().job.id, "base");
}

TEST(SweepExecutor, FailingJobDoesNotPoisonSiblings)
{
    std::atomic<int> seq{0};
    int a = -1, b = -1, c = -1, d = -1;
    std::vector<SweepJob> jobs = {
        orderedJob("ok1", seq, {}, &a),
        orderedJob("throws", seq, {}, &b, /*fail=*/true),
        orderedJob("unverified", seq, {}, &c, false,
                   /*verified=*/false),
        // A dependent of the failing job still executes (deps are
        // ordering constraints, not success gates).
        orderedJob("after-throws", seq, {"throws"}, &d),
    };

    SweepOptions opts;
    opts.jobs = 2;
    opts.echoLogs = false;
    // In-process side effects again (see above): keep the sandbox
    // off so the sequence counters are observable.
    opts.isolate = SweepIsolate::Off;
    SweepResult res = runJobs("fail", std::move(jobs), opts);

    EXPECT_TRUE(res.at("ok1").ran);
    EXPECT_TRUE(res.at("ok1").run.verified);
    EXPECT_FALSE(res.at("throws").ran);
    EXPECT_NE(res.at("throws").error.find("injected"),
              std::string::npos);
    EXPECT_TRUE(res.at("unverified").ran);
    EXPECT_FALSE(res.at("unverified").run.verified);
    EXPECT_TRUE(res.at("after-throws").ran);
    EXPECT_GT(d, b);

    EXPECT_FALSE(res.allRan());
    EXPECT_FALSE(res.allVerified());
    EXPECT_EQ(res.find("no-such-job"), nullptr);
}

TEST(SweepExecutor, CapturesWarningsPerJob)
{
    SweepJob j;
    j.id = "warns";
    j.run = [] {
        warn("from inside job %d", 7);
        inform("status %s", "line");
        return RunResult{};
    };
    SweepOptions opts;
    opts.jobs = 1;
    opts.echoLogs = false;
    SweepResult res = runJobs("logs", {j}, opts);
    const std::string &log = res.at("warns").log;
    EXPECT_NE(log.find("warn: from inside job 7"), std::string::npos);
    EXPECT_NE(log.find("info: status line"), std::string::npos);
}

TEST(SweepExecutor, QuietFlagSuppressesCapture)
{
    setQuiet(true);
    SweepJob j;
    j.id = "quiet";
    j.run = [] {
        warn("should be dropped");
        return RunResult{};
    };
    SweepOptions opts;
    opts.jobs = 1;
    SweepResult res = runJobs("quiet", {j}, opts);
    setQuiet(false);
    EXPECT_TRUE(res.at("quiet").log.empty());
    EXPECT_FALSE(isQuiet());
}

TEST(LogCapture, NestsAndRestores)
{
    LogCapture outer;
    warn("outer %d", 1);
    {
        LogCapture inner;
        warn("inner");
        EXPECT_NE(inner.text().find("inner"), std::string::npos);
        EXPECT_EQ(inner.text().find("outer"), std::string::npos);
    }
    warn("outer %d", 2);
    EXPECT_NE(outer.text().find("outer 1"), std::string::npos);
    EXPECT_NE(outer.text().find("outer 2"), std::string::npos);
    EXPECT_EQ(outer.text().find("inner"), std::string::npos);
}

TEST(SweepOptionsEnv, WorkerCountResolution)
{
    EXPECT_EQ(sweepWorkerCount(3), 3);

    setenv("CMPMEM_JOBS", "5", 1);
    EXPECT_EQ(sweepWorkerCount(0), 5);
    unsetenv("CMPMEM_JOBS");

    EXPECT_GE(sweepWorkerCount(0), 1);
}

TEST(SweepJson, ArtifactIsValidAndCarriesTheSchema)
{
    WorkloadParams tiny;
    tiny.scale = 0;
    SweepSpec spec("json_check");
    spec.base(makeConfig(2, MemModel::CC))
        .baseParams(tiny)
        .workloads({"fir"})
        .modelAxis();
    SweepOptions opts;
    opts.jobs = 2;
    SweepResult res = runSweep(spec, opts);

    std::string json = res.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"sweep\": \"json_check\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"scale\": "), std::string::npos);
    EXPECT_NE(json.find("\"bench_scale_div\": "), std::string::npos);
    EXPECT_NE(json.find("\"stats_digest\": \"fnv1a:"),
              std::string::npos);
    EXPECT_NE(json.find("\"id\": \"fir/model=CC\""),
              std::string::npos);
    EXPECT_NE(json.find("\"exec_ticks\""), std::string::npos);
    EXPECT_NE(json.find("\"dram.read_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"total_mj\""), std::string::npos);
    EXPECT_NE(json.find("\"host_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"verified\": true"), std::string::npos);
}

TEST(SweepJson, EscapesAndEmptySweep)
{
    SweepJob j;
    j.id = "we\"ird\\id\n";
    j.run = [] { return RunResult{}; };
    SweepOptions opts;
    opts.echoLogs = false;
    SweepResult res = runJobs("esc", {j}, opts);
    EXPECT_TRUE(JsonChecker(res.toJson()).valid()) << res.toJson();

    SweepResult empty = runJobs("empty", {}, opts);
    EXPECT_TRUE(JsonChecker(empty.toJson()).valid());
    EXPECT_EQ(empty.jobs().size(), 0u);
}

/**
 * The determinism contract (labelled "long" in ctest): for a fixed
 * spec, per-point simulated state is bit-identical no matter how
 * many workers execute the graph. Uses real workloads across both
 * models and several configurations.
 */
TEST(SweepIntegration, ParallelMatchesSerialBitIdentical)
{
    WorkloadParams tiny;
    tiny.scale = 0;

    auto makeSpec = [&] {
        SweepSpec spec("determinism");
        spec.base(makeConfig(4, MemModel::CC))
            .baseParams(tiny)
            .workloads({"fir", "merge", "mpeg2"})
            .axis("cores", {1, 2, 4},
                  [](SystemConfig &cfg, double v) {
                      cfg.cores = int(v);
                  },
                  0)
            .modelAxis();
        return spec;
    };

    SweepOptions serial;
    serial.jobs = 1;
    serial.echoLogs = false;
    SweepOptions parallel;
    parallel.jobs = 4;
    parallel.echoLogs = false;

    SweepResult a = runSweep(makeSpec(), serial);
    SweepResult b = runSweep(makeSpec(), parallel);

    ASSERT_EQ(a.jobs().size(), b.jobs().size());
    ASSERT_EQ(a.jobs().size(), 3u * 3u * 2u);
    for (const auto &ja : a.jobs()) {
        const JobResult &jb = b.at(ja.job.id);
        EXPECT_TRUE(ja.ran);
        EXPECT_TRUE(jb.ran);
        EXPECT_EQ(ja.run.stats.execTicks, jb.run.stats.execTicks)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.dramReadBytes,
                  jb.run.stats.dramReadBytes)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.dramWriteBytes,
                  jb.run.stats.dramWriteBytes)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.l1Total.writebacks,
                  jb.run.stats.l1Total.writebacks)
            << ja.job.id;
        EXPECT_EQ(ja.run.verified, jb.run.verified) << ja.job.id;
    }
}

} // namespace
} // namespace cmpmem
