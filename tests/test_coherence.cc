/**
 * @file
 * MESI coherence tests: L1 controller + fabric transitions,
 * cache-to-cache supply within and across clusters, upgrades, PFS
 * allocation, snoop stalls, and randomized protocol invariants
 * (single-writer / multiple-reader).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/dram.hh"
#include "mem/l1_controller.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace cmpmem
{
namespace
{

class CoherenceFixture : public testing::Test
{
  protected:
    void
    build(int cores, bool coherent = true)
    {
        dram = std::make_unique<DramChannel>(DramConfig{});
        l2 = std::make_unique<L2Cache>(L2Config{}, *dram);
        fabric = std::make_unique<CoherenceFabric>(
            InterconnectConfig{}, cores, 4, *l2, *dram);
        for (int i = 0; i < cores; ++i) {
            L1Config cfg;
            cfg.coherent = coherent;
            l1s.push_back(std::make_unique<L1Controller>(
                i, cfg, eq, *fabric));
        }
    }

    /** Issue a blocking load and run to completion. */
    void
    load(int core, Addr a)
    {
        bool hit = l1s[core]->load(eq.now(), a, [](Tick) {});
        (void)hit;
        eq.run();
    }

    void
    store(int core, Addr a, bool pfs = false)
    {
        bool ok = l1s[core]->store(eq.now(), a, pfs, [](Tick) {});
        (void)ok;
        eq.run();
    }

    MesiState
    state(int core, Addr a)
    {
        const auto *line = l1s[core]->tags().lookup(a);
        return line ? line->state : MesiState::Invalid;
    }

    EventQueue eq;
    std::unique_ptr<DramChannel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CoherenceFabric> fabric;
    std::vector<std::unique_ptr<L1Controller>> l1s;
};

TEST_F(CoherenceFixture, LoadMissFillsExclusiveWhenAlone)
{
    build(4);
    load(0, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Exclusive);
    EXPECT_EQ(l1s[0]->counters().loadMisses, 1u);
    EXPECT_EQ(l1s[0]->counters().fills, 1u);
}

TEST_F(CoherenceFixture, SecondReaderDowngradesToShared)
{
    build(4);
    load(0, 0x1000);
    load(1, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Shared);
    EXPECT_EQ(state(1, 0x1000), MesiState::Shared);
    EXPECT_EQ(l1s[0]->counters().suppliesProvided, 1u);
    EXPECT_GE(fabric->counters().localSupplies, 1u);
}

TEST_F(CoherenceFixture, StoreInvalidatesOtherCopies)
{
    build(4);
    load(0, 0x1000);
    load(1, 0x1000);
    store(2, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Invalid);
    EXPECT_EQ(state(1, 0x1000), MesiState::Invalid);
    EXPECT_EQ(state(2, 0x1000), MesiState::Modified);
    EXPECT_GE(l1s[0]->counters().invalidationsReceived, 1u);
}

TEST_F(CoherenceFixture, StoreHitOnExclusiveSilentlyUpgrades)
{
    build(4);
    load(0, 0x1000);
    auto upgrades_before = fabric->counters().upgrades;
    store(0, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Modified);
    // E -> M needs no bus transaction.
    EXPECT_EQ(fabric->counters().upgrades, upgrades_before);
    EXPECT_EQ(l1s[0]->counters().storeHits, 1u);
}

TEST_F(CoherenceFixture, StoreToSharedIssuesUpgrade)
{
    build(4);
    load(0, 0x1000);
    load(1, 0x1000);
    store(0, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Modified);
    EXPECT_EQ(state(1, 0x1000), MesiState::Invalid);
    EXPECT_GE(fabric->counters().upgrades, 1u);
}

TEST_F(CoherenceFixture, DirtySupplierWritesBackOnDowngrade)
{
    build(4);
    store(0, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Modified);
    auto wb_before = fabric->counters().writebacks;
    load(1, 0x1000);
    EXPECT_EQ(state(0, 0x1000), MesiState::Shared);
    EXPECT_EQ(state(1, 0x1000), MesiState::Shared);
    EXPECT_EQ(fabric->counters().writebacks, wb_before + 1);
}

TEST_F(CoherenceFixture, RemoteClusterSupply)
{
    build(8); // clusters {0..3} and {4..7}
    store(0, 0x1000);
    load(5, 0x1000);
    EXPECT_EQ(state(5, 0x1000), MesiState::Shared);
    EXPECT_GE(fabric->counters().remoteSupplies, 1u);
}

TEST_F(CoherenceFixture, PfsStoreMissAvoidsDramRead)
{
    build(4);
    auto dram_reads = dram->readBytes();
    store(0, 0x1000, true);
    EXPECT_EQ(state(0, 0x1000), MesiState::Modified);
    EXPECT_EQ(dram->readBytes(), dram_reads);
    EXPECT_EQ(l1s[0]->counters().pfsStores, 1u);
}

TEST_F(CoherenceFixture, PfsStillInvalidatesSharers)
{
    build(4);
    load(1, 0x1000);
    store(0, 0x1000, true);
    EXPECT_EQ(state(1, 0x1000), MesiState::Invalid);
    EXPECT_EQ(state(0, 0x1000), MesiState::Modified);
}

TEST_F(CoherenceFixture, NormalStoreMissReadsDram)
{
    build(4);
    auto dram_reads = dram->readBytes();
    store(0, 0x1000, false);
    EXPECT_GT(dram->readBytes(), dram_reads);
}

TEST_F(CoherenceFixture, SnoopsChargeStallCycles)
{
    build(4);
    load(0, 0x1000);
    load(1, 0x1000); // snoops core 0 (and 2, 3)
    EXPECT_GE(l1s[0]->takeSnoopStallCycles(), 1u);
    EXPECT_EQ(l1s[0]->takeSnoopStallCycles(), 0u); // consumed
}

TEST_F(CoherenceFixture, DirtyEvictionWritesBack)
{
    build(1);
    // 32 KB 2-way, 32 B lines -> 512 sets; same-set stride 16 KB.
    const Addr stride = 16 * 1024;
    store(0, 0x0);
    load(0, stride);
    auto wb_before = l1s[0]->counters().writebacks;
    load(0, 2 * stride); // evicts the dirty line at 0
    EXPECT_EQ(l1s[0]->counters().writebacks, wb_before + 1);
    EXPECT_EQ(state(0, 0x0), MesiState::Invalid);
}

TEST_F(CoherenceFixture, StoreBufferMergesSameLine)
{
    build(1);
    // First store misses and parks in the buffer; stores to the same
    // line coalesce instead of re-issuing.
    bool ok1 = l1s[0]->store(0, 0x2000, false, [](Tick) {});
    bool ok2 = l1s[0]->store(0, 0x2004, false, [](Tick) {});
    EXPECT_TRUE(ok1);
    EXPECT_TRUE(ok2);
    EXPECT_EQ(l1s[0]->counters().storeMisses, 1u);
    EXPECT_EQ(l1s[0]->counters().storeMerged, 1u);
    eq.run();
    EXPECT_EQ(state(0, 0x2000), MesiState::Modified);
}

TEST_F(CoherenceFixture, StoreBufferFullBlocksCore)
{
    build(1);
    // Fill all 8 store-buffer entries with distinct line misses.
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(
            l1s[0]->store(0, Addr(i) * 0x1000, false, [](Tick) {}));
    }
    bool accepted_late = false;
    bool ok = l1s[0]->store(0, 0x9000, false,
                            [&](Tick) { accepted_late = true; });
    EXPECT_FALSE(ok); // buffer full: core must wait
    eq.run();
    EXPECT_TRUE(accepted_late);
    EXPECT_EQ(state(0, 0x9000), MesiState::Modified);
}

TEST_F(CoherenceFixture, MshrMergesConcurrentLoads)
{
    build(1);
    int resumes = 0;
    l1s[0]->load(0, 0x3000, [&](Tick) { ++resumes; });
    l1s[0]->load(0, 0x3008, [&](Tick) { ++resumes; }); // same line
    EXPECT_EQ(l1s[0]->counters().loadMisses, 2u);
    eq.run();
    EXPECT_EQ(resumes, 2);
    EXPECT_EQ(l1s[0]->counters().fills, 1u); // one fill serves both
}

TEST_F(CoherenceFixture, NonCoherentModeNeverSnoops)
{
    build(4, false);
    load(0, 0x1000);
    load(1, 0x1000);
    EXPECT_EQ(fabric->counters().snoopProbes, 0u);
    EXPECT_EQ(l1s[0]->counters().snoopsReceived, 0u);
    // Both installed Exclusive: no sharing semantics.
    EXPECT_EQ(state(0, 0x1000), MesiState::Exclusive);
    EXPECT_EQ(state(1, 0x1000), MesiState::Exclusive);
}

TEST_F(CoherenceFixture, AtomicAcquiresOwnership)
{
    build(4);
    load(1, 0x4000);
    Tick done = 0;
    l1s[0]->atomic(eq.now(), 0x4000, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(state(0, 0x4000), MesiState::Modified);
    EXPECT_EQ(state(1, 0x4000), MesiState::Invalid);
}

TEST_F(CoherenceFixture, LatencyHierarchyIsOrdered)
{
    build(8);
    // Cold miss to DRAM.
    Tick t0 = eq.now();
    Tick dram_done = 0;
    l1s[0]->load(t0, 0x8000, [&](Tick t) { dram_done = t; });
    eq.run();

    // Local cache-to-cache supply.
    Tick t1 = eq.now();
    Tick local_done = 0;
    l1s[1]->load(t1, 0x8000, [&](Tick t) { local_done = t; });
    eq.run();

    // Remote-cluster supply.
    Tick t2 = eq.now();
    Tick remote_done = 0;
    l1s[4]->load(t2, 0x8000, [&](Tick t) { remote_done = t; });
    eq.run();

    Tick dram_lat = dram_done - t0;
    Tick local_lat = local_done - t1;
    Tick remote_lat = remote_done - t2;
    EXPECT_LT(local_lat, remote_lat);
    EXPECT_LT(remote_lat, dram_lat);
    EXPECT_GE(dram_lat, 70 * ticksPerNs);
}

/**
 * Randomized protocol invariant: after any sequence of sequentially
 * completed operations, a Modified line in one cache implies no
 * other valid copy (single-writer / multiple-reader).
 */
TEST_F(CoherenceFixture, RandomTrafficPreservesSWMR)
{
    build(8);
    Rng rng(4);
    const int lines = 16;
    for (int i = 0; i < 3000; ++i) {
        int core = int(rng.nextBelow(8));
        Addr a = rng.nextBelow(lines) * 32;
        switch (rng.nextBelow(3)) {
          case 0:
            load(core, a);
            break;
          case 1:
            store(core, a);
            break;
          default:
            store(core, a, true);
            break;
        }

        // Check SWMR over every line.
        for (int l = 0; l < lines; ++l) {
            int writers = 0, readers = 0;
            for (auto &l1 : l1s) {
                MesiState s = MesiState::Invalid;
                if (const auto *ln = l1->tags().lookup(Addr(l) * 32))
                    s = ln->state;
                if (s == MesiState::Modified ||
                    s == MesiState::Exclusive)
                    ++writers;
                else if (s == MesiState::Shared)
                    ++readers;
            }
            EXPECT_LE(writers, 1) << "line " << l << " iter " << i;
            if (writers == 1)
                EXPECT_EQ(readers, 0)
                    << "line " << l << " iter " << i;
        }
    }
}

} // namespace
} // namespace cmpmem
