/**
 * @file
 * Parallel intra-run engine tests (DESIGN.md §17). The contract under
 * test: sharding cores across host threads with window-barrier
 * synchronization is a pure host-performance lever — every simulated
 * stat, the energy report, verification, and even the fault surface
 * are bit-identical to the single-threaded run at any hostThreads
 * value.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cmpmem.hh"
#include "core/context.hh"
#include "system/cmp_system.hh"

namespace cmpmem
{
namespace
{

WorkloadParams
smokeParams()
{
    WorkloadParams p;
    p.scale = 0;
    return p;
}

RunResult
runAt(const char *workload, MemModel model, int host_threads)
{
    SystemConfig cfg = makeConfig(4, model);
    cfg.hostThreads = host_threads;
    return runWorkload(workload, cfg, smokeParams());
}

// ---------------------------------------------------------------- //
// Golden parity: serial == parallel, bit for bit                   //
// ---------------------------------------------------------------- //

struct ParityCase
{
    const char *workload;
    MemModel model;
};

std::string
parityName(const testing::TestParamInfo<ParityCase> &info)
{
    return std::string(info.param.workload) + "_" +
           to_string(info.param.model);
}

class ParallelParity : public testing::TestWithParam<ParityCase>
{
};

TEST_P(ParallelParity, StatsBitIdenticalAcrossHostThreads)
{
    const auto &[workload, model] = GetParam();

    RunResult serial = runAt(workload, model, 1);
    ASSERT_TRUE(serial.verified);
    const std::string base = serial.stats.toStatSet().digest();
    EXPECT_EQ(serial.stats.hostThreads, 1);
    EXPECT_EQ(serial.stats.hostWindows, 0u);

    for (int threads : {2, 4}) {
        RunResult par = runAt(workload, model, threads);
        EXPECT_TRUE(par.verified);
        // The digest covers the full StatSet — timing, traffic,
        // event-queue telemetry, calendar geometry. Any divergence
        // from the serial run is a determinism bug, not noise.
        EXPECT_EQ(par.stats.toStatSet().digest(), base)
            << workload << "/" << to_string(model) << " at "
            << threads << " host threads";
        EXPECT_EQ(par.energy.totalMj(), serial.energy.totalMj());
        EXPECT_EQ(par.stats.execTicks, serial.stats.execTicks);

        // Host-side telemetry is present but outside the digest.
        EXPECT_EQ(par.stats.hostThreads, threads);
        EXPECT_GT(par.stats.hostWindows, 0u);
        EXPECT_GT(par.stats.hostParallelWindows, 0u);
        ASSERT_EQ(par.stats.hostShardEvents.size(), std::size_t(4));
        std::uint64_t shard_total = 0;
        for (auto ev : par.stats.hostShardEvents)
            shard_total += ev;
        EXPECT_GT(shard_total, 0u);
        EXPECT_LE(shard_total, par.stats.eventsExecuted);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Golden, ParallelParity,
    testing::Values(ParityCase{"art", MemModel::CC},
                    ParityCase{"art", MemModel::STR},
                    ParityCase{"fem", MemModel::CC},
                    ParityCase{"fem", MemModel::STR},
                    ParityCase{"bitonic", MemModel::CC},
                    ParityCase{"bitonic", MemModel::STR}),
    parityName);

// ---------------------------------------------------------------- //
// Merge-order determinism                                          //
// ---------------------------------------------------------------- //

TEST(ParallelDeterminism, RepeatedParallelRunsAreIdentical)
{
    std::string base;
    for (int rep = 0; rep < 3; ++rep) {
        RunResult r = runAt("merge", MemModel::CC, 4);
        ASSERT_TRUE(r.verified);
        std::string digest = r.stats.toStatSet().digest();
        if (rep == 0)
            base = digest;
        else
            EXPECT_EQ(digest, base) << "repetition " << rep;
    }
}

/**
 * Cross-shard merge order, observed from inside the kernels: every
 * core hammers one shared atomic counter with staggered compute
 * between requests, and records the sequence of values it receives.
 * The arbitration order those values encode must be identical between
 * the serial run and any sharded run — this is exactly the order the
 * window-replay merge reconstructs.
 */
KernelTask
atomicHammer(Context &ctx, Addr counter, int rounds,
             std::vector<std::uint32_t> &observed)
{
    for (int i = 0; i < rounds; ++i) {
        co_await ctx.compute(Cycles(1 + (ctx.tid() * 7 + i * 3) % 23));
        auto v = co_await ctx.atomicFetchAdd32(counter, 1);
        observed.push_back(std::uint32_t(v));
    }
}

std::vector<std::vector<std::uint32_t>>
runHammer(int host_threads)
{
    constexpr int cores = 8;
    constexpr int rounds = 64;

    SystemConfig cfg;
    cfg.cores = cores;
    cfg.model = MemModel::CC;
    cfg.hostThreads = host_threads;
    CmpSystem sys(cfg);

    Addr counter = sys.mem().alloc(4);
    sys.mem().write<std::uint32_t>(counter, 0);

    std::vector<std::vector<std::uint32_t>> observed(cores);
    for (int i = 0; i < cores; ++i) {
        sys.bindKernel(
            i, atomicHammer(sys.context(i), counter, rounds,
                            observed[std::size_t(i)]));
    }
    sys.simulate();

    EXPECT_EQ(sys.mem().read<std::uint32_t>(counter),
              std::uint32_t(cores * rounds));
    return observed;
}

TEST(ParallelDeterminism, CrossShardAtomicOrderMatchesSerial)
{
    auto serial = runHammer(1);
    for (int threads : {2, 4, 8}) {
        auto par = runHammer(threads);
        EXPECT_EQ(par, serial) << threads << " host threads";
    }
}

// ---------------------------------------------------------------- //
// Fault propagation out of a worker phase                          //
// ---------------------------------------------------------------- //

KernelTask
faultyKernel(Context &ctx, int victim, int fault_round)
{
    for (int i = 0; i < 100000; ++i) {
        co_await ctx.compute(Cycles(50));
        if (ctx.tid() == victim && i == fault_round) {
            throwSimError(SimErrorKind::Fault,
                          "test shard fault on core %d at tick %llu",
                          ctx.tid(),
                          (unsigned long long)ctx.now());
        }
    }
}

std::string
runFaulty(int host_threads)
{
    SystemConfig cfg;
    cfg.cores = 8;
    cfg.model = MemModel::CC;
    cfg.hostThreads = host_threads;
    CmpSystem sys(cfg);
    for (int i = 0; i < cfg.cores; ++i)
        sys.bindKernel(i, faultyKernel(sys.context(i), 3, 37));
    try {
        sys.simulate();
    } catch (const SimError &e) {
        EXPECT_STREQ(e.kindName(), "fault");
        return e.what();
    }
    ADD_FAILURE() << "expected a SimError from the faulting shard";
    return {};
}

TEST(ParallelFaults, ShardFaultSurfacesAtTheSerialTick)
{
    // One shard faults mid-quantum while the other shards are still
    // executing their windows; the engine must surface the same
    // error, at the same simulated tick (embedded in the message),
    // as the single-threaded run.
    const std::string serial = runFaulty(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(runFaulty(4), serial);
    EXPECT_EQ(runFaulty(8), serial);
}

// ---------------------------------------------------------------- //
// Watchdog and deadlock under sharded execution                    //
// ---------------------------------------------------------------- //

TEST(ParallelGuards, WatchdogTickBudgetFiresWithDiagnostic)
{
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.hostThreads = 2;
    cfg.watchdog.maxTicks = 1000 * 1000;
    try {
        runWorkload("hang", cfg, smokeParams());
        FAIL() << "expected the watchdog to fire";
    } catch (const SimError &e) {
        EXPECT_STREQ(e.kindName(), "watchdog");
        // Diagnostics come from the barrier (serial) phase, where
        // the shadow queue gives a coherent machine snapshot.
        EXPECT_FALSE(e.diagnostic().empty());
    }
}

KernelTask
stuckOnBarrier(Context &ctx, Barrier &bar)
{
    co_await ctx.compute(Cycles(10 + ctx.tid()));
    co_await ctx.barrier(bar);
}

TEST(ParallelGuards, DrainedQueueWithBlockedCoresIsDeadlock)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.model = MemModel::CC;
    cfg.hostThreads = 2;
    CmpSystem sys(cfg);
    Barrier bar(cfg.cores + 1); // never opens
    for (int i = 0; i < cfg.cores; ++i)
        sys.bindKernel(i, stuckOnBarrier(sys.context(i), bar));
    try {
        sys.simulate();
        FAIL() << "expected a deadlock report";
    } catch (const SimError &e) {
        EXPECT_STREQ(e.kindName(), "deadlock");
    }
}

} // namespace
} // namespace cmpmem
