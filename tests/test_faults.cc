/**
 * @file
 * Robustness-layer tests: the SimError taxonomy, the EventQueue
 * liveness watchdog, deterministic fault injection (DRAM ECC,
 * interconnect NACKs, DMA retries), LogCapture exception-unwind
 * flushing, and the sweep engine's per-job failure isolation.
 *
 * The FaultStress.* tests re-run whole sweeps under injected faults
 * and are registered separately with the "long" label (see
 * CMakeLists.txt); CMPMEM_FAULT_SCALE scales their workload list.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cmpmem.hh"
#include "sim/log.hh"

namespace cmpmem
{
namespace
{

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- //
// SimError taxonomy                                                //
// ---------------------------------------------------------------- //

TEST(SimErrors, KindNamesAreJsonTags)
{
    EXPECT_STREQ(to_string(SimErrorKind::Config), "config");
    EXPECT_STREQ(to_string(SimErrorKind::Model), "model");
    EXPECT_STREQ(to_string(SimErrorKind::Deadlock), "deadlock");
    EXPECT_STREQ(to_string(SimErrorKind::Watchdog), "watchdog");
    EXPECT_STREQ(to_string(SimErrorKind::Fault), "fault");
    EXPECT_STREQ(to_string(SimErrorKind::Check), "check");
}

TEST(SimErrors, CarriesKindMessageAndDiagnostic)
{
    SimError e(SimErrorKind::Watchdog, "stuck", "dump text");
    EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
    EXPECT_STREQ(e.kindName(), "watchdog");
    EXPECT_STREQ(e.what(), "stuck");
    EXPECT_EQ(e.diagnostic(), "dump text");

    try {
        throwSimError(SimErrorKind::Fault, "retry %d of %d", 3, 8);
        FAIL() << "throwSimError returned";
    } catch (const SimError &f) {
        EXPECT_EQ(f.kind(), SimErrorKind::Fault);
        EXPECT_STREQ(f.what(), "retry 3 of 8");
        EXPECT_TRUE(f.diagnostic().empty());
    }
}

TEST(SimErrors, UnknownWorkloadIsRecoverable)
{
    try {
        createWorkload("no-such-workload");
        FAIL() << "unknown workload accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_TRUE(contains(e.what(), "no-such-workload"));
    }
}

TEST(SimErrors, FaultConfigValidation)
{
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.faults.enabled = true;
    cfg.faults.netNackProb = 1.5;
    try {
        cfg.validate();
        FAIL() << "probability 1.5 accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_TRUE(contains(e.what(), "probabilities"));
    }

    SystemConfig cfg2 = makeConfig(2, MemModel::CC);
    cfg2.faults.enabled = true;
    cfg2.faults.dmaMaxRetries = 0;
    try {
        cfg2.validate();
        FAIL() << "retry limit 0 accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_TRUE(contains(e.what(), "retry"));
    }
}

// ---------------------------------------------------------------- //
// EventQueue: schedule-in-the-past and the liveness watchdog        //
// ---------------------------------------------------------------- //

TEST(EventQueueGuard, ScheduleInPastThrowsWithBothTicks)
{
    EventQueue eq;
    eq.schedule(100, [&] {
        // Runs at tick 100; tick 50 is now in the past.
        eq.schedule(50, [] {});
    });
    try {
        eq.run();
        FAIL() << "past-tick schedule accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Model);
        EXPECT_TRUE(contains(e.what(), "when=50"));
        EXPECT_TRUE(contains(e.what(), "now=100"));
    }
}

TEST(EventQueueGuard, DisengagedGuardRunsToCompletion)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    Tick end = eq.runGuarded({});
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 20u);
}

TEST(EventQueueGuard, TickBudgetStopsRunawayEventChain)
{
    EventQueue eq;
    // Self-perpetuating chain: advances time forever.
    std::function<void()> again = [&] {
        eq.schedule(eq.now() + 1000, again);
    };
    eq.schedule(0, again);

    EventQueue::RunGuard guard;
    guard.maxTicks = 1'000'000;
    guard.diagnostic = [] { return std::string("chain state"); };
    try {
        eq.runGuarded(guard);
        FAIL() << "tick budget not enforced";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
        EXPECT_TRUE(contains(e.what(), "tick budget"));
        EXPECT_EQ(e.diagnostic(), "chain state");
    }
    // The offending event was not executed: time stayed in budget.
    EXPECT_LE(eq.now(), 1'000'000u);
}

TEST(EventQueueGuard, ProgressProbeCatchesSameTickLivelock)
{
    EventQueue eq;
    // Livelock: events keep firing but simulated time never moves,
    // so a tick budget alone would never trip.
    std::function<void()> spin = [&] { eq.schedule(eq.now(), spin); };
    eq.schedule(5, spin);

    EventQueue::RunGuard guard;
    guard.progressCheckEvents = 256;
    try {
        eq.runGuarded(guard);
        FAIL() << "livelock not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
        EXPECT_TRUE(contains(e.what(), "no forward progress"));
    }
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueGuard, HostTimeBudgetTripsOnBusyLoop)
{
    EventQueue eq;
    std::function<void()> again = [&] {
        eq.schedule(eq.now() + 1, again);
    };
    eq.schedule(0, again);

    EventQueue::RunGuard guard;
    guard.maxHostSeconds = 1e-9; // trips at the first cadence check
    try {
        eq.runGuarded(guard);
        FAIL() << "host budget not enforced";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
        EXPECT_TRUE(contains(e.what(), "host CPU-time budget"));
    }
}

TEST(EventQueueGuard, ProgressProbeToleratesSlowButLiveRuns)
{
    // A probe that advances every window must never trip, no matter
    // how many windows pass.
    EventQueue eq;
    std::uint64_t work = 0;
    std::function<void()> step = [&] {
        ++work;
        if (work < 4096)
            eq.schedule(eq.now() + 1, step);
    };
    eq.schedule(0, step);

    EventQueue::RunGuard guard;
    guard.progressCheckEvents = 64;
    guard.progressProbe = [&] { return work; };
    EXPECT_NO_THROW(eq.runGuarded(guard));
    EXPECT_EQ(work, 4096u);
}

// ---------------------------------------------------------------- //
// Full-system watchdog, deadlock detection, and diagnostics         //
// ---------------------------------------------------------------- //

TEST(Watchdog, HangWorkloadIsHiddenButCreatable)
{
    auto names = workloadNames();
    for (const auto &n : names)
        EXPECT_NE(n, "hang");
    auto w = createWorkload("hang");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), "hang");
}

TEST(Watchdog, KillsHungWorkloadWithDiagnostics)
{
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.watchdog.maxTicks = 1'000'000'000; // 1 ms simulated
    try {
        runWorkload("hang", cfg);
        FAIL() << "hang ran to completion";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
        const std::string &d = e.diagnostic();
        EXPECT_TRUE(contains(d, "=== machine state"));
        EXPECT_TRUE(contains(d, "core 0"));
        EXPECT_TRUE(contains(d, "l1[0]"));
        EXPECT_TRUE(contains(d, "l2"));
        EXPECT_TRUE(contains(d, "fabric"));
    }
}

TEST(Watchdog, ProgressProbeCatchesHungKernel)
{
    // No tick budget at all: the instructions-retired probe alone
    // must catch the spin (core 0 retires nothing while waiting out
    // compute() delays... it does retire compute instructions, so use
    // a generous event window and rely on the barrier-parked cores'
    // event starvation — core 0 retires one instruction per window,
    // which still advances the probe, so this hang is only caught by
    // a budget. Assert exactly that: the probe does NOT fire, the
    // host budget does.
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.watchdog.progressCheckEvents = 4096;
    cfg.watchdog.maxHostSeconds = 0.5;
    try {
        runWorkload("hang", cfg);
        FAIL() << "hang ran to completion";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
    }
}

KernelTask
parkForever(Context &ctx, Barrier &never)
{
    co_await ctx.barrier(never);
}

TEST(Watchdog, DrainedQueueWithBlockedCoresIsDeadlock)
{
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    CmpSystem sys(cfg);
    Barrier never(3); // 2 cores can never satisfy 3 parties
    for (int c = 0; c < 2; ++c)
        sys.bindKernel(c, parkForever(sys.context(c), never));
    try {
        sys.simulate();
        FAIL() << "deadlock not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Deadlock);
        EXPECT_TRUE(contains(e.what(), "deadlock"));
        EXPECT_TRUE(contains(e.diagnostic(), "=== machine state"));
    }
}

TEST(Watchdog, GuardedCleanRunIsBitIdenticalToUnguarded)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    RunResult plain = runWorkload("fir", cfg, p);

    SystemConfig guarded = cfg;
    guarded.watchdog.maxTicks = maxTick;
    guarded.watchdog.maxHostSeconds = 3600;
    guarded.watchdog.progressCheckEvents = 1024;
    RunResult g = runWorkload("fir", guarded, p);

    EXPECT_TRUE(plain.verified);
    EXPECT_TRUE(g.verified);
    EXPECT_EQ(plain.stats.execTicks, g.stats.execTicks);
    EXPECT_EQ(plain.stats.coreTotal.instructions(),
              g.stats.coreTotal.instructions());
    EXPECT_EQ(plain.stats.dramReadBytes, g.stats.dramReadBytes);
}

// ---------------------------------------------------------------- //
// LogCapture: exception-unwind flushing (satellite b)              //
// ---------------------------------------------------------------- //

TEST(LogCaptureUnwind, PendingLinesFlushIntoEnclosingCapture)
{
    LogCapture outer;
    try {
        LogCapture inner;
        warn("inner line %d", 42);
        EXPECT_TRUE(outer.empty()); // captured by inner, not outer
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    // inner's buffer must have migrated to outer during unwind.
    EXPECT_TRUE(contains(outer.text(), "inner line 42"));
    outer.drain();
}

TEST(LogCaptureUnwind, NormalDestructionDoesNotLeak)
{
    LogCapture outer;
    {
        LogCapture inner;
        warn("drained line");
        EXPECT_TRUE(contains(inner.drain(), "drained line"));
    }
    EXPECT_TRUE(outer.empty());
}

// ---------------------------------------------------------------- //
// Fault injection                                                  //
// ---------------------------------------------------------------- //

TEST(Faults, DisabledByDefaultAndCountersZero)
{
    WorkloadParams p;
    p.scale = 0;
    RunResult r = runWorkload("fir", makeConfig(2, MemModel::CC), p);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.faults.dramFlips, 0u);
    EXPECT_EQ(r.stats.faults.netNacks, 0u);
    EXPECT_EQ(r.stats.faults.dmaFaults, 0u);
}

#if CMPMEM_FAULTS_ENABLED

TEST(Faults, SameSeedReproducesBitIdentically)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.faults = stressFaultConfig(42);

    RunResult a = runWorkload("fir", cfg, p);
    RunResult b = runWorkload("fir", cfg, p);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.stats.execTicks, b.stats.execTicks);
    EXPECT_EQ(a.stats.faults.dramFlips, b.stats.faults.dramFlips);
    EXPECT_EQ(a.stats.faults.eccCorrected, b.stats.faults.eccCorrected);
    EXPECT_EQ(a.stats.faults.netNacks, b.stats.faults.netNacks);
    EXPECT_EQ(a.stats.faults.netRetries, b.stats.faults.netRetries);
    EXPECT_EQ(a.stats.faults.dmaFaults, b.stats.faults.dmaFaults);
}

TEST(Faults, EccCorrectionCountsAndSlowsTheRun)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig clean = makeConfig(2, MemModel::CC);
    RunResult base = runWorkload("fir", clean, p);

    SystemConfig cfg = clean;
    cfg.faults.enabled = true;
    cfg.faults.seed = 9;
    cfg.faults.dramBitFlipProb = 0.999;   // nearly every DRAM read
    cfg.faults.dramDoubleBitFraction = 0; // all single-bit
    RunResult r = runWorkload("fir", cfg, p);

    EXPECT_TRUE(r.verified); // ECC corrects: data is never corrupted
    EXPECT_GT(r.stats.faults.dramFlips, 0u);
    EXPECT_EQ(r.stats.faults.eccCorrected, r.stats.faults.dramFlips);
    EXPECT_EQ(r.stats.faults.eccDetected, 0u);
    EXPECT_GT(r.stats.execTicks, base.stats.execTicks);
}

TEST(Faults, DoubleBitDetectionRereadsOrDies)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.faults.enabled = true;
    cfg.faults.seed = 5;
    cfg.faults.dramBitFlipProb = 0.999;
    cfg.faults.dramDoubleBitFraction = 1.0; // every flip double-bit

    // Default: detected, counted, survived by re-read.
    RunResult r = runWorkload("fir", cfg, p);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.faults.eccDetected, 0u);
    EXPECT_EQ(r.stats.faults.eccCorrected, 0u);

    // Machine-check mode: the first detection is fatal to the job.
    cfg.faults.dramFatalOnDoubleBit = true;
    try {
        runWorkload("fir", cfg, p);
        FAIL() << "double-bit error not fatal";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Fault);
    }
}

TEST(Faults, NackRetryBudgetExhaustionIsAFaultError)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.faults.enabled = true;
    cfg.faults.seed = 3;
    cfg.faults.netNackProb = 0.999; // virtually every transfer
    cfg.faults.netMaxRetries = 2;
    try {
        runWorkload("fir", cfg, p);
        FAIL() << "NACK retry exhaustion survived";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Fault);
        EXPECT_TRUE(contains(e.what(), "NACK"));
    }
}

TEST(Faults, NackRetriesRecoverAtModerateRates)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.faults.enabled = true;
    cfg.faults.seed = 11;
    cfg.faults.netNackProb = 0.02;
    cfg.faults.netMaxRetries = 16;
    RunResult r = runWorkload("fir", cfg, p);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.faults.netNacks, 0u);
    EXPECT_EQ(r.stats.faults.netRetries, r.stats.faults.netNacks);
}

TEST(Faults, DmaRetryAndExhaustionOnStreamModel)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(2, MemModel::STR);
    cfg.faults.enabled = true;
    cfg.faults.seed = 17;
    cfg.faults.dmaFaultProb = 0.05;
    cfg.faults.dmaMaxRetries = 16;
    RunResult r = runWorkload("fir", cfg, p);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.faults.dmaFaults, 0u);
    EXPECT_EQ(r.stats.faults.dmaRetries, r.stats.faults.dmaFaults);

    cfg.faults.dmaFaultProb = 0.999;
    cfg.faults.dmaMaxRetries = 2;
    try {
        runWorkload("fir", cfg, p);
        FAIL() << "DMA retry exhaustion survived";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Fault);
        EXPECT_TRUE(contains(e.what(), "DMA"));
    }
}

TEST(Faults, CoherenceCheckerStaysCleanUnderInjectedFaults)
{
    WorkloadParams p;
    p.scale = 0;
    p.seed = 123;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.checkCoherence = true;
    cfg.faults = stressFaultConfig(99);
    RunResult r = runWorkload("stress", cfg, p);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.checkerViolations, 0u);
    EXPECT_GT(r.stats.checkerEvents, 0u);
}

#else // !CMPMEM_FAULTS_ENABLED

TEST(Faults, RequestingFaultsInFaultFreeBuildIsConfigError)
{
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.faults = stressFaultConfig(1);
    try {
        CmpSystem sys(cfg);
        FAIL() << "faults accepted in CMPMEM_FAULTS=OFF build";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
    }
}

#endif // CMPMEM_FAULTS_ENABLED

// ---------------------------------------------------------------- //
// Sweep-engine failure isolation                                   //
// ---------------------------------------------------------------- //

TEST(SweepFaults, HungJobIsIsolatedAndReportedStructured)
{
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(2, MemModel::CC);

    std::vector<SweepJob> jobs;
    jobs.emplace_back("ok-before", "fir", cfg, p);
    jobs.emplace_back("hung", "hang", cfg, p);
    jobs.emplace_back("ok-after", "merge", cfg, p);

    SweepOptions opts;
    opts.jobs = 2;
    opts.echoLogs = false;
    opts.jobMaxTicks = 1'000'000'000; // 1 ms simulated per job

    SweepResult res = runJobs("fault-isolation", jobs, opts);

    EXPECT_TRUE(res.at("ok-before").ran);
    EXPECT_TRUE(res.at("ok-before").run.verified);
    EXPECT_TRUE(res.at("ok-after").ran);
    EXPECT_TRUE(res.at("ok-after").run.verified);

    const JobResult &hung = res.at("hung");
    EXPECT_FALSE(hung.ran);
    EXPECT_EQ(hung.errorKind, "watchdog");
    EXPECT_TRUE(contains(hung.error, "watchdog"));
    EXPECT_TRUE(contains(hung.diagnostic, "=== machine state"));

    // The artifact records the failure as a structured object and
    // stays parseable.
    std::string json = res.toJson();
    EXPECT_TRUE(contains(json, "\"kind\": \"watchdog\""));
    EXPECT_TRUE(contains(json, "\"message\""));
    EXPECT_TRUE(contains(json, "\"diagnostic\""));
}

TEST(SweepFaults, JobBudgetDoesNotOverrideExplicitWatchdog)
{
    // A job that sets its own (tighter) budget keeps it.
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    cfg.watchdog.maxTicks = 1'000'000; // 1 us: trips immediately

    std::vector<SweepJob> jobs;
    jobs.emplace_back("tight", "hang", cfg, p);

    SweepOptions opts;
    opts.jobs = 1;
    opts.echoLogs = false;
    opts.jobMaxTicks = maxTick; // generous default must not win

    SweepResult res = runJobs("budget-precedence", jobs, opts);
    const JobResult &jr = res.at("tight");
    EXPECT_FALSE(jr.ran);
    EXPECT_EQ(jr.errorKind, "watchdog");
}

TEST(SweepFaults, PlainExceptionsKeepGenericKind)
{
    std::vector<SweepJob> jobs;
    jobs.emplace_back("thrower", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{},
                      []() -> RunResult {
                          throw std::runtime_error("injected");
                      });
    SweepOptions opts;
    opts.jobs = 1;
    opts.echoLogs = false;
    SweepResult res = runJobs("generic-error", jobs, opts);
    const JobResult &jr = res.at("thrower");
    EXPECT_FALSE(jr.ran);
    EXPECT_EQ(jr.error, "injected");
    EXPECT_EQ(jr.errorKind, "exception");
    EXPECT_TRUE(jr.diagnostic.empty());
    EXPECT_TRUE(contains(res.toJson(), "\"kind\": \"exception\""));
}

#if CMPMEM_FAULTS_ENABLED

// ---------------------------------------------------------------- //
// Long-running fault stress (label: long)                          //
// ---------------------------------------------------------------- //

/** CMPMEM_FAULT_SCALE widens the stress workload list (default 1). */
int
faultScale()
{
    if (const char *env = std::getenv("CMPMEM_FAULT_SCALE")) {
        int s = std::atoi(env);
        if (s > 0)
            return s;
    }
    return 1;
}

TEST(FaultStress, ParallelAndSerialSweepsBitIdenticalUnderFaults)
{
    std::vector<std::string> wl = {"fir", "merge"};
    if (faultScale() > 1) {
        wl.push_back("bitonic");
        wl.push_back("depth");
    }

    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.faults = stressFaultConfig(2026);

    SweepSpec spec("fault-determinism");
    spec.base(cfg).baseParams(p).workloads(wl).modelAxis(
        {MemModel::CC, MemModel::STR});

    SweepOptions serial;
    serial.jobs = 1;
    serial.echoLogs = false;
    SweepOptions parallel;
    parallel.jobs = 4;
    parallel.echoLogs = false;

    SweepResult a = runSweep(spec, serial);
    SweepResult b = runSweep(spec, parallel);

    ASSERT_EQ(a.jobs().size(), b.jobs().size());
    for (std::size_t i = 0; i < a.jobs().size(); ++i) {
        const JobResult &ja = a.jobs()[i];
        const JobResult &jb = b.jobs()[i];
        ASSERT_EQ(ja.job.id, jb.job.id);
        EXPECT_TRUE(ja.ran) << ja.job.id << ": " << ja.error;
        EXPECT_TRUE(jb.ran) << jb.job.id << ": " << jb.error;
        EXPECT_EQ(ja.run.stats.execTicks, jb.run.stats.execTicks)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.faults.dramFlips,
                  jb.run.stats.faults.dramFlips)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.faults.netNacks,
                  jb.run.stats.faults.netNacks)
            << ja.job.id;
        EXPECT_EQ(ja.run.stats.faults.dmaFaults,
                  jb.run.stats.faults.dmaFaults)
            << ja.job.id;
    }
}

TEST(FaultStress, CoherenceCheckerCleanAcrossSeeds)
{
    WorkloadParams p;
    p.scale = 0;
    const int seeds = 2 * faultScale();
    for (int s = 1; s <= seeds; ++s) {
        p.seed = std::uint64_t(1000 + s);
        SystemConfig cfg = makeConfig(8, MemModel::CC);
        cfg.checkCoherence = true;
        cfg.faults = stressFaultConfig(std::uint64_t(s));
        RunResult r = runWorkload("stress", cfg, p);
        EXPECT_TRUE(r.verified) << "seed " << s;
        EXPECT_EQ(r.stats.checkerViolations, 0u) << "seed " << s;
    }
}

#endif // CMPMEM_FAULTS_ENABLED

} // namespace
} // namespace cmpmem
