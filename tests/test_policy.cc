/**
 * @file
 * Cache-policy trait tests (DESIGN.md §15): insertion semantics of
 * MIP/LIP/BIP against a single-set array, BIP's deterministic
 * bimodal choice replayed against a replica Rng, peek()'s
 * side-effect freedom, the Markov and stream-buffer prefetch
 * engines, and serial-vs-parallel bit-identity of a non-default
 * policy sweep.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"
#include "mem/cache_array.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/stream_buffer_prefetcher.hh"
#include "sim/rng.hh"

namespace cmpmem
{
namespace
{

constexpr std::uint32_t kLine = 32;

/** One 4-way set: every line address collides. */
CacheGeometry
oneSet()
{
    CacheGeometry g;
    g.sizeBytes = 4 * kLine;
    g.assoc = 4;
    g.lineBytes = kLine;
    return g;
}

ReplacementConfig
policyCfg(ReplacementPolicy p, std::uint32_t throttle = 32,
          std::uint64_t seed = 1)
{
    ReplacementConfig r;
    r.policy = p;
    r.bipThrottle = throttle;
    r.seed = seed;
    return r;
}

/** Fill all four ways with lines 0, 0x20, 0x40, 0x60. */
void
fillSet(CacheArray &arr)
{
    for (Addr a = 0; a < 4 * kLine; a += kLine) {
        CacheArray::Victim v;
        arr.allocate(a, v).state = MesiState::Exclusive;
        EXPECT_FALSE(v.valid);
    }
}

TEST(PolicyNames, RoundTrip)
{
    for (ReplacementPolicy p :
         {ReplacementPolicy::LRU, ReplacementPolicy::MIP,
          ReplacementPolicy::LIP, ReplacementPolicy::BIP}) {
        ReplacementPolicy back;
        ASSERT_TRUE(parseReplacementPolicy(to_string(p), back));
        EXPECT_EQ(back, p);
    }
    ReplacementPolicy r;
    EXPECT_FALSE(parseReplacementPolicy("plru", r));

    for (PrefetchPolicy p :
         {PrefetchPolicy::Stream, PrefetchPolicy::Markov,
          PrefetchPolicy::StreamBuffer}) {
        PrefetchPolicy back;
        ASSERT_TRUE(parsePrefetchPolicy(to_string(p), back));
        EXPECT_EQ(back, p);
    }
    PrefetchPolicy q;
    EXPECT_FALSE(parsePrefetchPolicy("ghb", q));
}

TEST(InsertionPolicy, MipEvictsInInsertionOrder)
{
    // MRU insertion: with no intervening touches the victim sequence
    // replays the fill sequence.
    CacheArray arr(oneSet(), policyCfg(ReplacementPolicy::MIP));
    fillSet(arr);
    for (int k = 0; k < 3; ++k) {
        CacheArray::Victim v;
        arr.allocate(Addr(0x1000 + k * kLine), v).state =
            MesiState::Exclusive;
        ASSERT_TRUE(v.valid);
        EXPECT_EQ(v.addr, Addr(k) * kLine);
    }
}

TEST(InsertionPolicy, LipInsertsAtStackBottom)
{
    // LIP: incoming lines get stamp 0, so an untouched newcomer is
    // itself the next victim — the working set in the other ways is
    // protected from a scanning stream.
    CacheArray arr(oneSet(), policyCfg(ReplacementPolicy::LIP));
    fillSet(arr);

    CacheArray::Victim v;
    arr.allocate(0x1000, v).state = MesiState::Exclusive;
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u); // all stamps tie at 0; lowest way loses

    arr.allocate(0x2000, v).state = MesiState::Exclusive;
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0x1000u); // the newcomer thrashes in place
    EXPECT_NE(arr.peek(0x20), nullptr);
    EXPECT_NE(arr.peek(0x40), nullptr);
    EXPECT_NE(arr.peek(0x60), nullptr);
}

TEST(InsertionPolicy, TouchPromotesUnderLip)
{
    // A demand hit promotes to MRU under every policy; a touched
    // line survives the scan that recycles way 0.
    CacheArray arr(oneSet(), policyCfg(ReplacementPolicy::LIP));
    fillSet(arr);
    arr.touch(*arr.lookup(Addr(0x40)));

    CacheArray::Victim v;
    arr.allocate(0x1000, v).state = MesiState::Exclusive;
    EXPECT_EQ(v.addr, 0u);
    arr.allocate(0x2000, v).state = MesiState::Exclusive;
    EXPECT_EQ(v.addr, 0x1000u);
    EXPECT_NE(arr.peek(0x40), nullptr);
}

TEST(InsertionPolicy, BipMatchesReplicaRngExactly)
{
    // BIP's bimodal choice is the only randomness in the array, and
    // it draws from the seeded Rng in allocation order — so a
    // replica generator predicts every insertion stamp.
    const std::uint32_t throttle = 4;
    const std::uint64_t seed = 7;
    CacheArray arr(oneSet(),
                   policyCfg(ReplacementPolicy::BIP, throttle, seed));

    Rng replica(seed);
    std::uint64_t clock = 0;
    std::size_t mru_inserts = 0;
    for (int k = 0; k < 64; ++k) {
        CacheArray::Victim v;
        CacheArray::Line &l =
            arr.allocate(Addr(0x10000 + k * kLine), v);
        l.state = MesiState::Exclusive;
        if (replica.nextBelow(throttle) == 0) {
            ++mru_inserts;
            EXPECT_EQ(l.lruStamp, ++clock) << "allocation " << k;
        } else {
            EXPECT_EQ(l.lruStamp, 0u) << "allocation " << k;
        }
    }
    // Statistically ~16 of 64; assert the draw is genuinely bimodal.
    EXPECT_GT(mru_inserts, 0u);
    EXPECT_LT(mru_inserts, 64u);
}

TEST(InsertionPolicy, BipThrottleOneIsMip)
{
    // nextBelow(1) is always 0: every insertion goes to MRU, which
    // is exactly MIP. The victim sequence must replay fill order.
    CacheArray arr(oneSet(), policyCfg(ReplacementPolicy::BIP, 1));
    fillSet(arr);
    for (int k = 0; k < 3; ++k) {
        CacheArray::Victim v;
        arr.allocate(Addr(0x1000 + k * kLine), v).state =
            MesiState::Exclusive;
        ASSERT_TRUE(v.valid);
        EXPECT_EQ(v.addr, Addr(k) * kLine);
    }
}

TEST(InsertionPolicy, BipSameSeedSameVictims)
{
    auto victims = [](std::uint64_t seed) {
        CacheArray arr(oneSet(),
                       policyCfg(ReplacementPolicy::BIP, 2, seed));
        std::vector<Addr> out;
        for (int k = 0; k < 32; ++k) {
            CacheArray::Victim v;
            arr.allocate(Addr(k) * kLine, v).state =
                MesiState::Exclusive;
            if (v.valid)
                out.push_back(v.addr);
        }
        return out;
    };
    EXPECT_EQ(victims(11), victims(11));
    EXPECT_NE(victims(11), victims(12)); // the seed actually matters
}

TEST(CacheArrayPeek, NoSideEffectsOnReplacement)
{
    // peek() (and the const lookup alias) must not promote: under
    // LIP the victim is way 0 regardless of how often the other
    // lines are peeked. The non-const lookup may move the MRU-way
    // hint, but the hint is host-only and must not change victims
    // either.
    CacheArray arr(oneSet(), policyCfg(ReplacementPolicy::LIP));
    fillSet(arr);
    const CacheArray &carr = arr;
    for (int k = 0; k < 8; ++k) {
        EXPECT_NE(arr.peek(0), nullptr);
        EXPECT_NE(carr.lookup(0x20), nullptr);
        EXPECT_NE(arr.lookup(0x60), nullptr); // hint moves, stamps don't
    }
    CacheArray::Victim v;
    arr.allocate(0x1000, v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u);
}

TEST(MarkovPrefetcher, LearnsRecordedTransitions)
{
    PrefetcherConfig cfg;
    cfg.lineBytes = kLine;
    MarkovPrefetcher pf(cfg);

    // Distinct rows of the 256-entry direct-mapped table (line
    // numbers differ mod 256); a conflict would retag the row.
    const Addr A = 0x1000, B = 0x1100;
    EXPECT_TRUE(pf.onMiss(A).empty()); // cold
    EXPECT_TRUE(pf.onMiss(B).empty()); // records A -> B
    auto pred = pf.onMiss(A);          // records B -> A, predicts from A
    ASSERT_EQ(pred.size(), 1u);
    EXPECT_EQ(pred.front(), B);
    EXPECT_EQ(pf.transitionsRecorded(), 2u);

    // A tagged hit chases the chain without recording.
    auto chase = pf.onPrefetchHit(B);
    ASSERT_EQ(chase.size(), 1u);
    EXPECT_EQ(chase.front(), A);
    EXPECT_EQ(pf.transitionsRecorded(), 2u);
}

TEST(MarkovPrefetcher, SuccessorsAreMruOrderedAndBounded)
{
    PrefetcherConfig cfg;
    cfg.lineBytes = kLine;
    cfg.markovSuccessors = 2;
    MarkovPrefetcher pf(cfg);

    const Addr A = 0x1000, B = 0x1100, C = 0x1200, D = 0x1300;
    pf.onMiss(A);
    pf.onMiss(B); // A -> B
    pf.onMiss(A);
    pf.onMiss(C); // A -> C
    pf.onMiss(A);
    pf.onMiss(D); // A -> D, evicting the LRU successor B
    auto pred = pf.onMiss(A);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_EQ(pred[0], D); // most recent first
    EXPECT_EQ(pred[1], C);
}

TEST(StreamBufferPrefetcher, AllocatesOnMissAndRunsAhead)
{
    PrefetcherConfig cfg;
    cfg.lineBytes = kLine;
    cfg.streamBuffers = 2;
    cfg.streamBufferDepth = 4;
    StreamBufferPrefetcher pf(cfg);

    auto lines = pf.onMiss(0x1000);
    ASSERT_EQ(lines.size(), 4u);
    for (std::size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(lines[i], 0x1000 + (i + 1) * kLine);
    EXPECT_EQ(pf.buffersAllocated(), 1u);

    // Consuming the buffer head tops the stream back up by one line.
    auto more = pf.onPrefetchHit(0x1000 + kLine);
    ASSERT_EQ(more.size(), 1u);
    EXPECT_EQ(more.front(), 0x1000 + 5 * kLine);

    // A hit that no buffer owns is ignored.
    EXPECT_TRUE(pf.onPrefetchHit(0x9000).empty());
}

TEST(PolicySweep, MarkovBipParallelMatchesSerialBitIdentical)
{
    // A non-default policy point (BIP arrays + Markov prefetch) must
    // be as deterministic as the default: the per-job stat digests
    // cannot depend on sweep worker count.
    WorkloadParams tiny;
    tiny.scale = 0;

    std::vector<PolicyPoint> pts = {
        {"bip", ReplacementPolicy::BIP, ReplacementPolicy::BIP,
         PrefetchPolicy::Stream, true},
        {"markov", ReplacementPolicy::LRU, ReplacementPolicy::LRU,
         PrefetchPolicy::Markov, true},
    };

    auto makeSpec = [&] {
        SweepSpec spec("policy_determinism");
        spec.base(makeConfig(2, MemModel::CC))
            .baseParams(tiny)
            .workloads({"fir"})
            .modelAxis({MemModel::CC})
            .policyAxis(pts);
        return spec;
    };

    SweepOptions serial;
    serial.jobs = 1;
    serial.echoLogs = false;
    SweepOptions parallel;
    parallel.jobs = 4;
    parallel.echoLogs = false;

    SweepResult a = runSweep(makeSpec(), serial);
    SweepResult b = runSweep(makeSpec(), parallel);

    ASSERT_EQ(a.jobs().size(), 2u);
    ASSERT_EQ(b.jobs().size(), 2u);
    for (const auto &ja : a.jobs()) {
        const JobResult &jb = b.at(ja.job.id);
        ASSERT_TRUE(ja.ran) << ja.error;
        ASSERT_TRUE(jb.ran) << jb.error;
        EXPECT_EQ(ja.run.stats.toStatSet().digest(),
                  jb.run.stats.toStatSet().digest())
            << ja.job.id;
    }
}

} // namespace
} // namespace cmpmem
