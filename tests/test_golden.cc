/**
 * @file
 * Golden simulated-stats digests (DESIGN.md §14). Each case pins the
 * full StatSet of one (workload, model) point at the canonical gate
 * configuration — 4 cores, Table 2 defaults, smoke scale — to a
 * committed FNV-1a digest. The simulator is bit-reproducible, so any
 * digest drift is a real change to simulated behaviour: review it,
 * then regenerate the constants from the failure message (and the
 * BENCH baselines via scripts/check.sh --update-baselines) in the
 * same commit.
 *
 * Also pins the system-level geometry contract behind calendar-queue
 * auto-tuning: bucket shift is host-performance-only, so every model
 * stat except the calendar telemetry itself must be bit-identical
 * across geometries.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

/** The pinned gate configuration for golden runs. */
SystemConfig
goldenConfig(MemModel model)
{
    return makeConfig(4, model);
}

WorkloadParams
goldenParams()
{
    WorkloadParams p;
    p.scale = 0;
    return p;
}

struct GoldenCase
{
    const char *workload;
    MemModel model;
    const char *digest;
};

std::string
goldenName(const testing::TestParamInfo<GoldenCase> &info)
{
    return std::string(info.param.workload) + "_" +
           to_string(info.param.model);
}

class Golden : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(Golden, StatsDigestMatchesCommittedValue)
{
    const GoldenCase &c = GetParam();
    RunResult r = runWorkload(c.workload, goldenConfig(c.model),
                              goldenParams());
    ASSERT_TRUE(r.verified);
    EXPECT_EQ(r.stats.toStatSet().digest(), c.digest)
        << "simulated stats changed for " << c.workload << "/"
        << to_string(c.model)
        << "; if intended, update this constant and regenerate "
           "baselines/ (scripts/check.sh --update-baselines)\n"
        << r.stats.toStatSet().format();
}

// Regenerate by running this suite and copying the digests from the
// failure messages.
constexpr GoldenCase kGoldenCases[] = {
    {"art", MemModel::CC, "fnv1a:8dc86d409fa57c4c"},
    {"art", MemModel::STR, "fnv1a:23d4d9e8a90f7529"},
    {"fem", MemModel::CC, "fnv1a:d6009195288374d2"},
    {"fem", MemModel::STR, "fnv1a:7e268246f5ce2a3f"},
    {"bitonic", MemModel::CC, "fnv1a:f076ff5384b05583"},
    {"bitonic", MemModel::STR, "fnv1a:abe822d60b62e180"},
};

INSTANTIATE_TEST_SUITE_P(Workloads, Golden,
                         testing::ValuesIn(kGoldenCases), goldenName);

// The digest algorithm itself is pinned: if the hashing ever
// changes, every committed golden constant and BENCH baseline goes
// stale at once, so make that a one-line failure here.
TEST(GoldenDigest, AlgorithmIsStable)
{
    StatSet s;
    s.set("a", 1.0);
    s.set("b", 0.5);
    s.set("c", -0.0); // normalized to +0.0 before hashing
    EXPECT_EQ(s.digest(), "fnv1a:c32a2510e8743721");

    StatSet zero;
    zero.set("a", 1.0);
    zero.set("b", 0.5);
    zero.set("c", 0.0);
    EXPECT_EQ(zero.digest(), s.digest());

    StatSet reordered;
    reordered.set("b", 0.5);
    reordered.set("a", 1.0);
    reordered.set("c", 0.0);
    EXPECT_NE(reordered.digest(), s.digest());
}

// ---------------------------------------------------------------- //
// Calendar geometry is host-only at system level                   //
// ---------------------------------------------------------------- //

/** Every stat except the calendar telemetry, compared bitwise. */
void
expectModelStatsIdentical(const RunStats &a, const RunStats &b,
                          const char *label)
{
    StatSet sa = a.toStatSet();
    StatSet sb = b.toStatSet();
    ASSERT_EQ(sa.names().size(), sb.names().size());
    for (const std::string &name : sa.names()) {
        if (name == "sim.calendar_overflows" ||
            name == "sim.calendar_bucket_shift")
            continue;
        EXPECT_EQ(sa.get(name), sb.get(name)) << label << ": " << name;
    }
}

TEST(CalendarGeometry, BucketShiftNeverChangesModelStats)
{
    WorkloadParams p = goldenParams();
    p.seed = 42;
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        SystemConfig base = goldenConfig(m);
        RunResult a = runWorkload("stress", base, p);

        SystemConfig wide = base;
        wide.eq.bucketShift = 12;
        RunResult b = runWorkload("stress", wide, p);

        ASSERT_TRUE(a.verified && b.verified);
        EXPECT_EQ(b.stats.calendarBucketShift, 12u);
        expectModelStatsIdentical(a.stats, b.stats, to_string(m));
        EXPECT_DOUBLE_EQ(a.energy.totalMj(), b.energy.totalMj());
    }
}

TEST(CalendarGeometry, AutoTuneIsBitIdenticalToItsChosenShift)
{
    WorkloadParams p = goldenParams();
    p.seed = 42;
    SystemConfig base = goldenConfig(MemModel::CC);

    SystemConfig tuned = base;
    tuned.eq.autoTune = true;
    RunResult t = runWorkload("stress", tuned, p);
    ASSERT_TRUE(t.verified);

    // Rerun with the shift the tuner picked, statically configured:
    // the auto-tuned run must be indistinguishable, dry-run and all.
    SystemConfig pinned = base;
    pinned.eq.bucketShift =
        std::uint32_t(t.stats.calendarBucketShift);
    RunResult s = runWorkload("stress", pinned, p);
    ASSERT_TRUE(s.verified);
    EXPECT_EQ(t.stats.toStatSet().digest(),
              s.stats.toStatSet().digest());

    // And against the default geometry, the model stats still agree.
    RunResult d = runWorkload("stress", base, p);
    expectModelStatsIdentical(t.stats, d.stats, "autotune");
}

} // namespace
} // namespace cmpmem
