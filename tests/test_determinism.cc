/**
 * @file
 * Determinism and timing-sanity tests. The simulator must be
 * bit-reproducible (same configuration -> same tick count and same
 * counters), and speedup curves must behave physically (more cores
 * never make a data-parallel workload substantially slower).
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

struct DetCase
{
    const char *workload;
    MemModel model;
};

std::string
detName(const testing::TestParamInfo<DetCase> &info)
{
    return std::string(info.param.workload) + "_" +
           to_string(info.param.model);
}

class Determinism : public testing::TestWithParam<DetCase>
{
};

TEST_P(Determinism, IdenticalRunsProduceIdenticalResults)
{
    const DetCase &c = GetParam();
    WorkloadParams p;
    p.scale = 0;
    SystemConfig cfg = makeConfig(4, c.model);

    RunResult a = runWorkload(c.workload, cfg, p);
    RunResult b = runWorkload(c.workload, cfg, p);

    EXPECT_EQ(a.stats.execTicks, b.stats.execTicks);
    EXPECT_EQ(a.stats.coreTotal.instructions(),
              b.stats.coreTotal.instructions());
    EXPECT_EQ(a.stats.l1Total.demandMisses(),
              b.stats.l1Total.demandMisses());
    EXPECT_EQ(a.stats.dramReadBytes, b.stats.dramReadBytes);
    EXPECT_EQ(a.stats.dramWriteBytes, b.stats.dramWriteBytes);
    EXPECT_DOUBLE_EQ(a.energy.totalMj(), b.energy.totalMj());
}

constexpr DetCase kDetCases[] = {
    {"fir", MemModel::CC},   {"fir", MemModel::STR},
    {"merge", MemModel::CC}, {"merge", MemModel::STR},
    {"h264", MemModel::CC},  {"h264", MemModel::STR},
    {"art", MemModel::CC},   {"art", MemModel::STR},
};

INSTANTIATE_TEST_SUITE_P(Workloads, Determinism,
                         testing::ValuesIn(kDetCases), detName);

class ScalingSanity : public testing::TestWithParam<const char *>
{
};

TEST_P(ScalingSanity, MoreCoresNeverSubstantiallySlower)
{
    WorkloadParams p;
    p.scale = 0;
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        Tick prev = 0;
        for (int cores : {1, 4, 16}) {
            RunResult r =
                runWorkload(GetParam(), makeConfig(cores, m), p);
            ASSERT_TRUE(r.verified);
            if (prev != 0) {
                // Allow slack for sync-limited tails and channel
                // saturation, but forbid pathological slowdowns.
                EXPECT_LT(r.stats.execTicks, prev * 5 / 4)
                    << GetParam() << " " << to_string(m) << " "
                    << cores;
            }
            prev = r.stats.execTicks;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ScalingSanity,
                         testing::Values("fir", "depth", "fem",
                                         "jpeg_enc", "bitonic"));

//
// The randomized coherence stress generator must itself be
// deterministic: its op streams are a pure function of the seed, so
// identical (seed, cores, model) runs are bit-identical, and
// different seeds genuinely change the traffic.
//

TEST(StressDeterminism, SameSeedSameStats)
{
    WorkloadParams p;
    p.scale = 0;
    p.seed = 42;
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        SystemConfig cfg = makeConfig(4, m);
        cfg.checkCoherence = true;
        RunResult a = runWorkload("stress", cfg, p);
        RunResult b = runWorkload("stress", cfg, p);
        ASSERT_TRUE(a.verified);
        EXPECT_EQ(a.stats.execTicks, b.stats.execTicks)
            << to_string(m);
        EXPECT_EQ(a.stats.coreTotal.instructions(),
                  b.stats.coreTotal.instructions());
        EXPECT_EQ(a.stats.l1Total.demandMisses(),
                  b.stats.l1Total.demandMisses());
        EXPECT_EQ(a.stats.dramReadBytes, b.stats.dramReadBytes);
        EXPECT_EQ(a.stats.dramWriteBytes, b.stats.dramWriteBytes);
        EXPECT_EQ(a.stats.checkerEvents, b.stats.checkerEvents);
        EXPECT_EQ(a.stats.checkerViolations, 0u);
        EXPECT_DOUBLE_EQ(a.energy.totalMj(), b.energy.totalMj());
    }
}

/**
 * Golden regression pinning the stress workload's RunStats to the
 * exact values produced before the calendar-queue event engine
 * landed (recorded from the std::priority_queue implementation at
 * scale 0, seed 42, 4 cores, checker on). Any event-ordering drift
 * in a future engine change shows up here as a bit-level diff, not
 * as a vague "numbers moved".
 */
TEST(StressDeterminism, GoldenStatsMatchRecordedBaseline)
{
    struct Golden
    {
        MemModel model;
        Tick execTicks;
        std::uint64_t instructions, l1DemandMisses;
        std::uint64_t dramReadBytes, dramWriteBytes;
        std::uint64_t checkerEvents, busBytes, xbarBytes;
        std::uint64_t l2Hits, l2Misses;
        double energyMj;
    };
    constexpr Golden kGolden[] = {
        {MemModel::CC, 2147850, 516, 182, 3776, 2464, 1532, 11352,
         8488, 103, 118, 0.00086780220000000005},
        {MemModel::STR, 2062350, 516, 133, 3776, 2400, 1223, 9352,
         9352, 157, 118, 0.00085317720000000006},
    };

    WorkloadParams p;
    p.scale = 0;
    p.seed = 42;
    for (const Golden &g : kGolden) {
        SystemConfig cfg = makeConfig(4, g.model);
        cfg.checkCoherence = true;
        RunResult r = runWorkload("stress", cfg, p);
        ASSERT_TRUE(r.verified) << to_string(g.model);
        EXPECT_EQ(r.stats.execTicks, g.execTicks) << to_string(g.model);
        EXPECT_EQ(r.stats.coreTotal.instructions(), g.instructions);
        EXPECT_EQ(r.stats.l1Total.demandMisses(), g.l1DemandMisses);
        EXPECT_EQ(r.stats.dramReadBytes, g.dramReadBytes);
        EXPECT_EQ(r.stats.dramWriteBytes, g.dramWriteBytes);
        EXPECT_EQ(r.stats.checkerEvents, g.checkerEvents);
        EXPECT_EQ(r.stats.checkerViolations, 0u);
        EXPECT_EQ(r.stats.busBytes, g.busBytes);
        EXPECT_EQ(r.stats.xbarBytes, g.xbarBytes);
        EXPECT_EQ(r.stats.l2Hits, g.l2Hits);
        EXPECT_EQ(r.stats.l2Misses, g.l2Misses);
        EXPECT_DOUBLE_EQ(r.energy.totalMj(), g.energyMj);
        // The telemetry itself must also be deterministic.
        EXPECT_GT(r.stats.eventsExecuted, 0u);
        EXPECT_GT(r.stats.peakPendingEvents, 0u);
        RunResult r2 = runWorkload("stress", cfg, p);
        EXPECT_EQ(r.stats.eventsExecuted, r2.stats.eventsExecuted);
        EXPECT_EQ(r.stats.peakPendingEvents, r2.stats.peakPendingEvents);
        EXPECT_EQ(r.stats.calendarOverflows, r2.stats.calendarOverflows);
    }
}

TEST(StressDeterminism, DifferentSeedDifferentStream)
{
    WorkloadParams a, b;
    a.scale = b.scale = 0;
    a.seed = 1;
    b.seed = 2;
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    RunResult ra = runWorkload("stress", cfg, a);
    RunResult rb = runWorkload("stress", cfg, b);
    ASSERT_TRUE(ra.verified);
    ASSERT_TRUE(rb.verified);
    // A one-word change anywhere in the op streams already perturbs
    // the timing; requiring execTicks to differ is the strongest
    // cheap signal that the seed reached the generator.
    EXPECT_NE(ra.stats.execTicks, rb.stats.execTicks);
}

TEST(StressDeterminism, SharingDegreeChangesTraffic)
{
    WorkloadParams lo, hi;
    lo.scale = hi.scale = 0;
    lo.seed = hi.seed = 7;
    lo.sharingDegree = 1;
    hi.sharingDegree = 8;
    SystemConfig cfg = makeConfig(8, MemModel::CC);
    RunResult rl = runWorkload("stress", cfg, lo);
    RunResult rh = runWorkload("stress", cfg, hi);
    ASSERT_TRUE(rl.verified);
    ASSERT_TRUE(rh.verified);
    EXPECT_NE(rl.stats.execTicks, rh.stats.execTicks);
}

/**
 * Golden regressions pinning one CC and one STR workload to the
 * exact RunStats recorded before the memory-access fast path (the
 * page-translation cache, shift/mask set indexing, MRU-way probe,
 * and per-core line-hit micro path) landed. Run with the fast path
 * both enabled and force-disabled: the two configurations must be
 * bit-identical to each other and to the recorded baseline, which is
 * the fast path's core contract.
 */
TEST(FastPathGolden, StatsMatchPreFastPathBaseline)
{
    struct Golden
    {
        const char *workload;
        MemModel model;
        Tick execTicks;
        std::uint64_t instructions, l1DemandMisses;
        std::uint64_t loadHits, storeHits;
        std::uint64_t dramReadBytes, dramWriteBytes;
        std::uint64_t busBytes, xbarBytes, l2Hits, l2Misses;
        double energyMj;
    };
    constexpr Golden kGolden[] = {
        {"fir", MemModel::CC, 90897550, 98338, 4114, 14429, 14267,
         131104, 65504, 230064, 229664, 2054, 4097,
         0.049725057599999997},
        {"mpeg2", MemModel::STR, 1305551650, 3949012, 59, 0, 362,
         123392, 123360, 865240, 865240, 14739, 7703,
         0.79424939880000012},
    };

    WorkloadParams p;
    p.scale = 0;
    for (const Golden &g : kGolden) {
        for (bool fast : {true, false}) {
            SystemConfig cfg = makeConfig(4, g.model);
            cfg.memFastPath = fast;
            RunResult r = runWorkload(g.workload, cfg, p);
            std::string tag = std::string(g.workload) + " " +
                              to_string(g.model) +
                              (fast ? " fast" : " slow");
            ASSERT_TRUE(r.verified) << tag;
            EXPECT_EQ(r.stats.execTicks, g.execTicks) << tag;
            EXPECT_EQ(r.stats.coreTotal.instructions(), g.instructions)
                << tag;
            EXPECT_EQ(r.stats.l1Total.demandMisses(), g.l1DemandMisses)
                << tag;
            EXPECT_EQ(r.stats.l1Total.loadHits, g.loadHits) << tag;
            EXPECT_EQ(r.stats.l1Total.storeHits, g.storeHits) << tag;
            EXPECT_EQ(r.stats.dramReadBytes, g.dramReadBytes) << tag;
            EXPECT_EQ(r.stats.dramWriteBytes, g.dramWriteBytes) << tag;
            EXPECT_EQ(r.stats.busBytes, g.busBytes) << tag;
            EXPECT_EQ(r.stats.xbarBytes, g.xbarBytes) << tag;
            EXPECT_EQ(r.stats.l2Hits, g.l2Hits) << tag;
            EXPECT_EQ(r.stats.l2Misses, g.l2Misses) << tag;
            EXPECT_DOUBLE_EQ(r.energy.totalMj(), g.energyMj) << tag;
            // The telemetry distinguishes the two configurations
            // even though the simulated behaviour cannot.
            if (fast)
                EXPECT_GT(r.stats.l1Total.fastpathHits, 0u) << tag;
            else
                EXPECT_EQ(r.stats.l1Total.fastpathHits, 0u) << tag;
        }
    }
}

TEST(TimingSanity, ComponentsNeverExceedExecTime)
{
    WorkloadParams p;
    p.scale = 0;
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        RunResult r = runWorkload("merge", makeConfig(8, m), p);
        for (const auto &cs : r.stats.perCore) {
            EXPECT_LE(cs.totalTicks(), r.stats.execTicks + 1)
                << to_string(m);
        }
    }
}

TEST(TimingSanity, DramBytesMatchAccessCounts)
{
    WorkloadParams p;
    p.scale = 0;
    RunResult r = runWorkload("fir", makeConfig(4, MemModel::CC), p);
    // Line-granular channel: bytes are a multiple of 32.
    EXPECT_EQ(r.stats.dramReadBytes % 32, 0u);
    EXPECT_EQ(r.stats.dramWriteBytes % 32, 0u);
}

} // namespace
} // namespace cmpmem
