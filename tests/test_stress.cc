/**
 * @file
 * Runtime MESI checker + randomized coherence stress harness tests.
 *
 * Two halves:
 *
 *  - a configuration matrix running the hidden "stress" workload
 *    under the attached checker (core counts 1/4/16, CC and STR,
 *    prefetch and PFS variants, different sharing degrees) and
 *    requiring zero violations with real event coverage;
 *
 *  - checker self-validation on a hand-built cache stack: clean
 *    traffic stays clean, while forged illegal states (M+S, dual-M),
 *    data corrupted behind the checker's back, and duplicate
 *    MSHR/store-buffer entries must each be detected and reported
 *    with timestamp, core id, line address, and a transition trace.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "check/coherence_checker.hh"
#include "cmpmem.hh"
#include "mem/dram.hh"
#include "mem/l1_controller.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"

namespace cmpmem
{
namespace
{

//
// Configuration matrix: the stress generator must verify and run
// violation-free under the checker in every memory model.
//

struct StressCase
{
    const char *tag;
    int cores;
    MemModel model;
    bool prefetch;
    bool pfs;
    std::uint64_t seed;
    int sharingDegree;
};

std::string
stressName(const testing::TestParamInfo<StressCase> &info)
{
    return info.param.tag;
}

class StressMatrix : public testing::TestWithParam<StressCase>
{
};

TEST_P(StressMatrix, RunsCleanUnderChecker)
{
    const StressCase &c = GetParam();
    SystemConfig cfg = makeConfig(c.cores, c.model);
    cfg.checkCoherence = true;
    cfg.hwPrefetch = c.prefetch;
    cfg.pfsEnabled = c.pfs;

    WorkloadParams p;
    p.scale = 0;
    p.seed = c.seed;
    p.sharingDegree = c.sharingDegree;

    RunResult r = runWorkload("stress", cfg, p);
    EXPECT_TRUE(r.verified) << c.tag;
    EXPECT_EQ(r.stats.checkerViolations, 0u) << c.tag;
    // The checker really watched the run, it was not a no-op attach.
    EXPECT_GT(r.stats.checkerEvents, 0u) << c.tag;
}

constexpr StressCase kStressCases[] = {
    {"cc1", 1, MemModel::CC, false, false, 11, 4},
    {"cc4", 4, MemModel::CC, false, false, 12, 4},
    {"cc16", 16, MemModel::CC, false, false, 13, 8},
    {"str1", 1, MemModel::STR, false, false, 14, 4},
    {"str4", 4, MemModel::STR, false, false, 15, 4},
    {"str16", 16, MemModel::STR, false, false, 16, 8},
    {"cc4_prefetch", 4, MemModel::CC, true, false, 17, 2},
    {"cc4_pfs", 4, MemModel::CC, false, true, 18, 4},
    // Sharing-degree extremes: fully private groups vs one hot pool.
    {"cc8_degree1", 8, MemModel::CC, false, false, 19, 1},
    {"cc8_degree8", 8, MemModel::CC, false, false, 20, 8},
};

INSTANTIATE_TEST_SUITE_P(Matrix, StressMatrix,
                         testing::ValuesIn(kStressCases), stressName);

/** A longer soak at scale 1 to reach deeper interleavings. */
TEST(StressSoak, Scale1FourCoresClean)
{
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    cfg.checkCoherence = true;
    WorkloadParams p;
    p.seed = 99;
    RunResult r = runWorkload("stress", cfg, p);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.checkerViolations, 0u);
}

/** Off by default: no checker object, no events, nothing counted. */
TEST(StressHarness, CheckerOffByDefault)
{
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    ASSERT_FALSE(cfg.checkCoherence);
    CmpSystem sys(cfg);
    EXPECT_EQ(sys.checker(), nullptr);

    RunResult r = runWorkload("stress", cfg, {});
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.stats.checkerEvents, 0u);
    EXPECT_EQ(r.stats.checkerViolations, 0u);
}

/**
 * "stress" is not a paper application: creatable by name, invisible
 * to the sweeps that iterate workloadNames().
 */
TEST(StressHarness, HiddenFromWorkloadSweeps)
{
    auto names = workloadNames();
    EXPECT_EQ(std::count(names.begin(), names.end(), "stress"), 0);
    auto w = createWorkload("stress", {});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), "stress");
}

//
// Checker self-validation on a hand-built stack. Traffic here is
// sequential (eq.run() after every operation), so there are no
// issue-time-snoop overlaps: any violation the checker reports in
// these tests is one we forged on purpose.
//

class CheckerFixture : public testing::Test
{
  protected:
    void
    build(int cores)
    {
        checker = std::make_unique<CoherenceChecker>(fmem, 32);
        dram = std::make_unique<DramChannel>(DramConfig{});
        l2 = std::make_unique<L2Cache>(L2Config{}, *dram);
        fabric = std::make_unique<CoherenceFabric>(
            InterconnectConfig{}, cores, 4, *l2, *dram);
        l2->setObserver(checker.get());
        fabric->attachChecker(checker.get());
        for (int i = 0; i < cores; ++i) {
            l1s.push_back(std::make_unique<L1Controller>(
                i, L1Config{}, eq, *fabric));
            l1s.back()->attachChecker(checker.get());
        }
    }

    void
    load(int core, Addr a)
    {
        l1s[core]->load(eq.now(), a, [](Tick) {});
        eq.run();
    }

    void
    store(int core, Addr a, bool pfs = false)
    {
        // Mirror the Context contract: the functional value lands in
        // memory at issue, before the timing store is posted (the
        // checker snapshots its golden copy from this).
        fmem.write<std::uint32_t>(a, std::uint32_t(a) ^ 0xc0ffee);
        if (checker)
            checker->onStoreData(eq.now(), core, Addr(a & ~Addr(31)));
        l1s[core]->store(eq.now(), a, pfs, [](Tick) {});
        eq.run();
    }

    EventQueue eq;
    FunctionalMemory fmem;
    std::unique_ptr<CoherenceChecker> checker;
    std::unique_ptr<DramChannel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CoherenceFabric> fabric;
    std::vector<std::unique_ptr<L1Controller>> l1s;
};

TEST_F(CheckerFixture, CleanTrafficReportsNothing)
{
    build(4);
    load(0, 0x1000);
    load(1, 0x1000); // downgrade to shared
    store(2, 0x1000); // invalidate both, take ownership
    store(2, 0x1000);
    load(3, 0x1000); // dirty supply + writeback
    store(0, 0x2000, true); // PFS allocate
    load(1, 0x3000);
    EXPECT_EQ(checker->audit(eq.now()), 0u);
    EXPECT_EQ(checker->violations(), 0u);
    EXPECT_EQ(checker->overlapsExcused(), 0u);
    EXPECT_GT(checker->eventsObserved(), 0u);
    EXPECT_TRUE(checker->report().empty());
}

/**
 * Satellite: forge an illegal M+S pair behind the checker's back and
 * require the audit to catch it (shadow disagreement + real-tag SWMR)
 * and to format a debuggable report.
 */
TEST_F(CheckerFixture, ForgedSharedBesideModifiedIsCaught)
{
    build(4);
    store(0, 0x1000); // core 0 legitimately holds M
    ASSERT_EQ(checker->violations(), 0u);

    l1s[1]->forgeStateForTest(0x1000, MesiState::Shared);
    EXPECT_GT(checker->audit(eq.now()), 0u);
    EXPECT_GT(checker->violations(), 0u);

    const std::string &rep = checker->report();
    // Timestamp, core id, line address, and the transition trace all
    // appear in the formatted report.
    EXPECT_NE(rep.find("coherence violation @"), std::string::npos);
    EXPECT_NE(rep.find("core 1"), std::string::npos);
    EXPECT_NE(rep.find("0x1000"), std::string::npos);
    EXPECT_NE(rep.find("last transitions for 0x1000"),
              std::string::npos);
    EXPECT_NE(rep.find("Shared copies"), std::string::npos);
    // The per-line ring buffer remembers how core 0 got to M.
    EXPECT_NE(checker->traceFor(0x1000).find("-> M"),
              std::string::npos);
}

TEST_F(CheckerFixture, ForgedSecondOwnerIsCaught)
{
    build(4);
    store(0, 0x1000);
    l1s[2]->forgeStateForTest(0x1000, MesiState::Modified);
    EXPECT_GT(checker->audit(eq.now()), 0u);
    EXPECT_NE(checker->report().find("single-writer violated"),
              std::string::npos);
}

/**
 * Satellite: data-value integrity. Mutate functional memory without
 * an onStoreData() observation; the golden differential must flag it.
 */
TEST_F(CheckerFixture, UnobservedDataMutationIsCaught)
{
    build(2);
    store(0, 0x2000); // golden copy captured here
    ASSERT_EQ(checker->violations(), 0u);

    fmem.write<std::uint32_t>(0x2004, 0xdeadbeef); // behind its back
    EXPECT_GT(checker->audit(eq.now()), 0u);
    EXPECT_NE(checker->report().find("data differential failed"),
              std::string::npos);
    EXPECT_NE(checker->report().find("byte offset 4"),
              std::string::npos);
}

TEST_F(CheckerFixture, DuplicateMshrAllocationIsCaught)
{
    build(2);
    checker->onMshrAllocate(10, 0, 0x4000);
    EXPECT_EQ(checker->violations(), 0u);
    checker->onMshrAllocate(20, 0, 0x4000);
    EXPECT_EQ(checker->violations(), 1u);
    EXPECT_NE(checker->report().find("duplicate MSHR allocation"),
              std::string::npos);
    // Completion drains the entry; a second completion is an error.
    checker->onMshrComplete(30, 0, 0x4000);
    checker->onMshrComplete(40, 0, 0x4000);
    EXPECT_EQ(checker->violations(), 2u);
}

TEST_F(CheckerFixture, DuplicateStoreBufferEntryIsCaught)
{
    build(2);
    checker->onSbInsert(10, 1, 0x5000);
    checker->onSbInsert(20, 1, 0x5000);
    EXPECT_EQ(checker->violations(), 1u);
    EXPECT_NE(checker->report().find("duplicate store-buffer entry"),
              std::string::npos);
}

/** Real traffic never trips the MSHR/store-buffer duplicate checks:
 *  same-line requests merge instead of re-allocating. */
TEST_F(CheckerFixture, MergedRequestsDoNotFalsePositive)
{
    build(1);
    l1s[0]->load(0, 0x6000, [](Tick) {});
    l1s[0]->load(0, 0x6008, [](Tick) {}); // merges into the MSHR
    l1s[0]->store(0, 0x7000, false, [](Tick) {});
    l1s[0]->store(0, 0x7004, false, [](Tick) {}); // coalesces in SB
    eq.run();
    EXPECT_EQ(checker->audit(eq.now()), 0u);
    EXPECT_EQ(checker->violations(), 0u);
}

} // namespace
} // namespace cmpmem
