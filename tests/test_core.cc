/**
 * @file
 * Core-model tests: stall-category accounting, quantum flushing,
 * synchronization objects, task queues, I-cache model, and atomic
 * serialization, all driven through real kernels on a CmpSystem.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

TEST(ICacheModel, DeterministicAccrual)
{
    ICacheConfig cfg;
    cfg.missLatency = 1000;
    ICacheModel ic(cfg);
    ic.setMissesPerKiloInstr(2.0); // 1 miss per 500 bundles
    Tick stall = 0;
    for (int i = 0; i < 10; ++i)
        stall += ic.accrue(100);
    EXPECT_EQ(ic.fetches(), 1000u);
    EXPECT_EQ(ic.misses(), 2u);
    EXPECT_EQ(stall, 2000u);
}

TEST(ICacheModel, ZeroRateNeverMisses)
{
    ICacheModel ic(ICacheConfig{});
    EXPECT_EQ(ic.accrue(1000000), 0u);
    EXPECT_EQ(ic.misses(), 0u);
}

TEST(Sync, BarrierReleasesAllAtLastArrival)
{
    Barrier b(3, 100);
    Tick released[3] = {0, 0, 0};
    Tick release_tick = 0;
    EXPECT_FALSE(b.arrive(10, [&](Tick t) { released[0] = t; },
                          release_tick));
    EXPECT_FALSE(b.arrive(50, [&](Tick t) { released[1] = t; },
                          release_tick));
    EXPECT_TRUE(b.arrive(30, [&](Tick t) { released[2] = t; },
                         release_tick));
    EXPECT_EQ(release_tick, 150u); // latest arrival + latency
    EXPECT_EQ(released[0], 150u);
    EXPECT_EQ(released[1], 150u);
    EXPECT_EQ(b.episodes(), 1u);

    // Reusable.
    EXPECT_FALSE(b.arrive(200, [](Tick) {}, release_tick));
}

TEST(Sync, LockFifoHandoff)
{
    Lock l(0x100, 10);
    EXPECT_TRUE(l.tryAcquire(0, [](Tick) {}));
    Tick got1 = 0, got2 = 0;
    EXPECT_FALSE(l.tryAcquire(5, [&](Tick t) { got1 = t; }));
    EXPECT_FALSE(l.tryAcquire(6, [&](Tick t) { got2 = t; }));
    l.release(100);
    EXPECT_EQ(got1, 110u);
    EXPECT_EQ(got2, 0u); // still queued
    l.release(200);
    EXPECT_EQ(got2, 210u);
    l.release(300);
    EXPECT_FALSE(l.held());
    EXPECT_EQ(l.contendedAcquisitions(), 2u);
}

//
// Kernel-level accounting.
//

KernelTask
computeOnly(Context &ctx, Cycles n)
{
    co_await ctx.compute(n);
}

TEST(CoreAccounting, ComputeTimeIsExact)
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    sys.bindKernel(0, computeOnly(sys.context(0), 1000));
    Tick end = sys.simulate();
    // 1000 bundles at 800 MHz = 1,250,000 ps.
    EXPECT_EQ(end, 1000u * 1250u);
    EXPECT_EQ(sys.core(0).stats().usefulTicks, 1000u * 1250u);
    EXPECT_EQ(sys.core(0).stats().bundles, 1000u);
}

TEST(CoreAccounting, FrequencyScalesComputeTime)
{
    for (double ghz : {0.8, 1.6, 3.2, 6.4}) {
        SystemConfig cfg = makeConfig(1, MemModel::CC, ghz);
        CmpSystem sys(cfg);
        sys.bindKernel(0, computeOnly(sys.context(0), 10000));
        Tick end = sys.simulate();
        Tick expect = 10000u * Clock::fromMhz(ghz * 1000).period();
        EXPECT_EQ(end, expect) << ghz;
    }
}

KernelTask
loadMissChain(Context &ctx, Addr base, int n)
{
    // Pointer-chase distinct lines: every access misses.
    for (int i = 0; i < n; ++i)
        co_await ctx.load<std::uint32_t>(base + Addr(i) * 4096);
}

TEST(CoreAccounting, LoadMissesAccrueLoadStall)
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    Addr base = sys.mem().alloc(64 * 4096);
    sys.bindKernel(0, loadMissChain(sys.context(0), base, 64));
    sys.simulate();
    const CoreStats &st = sys.core(0).stats();
    // Each miss costs at least the DRAM latency.
    EXPECT_GE(st.loadStallTicks, 64u * 70u * ticksPerNs);
    EXPECT_EQ(st.loads, 64u);
    EXPECT_EQ(sys.collectStats().l1Total.loadMisses, 64u);
}

KernelTask
storeStream(Context &ctx, Addr base, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ctx.store<std::uint32_t>(base + Addr(i) * 4096, 1);
}

TEST(CoreAccounting, StoreBufferHidesMissesUntilFull)
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    CmpSystem sys(cfg);
    Addr base = sys.mem().alloc(64 * 4096);
    sys.bindKernel(0, storeStream(sys.context(0), base, 64));
    sys.simulate();
    const CoreStats &st = sys.core(0).stats();
    // 64 distinct-line store misses with an 8-entry buffer: the core
    // must have stalled for space at some point...
    EXPECT_GT(st.storeStallTicks, 0u);
    // ...but the buffer keeps 8 ownership transactions in flight, so
    // the stall is shorter than fully serialized misses would be
    // (~100 ns each through bus + L2 + DRAM).
    EXPECT_LT(st.storeStallTicks, 64u * 100u * ticksPerNs);
    // And none of that time was charged as load stalls.
    EXPECT_EQ(st.loadStallTicks, 0u);
}

KernelTask
barrierPair(Context &ctx, Barrier &bar, Cycles skew)
{
    if (ctx.tid() == 0)
        co_await ctx.compute(skew);
    co_await ctx.barrier(bar);
}

TEST(CoreAccounting, BarrierWaitCountsAsSync)
{
    SystemConfig cfg = makeConfig(2, MemModel::CC);
    CmpSystem sys(cfg);
    Barrier bar(2);
    const Cycles skew = 10000;
    for (int i = 0; i < 2; ++i)
        sys.bindKernel(i, barrierPair(sys.context(i), bar, skew));
    sys.simulate();
    // Core 1 waited roughly the skew; core 0 barely waited.
    Tick skew_ticks = skew * 1250u;
    EXPECT_GE(sys.core(1).stats().syncTicks, skew_ticks * 9 / 10);
    EXPECT_LT(sys.core(0).stats().syncTicks, skew_ticks / 10);
}

KernelTask
taskGrabber(Context &ctx, Addr counter, std::vector<int> *grabbed,
            Barrier &bar)
{
    while (true) {
        auto t = co_await ctx.nextTask(counter, 100);
        if (t < 0)
            break;
        (*grabbed)[std::size_t(t)] += 1;
        co_await ctx.compute(50);
    }
    co_await ctx.barrier(bar);
}

TEST(CoreAccounting, TaskQueueHandsOutEachTaskOnce)
{
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        SystemConfig cfg = makeConfig(4, m);
        CmpSystem sys(cfg);
        Addr counter = sys.mem().alloc(4);
        sys.mem().write<std::uint32_t>(counter, 0);
        Barrier bar(4);
        std::vector<int> grabbed(100, 0);
        for (int i = 0; i < 4; ++i)
            sys.bindKernel(i, taskGrabber(sys.context(i), counter,
                                          &grabbed, bar));
        sys.simulate();
        for (int i = 0; i < 100; ++i)
            EXPECT_EQ(grabbed[i], 1) << "task " << i << " model "
                                     << to_string(m);
        // All atomics accounted.
        EXPECT_EQ(sys.collectStats().coreTotal.atomics, 104u);
    }
}

KernelTask
lockedIncrements(Context &ctx, Lock &lock, Addr cell, int times,
                 Barrier &bar)
{
    for (int i = 0; i < times; ++i) {
        co_await ctx.lockAcquire(lock);
        auto v = co_await ctx.load<std::uint32_t>(cell);
        co_await ctx.compute(3);
        co_await ctx.store<std::uint32_t>(cell, v + 1);
        co_await ctx.lockRelease(lock);
    }
    co_await ctx.barrier(bar);
}

TEST(CoreAccounting, LockSerializesCriticalSections)
{
    SystemConfig cfg = makeConfig(4, MemModel::CC);
    CmpSystem sys(cfg);
    Addr cell = sys.mem().alloc(4);
    Lock lock(sys.mem().alloc(64));
    Barrier bar(4);
    for (int i = 0; i < 4; ++i)
        sys.bindKernel(i, lockedIncrements(sys.context(i), lock, cell,
                                           25, bar));
    sys.simulate();
    EXPECT_EQ(sys.mem().read<std::uint32_t>(cell), 100u);
    EXPECT_EQ(lock.acquisitions(), 100u);
}

TEST(CoreAccounting, QuantumBoundsSkewWithoutChangingResults)
{
    // The same workload under different quanta gives (nearly)
    // identical timing; the quantum is a simulation knob, not a
    // hardware parameter.
    Tick base_ticks = 0;
    for (Cycles q : {10u, 100u, 1000u}) {
        SystemConfig cfg = makeConfig(4, MemModel::CC);
        cfg.quantumCycles = q;
        WorkloadParams params;
        params.scale = 0;
        RunResult r = runWorkload("fir", cfg, params);
        EXPECT_TRUE(r.verified);
        if (base_ticks == 0)
            base_ticks = r.stats.execTicks;
        double ratio = double(r.stats.execTicks) / double(base_ticks);
        EXPECT_GT(ratio, 0.9) << q;
        EXPECT_LT(ratio, 1.1) << q;
    }
}

} // namespace
} // namespace cmpmem
