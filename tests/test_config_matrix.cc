/**
 * @file
 * Configuration-matrix sweep: every workload must verify under every
 * hardware option the benches toggle (prefetching, PFS, the bank
 * DRAM model, odd core counts, narrow interconnects). Guards against
 * a feature working only on the configurations it was developed on.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

enum class Variant
{
    Prefetch,
    Pfs,
    PrefetchPlusPfs,
    BankDram,
    SixCores,      ///< non-power-of-two, partial cluster
    NarrowBus,
    FastCoresSlowDram,
};

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Prefetch: return "Prefetch";
      case Variant::Pfs: return "Pfs";
      case Variant::PrefetchPlusPfs: return "PrefetchPlusPfs";
      case Variant::BankDram: return "BankDram";
      case Variant::SixCores: return "SixCores";
      case Variant::NarrowBus: return "NarrowBus";
      case Variant::FastCoresSlowDram: return "FastCoresSlowDram";
    }
    return "?";
}

SystemConfig
configFor(Variant v, MemModel model)
{
    SystemConfig cfg = makeConfig(4, model);
    switch (v) {
      case Variant::Prefetch:
        if (model == MemModel::CC) {
            cfg.hwPrefetch = true;
            cfg.prefetchDepth = 4;
        }
        break;
      case Variant::Pfs:
        cfg.pfsEnabled = (model == MemModel::CC);
        break;
      case Variant::PrefetchPlusPfs:
        if (model == MemModel::CC) {
            cfg.hwPrefetch = true;
            cfg.prefetchDepth = 8;
            cfg.pfsEnabled = true;
        }
        break;
      case Variant::BankDram:
        cfg.dram.bankModel = true;
        break;
      case Variant::SixCores:
        cfg.cores = 6;
        break;
      case Variant::NarrowBus:
        cfg.net.busWidthBytes = 8;
        cfg.net.xbarWidthBytes = 8;
        break;
      case Variant::FastCoresSlowDram:
        cfg.coreClockGhz = 6.4;
        cfg.dram.bandwidthGBps = 1.6;
        break;
    }
    return cfg;
}

using MatrixCase = std::tuple<std::string, Variant, MemModel>;

std::string
matrixName(const testing::TestParamInfo<MatrixCase> &info)
{
    return std::get<0>(info.param) + "_" +
           variantName(std::get<1>(info.param)) + "_" +
           to_string(std::get<2>(info.param));
}

class ConfigMatrix : public testing::TestWithParam<MatrixCase>
{
};

TEST_P(ConfigMatrix, WorkloadVerifies)
{
    auto [workload, variant, model] = GetParam();
    WorkloadParams params;
    params.scale = 0;
    SystemConfig cfg = configFor(variant, model);
    RunResult r = runWorkload(workload, cfg, params);
    EXPECT_TRUE(r.verified)
        << workload << " under " << variantName(variant);
    EXPECT_GT(r.stats.execTicks, 0u);
}

std::vector<MatrixCase>
allCases()
{
    std::vector<MatrixCase> cases;
    for (const auto &w : workloadNames()) {
        for (Variant v :
             {Variant::Prefetch, Variant::Pfs, Variant::BankDram,
              Variant::SixCores, Variant::FastCoresSlowDram}) {
            cases.emplace_back(w, v, MemModel::CC);
        }
        cases.emplace_back(w, Variant::BankDram, MemModel::STR);
        cases.emplace_back(w, Variant::SixCores, MemModel::STR);
    }
    // A few targeted extras on the bandwidth-sensitive workloads.
    for (const char *w : {"fir", "merge", "bitonic"}) {
        cases.emplace_back(w, Variant::PrefetchPlusPfs, MemModel::CC);
        cases.emplace_back(w, Variant::NarrowBus, MemModel::CC);
        cases.emplace_back(w, Variant::NarrowBus, MemModel::STR);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfigMatrix,
                         testing::ValuesIn(allCases()), matrixName);

} // namespace
} // namespace cmpmem
