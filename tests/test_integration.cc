/**
 * @file
 * Integration / reproduction-shape regression tests: small versions
 * of the paper's headline results that must keep holding as the
 * simulator evolves. Each test states the paper claim it guards.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

/** "For data-parallel applications with abundant data reuse, the two
 *  models perform and scale equally well" — Depth at 16 cores. */
TEST(Repro, DepthPerformsIdenticallyOnBothModels)
{
    RunResult cc = runWorkload("depth", makeConfig(16, MemModel::CC));
    RunResult str = runWorkload("depth", makeConfig(16, MemModel::STR));
    double ratio =
        double(cc.stats.execTicks) / double(str.stats.execTicks);
    EXPECT_GT(ratio, 0.93);
    EXPECT_LT(ratio, 1.08);
    // And it is the compute-bound extreme of Table 3. (Miss *rate*
    // over kernel-issued accesses is structurally inflated -- see
    // EXPERIMENTS.md -- so the intensity check uses instructions
    // per miss.)
    EXPECT_GT(double(cc.stats.coreTotal.instructions()) /
                  double(cc.stats.l1Total.demandMisses()),
              500.0);
}

/** FIR: "streaming has an energy advantage ... because it avoids
 *  superfluous refills on output data streams" + double-buffering
 *  hides latency. */
TEST(Repro, FirStreamingWinsTimeAndTraffic)
{
    RunResult cc = runWorkload("fir", makeConfig(16, MemModel::CC));
    RunResult str = runWorkload("fir", makeConfig(16, MemModel::STR));
    EXPECT_LT(str.stats.execTicks, cc.stats.execTicks);
    EXPECT_LT(str.stats.dramReadBytes, cc.stats.dramReadBytes * 0.7);
    // CC shows load stalls; STR hides them behind DMA.
    EXPECT_GT(cc.stats.coreTotal.loadStallTicks,
              10 * str.stats.coreTotal.loadStallTicks);
}

/** "Using a no-write-allocate policy for output data in the
 *  cache-based system reduces the streaming advantage" (Fig 8). */
TEST(Repro, PfsBringsCcTrafficToStreamingParity)
{
    SystemConfig pfs = makeConfig(16, MemModel::CC);
    pfs.pfsEnabled = true;
    RunResult cc = runWorkload("fir", makeConfig(16, MemModel::CC));
    RunResult ccPfs = runWorkload("fir", pfs);
    RunResult str = runWorkload("fir", makeConfig(16, MemModel::STR));

    auto total = [](const RunResult &r) {
        return r.stats.dramReadBytes + r.stats.dramWriteBytes;
    };
    EXPECT_LT(total(ccPfs), total(cc) * 0.75);
    EXPECT_LT(double(total(ccPfs)), double(total(str)) * 1.1);
    EXPECT_GT(double(total(ccPfs)), double(total(str)) * 0.9);
}

/** "The use of hardware prefetching ... eliminates the streaming
 *  advantage for some latency-bound applications" (Fig 7). */
TEST(Repro, PrefetchingClosesTheMergeSortGap)
{
    SystemConfig cc = makeConfig(2, MemModel::CC, 3.2, 12.8);
    SystemConfig pf = cc;
    pf.hwPrefetch = true;
    pf.prefetchDepth = 4;
    SystemConfig str = makeConfig(2, MemModel::STR, 3.2, 12.8);

    Tick t_cc = runWorkload("merge", cc).stats.execTicks;
    Tick t_pf = runWorkload("merge", pf).stats.execTicks;
    Tick t_str = runWorkload("merge", str).stats.execTicks;

    EXPECT_LT(t_pf, t_cc / 2);                  // large win
    EXPECT_LT(double(t_pf), double(t_str) * 1.15); // parity with STR
}

/** Figure 10: the stream-programming restructure of 179.art gives a
 *  multi-x speedup on the cache-based system at every core count. */
TEST(Repro, ArtRestructureGivesLargeSpeedup)
{
    WorkloadParams orig;
    orig.streamOptimized = false;
    for (int cores : {2, 16}) {
        Tick t_orig = runWorkload("art", makeConfig(cores, MemModel::CC),
                                  orig)
                          .stats.execTicks;
        Tick t_opt =
            runWorkload("art", makeConfig(cores, MemModel::CC))
                .stats.execTicks;
        EXPECT_GT(double(t_orig) / double(t_opt), 4.0) << cores;
    }
}

/** MPEG-2 at 800 MHz: "the two models perform almost identically";
 *  streaming also moves fewer bytes (no output refills). */
TEST(Repro, Mpeg2NearParityAt800MHz)
{
    RunResult cc = runWorkload("mpeg2", makeConfig(16, MemModel::CC));
    RunResult str = runWorkload("mpeg2", makeConfig(16, MemModel::STR));
    double ratio =
        double(cc.stats.execTicks) / double(str.stats.execTicks);
    EXPECT_GT(ratio, 0.90);
    EXPECT_LT(ratio, 1.18);
    EXPECT_LT(str.stats.dramReadBytes, cc.stats.dramReadBytes * 0.75);
}

/** H.264: "macroblock parallelism is limited" -> sync dominates the
 *  16-core breakdown in both models. */
TEST(Repro, H264SyncLimitedAt16Cores)
{
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        RunResult r = runWorkload("h264", makeConfig(16, m));
        NormBreakdown b =
            normalizedBreakdown(r.stats, r.stats.execTicks);
        EXPECT_GT(b.sync, b.useful) << to_string(m);
    }
}

/** Table 3 ordering: compute intensity ranks depth above mpeg2
 *  above fir; off-chip bandwidth ranks the other way. */
TEST(Repro, Table3OrderingHolds)
{
    auto instrPerMiss = [](const RunResult &r) {
        return double(r.stats.coreTotal.instructions()) /
               double(r.stats.l1Total.demandMisses());
    };
    RunResult depth = runWorkload("depth", makeConfig(16, MemModel::CC));
    RunResult mpeg2 = runWorkload("mpeg2", makeConfig(16, MemModel::CC));
    RunResult fir = runWorkload("fir", makeConfig(16, MemModel::CC));

    EXPECT_GT(instrPerMiss(depth), instrPerMiss(mpeg2));
    EXPECT_GT(instrPerMiss(mpeg2), instrPerMiss(fir));

    EXPECT_GT(fir.stats.offChipBytesPerSec(),
              mpeg2.stats.offChipBytesPerSec());
    EXPECT_GT(mpeg2.stats.offChipBytesPerSec(),
              depth.stats.offChipBytesPerSec());
}

/** Bandwidth + the paper's remedies (Fig 6 / Abstract): at the top
 *  bandwidth, prefetching plus non-allocating stores eliminate the
 *  streaming advantage for FIR. (At our calibration FIR stays
 *  channel-bound at every swept bandwidth, so the raw CC/STR ratio
 *  floors at the traffic ratio; the remedies attack the traffic.) */
TEST(Repro, PrefetchPlusPfsEliminateFirStreamingAdvantage)
{
    SystemConfig fix = makeConfig(16, MemModel::CC, 3.2, 12.8);
    fix.hwPrefetch = true;
    fix.prefetchDepth = 8;
    fix.pfsEnabled = true;
    Tick cc_fixed = runWorkload("fir", fix).stats.execTicks;
    Tick str = runWorkload("fir",
                           makeConfig(16, MemModel::STR, 3.2, 12.8))
                   .stats.execTicks;
    EXPECT_LT(double(cc_fixed) / double(str), 1.1);
}

/** Energy (Fig 4): where streaming saves, it is the DRAM component
 *  that shrinks ("the energy differential in nearly every case comes
 *  from the DRAM system"). */
TEST(Repro, FirEnergyDifferenceComesFromDram)
{
    RunResult cc = runWorkload("fir", makeConfig(16, MemModel::CC));
    RunResult str = runWorkload("fir", makeConfig(16, MemModel::STR));
    double dram_delta = cc.energy.dramMj - str.energy.dramMj;
    double total_delta = cc.energy.totalMj() - str.energy.totalMj();
    EXPECT_GT(total_delta, 0.0);
    EXPECT_GT(dram_delta, 0.5 * total_delta);
}

} // namespace
} // namespace cmpmem
