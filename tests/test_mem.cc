/**
 * @file
 * Unit tests for the memory substrates: functional memory, cache
 * tag arrays, MSHRs, store buffer, resources, DRAM channel, L2, and
 * interconnect timing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "sim/rng.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "mem/mshr.hh"
#include "mem/resource.hh"
#include "mem/store_buffer.hh"

namespace cmpmem
{
namespace
{

//
// FunctionalMemory.
//

TEST(FunctionalMemory, ReadWriteRoundTrip)
{
    FunctionalMemory mem;
    mem.write<std::uint32_t>(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read<std::uint32_t>(0x1000), 0xdeadbeefu);
    mem.write<double>(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(mem.read<double>(0x2000), 3.25);
}

TEST(FunctionalMemory, UntouchedMemoryReadsZero)
{
    FunctionalMemory mem;
    EXPECT_EQ(mem.read<std::uint64_t>(0x123456789), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // reads don't materialize pages
}

TEST(FunctionalMemory, CrossPageAccesses)
{
    FunctionalMemory mem;
    Addr boundary = FunctionalMemory::pageBytes;
    std::uint8_t out[8] = {};
    std::uint8_t in[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.write(boundary - 4, in, 8);
    mem.read(boundary - 4, out, 8);
    EXPECT_EQ(std::memcmp(in, out, 8), 0);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(FunctionalMemory, AllocatorAlignsAndAdvances)
{
    FunctionalMemory mem;
    Addr a = mem.alloc(10, 64);
    Addr b = mem.alloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_NE(a, 0u); // address zero reserved as null sentinel
}

//
// CacheArray.
//

TEST(CacheArray, HitAfterAllocate)
{
    CacheArray c({1024, 2, 32});
    CacheArray::Victim v;
    auto &line = c.allocate(0x100, v);
    line.state = MesiState::Exclusive;
    EXPECT_FALSE(v.valid);
    auto *hit = c.lookup(0x110); // same line
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, 0x100u);
    EXPECT_EQ(c.lookup(0x200), nullptr);
}

TEST(CacheArray, LruVictimSelection)
{
    // 2-way, 16 sets, 32 B lines: addresses 32*16 apart collide.
    CacheArray c({1024, 2, 32});
    const Addr setStride = 32 * 16;
    CacheArray::Victim v;
    c.allocate(0, v).state = MesiState::Exclusive;
    c.allocate(setStride, v).state = MesiState::Exclusive;
    // Touch address 0 so setStride becomes LRU.
    c.touch(*c.lookup(0));
    c.allocate(2 * setStride, v).state = MesiState::Exclusive;
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, setStride);
    EXPECT_NE(c.lookup(0), nullptr);
    EXPECT_EQ(c.lookup(setStride), nullptr);
}

TEST(CacheArray, DirtyVictimReported)
{
    CacheArray c({64, 1, 32}); // 2 sets, direct-mapped
    CacheArray::Victim v;
    c.allocate(0, v).state = MesiState::Modified;
    c.allocate(64, v); // same set (2 sets * 32 B)
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.addr, 0u);
}

TEST(CacheArray, ForEachDirtyCleansLines)
{
    CacheArray c({1024, 2, 32});
    CacheArray::Victim v;
    // Distinct sets (16 sets x 32 B lines).
    c.allocate(0x000, v).state = MesiState::Modified;
    c.allocate(0x020, v).state = MesiState::Modified;
    c.allocate(0x040, v).state = MesiState::Shared;
    int seen = 0;
    auto n = c.forEachDirty([&](Addr) { ++seen; });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(seen, 2);
    EXPECT_EQ(c.forEachDirty([&](Addr) {}), 0u); // now clean
}

/**
 * Property test: the tag array against a reference LRU model across
 * geometries.
 */
class CacheArrayLru
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheArrayLru, MatchesReferenceModel)
{
    auto [size_kb, assoc] = GetParam();
    CacheGeometry geom{std::uint32_t(size_kb) * 1024,
                       std::uint32_t(assoc), 32};
    CacheArray c(geom);

    // Reference: per-set list of tags in LRU order.
    std::map<Addr, std::vector<Addr>> ref;
    auto setOf = [&](Addr line) {
        return (line / 32) % geom.sets();
    };

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        Addr line = (rng.nextBelow(4096)) * 32;
        auto &set = ref[setOf(line)];
        auto it = std::find(set.begin(), set.end(), line);
        bool ref_hit = it != set.end();

        CacheArray::Line *got = c.lookup(line);
        EXPECT_EQ(got != nullptr, ref_hit) << "iter " << i;

        if (ref_hit) {
            set.erase(it);
            set.push_back(line);
            c.touch(*got);
        } else {
            if (set.size() == geom.assoc)
                set.erase(set.begin());
            set.push_back(line);
            CacheArray::Victim v;
            c.allocate(line, v).state = MesiState::Exclusive;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayLru,
    testing::Values(std::make_tuple(8, 2), std::make_tuple(32, 2),
                    std::make_tuple(16, 4), std::make_tuple(4, 1),
                    std::make_tuple(64, 16)));

//
// MshrFile.
//

TEST(Mshr, MergeAndComplete)
{
    MshrFile m(4);
    EXPECT_FALSE(m.outstanding(0x100));
    m.allocate(0x100, false);
    EXPECT_TRUE(m.outstanding(0x100));

    int calls = 0;
    Tick seen = 0;
    m.addWaiter(0x100, [&](Tick t) { ++calls; seen = t; });
    EXPECT_TRUE(m.merge(0x100, false, [&](Tick) { ++calls; }));
    // Store merged onto a non-exclusive fill reports the mismatch.
    EXPECT_FALSE(m.merge(0x100, true, [&](Tick) { ++calls; }));

    m.complete(0x100, 777);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(seen, 777u);
    EXPECT_FALSE(m.outstanding(0x100));
    EXPECT_EQ(m.merges(), 2u);
}

TEST(Mshr, CapacityTracking)
{
    MshrFile m(2);
    m.allocate(0x20, false);
    m.allocate(0x40, true);
    EXPECT_FALSE(m.available());
    EXPECT_EQ(m.inFlight(), 2u);
    m.complete(0x20, 1);
    EXPECT_TRUE(m.available());
    EXPECT_EQ(m.peakOccupancy(), 2u);
}

//
// StoreBuffer.
//

TEST(StoreBuffer, FillDrainAndSpaceWaiter)
{
    StoreBuffer sb(2);
    sb.insert(0x20);
    sb.insert(0x40);
    EXPECT_TRUE(sb.full());
    EXPECT_TRUE(sb.contains(0x20));

    Tick woke = 0;
    sb.waitForSpace([&](Tick t) { woke = t; });
    sb.complete(0x20, 555);
    EXPECT_EQ(woke, 555u);
    EXPECT_FALSE(sb.full());
    EXPECT_EQ(sb.fullStalls(), 1u);
}

//
// Resources.
//

TEST(Resource, SerializesOverlappingAcquisitions)
{
    Resource r("r");
    EXPECT_EQ(r.acquire(100, 50), 100u);
    EXPECT_EQ(r.acquire(100, 50), 150u); // queued behind
    EXPECT_EQ(r.acquire(500, 50), 500u); // idle gap
    EXPECT_EQ(r.busyTicks(), 150u);
    EXPECT_EQ(r.waitTicks(), 50u);
    EXPECT_EQ(r.acquisitions(), 3u);
}

TEST(ChannelResource, OccupancyScalesWithBytes)
{
    ChannelResource ch("ch", 16, 100); // 16 B per 100-tick beat
    EXPECT_EQ(ch.transferTicks(16), 100u);
    EXPECT_EQ(ch.transferTicks(17), 200u); // rounds up to beats
    ch.acquireTransfer(0, 32);
    EXPECT_EQ(ch.bytesMoved(), 32u);
}

//
// DRAM channel.
//

TEST(Dram, ReadLatencyAndBandwidthOccupancy)
{
    DramConfig cfg;
    cfg.bandwidthGBps = 3.2;
    DramChannel d(cfg);
    // 32 B at 3.2 GB/s = 10 ns occupancy + 70 ns latency.
    Tick done = d.read(0, 0x1000, 32);
    EXPECT_EQ(done, 70000u + 10000u);
    EXPECT_EQ(d.readBytes(), 32u);

    // Back-to-back reads queue on the channel.
    Tick done2 = d.read(0, 0x2000, 32);
    EXPECT_EQ(done2, 10000u + 70000u + 10000u);
}

TEST(Dram, BandwidthSweepChangesOccupancy)
{
    for (double gbps : {1.6, 3.2, 6.4, 12.8}) {
        DramConfig cfg;
        cfg.bandwidthGBps = gbps;
        DramChannel d(cfg);
        Tick expect = Tick(32.0 * 1000.0 / gbps + 0.5);
        EXPECT_EQ(d.occupancyFor(32), expect) << gbps;
    }
}

TEST(Dram, WritesArePosted)
{
    DramChannel d(DramConfig{});
    Tick done = d.write(0, 0x1000, 32);
    // Writes complete when the channel accepts them (no 70 ns).
    EXPECT_EQ(done, d.occupancyFor(32));
    EXPECT_EQ(d.writeBytes(), 32u);
}

TEST(Dram, PartialGranuleChargedAsFull)
{
    DramChannel d(DramConfig{});
    d.read(0, 0x40, 4); // strided DMA fragment
    EXPECT_EQ(d.readBytes(), 32u);
}

//
// L2.
//

TEST(L2, HitAfterFillAndRefillAvoidance)
{
    DramChannel dram(DramConfig{});
    L2Config cfg;
    L2Cache l2(cfg, dram);

    bool hit = true;
    l2.readLine(0, 0x1000, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(l2.misses(), 1u);
    EXPECT_GT(dram.readBytes(), 0u);

    l2.readLine(0, 0x1000, hit);
    EXPECT_TRUE(hit);

    // Full-line write to a missing line allocates without a DRAM
    // read.
    auto reads_before = dram.readBytes();
    l2.writeLine(0, 0x2000, 32, true);
    EXPECT_EQ(dram.readBytes(), reads_before);
    EXPECT_EQ(l2.refillsAvoided(), 1u);

    // Partial write to a missing line must refill first.
    l2.writeLine(0, 0x3000, 8, false);
    EXPECT_GT(dram.readBytes(), reads_before);
}

TEST(L2, DirtyEvictionWritesBack)
{
    DramChannel dram(DramConfig{});
    L2Config cfg;
    cfg.sizeBytes = 4096; // tiny L2: 4 banks x 1 KB
    cfg.assoc = 2;
    L2Cache l2(cfg, dram);

    // Fill one set of one bank with dirty lines, then overflow it.
    // Bank selection interleaves on line address; lines 4 lines
    // apart land in the same bank.
    const Addr bank_stride = 32 * 4;
    const Addr set_stride = bank_stride * (1024 / (2 * 32));
    l2.writeLine(0, 0, 32, true);
    l2.writeLine(0, set_stride, 32, true);
    auto wb_before = l2.writebacksToDram();
    l2.writeLine(0, 2 * set_stride, 32, true);
    EXPECT_EQ(l2.writebacksToDram(), wb_before + 1);
}

TEST(L2, DrainDirtyAccountsRemainingWrites)
{
    DramChannel dram(DramConfig{});
    L2Cache l2(L2Config{}, dram);
    l2.writeLine(0, 0x100, 32, true);
    l2.writeLine(0, 0x200, 32, true);
    auto wr_before = dram.writeBytes();
    EXPECT_EQ(l2.drainDirty(), 2u);
    EXPECT_EQ(dram.writeBytes(), wr_before + 64);
    EXPECT_EQ(l2.drainDirty(), 0u); // idempotent
}

//
// Interconnect.
//

TEST(Interconnect, BusTransferLatencyAndOccupancy)
{
    InterconnectConfig cfg;
    LocalBus bus(cfg, 0);
    // 32 B request on a 32 B wide bus: one beat + 2-cycle latency.
    Tick done = bus.transfer(0, 32);
    EXPECT_EQ(done, cfg.busBeat + 2 * cfg.busBeat);
    EXPECT_EQ(bus.bytesMoved(), 32u);
}

TEST(Interconnect, CrossbarPortsAreIndependent)
{
    InterconnectConfig cfg;
    Crossbar xbar(cfg, 4);
    Tick a = xbar.sendFromCluster(0, 0, 16);
    Tick b = xbar.sendFromCluster(0, 1, 16);
    EXPECT_EQ(a, b); // different ports: no serialization
    Tick c = xbar.sendFromCluster(0, 0, 16);
    EXPECT_GT(c, a); // same port: queued
}

} // namespace
} // namespace cmpmem
