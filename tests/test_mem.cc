/**
 * @file
 * Unit tests for the memory substrates: functional memory, cache
 * tag arrays, MSHRs, store buffer, resources, DRAM channel, L2, and
 * interconnect timing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "check/coherence_checker.hh"
#include "sim/rng.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "mem/l1_controller.hh"
#include "mem/mshr.hh"
#include "mem/resource.hh"
#include "mem/store_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{
namespace
{

//
// FunctionalMemory.
//

TEST(FunctionalMemory, ReadWriteRoundTrip)
{
    FunctionalMemory mem;
    mem.write<std::uint32_t>(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read<std::uint32_t>(0x1000), 0xdeadbeefu);
    mem.write<double>(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(mem.read<double>(0x2000), 3.25);
}

TEST(FunctionalMemory, UntouchedMemoryReadsZero)
{
    FunctionalMemory mem;
    EXPECT_EQ(mem.read<std::uint64_t>(0x123456789), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // reads don't materialize pages
}

TEST(FunctionalMemory, CrossPageAccesses)
{
    FunctionalMemory mem;
    Addr boundary = FunctionalMemory::pageBytes;
    std::uint8_t out[8] = {};
    std::uint8_t in[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.write(boundary - 4, in, 8);
    mem.read(boundary - 4, out, 8);
    EXPECT_EQ(std::memcmp(in, out, 8), 0);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(FunctionalMemory, AllocatorAlignsAndAdvances)
{
    FunctionalMemory mem;
    Addr a = mem.alloc(10, 64);
    Addr b = mem.alloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_NE(a, 0u); // address zero reserved as null sentinel
}

TEST(FunctionalMemory, TypedAccessorsSpanPageBoundary)
{
    FunctionalMemory mem;
    Addr boundary = 7 * FunctionalMemory::pageBytes;
    mem.write<std::uint64_t>(boundary - 4, 0x1122334455667788ull);
    EXPECT_EQ(mem.read<std::uint64_t>(boundary - 4),
              0x1122334455667788ull);
    // The halves are visible through page-local reads too.
    EXPECT_EQ(mem.read<std::uint32_t>(boundary - 4), 0x55667788u);
    EXPECT_EQ(mem.read<std::uint32_t>(boundary), 0x11223344u);
}

TEST(FunctionalMemory, ReadSpanningRegionEndAndSparsePages)
{
    FunctionalMemory mem;
    Addr base = mem.alloc(64, 64);
    mem.write<std::uint32_t>(base, 0xaabbccddu);

    // A read that starts inside the bump region and runs past its
    // end must splice region bytes, sparse-page bytes, and untouched
    // (zero) bytes together exactly like the plain map would.
    Addr past = base + 64 * FunctionalMemory::pageBytes;
    mem.write<std::uint32_t>(past, 0x11223344u);
    std::vector<std::uint8_t> all(past + 4 - base);
    mem.read(base, all.data(), all.size());
    std::uint32_t head, tail;
    std::memcpy(&head, all.data(), 4);
    std::memcpy(&tail, all.data() + all.size() - 4, 4);
    EXPECT_EQ(head, 0xaabbccddu);
    EXPECT_EQ(tail, 0x11223344u);
    for (std::size_t i = 4; i + 4 < all.size(); ++i)
        ASSERT_EQ(all[i], 0u) << "at offset " << i;
}

TEST(FunctionalMemory, ValuesSurviveAllocGrowthOverSparsePages)
{
    FunctionalMemory mem;
    // Write well past the current bump region so the bytes land in
    // sparse pages, warming the translation cache on the way.
    Addr first = mem.alloc(8, 64);
    Addr ahead = first + 512 * FunctionalMemory::pageBytes + 12;
    mem.write<std::uint64_t>(ahead, 0xfeedfacecafebeefull);
    EXPECT_EQ(mem.read<std::uint64_t>(ahead), 0xfeedfacecafebeefull);

    // Growing the allocator across those pages migrates them into
    // the contiguous region; values and stale translations must not
    // change what's observed.
    Addr big = mem.alloc(1024 * FunctionalMemory::pageBytes, 64);
    EXPECT_LE(big, ahead);
    EXPECT_EQ(mem.read<std::uint64_t>(ahead), 0xfeedfacecafebeefull);
    mem.write<std::uint64_t>(ahead, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read<std::uint64_t>(ahead), 0x0123456789abcdefull);
    // Neighbouring untouched bytes still read zero after migration.
    EXPECT_EQ(mem.read<std::uint64_t>(ahead + 8), 0u);
}

TEST(FunctionalMemory, TranslationCacheAliasesResolveCorrectly)
{
    FunctionalMemory mem;
    // Pages whose page numbers collide in a small direct-mapped
    // translation cache (16-page stride) must not alias.
    std::vector<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(Addr(i) * 16 * FunctionalMemory::pageBytes + 8);
    for (std::size_t i = 0; i < addrs.size(); ++i)
        mem.write<std::uint64_t>(addrs[i], 0x1000 + i);
    for (int pass = 0; pass < 2; ++pass)
        for (std::size_t i = 0; i < addrs.size(); ++i)
            ASSERT_EQ(mem.read<std::uint64_t>(addrs[i]), 0x1000 + i);
}

//
// CacheArray.
//

TEST(CacheArray, HitAfterAllocate)
{
    CacheArray c({1024, 2, 32});
    CacheArray::Victim v;
    auto &line = c.allocate(0x100, v);
    line.state = MesiState::Exclusive;
    EXPECT_FALSE(v.valid);
    auto *hit = c.lookup(0x110); // same line
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, 0x100u);
    EXPECT_EQ(c.lookup(0x200), nullptr);
}

TEST(CacheArray, LruVictimSelection)
{
    // 2-way, 16 sets, 32 B lines: addresses 32*16 apart collide.
    CacheArray c({1024, 2, 32});
    const Addr setStride = 32 * 16;
    CacheArray::Victim v;
    c.allocate(0, v).state = MesiState::Exclusive;
    c.allocate(setStride, v).state = MesiState::Exclusive;
    // Touch address 0 so setStride becomes LRU.
    c.touch(*c.lookup(0));
    c.allocate(2 * setStride, v).state = MesiState::Exclusive;
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, setStride);
    EXPECT_NE(c.lookup(0), nullptr);
    EXPECT_EQ(c.lookup(setStride), nullptr);
}

TEST(CacheArray, DirtyVictimReported)
{
    CacheArray c({64, 1, 32}); // 2 sets, direct-mapped
    CacheArray::Victim v;
    c.allocate(0, v).state = MesiState::Modified;
    c.allocate(64, v); // same set (2 sets * 32 B)
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.addr, 0u);
}

TEST(CacheArray, ForEachDirtyCleansLines)
{
    CacheArray c({1024, 2, 32});
    CacheArray::Victim v;
    // Distinct sets (16 sets x 32 B lines).
    c.allocate(0x000, v).state = MesiState::Modified;
    c.allocate(0x020, v).state = MesiState::Modified;
    c.allocate(0x040, v).state = MesiState::Shared;
    int seen = 0;
    auto n = c.forEachDirty([&](Addr) { ++seen; });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(seen, 2);
    EXPECT_EQ(c.forEachDirty([&](Addr) {}), 0u); // now clean
}

TEST(CacheArray, RejectsNonPowerOfTwoGeometry)
{
    // Set indexing is a shift+mask, so every geometry field must be
    // a power of two; anything else used to truncate silently in
    // sets() and now raises SimErrorKind::Config.
    const CacheGeometry bad[] = {
        {48 * 1024, 2, 32}, // non-pow2 size
        {32 * 1024, 3, 32}, // non-pow2 assoc
        {32 * 1024, 2, 48}, // non-pow2 line
        {32, 2, 32},        // fewer than one set
        {0, 2, 32},         // zero size
    };
    for (const auto &g : bad) {
        try {
            CacheArray c(g);
            FAIL() << "geometry " << g.sizeBytes << "/" << g.assoc
                   << "/" << g.lineBytes << " accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), SimErrorKind::Config);
        }
    }
    // The boundary case (exactly one set) is legal.
    CacheArray one({64, 2, 32});
    EXPECT_EQ(one.geometry().sets(), 1u);
}

TEST(CacheArray, SetIndexMatchesDivideModulo)
{
    // The shift/mask path must agree with the arithmetic definition
    // (addr / lineBytes) % sets for addresses well past 2^32.
    CacheGeometry geom{16 * 1024, 4, 64};
    CacheArray c(geom);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = (Addr(rng.nextBelow(1u << 30)) << 8) ^
                    rng.nextBelow(1u << 20);
        Addr line = addr & ~Addr(geom.lineBytes - 1);
        CacheArray::Victim v;
        if (!c.lookup(addr))
            c.allocate(addr, v).state = MesiState::Exclusive;
        // A hit through lookup() proves the probe indexed the same
        // set the reference set-index function selects.
        auto *hit = c.lookup(line + geom.lineBytes - 1);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->tag, line);
    }
}

/**
 * Property test: the tag array against a reference LRU model across
 * geometries.
 */
class CacheArrayLru
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheArrayLru, MatchesReferenceModel)
{
    auto [size_kb, assoc] = GetParam();
    CacheGeometry geom{std::uint32_t(size_kb) * 1024,
                       std::uint32_t(assoc), 32};
    CacheArray c(geom);

    // Reference: per-set list of tags in LRU order.
    std::map<Addr, std::vector<Addr>> ref;
    auto setOf = [&](Addr line) {
        return (line / 32) % geom.sets();
    };

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        Addr line = (rng.nextBelow(4096)) * 32;
        auto &set = ref[setOf(line)];
        auto it = std::find(set.begin(), set.end(), line);
        bool ref_hit = it != set.end();

        CacheArray::Line *got = c.lookup(line);
        EXPECT_EQ(got != nullptr, ref_hit) << "iter " << i;

        if (ref_hit) {
            set.erase(it);
            set.push_back(line);
            c.touch(*got);
        } else {
            if (set.size() == geom.assoc)
                set.erase(set.begin());
            set.push_back(line);
            CacheArray::Victim v;
            c.allocate(line, v).state = MesiState::Exclusive;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayLru,
    testing::Values(std::make_tuple(8, 2), std::make_tuple(32, 2),
                    std::make_tuple(16, 4), std::make_tuple(4, 1),
                    std::make_tuple(64, 16)));

//
// MshrFile.
//

TEST(Mshr, MergeAndComplete)
{
    MshrFile m(4);
    EXPECT_FALSE(m.outstanding(0x100));
    m.allocate(0x100, false);
    EXPECT_TRUE(m.outstanding(0x100));

    int calls = 0;
    Tick seen = 0;
    m.addWaiter(0x100, [&](Tick t) { ++calls; seen = t; });
    EXPECT_TRUE(m.merge(0x100, false, [&](Tick) { ++calls; }));
    // Store merged onto a non-exclusive fill reports the mismatch.
    EXPECT_FALSE(m.merge(0x100, true, [&](Tick) { ++calls; }));

    m.complete(0x100, 777);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(seen, 777u);
    EXPECT_FALSE(m.outstanding(0x100));
    EXPECT_EQ(m.merges(), 2u);
}

TEST(Mshr, CapacityTracking)
{
    MshrFile m(2);
    m.allocate(0x20, false);
    m.allocate(0x40, true);
    EXPECT_FALSE(m.available());
    EXPECT_EQ(m.inFlight(), 2u);
    m.complete(0x20, 1);
    EXPECT_TRUE(m.available());
    EXPECT_EQ(m.peakOccupancy(), 2u);
}

TEST(Mshr, CapacityPressureChurnStaysAllocationFree)
{
    // Sustained full-occupancy churn across many distinct line
    // addresses: slot and waiter-node reuse must never touch the
    // heap past the construction-time reservation (DESIGN.md §18).
    MshrFile m(8);
    std::uint64_t fired = 0;
    for (int round = 0; round < 2000; ++round) {
        Addr base = Addr(round) * 0x1000;
        for (int s = 0; s < 8; ++s)
            m.allocate(base + Addr(s) * 0x40, (s & 1) != 0);
        EXPECT_FALSE(m.available());
        for (int s = 0; s < 8; ++s)
            for (int w = 0; w < 3; ++w)
                m.addWaiter(base + Addr(s) * 0x40,
                            [&fired](Tick) { ++fired; });
        // Complete in reverse allocation order: backward-shift
        // deletion must keep the open-addressed probe chains intact.
        for (int s = 7; s >= 0; --s)
            m.complete(base + Addr(s) * 0x40, Tick(round));
        EXPECT_TRUE(m.available());
    }
    EXPECT_EQ(fired, 2000u * 8 * 3);
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_EQ(m.hostAllocs(), 0u);
}

TEST(Mshr, WaitersFireInFifoOrderAcrossPoolReuse)
{
    MshrFile m(2);
    std::vector<int> order;
    for (int round = 0; round < 3; ++round) {
        order.clear();
        m.allocate(0x100, true);
        for (int i = 0; i < 4; ++i)
            m.addWaiter(0x100,
                        [&order, i](Tick) { order.push_back(i); });
        m.complete(0x100, 5);
        // Recycled free-list nodes must not perturb FIFO wake-up.
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    }
    EXPECT_EQ(m.hostAllocs(), 0u);
}

//
// StoreBuffer.
//

TEST(StoreBuffer, FillDrainAndSpaceWaiter)
{
    StoreBuffer sb(2);
    sb.insert(0x20);
    sb.insert(0x40);
    EXPECT_TRUE(sb.full());
    EXPECT_TRUE(sb.contains(0x20));

    Tick woke = 0;
    sb.waitForSpace([&](Tick t) { woke = t; });
    sb.complete(0x20, 555);
    EXPECT_EQ(woke, 555u);
    EXPECT_FALSE(sb.full());
    EXPECT_EQ(sb.fullStalls(), 1u);
}

TEST(StoreBuffer, ObserverSeesInsertAndComplete)
{
    StoreBuffer sb(2);
    int inserts = 0, completes = 0;
    sb.setObserver([&](bool inserted, Addr line) {
        EXPECT_EQ(line, Addr(0x20));
        inserted ? ++inserts : ++completes;
    });
    sb.insert(0x20);
    sb.complete(0x20, 100);
    EXPECT_EQ(inserts, 1);
    EXPECT_EQ(completes, 1);
    // An entry can be re-inserted once its predecessor completed.
    sb.insert(0x20);
    EXPECT_EQ(inserts, 2);
}

//
// Store-buffer behaviour at the L1 level: coalescing, the weak
// consistency model (loads bypass parked store misses), and PFS
// stores skipping the allocate fetch.
//

class L1StoreBufferFixture : public testing::Test
{
  protected:
    void
    build(L1Config cfg = {})
    {
        checker = std::make_unique<CoherenceChecker>(fmem, 32);
        dram = std::make_unique<DramChannel>(DramConfig{});
        l2 = std::make_unique<L2Cache>(L2Config{}, *dram);
        fabric = std::make_unique<CoherenceFabric>(
            InterconnectConfig{}, 1, 4, *l2, *dram);
        l1 = std::make_unique<L1Controller>(0, cfg, eq, *fabric);
        l1->attachChecker(checker.get());
    }

    MesiState
    state(Addr a)
    {
        const auto *line = l1->tags().lookup(a);
        return line ? line->state : MesiState::Invalid;
    }

    /** Tick of the first recorded transition on @p line. */
    Tick
    firstTransitionTick(Addr line)
    {
        unsigned long long t = 0;
        std::sscanf(checker->traceFor(line).c_str(), "    @%llu", &t);
        return Tick(t);
    }

    EventQueue eq;
    FunctionalMemory fmem;
    std::unique_ptr<CoherenceChecker> checker;
    std::unique_ptr<DramChannel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CoherenceFabric> fabric;
    std::unique_ptr<L1Controller> l1;
};

TEST_F(L1StoreBufferFixture, StoresCoalesceIntoPendingEntry)
{
    build();
    // Three stores into one line while its ownership transaction is
    // in flight: one miss, two merges, a single fill at the end.
    l1->store(0, 0x100, false, [](Tick) {});
    l1->store(0, 0x104, false, [](Tick) {});
    l1->store(0, 0x11c, false, [](Tick) {});
    EXPECT_EQ(l1->counters().storeMisses, 1u);
    EXPECT_EQ(l1->counters().storeMerged, 2u);
    eq.run();
    EXPECT_EQ(state(0x100), MesiState::Modified);
    EXPECT_EQ(l1->counters().fills, 1u);
}

TEST_F(L1StoreBufferFixture, LoadsBypassParkedStoreMiss)
{
    build();
    // Warm a line so the later load hits.
    l1->load(0, 0x300, [](Tick) {});
    eq.run();
    ASSERT_EQ(state(0x300), MesiState::Exclusive);

    // Weak consistency: the store miss parks in the buffer and the
    // core retires it immediately (accepted, no stall); a younger
    // load hit completes while the store is still in flight.
    EXPECT_TRUE(l1->store(eq.now(), 0x200, false, [](Tick) {}));
    EXPECT_EQ(state(0x200), MesiState::Invalid); // still parked

    bool hit = l1->load(eq.now(), 0x300, [](Tick) {});
    EXPECT_TRUE(hit);
    EXPECT_EQ(state(0x200), MesiState::Invalid); // load did not wait

    eq.run();
    EXPECT_EQ(state(0x200), MesiState::Modified); // drained at last
}

TEST_F(L1StoreBufferFixture, DrainCompletesParkedStoresInIssueOrder)
{
    build();
    // Park several distinct-line store misses, then drain: each
    // buffered store retires, and their ownership transactions
    // complete in the order the misses entered the buffer (the
    // cluster bus serializes them).
    for (int i = 0; i < 4; ++i)
        l1->store(0, Addr(0x1000) + Addr(i) * 0x40, false,
                  [](Tick) {});
    EXPECT_EQ(l1->counters().storeMisses, 4u);
    eq.run();
    Tick prev = 0;
    for (int i = 0; i < 4; ++i) {
        const Addr line = Addr(0x1000) + Addr(i) * 0x40;
        EXPECT_EQ(state(line), MesiState::Modified);
        const Tick filled = firstTransitionTick(line);
        ASSERT_GT(filled, 0u) << i;
        EXPECT_LE(prev, filled) << i;
        prev = filled;
    }
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(L1StoreBufferFixture, PfsStoreBypassesAllocateFetch)
{
    build();
    // A prepare-for-store miss validates the line without fetching
    // its old contents: no DRAM read traffic, line lands Modified.
    const auto dram_reads = dram->readBytes();
    l1->store(0, 0x400, true, [](Tick) {});
    eq.run();
    EXPECT_EQ(dram->readBytes(), dram_reads);
    EXPECT_EQ(state(0x400), MesiState::Modified);
    EXPECT_EQ(l1->counters().pfsStores, 1u);
}

//
// Per-core line-hit micro path (fast path layer 3).
//

TEST_F(L1StoreBufferFixture, MicroPathAdoptsOnFullHitAndCountsAlike)
{
    build();
    // Warm a line: the fill itself must not adopt (no full hit yet).
    l1->load(0, 0x300, [](Tick) {});
    eq.run();
    EXPECT_FALSE(l1->microLoad(0x300));

    // A full-path hit adopts; repeat loads then take the micro path
    // with identical accounting (loadHits grows, fastpathHits tags
    // the hit as micro-served).
    ASSERT_TRUE(l1->load(eq.now(), 0x304, [](Tick) {}));
    const auto hits = l1->counters().loadHits;
    EXPECT_TRUE(l1->microLoad(0x308));
    EXPECT_EQ(l1->counters().loadHits, hits + 1);
    EXPECT_EQ(l1->counters().fastpathHits, 1u);
    // A different line misses the one-entry micro cache.
    EXPECT_FALSE(l1->microLoad(0x340));
}

TEST_F(L1StoreBufferFixture, MicroStoreRequiresModifiedLine)
{
    build();
    l1->load(0, 0x500, [](Tick) {});
    eq.run();
    ASSERT_TRUE(l1->load(eq.now(), 0x500, [](Tick) {}));

    // Adopted from a load hit on an Exclusive line: stores must take
    // the full path (the E -> M transition needs the checker note).
    EXPECT_FALSE(l1->microStore(eq.now(), 0x500));
    ASSERT_TRUE(l1->store(eq.now(), 0x500, false, [](Tick) {}));
    ASSERT_EQ(state(0x500), MesiState::Modified);

    // The store hit re-adopted with store permission.
    const auto ck_events = checker->eventsObserved();
    const auto store_hits = l1->counters().storeHits;
    EXPECT_TRUE(l1->microStore(eq.now(), 0x504));
    EXPECT_EQ(l1->counters().storeHits, store_hits + 1);
    // The golden-data refresh still reached the checker.
    EXPECT_GT(checker->eventsObserved(), ck_events);
    EXPECT_EQ(checker->violations(), 0u);
}

TEST_F(L1StoreBufferFixture, MicroPathInvalidatedBySnoopAndForge)
{
    build();
    l1->load(0, 0x600, [](Tick) {});
    eq.run();
    ASSERT_TRUE(l1->load(eq.now(), 0x600, [](Tick) {}));
    ASSERT_TRUE(l1->microLoad(0x600));

    // A snoop on the line (even a plain downgrade) drops the entry.
    l1->snoop(0x600, false);
    EXPECT_FALSE(l1->microLoad(0x600));

    // Re-adopt, then forge a state behind the checker's back: the
    // micro entry must not survive that either.
    ASSERT_TRUE(l1->load(eq.now(), 0x600, [](Tick) {}));
    ASSERT_TRUE(l1->microLoad(0x600));
    l1->forgeStateForTest(0x600, MesiState::Shared);
    EXPECT_FALSE(l1->microLoad(0x600));
}

TEST_F(L1StoreBufferFixture, MicroPathInvalidatedByBufferedStore)
{
    build();
    l1->load(0, 0x700, [](Tick) {});
    eq.run();
    l1->forgeStateForTest(0x700, MesiState::Shared);
    ASSERT_TRUE(l1->load(eq.now(), 0x700, [](Tick) {}));
    ASSERT_TRUE(l1->microLoad(0x700));

    // A store to the Shared line parks in the store buffer; loads to
    // it must now take the forwarding path (no LRU touch), so the
    // micro entry is dropped and stays out until the next full hit.
    ASSERT_TRUE(l1->store(eq.now(), 0x700, false, [](Tick) {}));
    EXPECT_FALSE(l1->microLoad(0x700));
    eq.run(); // drain: line lands Modified
    ASSERT_EQ(state(0x700), MesiState::Modified);
    EXPECT_FALSE(l1->microLoad(0x700)); // still not re-adopted
    ASSERT_TRUE(l1->load(eq.now(), 0x700, [](Tick) {}));
    EXPECT_TRUE(l1->microLoad(0x700));
}

TEST_F(L1StoreBufferFixture, MicroPathDisabledNeverAdopts)
{
    L1Config cfg;
    cfg.fastPath = false;
    build(cfg);
    l1->load(0, 0x800, [](Tick) {});
    eq.run();
    ASSERT_TRUE(l1->load(eq.now(), 0x800, [](Tick) {}));
    EXPECT_FALSE(l1->microLoad(0x800));
    ASSERT_TRUE(l1->store(eq.now(), 0x800, false, [](Tick) {}));
    EXPECT_FALSE(l1->microStore(eq.now(), 0x800));
    EXPECT_EQ(l1->counters().fastpathHits, 0u);
}

//
// Resources.
//

TEST(Resource, SerializesOverlappingAcquisitions)
{
    Resource r("r");
    EXPECT_EQ(r.acquire(100, 50), 100u);
    EXPECT_EQ(r.acquire(100, 50), 150u); // queued behind
    EXPECT_EQ(r.acquire(500, 50), 500u); // idle gap
    EXPECT_EQ(r.busyTicks(), 150u);
    EXPECT_EQ(r.waitTicks(), 50u);
    EXPECT_EQ(r.acquisitions(), 3u);
}

TEST(ChannelResource, OccupancyScalesWithBytes)
{
    ChannelResource ch("ch", 16, 100); // 16 B per 100-tick beat
    EXPECT_EQ(ch.transferTicks(16), 100u);
    EXPECT_EQ(ch.transferTicks(17), 200u); // rounds up to beats
    ch.acquireTransfer(0, 32);
    EXPECT_EQ(ch.bytesMoved(), 32u);
}

//
// DRAM channel.
//

TEST(Dram, ReadLatencyAndBandwidthOccupancy)
{
    DramConfig cfg;
    cfg.bandwidthGBps = 3.2;
    DramChannel d(cfg);
    // 32 B at 3.2 GB/s = 10 ns occupancy + 70 ns latency.
    Tick done = d.read(0, 0x1000, 32);
    EXPECT_EQ(done, 70000u + 10000u);
    EXPECT_EQ(d.readBytes(), 32u);

    // Back-to-back reads queue on the channel.
    Tick done2 = d.read(0, 0x2000, 32);
    EXPECT_EQ(done2, 10000u + 70000u + 10000u);
}

TEST(Dram, BandwidthSweepChangesOccupancy)
{
    for (double gbps : {1.6, 3.2, 6.4, 12.8}) {
        DramConfig cfg;
        cfg.bandwidthGBps = gbps;
        DramChannel d(cfg);
        Tick expect = Tick(32.0 * 1000.0 / gbps + 0.5);
        EXPECT_EQ(d.occupancyFor(32), expect) << gbps;
    }
}

TEST(Dram, WritesArePosted)
{
    DramChannel d(DramConfig{});
    Tick done = d.write(0, 0x1000, 32);
    // Writes complete when the channel accepts them (no 70 ns).
    EXPECT_EQ(done, d.occupancyFor(32));
    EXPECT_EQ(d.writeBytes(), 32u);
}

TEST(Dram, PartialGranuleChargedAsFull)
{
    DramChannel d(DramConfig{});
    d.read(0, 0x40, 4); // strided DMA fragment
    EXPECT_EQ(d.readBytes(), 32u);
}

//
// L2.
//

TEST(L2, HitAfterFillAndRefillAvoidance)
{
    DramChannel dram(DramConfig{});
    L2Config cfg;
    L2Cache l2(cfg, dram);

    bool hit = true;
    l2.readLine(0, 0x1000, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(l2.misses(), 1u);
    EXPECT_GT(dram.readBytes(), 0u);

    l2.readLine(0, 0x1000, hit);
    EXPECT_TRUE(hit);

    // Full-line write to a missing line allocates without a DRAM
    // read.
    auto reads_before = dram.readBytes();
    l2.writeLine(0, 0x2000, 32, true);
    EXPECT_EQ(dram.readBytes(), reads_before);
    EXPECT_EQ(l2.refillsAvoided(), 1u);

    // Partial write to a missing line must refill first.
    l2.writeLine(0, 0x3000, 8, false);
    EXPECT_GT(dram.readBytes(), reads_before);
}

TEST(L2, DirtyEvictionWritesBack)
{
    DramChannel dram(DramConfig{});
    L2Config cfg;
    cfg.sizeBytes = 4096; // tiny L2: 4 banks x 1 KB
    cfg.assoc = 2;
    L2Cache l2(cfg, dram);

    // Fill one set of one bank with dirty lines, then overflow it.
    // Bank selection interleaves on line address; lines 4 lines
    // apart land in the same bank.
    const Addr bank_stride = 32 * 4;
    const Addr set_stride = bank_stride * (1024 / (2 * 32));
    l2.writeLine(0, 0, 32, true);
    l2.writeLine(0, set_stride, 32, true);
    auto wb_before = l2.writebacksToDram();
    l2.writeLine(0, 2 * set_stride, 32, true);
    EXPECT_EQ(l2.writebacksToDram(), wb_before + 1);
}

TEST(L2, DrainDirtyAccountsRemainingWrites)
{
    DramChannel dram(DramConfig{});
    L2Cache l2(L2Config{}, dram);
    l2.writeLine(0, 0x100, 32, true);
    l2.writeLine(0, 0x200, 32, true);
    auto wr_before = dram.writeBytes();
    EXPECT_EQ(l2.drainDirty(), 2u);
    EXPECT_EQ(dram.writeBytes(), wr_before + 64);
    EXPECT_EQ(l2.drainDirty(), 0u); // idempotent
}

//
// Interconnect.
//

TEST(Interconnect, BusTransferLatencyAndOccupancy)
{
    InterconnectConfig cfg;
    LocalBus bus(cfg, 0);
    // 32 B request on a 32 B wide bus: one beat + 2-cycle latency.
    Tick done = bus.transfer(0, 32);
    EXPECT_EQ(done, cfg.busBeat + 2 * cfg.busBeat);
    EXPECT_EQ(bus.bytesMoved(), 32u);
}

TEST(Interconnect, CrossbarPortsAreIndependent)
{
    InterconnectConfig cfg;
    Crossbar xbar(cfg, 4);
    Tick a = xbar.sendFromCluster(0, 0, 16);
    Tick b = xbar.sendFromCluster(0, 1, 16);
    EXPECT_EQ(a, b); // different ports: no serialization
    Tick c = xbar.sendFromCluster(0, 0, 16);
    EXPECT_GT(c, a); // same port: queued
}

} // namespace
} // namespace cmpmem
