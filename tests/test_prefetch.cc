/**
 * @file
 * Tagged stream prefetcher tests: stream detection from the miss
 * history, run-ahead depth, multiple concurrent streams, LRU stream
 * replacement, and advancement on tagged (prefetched-line) hits.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/stream_prefetcher.hh"

namespace cmpmem
{
namespace
{

constexpr std::uint32_t kLine = 32;

TEST(Prefetcher, SingleMissPrefetchesNothing)
{
    StreamPrefetcher pf(PrefetcherConfig{});
    EXPECT_TRUE(pf.onMiss(0x1000).empty());
}

TEST(Prefetcher, TwoSequentialMissesEstablishStream)
{
    PrefetcherConfig cfg;
    cfg.depth = 4;
    StreamPrefetcher pf(cfg);
    pf.onMiss(0x1000);
    auto lines = pf.onMiss(0x1000 + kLine);
    ASSERT_FALSE(lines.empty());
    // Runs depth lines ahead of the latest miss.
    EXPECT_EQ(lines.front(), 0x1000 + 2 * kLine);
    EXPECT_EQ(lines.back(), 0x1000 + kLine + 4 * kLine);
    EXPECT_EQ(pf.streamsAllocated(), 1u);
}

TEST(Prefetcher, NonSequentialMissesNeverTrigger)
{
    StreamPrefetcher pf(PrefetcherConfig{});
    EXPECT_TRUE(pf.onMiss(0x1000).empty());
    EXPECT_TRUE(pf.onMiss(0x5000).empty());
    EXPECT_TRUE(pf.onMiss(0x2000).empty());
    EXPECT_TRUE(pf.onMiss(0x1000 + 2 * kLine).empty()); // gap of one
    EXPECT_EQ(pf.streamsAllocated(), 0u);
}

TEST(Prefetcher, StreamAdvancesOnContinuedMisses)
{
    PrefetcherConfig cfg;
    cfg.depth = 2;
    StreamPrefetcher pf(cfg);
    pf.onMiss(0x1000);
    auto first = pf.onMiss(0x1000 + kLine);
    ASSERT_FALSE(first.empty());
    // The next expected-demand miss extends the run-ahead by one
    // line without re-issuing what was already requested.
    auto next = pf.onMiss(0x1000 + 2 * kLine);
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next.front(), first.back() + kLine);
}

TEST(Prefetcher, TaggedHitAdvancesStream)
{
    PrefetcherConfig cfg;
    cfg.depth = 2;
    StreamPrefetcher pf(cfg);
    pf.onMiss(0x1000);
    pf.onMiss(0x1000 + kLine);
    // A demand hit on the prefetched head keeps the stream rolling.
    auto more = pf.onPrefetchHit(0x1000 + 2 * kLine);
    ASSERT_EQ(more.size(), 1u);
    EXPECT_EQ(more.front(), 0x1000 + 4 * kLine);
    // An unrelated tagged hit is ignored.
    EXPECT_TRUE(pf.onPrefetchHit(0x9000).empty());
}

TEST(Prefetcher, TracksFourIndependentStreams)
{
    StreamPrefetcher pf(PrefetcherConfig{});
    // Interleave 4 streams; each second miss establishes one.
    Addr bases[4] = {0x10000, 0x20000, 0x30000, 0x40000};
    for (Addr b : bases)
        EXPECT_TRUE(pf.onMiss(b).empty());
    for (Addr b : bases)
        EXPECT_FALSE(pf.onMiss(b + kLine).empty());
    EXPECT_EQ(pf.streamsAllocated(), 4u);
    // All four keep advancing.
    for (Addr b : bases)
        EXPECT_FALSE(pf.onMiss(b + 2 * kLine).empty());
    EXPECT_EQ(pf.streamsAllocated(), 4u); // no replacement happened
}

TEST(Prefetcher, FifthStreamReplacesLru)
{
    StreamPrefetcher pf(PrefetcherConfig{});
    Addr bases[5] = {0x10000, 0x20000, 0x30000, 0x40000, 0x50000};
    for (Addr b : bases) {
        pf.onMiss(b);
        pf.onMiss(b + kLine);
    }
    EXPECT_EQ(pf.streamsAllocated(), 5u);
    // Stream 0 was least recently used and its slot was recycled:
    // continuing it now allocates afresh rather than advancing.
    auto res = pf.onMiss(bases[0] + 2 * kLine);
    EXPECT_TRUE(res.empty()); // predecessor fell out of history too
}

TEST(Prefetcher, HistoryIsBounded)
{
    PrefetcherConfig cfg;
    cfg.historyEntries = 8;
    StreamPrefetcher pf(cfg);
    pf.onMiss(0x1000);
    // Push 8 unrelated misses to evict 0x1000 from history.
    for (int i = 0; i < 8; ++i)
        pf.onMiss(0x100000 + Addr(i) * 0x1000);
    // The sequential successor no longer finds its predecessor.
    EXPECT_TRUE(pf.onMiss(0x1000 + kLine).empty());
}

/** Depth parameter sweep: run-ahead window always equals depth. */
class PrefetchDepth : public testing::TestWithParam<int>
{
};

TEST_P(PrefetchDepth, RunAheadMatchesDepth)
{
    PrefetcherConfig cfg;
    cfg.depth = std::uint32_t(GetParam());
    StreamPrefetcher pf(cfg);
    pf.onMiss(0x1000);
    auto lines = pf.onMiss(0x1000 + kLine);
    EXPECT_EQ(lines.size(), cfg.depth);
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefetchDepth,
                         testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace cmpmem
