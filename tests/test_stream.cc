/**
 * @file
 * Streaming substrate tests: local store functional behaviour and
 * DMA engine correctness (sequential, strided, indexed) and timing
 * (outstanding-access limit, channel contention).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "mem/l1_controller.hh"
#include "mem/l2_cache.hh"
#include "sim/rng.hh"
#include "stream/dma_engine.hh"
#include "stream/local_store.hh"

namespace cmpmem
{
namespace
{

TEST(LocalStore, RoundTripAndCounters)
{
    LocalStore ls(1024);
    ls.write<std::uint32_t>(16, 0xabcd1234);
    EXPECT_EQ(ls.read<std::uint32_t>(16), 0xabcd1234u);
    ls.countRead();
    ls.countWrite();
    EXPECT_EQ(ls.coreReads(), 1u);
    EXPECT_EQ(ls.coreWrites(), 1u);
    EXPECT_EQ(ls.size(), 1024u);
}

class DmaFixture : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dram = std::make_unique<DramChannel>(DramConfig{});
        l2 = std::make_unique<L2Cache>(L2Config{}, *dram);
        fabric = std::make_unique<CoherenceFabric>(
            InterconnectConfig{}, 4, 4, *l2, *dram);
        ls = std::make_unique<LocalStore>(24 * 1024);
        dma = std::make_unique<DmaEngine>(0, DmaConfig{}, *fabric, mem,
                                          *ls);
    }

    FunctionalMemory mem;
    std::unique_ptr<DramChannel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CoherenceFabric> fabric;
    std::unique_ptr<LocalStore> ls;
    std::unique_ptr<DmaEngine> dma;
};

TEST_F(DmaFixture, SequentialGetPutRoundTrip)
{
    std::vector<std::uint8_t> data(256);
    for (int i = 0; i < 256; ++i)
        data[i] = std::uint8_t(i);
    mem.write(0x1000, data.data(), data.size());

    auto t1 = dma->get(0, 0x1000, 0, 256);
    EXPECT_GT(dma->completionTick(t1), 0u);
    std::uint8_t out[256];
    ls->read(0, out, 256);
    EXPECT_EQ(std::memcmp(out, data.data(), 256), 0);

    // Mutate in LS and put elsewhere.
    ls->write<std::uint8_t>(0, 0xff);
    dma->put(dma->completionTick(t1), 0x2000, 0, 256);
    EXPECT_EQ(mem.read<std::uint8_t>(0x2000), 0xff);
    EXPECT_EQ(mem.read<std::uint8_t>(0x2001), 1);
}

TEST_F(DmaFixture, StridedGatherPacksDensely)
{
    // 4 rows of 8 bytes, 64 bytes apart.
    for (int r = 0; r < 4; ++r)
        for (int b = 0; b < 8; ++b)
            mem.write<std::uint8_t>(0x4000 + Addr(r) * 64 + b,
                                    std::uint8_t(r * 16 + b));
    dma->getStrided(0, 0x4000, 64, 8, 4, 100);
    for (int r = 0; r < 4; ++r)
        for (int b = 0; b < 8; ++b)
            EXPECT_EQ(ls->read<std::uint8_t>(100 + r * 8 + b),
                      std::uint8_t(r * 16 + b));
}

TEST_F(DmaFixture, StridedScatterInverse)
{
    for (int i = 0; i < 32; ++i)
        ls->write<std::uint8_t>(std::uint32_t(i), std::uint8_t(i + 1));
    dma->putStrided(0, 0x5000, 128, 8, 4, 0);
    for (int r = 0; r < 4; ++r)
        for (int b = 0; b < 8; ++b)
            EXPECT_EQ(mem.read<std::uint8_t>(0x5000 + Addr(r) * 128 +
                                             b),
                      std::uint8_t(r * 8 + b + 1));
}

TEST_F(DmaFixture, IndexedGatherScatter)
{
    std::vector<Addr> addrs{0x7000, 0x7100, 0x7040};
    for (std::size_t i = 0; i < addrs.size(); ++i)
        mem.write<std::uint32_t>(addrs[i], std::uint32_t(1000 + i));
    dma->getIndexed(0, addrs, 4, 0);
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(ls->read<std::uint32_t>(std::uint32_t(i) * 4),
                  std::uint32_t(1000 + i));

    std::vector<Addr> dsts{0x8000, 0x8200};
    ls->write<std::uint32_t>(0, 7);
    ls->write<std::uint32_t>(4, 9);
    dma->putIndexed(0, dsts, 4, 0);
    EXPECT_EQ(mem.read<std::uint32_t>(0x8000), 7u);
    EXPECT_EQ(mem.read<std::uint32_t>(0x8200), 9u);
}

TEST_F(DmaFixture, PropertyRandomStridesMatchMemcpyOracle)
{
    Rng rng(11);
    for (int trial = 0; trial < 40; ++trial) {
        std::uint32_t rows = 1 + std::uint32_t(rng.nextBelow(8));
        std::uint32_t row_bytes =
            4 * (1 + std::uint32_t(rng.nextBelow(16)));
        std::uint64_t stride =
            row_bytes + 4 * rng.nextBelow(32);
        Addr base = 0x10000 + trial * 0x1000;
        std::vector<std::uint8_t> oracle(rows * row_bytes);
        for (std::uint32_t r = 0; r < rows; ++r) {
            for (std::uint32_t b = 0; b < row_bytes; ++b) {
                auto v = std::uint8_t(rng.next());
                mem.write<std::uint8_t>(base + r * stride + b, v);
                oracle[r * row_bytes + b] = v;
            }
        }
        dma->getStrided(0, base, stride, row_bytes, rows, 512);
        std::vector<std::uint8_t> got(rows * row_bytes);
        ls->read(512, got.data(), got.size());
        EXPECT_EQ(got, oracle) << "trial " << trial;
    }
}

TEST_F(DmaFixture, OutstandingLimitThrottlesIssue)
{
    // A large transfer decomposes into many 32 B accesses; with only
    // 16 in flight the completion must exceed a naive lower bound of
    // full pipelining.
    auto t = dma->get(0, 0x20000, 0, 16 * 1024);
    Tick done = dma->completionTick(t);
    // 512 accesses, 16 at a time: at least 32 "waves" of DRAM
    // occupancy (10 ns per 32 B at 3.2 GB/s).
    EXPECT_GT(done, 512u * 10000u / 2);
    EXPECT_EQ(dma->counters().accesses, 512u);
    EXPECT_EQ(dma->counters().bytesRead, 16u * 1024);
}

TEST_F(DmaFixture, TicketsTrackIndividualCommands)
{
    auto t1 = dma->get(0, 0x1000, 0, 32);
    auto t2 = dma->get(dma->completionTick(t1), 0x2000, 32, 4096);
    EXPECT_LT(dma->completionTick(t1), dma->completionTick(t2));
    EXPECT_EQ(dma->allDoneTick(), dma->completionTick(t2));
    EXPECT_EQ(dma->counters().commands, 2u);
}

TEST_F(DmaFixture, FullLinePutAvoidsL2Refill)
{
    auto avoided = l2->refillsAvoided();
    ls->write<std::uint32_t>(0, 1);
    dma->put(0, 0x30000, 0, 32); // exactly one full line
    EXPECT_EQ(l2->refillsAvoided(), avoided + 1);

    // A sub-line put must refill (read-modify-write at the L2).
    auto reads = dram->readBytes();
    dma->put(dma->allDoneTick(), 0x31000, 0, 8);
    EXPECT_GT(dram->readBytes(), reads);
}

} // namespace
} // namespace cmpmem
