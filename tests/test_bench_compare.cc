/**
 * @file
 * The perf-regression gate, end to end (DESIGN.md §14): the JSON
 * reader must reject every malformed artifact loudly, and
 * bench_compare must hold simulated stats to bit-identity while
 * excluding (but still guarding) the host-time-derived fields. The
 * doctored-artifact cases are the executable spec for "the gate
 * fails with the offending metric named".
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

// ---------------------------------------------------------------- //
// JsonValue: strict parsing                                        //
// ---------------------------------------------------------------- //

SimErrorKind
parseErrorKind(const std::string &text)
{
    try {
        JsonValue::parse(text);
    } catch (const SimError &e) {
        return e.kind();
    }
    ADD_FAILURE() << "parse accepted: " << text;
    return SimErrorKind::Model;
}

TEST(Json, ParsesAndRoundTripsExactDoubles)
{
    const double v = 0.1 + 0.2; // not representable exactly
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"x\": %.17g}", v);
    JsonValue doc = JsonValue::parse(buf);
    EXPECT_EQ(doc.at("x").asNumber(), v);

    JsonValue again = JsonValue::parse(doc.dump());
    EXPECT_EQ(again.at("x").asNumber(), v);
}

TEST(Json, PreservesInsertionOrderAndNesting)
{
    JsonValue doc = JsonValue::parse(
        "{\"b\": [1, {\"k\": \"v\"}], \"a\": true, \"n\": null}");
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[0].first, "b");
    EXPECT_EQ(doc.members()[2].first, "n");
    EXPECT_TRUE(doc.at("n").isNull());
    EXPECT_EQ(doc.at("b").items()[1].at("k").asString(), "v");
}

TEST(Json, EscapesRoundTrip)
{
    JsonValue doc = JsonValue::parse(
        "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
    EXPECT_EQ(doc.at("s").asString(), "a\"b\\c\n\tA");
    EXPECT_EQ(JsonValue::parse(doc.dump()).at("s").asString(),
              "a\"b\\c\n\tA");
}

TEST(Json, RejectsTruncatedInput)
{
    for (const char *bad :
         {"", "{", "{\"a\": ", "[1, 2", "{\"a\": 1,", "\"unterminated",
          "{\"a\": tru", "12e", "{\"a\": 1} trailing"}) {
        EXPECT_EQ(parseErrorKind(bad), SimErrorKind::Config) << bad;
    }
}

TEST(Json, RejectsDuplicateKeys)
{
    EXPECT_EQ(parseErrorKind("{\"a\": 1, \"a\": 2}"),
              SimErrorKind::Config);
}

TEST(Json, ParseErrorNamesTheLine)
{
    try {
        JsonValue::parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
        FAIL() << "accepted invalid literal";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Json, ParseFileRejectsMissingFile)
{
    try {
        JsonValue::parseFile("/nonexistent/BENCH_nope.json");
        FAIL() << "accepted missing file";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
    }
}

// ---------------------------------------------------------------- //
// bench_compare semantics on a real sweep artifact                 //
// ---------------------------------------------------------------- //

/**
 * A real artifact from the real writer: two cheap custom-run jobs
 * with fixed simulated stats and a controlled host cost, so every
 * derived field (digest, events_per_sec) is produced by the same
 * code path the microbenches use.
 */
JsonValue
makeArtifact()
{
    auto fixed = [](std::uint64_t events, Tick ticks) {
        return [events, ticks] {
            RunResult r;
            r.stats.eventsExecuted = events;
            r.stats.peakPendingEvents = 8;
            r.stats.execTicks = ticks;
            r.hostSeconds = 0.25;
            r.verified = true;
            return r;
        };
    };
    std::vector<SweepJob> jobs;
    jobs.emplace_back("alpha", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{},
                      fixed(1000, 5000));
    jobs.emplace_back("beta", "", SystemConfig{}, WorkloadParams{},
                      std::vector<std::string>{},
                      std::map<std::string, std::string>{},
                      fixed(2000, 9000));
    SweepOptions opts;
    opts.jobs = 1;
    return JsonValue::parse(
        runJobs("gate_test", std::move(jobs), opts).toJson());
}

JsonValue &
jobNamed(JsonValue &artifact, const std::string &id)
{
    for (JsonValue &job : artifact.at("results").items())
        if (job.at("id").asString() == id)
            return job;
    throw std::runtime_error("no job " + id);
}

TEST(BenchCompare, IdenticalArtifactsCompareClean)
{
    JsonValue base = makeArtifact();
    CompareReport rep = compareArtifacts(base, {base, base, base});
    EXPECT_TRUE(rep.identityClean());
    EXPECT_TRUE(rep.hostClean());
    EXPECT_EQ(rep.exitCode(), 0);
    EXPECT_EQ(rep.jobsCompared, 2u);
    EXPECT_EQ(rep.repeats, 3u);
}

TEST(BenchCompare, DoctoredStatFailsNamingTheMetric)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    JsonValue &stats = jobNamed(fresh, "beta").at("stats");
    stats.set("sim.events_executed",
              JsonValue::makeNumber(
                  stats.at("sim.events_executed").asNumber() + 1));

    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_EQ(rep.exitCode(), 1);
    ASSERT_EQ(rep.identity.size(), 1u);
    EXPECT_EQ(rep.identity[0].jobId, "beta");
    EXPECT_EQ(rep.identity[0].metric, "stats.sim.events_executed");
    // The formatted report names the metric too — that text is what
    // check.sh --full surfaces.
    EXPECT_NE(rep.format().find("stats.sim.events_executed"),
              std::string::npos);
}

TEST(BenchCompare, DigestDriftIsAnIdentityFailure)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    jobNamed(fresh, "alpha")
        .set("stats_digest",
             JsonValue::makeString("fnv1a:0000000000000000"));
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_EQ(rep.exitCode(), 1);
    ASSERT_EQ(rep.identity.size(), 1u);
    EXPECT_EQ(rep.identity[0].metric, "stats_digest");
}

TEST(BenchCompare, MissingJobIsAnIdentityFailure)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    fresh.at("results").items().pop_back();
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_EQ(rep.exitCode(), 1);
    ASSERT_EQ(rep.identity.size(), 1u);
    EXPECT_EQ(rep.identity[0].jobId, "beta");
}

TEST(BenchCompare, HostFieldsAreExcludedFromIdentity)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    for (const char *id : {"alpha", "beta"}) {
        JsonValue &job = jobNamed(fresh, id);
        job.set("host_seconds", JsonValue::makeNumber(123.0));
        // Faster than baseline: excluded from identity AND not a
        // regression.
        job.set("events_per_sec",
                JsonValue::makeNumber(
                    job.at("events_per_sec").asNumber() * 2));
    }
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_TRUE(rep.identityClean());
    EXPECT_TRUE(rep.hostClean());
    EXPECT_EQ(rep.exitCode(), 0);
}

TEST(BenchCompare, RetryBookkeepingIsExcludedFromIdentity)
{
    // attempts counts sandbox re-dispatches (DESIGN.md §16) — host
    // scheduling noise, like host_seconds. A baseline recorded before
    // the field existed must also still compare clean against fresh
    // artifacts that carry it.
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    for (const char *id : {"alpha", "beta"}) {
        JsonValue &job = jobNamed(fresh, id);
        job.set("attempts", JsonValue::makeNumber(3));
    }
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_TRUE(rep.identityClean());
    EXPECT_EQ(rep.exitCode(), 0);

    std::string text = base.dump();
    for (std::size_t pos = text.find("\"attempts\":");
         pos != std::string::npos;
         pos = text.find("\"attempts\":", pos)) {
        std::size_t end = text.find(',', pos);
        ASSERT_NE(end, std::string::npos);
        text.erase(pos, end - pos + 1);
    }
    JsonValue old = JsonValue::parse(text);
    EXPECT_TRUE(compareArtifacts(old, {fresh}).identityClean());
}

TEST(BenchCompare, ThroughputDropBeyondToleranceIsFlagged)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    JsonValue &job = jobNamed(fresh, "alpha");
    job.set("events_per_sec",
            JsonValue::makeNumber(
                job.at("events_per_sec").asNumber() * 0.8));

    CompareReport rep = compareArtifacts(base, {fresh, fresh, fresh});
    EXPECT_TRUE(rep.identityClean());
    ASSERT_EQ(rep.host.size(), 1u);
    EXPECT_EQ(rep.host[0].jobId, "alpha");
    EXPECT_EQ(rep.host[0].metric, "events_per_sec");
    EXPECT_EQ(rep.exitCode(), 3);

    CompareOptions warn;
    warn.hostMode = HostMode::Warn;
    EXPECT_EQ(compareArtifacts(base, {fresh}, warn).exitCode(), 0);
    CompareOptions off;
    off.hostMode = HostMode::Off;
    EXPECT_TRUE(compareArtifacts(base, {fresh}, off).hostClean());
}

TEST(BenchCompare, MedianOverRepeatsAbsorbsOneSlowOutlier)
{
    JsonValue base = makeArtifact();
    JsonValue slow = base;
    JsonValue &job = jobNamed(slow, "alpha");
    job.set("events_per_sec",
            JsonValue::makeNumber(
                job.at("events_per_sec").asNumber() * 0.5));
    // Two clean repeats and one 2x-slower outlier: the median sits at
    // baseline, so the gate stays green.
    CompareReport rep = compareArtifacts(base, {base, slow, base});
    EXPECT_TRUE(rep.hostClean());
    EXPECT_EQ(rep.exitCode(), 0);
}

TEST(BenchCompare, RefusesDifferentSizings)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    fresh.set("bench_scale_div", JsonValue::makeNumber(20));
    try {
        compareArtifacts(base, {fresh});
        FAIL() << "compared across bench_scale_div";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("bench_scale_div"),
                  std::string::npos);
    }
}

TEST(BenchCompare, RefusesCrossPolicyDiffNamingTheField)
{
    // A policy change is a different experiment, not a regression:
    // the gate must refuse the comparison outright (like a sizing
    // mismatch), naming the policy field and both values.
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    jobNamed(fresh, "alpha")
        .at("config")
        .set("l1_replacement", JsonValue::makeString("MIP"));
    try {
        compareArtifacts(base, {fresh});
        FAIL() << "compared across replacement policies";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        std::string msg = e.what();
        EXPECT_NE(msg.find("l1_replacement"), std::string::npos) << msg;
        EXPECT_NE(msg.find("MIP"), std::string::npos) << msg;
        EXPECT_NE(msg.find("LRU"), std::string::npos) << msg;
    }
}

TEST(BenchCompare, NonPolicyConfigDriftNamesTheField)
{
    // Other config drift stays a per-field identity issue so the
    // report says exactly what moved.
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    jobNamed(fresh, "alpha")
        .at("config")
        .set("cores", JsonValue::makeNumber(8));
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_EQ(rep.exitCode(), 1);
    ASSERT_EQ(rep.identity.size(), 1u);
    EXPECT_EQ(rep.identity[0].jobId, "alpha");
    EXPECT_EQ(rep.identity[0].metric, "config.cores");
}

TEST(BenchCompare, RefusesUnknownSchemaAndForeignSweep)
{
    JsonValue base = makeArtifact();
    JsonValue old = base;
    old.set("schema", JsonValue::makeNumber(1));
    EXPECT_THROW(compareArtifacts(base, {old}), SimError);

    JsonValue other = base;
    other.set("sweep", JsonValue::makeString("some_other_sweep"));
    EXPECT_THROW(compareArtifacts(base, {other}), SimError);
}

TEST(BenchCompare, NewJobIsANoteNotAFailure)
{
    JsonValue base = makeArtifact();
    JsonValue fresh = base;
    base.at("results").items().pop_back(); // baseline predates "beta"
    CompareReport rep = compareArtifacts(base, {fresh});
    EXPECT_EQ(rep.exitCode(), 0);
    ASSERT_EQ(rep.notes.size(), 1u);
    EXPECT_NE(rep.notes[0].find("beta"), std::string::npos);
}

TEST(BenchCompare, AnnotateWritesSummaryIntoArtifact)
{
    JsonValue base = makeArtifact();
    std::string path =
        testing::TempDir() + "/BENCH_gate_test_annotate.json";
    {
        std::ofstream ofs(path, std::ios::trunc);
        ofs << base.dump();
    }
    CompareReport rep = compareArtifacts(base, {base});
    annotateArtifact(path, rep);

    JsonValue doc = JsonValue::parseFile(path);
    const JsonValue &cmp = doc.at("compare");
    EXPECT_TRUE(cmp.at("identity_clean").asBool());
    EXPECT_EQ(cmp.at("exit_code").asNumber(), 0);
    EXPECT_EQ(cmp.at("host_mode").asString(), "strict");
    // The rest of the document survived the rewrite.
    EXPECT_EQ(doc.at("results").items().size(), 2u);
    std::remove(path.c_str());
}

TEST(BenchCompare, TruncatedArtifactFileIsRejected)
{
    JsonValue base = makeArtifact();
    std::string full = base.dump();
    std::string path =
        testing::TempDir() + "/BENCH_gate_test_truncated.json";
    {
        // Simulate a crash mid-write: half the document.
        std::ofstream ofs(path, std::ios::trunc);
        ofs << full.substr(0, full.size() / 2);
    }
    try {
        JsonValue::parseFile(path);
        FAIL() << "accepted truncated artifact";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        // The error names the file, so the gate's output says which
        // artifact is corrupt.
        EXPECT_NE(std::string(e.what()).find(path),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(BenchCompare, ParseHostModeValidates)
{
    EXPECT_EQ(parseHostMode("strict"), HostMode::Strict);
    EXPECT_EQ(parseHostMode("warn"), HostMode::Warn);
    EXPECT_EQ(parseHostMode("off"), HostMode::Off);
    EXPECT_THROW(parseHostMode("loose"), SimError);
}

} // namespace
} // namespace cmpmem
