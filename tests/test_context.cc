/**
 * @file
 * Context-level API tests: awaitable semantics, functional values,
 * stall classification per operation type, DMA issue overheads, the
 * PFS hint plumbing, and model-specific routing (atomics at the L2
 * in STR, through the coherent L1 in CC).
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

/** Build a 1-core system and run one kernel over it. */
template <typename MakeKernel>
RunStats
runKernel(MemModel model, MakeKernel make)
{
    SystemConfig cfg = makeConfig(1, model);
    CmpSystem sys(cfg);
    sys.bindKernel(0, make(sys.context(0)));
    sys.simulate();
    return sys.collectStats();
}

KernelTask
valueRoundTrip(Context &ctx, Addr a, bool *ok)
{
    co_await ctx.store<std::uint64_t>(a, 0x1122334455667788ULL);
    auto v = co_await ctx.load<std::uint64_t>(a);
    co_await ctx.store<std::uint16_t>(a + 2, 0xbeef);
    auto w = co_await ctx.load<std::uint64_t>(a);
    *ok = (v == 0x1122334455667788ULL) &&
          (w == 0x11223344beef7788ULL);
}

TEST(Context, LoadsSeeStoredBytes)
{
    bool ok = false;
    runKernel(MemModel::CC, [&](Context &ctx) {
        return valueRoundTrip(ctx, 0x10000, &ok);
    });
    EXPECT_TRUE(ok);
}

KernelTask
countedOps(Context &ctx, Addr a)
{
    co_await ctx.compute(10);
    co_await ctx.computeFp(5);
    co_await ctx.load<std::uint32_t>(a);
    co_await ctx.store<std::uint32_t>(a, 1);
    co_await ctx.atomicFetchAdd32(a + 64, 1);
}

TEST(Context, InstructionAccountingPerClass)
{
    RunStats rs = runKernel(MemModel::CC, [&](Context &ctx) {
        return countedOps(ctx, 0x20000);
    });
    const CoreStats &cs = rs.coreTotal;
    EXPECT_EQ(cs.bundles, 15u);
    EXPECT_EQ(cs.fpBundles, 5u);
    EXPECT_EQ(cs.loads, 1u);
    EXPECT_EQ(cs.stores, 1u);
    EXPECT_EQ(cs.atomics, 1u);
    EXPECT_EQ(cs.instructions(), 15u + 3u);
    // Fetch counted every instruction.
    EXPECT_EQ(rs.icacheFetches, 18u);
}

TEST(Context, AtomicRoutesByModel)
{
    // CC: through the coherent L1.
    RunStats cc = runKernel(MemModel::CC, [&](Context &ctx) {
        return countedOps(ctx, 0x20000);
    });
    EXPECT_EQ(cc.l1Total.atomicOps, 1u);
    EXPECT_EQ(cc.fabric.remoteAtomics, 0u);

    // STR: at the shared L2's atomic unit.
    RunStats str = runKernel(MemModel::STR, [&](Context &ctx) {
        return countedOps(ctx, 0x20000);
    });
    EXPECT_EQ(str.l1Total.atomicOps, 0u);
    EXPECT_EQ(str.fabric.remoteAtomics, 1u);
}

KernelTask
pfsStores(Context &ctx, Addr a, int lines)
{
    for (int i = 0; i < lines; ++i)
        co_await ctx.storeNA<std::uint32_t>(a + Addr(i) * 32, 7);
}

TEST(Context, StoreNaHonoursPfsConfigOnly)
{
    // Without PFS, storeNA behaves as a normal allocate-on-write.
    {
        SystemConfig cfg = makeConfig(1, MemModel::CC);
        CmpSystem sys(cfg);
        Addr a = sys.mem().alloc(64 * 32);
        sys.bindKernel(0, pfsStores(sys.context(0), a, 32));
        sys.simulate();
        RunStats rs = sys.collectStats();
        EXPECT_EQ(rs.l1Total.pfsStores, 0u);
        EXPECT_GT(rs.dramReadBytes, 0u); // refills happened
    }
    // With PFS, no refill reads at all.
    {
        SystemConfig cfg = makeConfig(1, MemModel::CC);
        cfg.pfsEnabled = true;
        CmpSystem sys(cfg);
        Addr a = sys.mem().alloc(64 * 32);
        sys.bindKernel(0, pfsStores(sys.context(0), a, 32));
        sys.simulate();
        RunStats rs = sys.collectStats();
        EXPECT_EQ(rs.l1Total.pfsStores, 32u);
        EXPECT_EQ(rs.dramReadBytes, 0u);
        EXPECT_GT(rs.dramWriteBytes, 0u); // data still written back
    }
}

KernelTask
dmaStridedKernel(Context &ctx, Addr base, bool *ok)
{
    // 4 rows of 8 bytes at stride 64, gathered then scattered back
    // shifted.
    auto g = co_await ctx.dmaGetStrided(base, 64, 8, 4, 0);
    co_await ctx.dmaWait(g);
    auto sum = co_await ctx.lsRead<std::uint64_t>(0);
    auto p = co_await ctx.dmaPutStrided(base + 8, 64, 8, 4, 0);
    co_await ctx.dmaWait(p);
    *ok = sum == 0x0706050403020100ULL;
}

TEST(Context, DmaStridedThroughContext)
{
    SystemConfig cfg = makeConfig(1, MemModel::STR);
    CmpSystem sys(cfg);
    Addr base = sys.mem().alloc(4 * 64 + 16);
    for (int r = 0; r < 4; ++r)
        for (int b = 0; b < 8; ++b)
            sys.mem().write<std::uint8_t>(base + Addr(r) * 64 + b,
                                          std::uint8_t(r * 8 + b));
    bool ok = false;
    sys.bindKernel(0, dmaStridedKernel(sys.context(0), base, &ok));
    sys.simulate();
    EXPECT_TRUE(ok);
    // Scatter landed 8 bytes to the right of each row.
    for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(sys.mem().read<std::uint8_t>(base + Addr(r) * 64 + 8),
                  std::uint8_t(r * 8));
    }
    RunStats rs = sys.collectStats();
    EXPECT_EQ(rs.coreTotal.dmaCommands, 2u);
}

KernelTask
quantumHog(Context &ctx, Cycles total)
{
    // One huge compute region: the quantum must chop it into bounded
    // event-queue excursions without changing the accounted time.
    for (Cycles i = 0; i < total; i += 10)
        co_await ctx.compute(10);
}

TEST(Context, QuantumFlushPreservesComputeTime)
{
    SystemConfig cfg = makeConfig(1, MemModel::CC);
    cfg.quantumCycles = 50;
    CmpSystem sys(cfg);
    sys.bindKernel(0, quantumHog(sys.context(0), 100000));
    Tick end = sys.simulate();
    EXPECT_EQ(end, 100000u * 1250u);
    // Many flush events must have fired (at least one per quantum).
    EXPECT_GT(sys.eventQueue().executed(), 1000u);
}

KernelTask
lsRoundTrip(Context &ctx, bool *ok)
{
    co_await ctx.lsWrite<float>(100, 2.5f);
    auto v = co_await ctx.lsRead<float>(100);
    *ok = (v == 2.5f);
}

TEST(Context, LocalStoreAccessors)
{
    bool ok = false;
    RunStats rs = runKernel(MemModel::STR, [&](Context &ctx) {
        return lsRoundTrip(ctx, &ok);
    });
    EXPECT_TRUE(ok);
    EXPECT_EQ(rs.lsReads, 1u);
    EXPECT_EQ(rs.lsWrites, 1u);
}

} // namespace
} // namespace cmpmem
