/**
 * @file
 * Energy model tests: accounting identities, model-structure
 * differences (tag-less local store, snoop probes), and scaling
 * behaviour (leakage with time, DRAM energy with traffic).
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

RunResult
run(const char *wl, MemModel m, int cores = 4)
{
    WorkloadParams params;
    params.scale = 0;
    return runWorkload(wl, makeConfig(cores, m), params);
}

TEST(Energy, ComponentsArePositiveAndSumToTotal)
{
    RunResult r = run("fir", MemModel::CC);
    const EnergyBreakdown &e = r.energy;
    EXPECT_GT(e.coreMj, 0.0);
    EXPECT_GT(e.icacheMj, 0.0);
    EXPECT_GT(e.dstoreMj, 0.0);
    EXPECT_GT(e.networkMj, 0.0);
    EXPECT_GT(e.l2Mj, 0.0);
    EXPECT_GT(e.dramMj, 0.0);
    double sum = e.coreMj + e.icacheMj + e.dstoreMj + e.networkMj +
                 e.l2Mj + e.dramMj;
    EXPECT_DOUBLE_EQ(sum, e.totalMj());
}

TEST(Energy, DramEnergyTracksTraffic)
{
    RunResult fir = run("fir", MemModel::CC);
    RunResult depth = run("depth", MemModel::CC);
    // FIR moves far more off-chip data per unit time than Depth; its
    // DRAM share of total energy must be larger.
    double fir_share = fir.energy.dramMj / fir.energy.totalMj();
    double depth_share = depth.energy.dramMj / depth.energy.totalMj();
    EXPECT_GT(fir_share, depth_share);
}

TEST(Energy, LeakageGrowsWithTime)
{
    // Same per-event counters, longer runtime -> more static energy.
    RunStats rs;
    rs.config = makeConfig(4, MemModel::CC);
    rs.execTicks = ticksPerMs;
    EnergyModel model(rs.config.energy);
    double e1 = model.compute(rs).totalMj();
    rs.execTicks = 2 * ticksPerMs;
    double e2 = model.compute(rs).totalMj();
    EXPECT_GT(e2, e1 * 1.9);
}

TEST(Energy, TagProbesCheaperThanFullAccesses)
{
    // Direct model check: N snoops cost less than N demand accesses.
    RunStats rs;
    rs.config = makeConfig(1, MemModel::CC);
    rs.execTicks = 1;
    EnergyModel model(rs.config.energy);

    RunStats snoops = rs;
    snoops.l1Total.snoopsReceived = 1000000;
    RunStats accesses = rs;
    accesses.l1Total.loadHits = 1000000;
    EXPECT_LT(model.compute(snoops).dstoreMj,
              model.compute(accesses).dstoreMj);
}

TEST(Energy, LocalStoreAccessCheaperThanCacheAccess)
{
    EnergyParams p;
    EXPECT_LT(p.lsAccessPj, p.l1AccessPj);
    EXPECT_LT(p.l1TagProbePj, p.smallCacheAccessPj);

    // And end-to-end: a million LS reads (STR) cost less first-level
    // energy than a million L1 loads (CC) at equal runtime.
    RunStats cc;
    cc.config = makeConfig(1, MemModel::CC);
    cc.execTicks = 1;
    cc.l1Total.loadHits = 1000000;
    RunStats str;
    str.config = makeConfig(1, MemModel::STR);
    str.config.model = MemModel::STR;
    str.execTicks = 1;
    str.lsReads = 1000000;
    EnergyModel m(p);
    EXPECT_LT(m.compute(str).dstoreMj, m.compute(cc).dstoreMj);
}

TEST(Energy, StreamingSavesEnergyOnOutputHeavyWorkloads)
{
    // The Figure 4 signal at test scale: for FIR the streaming model
    // must not consume *more* total energy than write-allocate CC,
    // and must move no more DRAM bytes.
    RunResult cc = run("fir", MemModel::CC, 8);
    RunResult str = run("fir", MemModel::STR, 8);
    EXPECT_LE(str.stats.dramReadBytes + str.stats.dramWriteBytes,
              cc.stats.dramReadBytes + cc.stats.dramWriteBytes);
    EXPECT_LT(str.energy.dramMj, cc.energy.dramMj * 1.05);
}

} // namespace
} // namespace cmpmem
