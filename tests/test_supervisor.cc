/**
 * @file
 * Supervisor and write-ahead-journal tests (DESIGN.md §16): the
 * JobResult codec must round-trip raw stats bit-exactly, a crashing
 * or wedged job must be contained (and retried) without poisoning
 * its siblings, and a sweep killed mid-run must resume from the
 * journal to the exact artifact an uninterrupted run produces. The
 * sandboxed-vs-in-process bit-identity sweep is the
 * SupervisorIntegration suite, labelled "long" in ctest.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "cmpmem.hh"
#include "sim/log.hh"

namespace cmpmem
{
namespace
{

/** A custom-run job returning fixed, distinctive simulated stats. */
SweepJob
fixedJob(const std::string &id, Tick ticks,
         std::vector<std::string> deps = {})
{
    SweepJob j;
    j.id = id;
    j.deps = std::move(deps);
    j.run = [ticks] {
        RunResult r;
        r.stats.execTicks = ticks;
        r.stats.eventsExecuted = 10 * ticks;
        r.stats.dramReadBytes = 64 * ticks;
        r.verified = true;
        return r;
    };
    return j;
}

/** A completed JobResult the journal tests can record directly. */
JobResult
fixedResult(const std::string &id, Tick ticks)
{
    JobResult jr;
    jr.job.id = id;
    jr.ran = true;
    jr.run.verified = true;
    jr.run.stats.execTicks = ticks;
    jr.run.stats.eventsExecuted = 10 * ticks;
    return jr;
}

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + "/" + leaf;
}

// ---------------------------------------------------------------- //
// JobResult codec                                                  //
// ---------------------------------------------------------------- //

TEST(SupervisorCodec, RoundTripsJobResultBitExactly)
{
    JobResult in;
    in.job.id = "codec";
    in.ran = true;
    in.attempts = 3;
    in.error = "none really";
    in.errorKind = "";
    in.signal = "";
    in.diagnostic = "diag\ntext";
    in.log = "warn: something\n";
    in.run.verified = true;
    in.run.hostSeconds = 0.1 + 0.2; // not exactly representable

    RunStats &s = in.run.stats;
    s.workload = "wl";
    s.variant = "var";
    s.execTicks = 123456789;
    s.eventsExecuted = 987654321;
    s.peakPendingEvents = 17;
    s.dramReadBytes = (1ull << 52) + 3; // still exact in a double
    s.dramWriteBytes = 77;
    s.l2Hits = 5;
    s.l2Misses = 6;
    s.coreTotal.usefulTicks = 1111;
    s.coreTotal.loads = 42;
    s.perCore.resize(2);
    s.perCore[0].usefulTicks = 500;
    s.perCore[0].stores = 7;
    s.perCore[1].syncTicks = 611;
    s.l1Total.loadMisses = 13;
    s.l1Total.writebacks = 14;
    s.fabric.snoopProbes = 15;
    s.faults.eccCorrected = 16;

    in.run.energy.coreMj = 1.0 / 3.0;
    in.run.energy.dramMj = 2.5e-7;
    in.run.energy.l2Mj = 0.1 + 0.2;

    const std::string wire =
        jobResultToJson(in, /*include_log=*/true).dumpCompact();
    JobResult out;
    jobResultFromJson(JsonValue::parse(wire), out);

    // The digest covers every rendered stat: equality here is the
    // codec's bit-identity contract in one comparison.
    EXPECT_EQ(out.run.stats.toStatSet().digest(),
              in.run.stats.toStatSet().digest());

    EXPECT_TRUE(out.ran);
    EXPECT_TRUE(out.run.verified);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_EQ(out.run.hostSeconds, in.run.hostSeconds);
    EXPECT_EQ(out.run.stats.workload, "wl");
    EXPECT_EQ(out.run.stats.variant, "var");
    EXPECT_EQ(out.error, "none really");
    EXPECT_EQ(out.diagnostic, "diag\ntext");
    EXPECT_EQ(out.log, "warn: something\n");
    EXPECT_EQ(out.run.stats.execTicks, s.execTicks);
    EXPECT_EQ(out.run.stats.dramReadBytes, s.dramReadBytes);
    ASSERT_EQ(out.run.stats.perCore.size(), 2u);
    EXPECT_EQ(out.run.stats.perCore[0].usefulTicks, 500u);
    EXPECT_EQ(out.run.stats.perCore[1].syncTicks, 611u);
    EXPECT_EQ(out.run.stats.l1Total.writebacks, 14u);
    EXPECT_EQ(out.run.stats.fabric.snoopProbes, 15u);
    EXPECT_EQ(out.run.stats.faults.eccCorrected, 16u);
    EXPECT_EQ(out.run.energy.coreMj, in.run.energy.coreMj);
    EXPECT_EQ(out.run.energy.dramMj, in.run.energy.dramMj);
    EXPECT_EQ(out.run.energy.l2Mj, in.run.energy.l2Mj);
}

TEST(SupervisorCodec, LogIsOptionalOnTheWire)
{
    JobResult in = fixedResult("l", 5);
    in.log = "warn: big\n";
    const std::string wire =
        jobResultToJson(in, /*include_log=*/false).dumpCompact();
    EXPECT_EQ(wire.find("\"log\""), std::string::npos);
    JobResult out;
    jobResultFromJson(JsonValue::parse(wire), out);
    EXPECT_TRUE(out.log.empty());
    EXPECT_EQ(out.run.stats.execTicks, 5u);
}

TEST(SupervisorCodec, MissingMemberIsAnError)
{
    JobResult out;
    EXPECT_THROW(
        jobResultFromJson(JsonValue::parse("{\"ran\": true}"), out),
        SimError);
}

// ---------------------------------------------------------------- //
// Isolation resolution and retry policy                            //
// ---------------------------------------------------------------- //

TEST(SupervisorEnv, IsolationResolution)
{
    const char *prev = std::getenv("CMPMEM_ISOLATE");
    const std::string saved = prev ? prev : "";

    SweepOptions o;
    o.isolate = SweepIsolate::On;
    EXPECT_TRUE(isolationEnabled(o));

    // Explicit Off wins over the environment.
    setenv("CMPMEM_ISOLATE", "1", 1);
    o.isolate = SweepIsolate::Off;
    EXPECT_FALSE(isolationEnabled(o));

    o.isolate = SweepIsolate::Env;
    EXPECT_TRUE(isolationEnabled(o));
    setenv("CMPMEM_ISOLATE", "0", 1);
    EXPECT_FALSE(isolationEnabled(o));
    unsetenv("CMPMEM_ISOLATE");
    EXPECT_FALSE(isolationEnabled(o));

    if (prev)
        setenv("CMPMEM_ISOLATE", saved.c_str(), 1);
}

TEST(SupervisorRetry, ReDispatchAfterSandboxDeathSucceeds)
{
    // First attempt kills its sandbox (plain _exit, which even a
    // sanitizer cannot intercept); the sentinel file makes the
    // second attempt succeed, so ran + attempts==2 proves both the
    // crash classification and the re-dispatch accounting.
    const std::string sentinel = tempPath("cmpmem_retry_sentinel");
    std::remove(sentinel.c_str());

    SweepJob j;
    j.id = "flaky";
    j.run = [sentinel] {
        if (!std::ifstream(sentinel).good()) {
            std::ofstream(sentinel) << "attempt 1 was here";
            ::_exit(3);
        }
        RunResult r;
        r.stats.execTicks = 7;
        r.verified = true;
        return r;
    };

    SweepOptions opts;
    opts.jobs = 1;
    opts.echoLogs = false;
    opts.isolate = SweepIsolate::On;
    opts.maxRetries = 2;
    opts.retryBackoffSeconds = 0;

    SweepResult res = runJobs("retry", {j}, opts);
    EXPECT_TRUE(res.at("flaky").ran);
    EXPECT_EQ(res.at("flaky").attempts, 2);
    EXPECT_EQ(res.at("flaky").run.stats.execTicks, 7u);
    std::remove(sentinel.c_str());
}

TEST(SupervisorSandbox, LogLinesSurviveChildDeath)
{
    // Log lines stream over the pipe as they are produced ('L'
    // frames), so text captured before the child dies is not lost
    // with it.
    SweepJob j;
    j.id = "doomed";
    j.run = [] {
        warn("before the lights go out");
        ::_exit(9);
        return RunResult{};
    };

    SweepOptions opts;
    opts.jobs = 1;
    opts.echoLogs = false;
    opts.isolate = SweepIsolate::On;

    SweepResult res = runJobs("doom", {j}, opts);
    const JobResult &jr = res.at("doomed");
    EXPECT_FALSE(jr.ran);
    EXPECT_EQ(jr.errorKind, "crash");
    EXPECT_NE(jr.error.find("status 9"), std::string::npos)
        << jr.error;
    EXPECT_NE(jr.log.find("before the lights go out"),
              std::string::npos)
        << jr.log;
    EXPECT_FALSE(SweepJournal::eligible(jr));
}

// ---------------------------------------------------------------- //
// SweepJournal                                                     //
// ---------------------------------------------------------------- //

TEST(SweepJournalTest, RecordsAreDurableAndReload)
{
    const std::string path = tempPath("cmpmem_journal_rt.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        ASSERT_TRUE(journal.ok());
        journal.record(fixedResult("a", 11));
        journal.record(fixedResult("b", 22));
    }

    std::vector<SweepJob> jobs = {fixedJob("a", 11), fixedJob("b", 22),
                                  fixedJob("c", 33)};
    auto merged = SweepJournal::load(path, "jt", jobs);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.at("a").run.stats.execTicks, 11u);
    EXPECT_EQ(merged.at("b").run.stats.execTicks, 22u);
    // Merged results are marked attempts==0 (not re-run).
    EXPECT_EQ(merged.at("a").attempts, 0);
    EXPECT_TRUE(merged.at("a").ran);
    std::remove(path.c_str());
}

TEST(SweepJournalTest, DuplicateIdsLastCompleteWins)
{
    const std::string path = tempPath("cmpmem_journal_dup.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(fixedResult("a", 11));
        journal.record(fixedResult("a", 99));
    }
    std::vector<SweepJob> jobs = {fixedJob("a", 0)};
    auto merged = SweepJournal::load(path, "jt", jobs);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged.at("a").run.stats.execTicks, 99u);
    std::remove(path.c_str());
}

TEST(SweepJournalTest, TornTrailingLineIsDiscarded)
{
    const std::string path = tempPath("cmpmem_journal_torn.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(fixedResult("a", 11));
    }
    {
        // A kill mid-write leaves a prefix with no newline.
        std::ofstream app(path, std::ios::app | std::ios::binary);
        app << "{\"id\": \"b\", \"config\"";
    }
    std::vector<SweepJob> jobs = {fixedJob("a", 0), fixedJob("b", 0)};
    auto merged = SweepJournal::load(path, "jt", jobs);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged.at("a").run.stats.execTicks, 11u);
    std::remove(path.c_str());
}

TEST(SweepJournalTest, CorruptMiddleRecordRefusesToLoad)
{
    const std::string path = tempPath("cmpmem_journal_mid.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(fixedResult("a", 11));
    }
    {
        std::ofstream app(path, std::ios::app | std::ios::binary);
        app << "this is not json\n";
    }
    {
        // Re-open append (non-fresh) and add a valid record after
        // the damage: the corruption is now provably not a torn
        // tail, so the file must be refused loudly.
        SweepJournal journal(path, "jt", /*fresh=*/false);
        journal.record(fixedResult("b", 22));
    }
    std::vector<SweepJob> jobs = {fixedJob("a", 0), fixedJob("b", 0)};
    try {
        SweepJournal::load(path, "jt", jobs);
        FAIL() << "loaded a journal with a corrupt middle record";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("corrupt record"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(SweepJournalTest, RefusesForeignSweep)
{
    const std::string path = tempPath("cmpmem_journal_name.jsonl");
    {
        SweepJournal journal(path, "mine", /*fresh=*/true);
        journal.record(fixedResult("a", 11));
    }
    std::vector<SweepJob> jobs = {fixedJob("a", 0)};
    try {
        SweepJournal::load(path, "theirs", jobs);
        FAIL() << "merged a journal from another sweep";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("refusing --resume"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(SweepJournalTest, RefusesConfigIdentityMismatch)
{
    const std::string path = tempPath("cmpmem_journal_cfg.jsonl");
    JobResult recorded = fixedResult("a", 11);
    recorded.job.cfg.cores = 2;
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(recorded);
    }
    // Same id, different experiment: the sweep definition changed
    // under the journal.
    SweepJob changed = fixedJob("a", 11);
    changed.cfg.cores = 4;
    try {
        SweepJournal::load(path, "jt", {changed});
        FAIL() << "merged a record whose config identity changed";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("config identity"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(SweepJournalTest, RefusesSizingMismatch)
{
    const std::string path = tempPath("cmpmem_journal_scale.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(fixedResult("a", 11));
    }
    const char *prev = std::getenv("CMPMEM_SCALE");
    const std::string saved = prev ? prev : "";
    setenv("CMPMEM_SCALE", fmt("%d", benchScale() + 1).c_str(), 1);
    std::vector<SweepJob> jobs = {fixedJob("a", 0)};
    try {
        SweepJournal::load(path, "jt", jobs);
        ADD_FAILURE() << "merged a journal written at another scale";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("scale"),
                  std::string::npos)
            << e.what();
    }
    if (prev)
        setenv("CMPMEM_SCALE", saved.c_str(), 1);
    else
        unsetenv("CMPMEM_SCALE");
    std::remove(path.c_str());
}

TEST(SweepJournalTest, UnknownJobIdIsSkipped)
{
    const std::string path = tempPath("cmpmem_journal_ghost.jsonl");
    {
        SweepJournal journal(path, "jt", /*fresh=*/true);
        journal.record(fixedResult("ghost", 11));
    }
    std::vector<SweepJob> jobs = {fixedJob("a", 0)};
    auto merged = SweepJournal::load(path, "jt", jobs);
    EXPECT_TRUE(merged.empty());
    std::remove(path.c_str());
}

TEST(SweepJournalTest, MissingJournalMeansFullRun)
{
    std::vector<SweepJob> jobs = {fixedJob("a", 0)};
    auto merged = SweepJournal::load(
        tempPath("cmpmem_journal_nonexistent.jsonl"), "jt", jobs);
    EXPECT_TRUE(merged.empty());
}

// ---------------------------------------------------------------- //
// Kill-then-resume, end to end at unit scale                       //
// ---------------------------------------------------------------- //

TEST(SupervisorResume, KillMidSweepThenResumeMatchesUninterrupted)
{
    const std::string jpath = tempPath("BENCH_resume_ut.journal.jsonl");
    std::remove(jpath.c_str());

    // "killer" takes down the whole sweep process on the first run
    // (the flag is armed only in the forked child's copy of memory).
    bool arm_kill = true;
    auto makeJobs = [&arm_kill] {
        std::vector<SweepJob> jobs;
        jobs.push_back(fixedJob("a", 111));
        SweepJob k = fixedJob("killer", 222, {"a"});
        bool *flag = &arm_kill;
        auto inner = k.run;
        k.run = [flag, inner] {
            if (*flag)
                ::_exit(42); // hard death, no unwinding, no journal
            return inner();
        };
        jobs.push_back(k);
        jobs.push_back(fixedJob("c", 333, {"killer"}));
        return jobs;
    };

    SweepOptions opts;
    opts.jobs = 1; // deterministic order: a, killer, c
    opts.echoLogs = false;
    opts.isolate = SweepIsolate::Off; // the kill must hit the sweep
    opts.journalPath = jpath;

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        runJobs("resume_ut", makeJobs(), opts);
        ::_exit(7); // the kill did not fire
    }
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 42)
        << "the sweep survived the mid-run kill it was supposed to die "
           "from";

    // Resume: "a" merges from the journal, "killer" (now disarmed)
    // and "c" run fresh.
    arm_kill = false;
    opts.resume = true;
    SweepResult resumed = runJobs("resume_ut", makeJobs(), opts);
    EXPECT_TRUE(resumed.allRan());
    EXPECT_EQ(resumed.at("a").attempts, 0) << "merged, not re-run";
    EXPECT_EQ(resumed.at("a").run.stats.execTicks, 111u);
    EXPECT_EQ(resumed.at("killer").attempts, 1);
    EXPECT_EQ(resumed.at("c").run.stats.execTicks, 333u);

    // The acceptance shape: the resumed artifact is bit-identical
    // (stats, digests, config) to an uninterrupted run's.
    SweepOptions plain;
    plain.jobs = 1;
    plain.echoLogs = false;
    plain.isolate = SweepIsolate::Off;
    SweepResult reference = runJobs("resume_ut", makeJobs(), plain);
    CompareReport rep =
        compareArtifacts(JsonValue::parse(reference.toJson()),
                         {JsonValue::parse(resumed.toJson())});
    EXPECT_TRUE(rep.identityClean()) << rep.format();
    std::remove(jpath.c_str());
}

// ---------------------------------------------------------------- //
// Integration: real workloads under the sandbox ("long")           //
// ---------------------------------------------------------------- //

TEST(SupervisorIntegration, CrashIsContainedAndSiblingsComplete)
{
    WorkloadParams tiny;
    tiny.scale = 0;
    const SystemConfig cc = makeConfig(2, MemModel::CC);
    const SystemConfig str = makeConfig(2, MemModel::STR);

    std::vector<SweepJob> jobs;
    jobs.emplace_back("crash", "crash", cc, tiny);
    jobs.emplace_back("fir", "fir", cc, tiny);
    jobs.emplace_back("merge/str", "merge", str, tiny);

    SweepOptions opts;
    opts.jobs = 2;
    opts.echoLogs = false;
    opts.isolate = SweepIsolate::On;
    opts.maxRetries = 1; // a real crash is deterministic: 2 attempts
    opts.retryBackoffSeconds = 0;

    SweepResult res = runJobs("contain", std::move(jobs), opts);

    const JobResult &crash = res.at("crash");
    EXPECT_FALSE(crash.ran);
    EXPECT_EQ(crash.errorKind, "crash");
    EXPECT_EQ(crash.signal, "SIGSEGV");
    EXPECT_EQ(crash.attempts, 2);
    EXPECT_NE(crash.error.find("SIGSEGV"), std::string::npos)
        << crash.error;
    EXPECT_FALSE(SweepJournal::eligible(crash));

    EXPECT_TRUE(res.at("fir").ran);
    EXPECT_TRUE(res.at("fir").run.verified);
    EXPECT_EQ(res.at("fir").attempts, 1);
    EXPECT_TRUE(res.at("merge/str").ran);
    EXPECT_TRUE(res.at("merge/str").run.verified);
    EXPECT_TRUE(SweepJournal::eligible(res.at("fir")));
    EXPECT_FALSE(res.allRan());
}

TEST(SupervisorIntegration, DeadlineKillsHostWedgeAsTimeout)
{
    WorkloadParams tiny;
    tiny.scale = 0;

    std::vector<SweepJob> jobs;
    jobs.emplace_back("spin", "hostspin", makeConfig(1, MemModel::CC),
                      tiny);
    jobs.emplace_back("fir", "fir", makeConfig(2, MemModel::CC), tiny);

    SweepOptions opts;
    opts.jobs = 2;
    opts.echoLogs = false;
    opts.isolate = SweepIsolate::On;
    opts.jobDeadlineSeconds = 0.3;

    SweepResult res = runJobs("deadline", std::move(jobs), opts);

    const JobResult &spin = res.at("spin");
    EXPECT_FALSE(spin.ran);
    EXPECT_EQ(spin.errorKind, "timeout");
    EXPECT_EQ(spin.signal, "SIGKILL");
    EXPECT_EQ(spin.attempts, 1);
    EXPECT_NE(spin.error.find("deadline"), std::string::npos)
        << spin.error;
    EXPECT_FALSE(SweepJournal::eligible(spin));

    // The deadline is per job: the sibling finishes well inside it
    // and is unaffected by the wedged job's kill.
    EXPECT_TRUE(res.at("fir").ran);
    EXPECT_TRUE(res.at("fir").run.verified);
}

/**
 * The §16 identity contract (labelled "long" in ctest): sandboxed
 * execution reproduces in-process execution bit-for-bit — stats
 * digest (which covers every rendered counter), energy, and
 * verification across real workloads, both models, several shapes.
 */
TEST(SupervisorIntegration, IsolatedMatchesInProcessBitIdentical)
{
    WorkloadParams tiny;
    tiny.scale = 0;

    auto makeSpec = [&] {
        SweepSpec spec("iso_identity");
        spec.base(makeConfig(4, MemModel::CC))
            .baseParams(tiny)
            .workloads({"fir", "merge"})
            .axis("cores", {1, 2},
                  [](SystemConfig &cfg, double v) {
                      cfg.cores = int(v);
                  },
                  0)
            .modelAxis();
        return spec;
    };

    SweepOptions inproc;
    inproc.jobs = 1;
    inproc.echoLogs = false;
    inproc.isolate = SweepIsolate::Off;

    SweepOptions sandboxed;
    sandboxed.jobs = 4;
    sandboxed.echoLogs = false;
    sandboxed.isolate = SweepIsolate::On;

    SweepResult a = runSweep(makeSpec(), inproc);
    SweepResult b = runSweep(makeSpec(), sandboxed);

    ASSERT_EQ(a.jobs().size(), b.jobs().size());
    ASSERT_EQ(a.jobs().size(), 2u * 2u * 2u);
    for (const auto &ja : a.jobs()) {
        const JobResult &jb = b.at(ja.job.id);
        EXPECT_TRUE(ja.ran);
        EXPECT_TRUE(jb.ran);
        EXPECT_EQ(ja.run.stats.toStatSet().digest(),
                  jb.run.stats.toStatSet().digest())
            << ja.job.id;
        EXPECT_EQ(ja.run.energy.coreMj, jb.run.energy.coreMj)
            << ja.job.id;
        EXPECT_EQ(ja.run.energy.l2Mj, jb.run.energy.l2Mj) << ja.job.id;
        EXPECT_EQ(ja.run.energy.dramMj, jb.run.energy.dramMj)
            << ja.job.id;
        EXPECT_EQ(ja.run.verified, jb.run.verified) << ja.job.id;
    }
}

} // namespace
} // namespace cmpmem
