/**
 * @file
 * Harness tests: table formatting, normalized breakdowns, stat-set
 * export, and the runner contract.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

TEST(TextTable, AlignsColumnsAndRule)
{
    TextTable t({"a", "long_header"});
    t.addRow({"xxxxxx", "1"});
    std::string out = t.format();
    // Header, rule, one row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("xxxxxx"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmt("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(0.125), "12.50%");
}

TEST(NormBreakdown, ComponentsSumToNormalizedTime)
{
    RunStats rs;
    rs.execTicks = 1000;
    CoreStats c1;
    c1.usefulTicks = 600;
    c1.syncTicks = 100;
    c1.loadStallTicks = 200;
    c1.storeStallTicks = 100;
    CoreStats c2;
    c2.usefulTicks = 500; // finishes early: 500 idle -> sync
    rs.perCore = {c1, c2};

    NormBreakdown b = normalizedBreakdown(rs, 2000);
    // Average core busy+idle time = exec time; normalized to 2000.
    EXPECT_DOUBLE_EQ(b.total(), 0.5);
    EXPECT_DOUBLE_EQ(b.useful, (600 + 500) / 4000.0);
    EXPECT_DOUBLE_EQ(b.load, 200 / 4000.0);
    // Idle tail of core 2 lands in sync.
    EXPECT_DOUBLE_EQ(b.sync, (100 + 500) / 4000.0);
}

TEST(NormBreakdown, EmptyAndZeroBaselineAreSafe)
{
    RunStats rs;
    EXPECT_DOUBLE_EQ(normalizedBreakdown(rs, 0).total(), 0.0);
    EXPECT_DOUBLE_EQ(normalizedBreakdown(rs, 100).total(), 0.0);
}

TEST(RunStats, StatSetExportCoversKeyCounters)
{
    WorkloadParams p;
    p.scale = 0;
    RunResult r = runWorkload("fir", makeConfig(2, MemModel::CC), p);
    StatSet s = r.stats.toStatSet();
    EXPECT_GT(s.get("exec_ticks"), 0.0);
    EXPECT_GT(s.get("core.instructions"), 0.0);
    EXPECT_GT(s.get("l1.load_misses"), 0.0);
    EXPECT_GT(s.get("dram.read_bytes"), 0.0);
    EXPECT_GT(s.get("l1.miss_rate"), 0.0);
    EXPECT_LT(s.get("l1.miss_rate"), 1.0);
}

TEST(Runner, ReportsWorkloadIdentityAndHostCost)
{
    WorkloadParams p;
    p.scale = 0;
    p.streamOptimized = false;
    RunResult r = runWorkload("mpeg2", makeConfig(2, MemModel::CC), p);
    EXPECT_EQ(r.stats.workload, "mpeg2");
    EXPECT_EQ(r.stats.variant, "orig");
    EXPECT_GT(r.hostSeconds, 0.0);
}

TEST(Registry, AllElevenWorkloadsRegistered)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 11u);
    for (const auto &n : names) {
        auto w = createWorkload(n);
        EXPECT_EQ(w->name(), n);
    }
}

TEST(Config, ValidateRejectsNonsense)
{
    // Config mistakes are recoverable (SimErrorKind::Config), not
    // process-fatal: a sweep must survive one bad point.
    SystemConfig cfg = makeConfig(16, MemModel::STR);
    cfg.hwPrefetch = true;
    try {
        cfg.validate();
        FAIL() << "validate() accepted STR + hwPrefetch";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("prefetching"),
                  std::string::npos);
    }

    SystemConfig cfg2 = makeConfig(0, MemModel::CC);
    try {
        cfg2.validate();
        FAIL() << "validate() accepted 0 cores";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("core count"),
                  std::string::npos);
    }
}

} // namespace
} // namespace cmpmem
