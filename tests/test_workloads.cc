/**
 * @file
 * Functional verification of every paper workload on both memory
 * models: each kernel is a real algorithm, so its output must match
 * the host-side reference bit-exactly. Also sanity-checks the
 * model-specific machinery each run is expected to exercise.
 */

#include <gtest/gtest.h>

#include "cmpmem.hh"

namespace cmpmem
{
namespace
{

struct Case
{
    const char *workload;
    MemModel model;
};

std::string
caseName(const testing::TestParamInfo<Case> &info)
{
    return std::string(info.param.workload) + "_" +
           to_string(info.param.model);
}

class WorkloadFunctional : public testing::TestWithParam<Case>
{
};

TEST_P(WorkloadFunctional, VerifiesOn4Cores)
{
    const Case &c = GetParam();
    SystemConfig cfg = makeConfig(4, c.model);
    WorkloadParams params;
    params.scale = 0; // tiny inputs for test speed

    RunResult r = runWorkload(c.workload, cfg, params);

    EXPECT_TRUE(r.verified) << c.workload << " output mismatch";
    EXPECT_GT(r.stats.execTicks, 0u);
    EXPECT_GT(r.stats.coreTotal.instructions(), 0u);

    if (c.model == MemModel::STR) {
        // Streaming runs move data with DMA (raytrace keeps its tree
        // in the small cache but still streams pixels out).
        EXPECT_GT(r.stats.dmaAccesses, 0u) << c.workload;
    } else {
        EXPECT_GT(r.stats.l1Total.demandAccesses(), 0u) << c.workload;
    }

    // Every run has energy in every live component.
    EXPECT_GT(r.energy.coreMj, 0.0);
    EXPECT_GT(r.energy.dramMj, 0.0);
    EXPECT_GT(r.energy.totalMj(), 0.0);
}

constexpr Case kCases[] = {
    {"mpeg2", MemModel::CC},    {"mpeg2", MemModel::STR},
    {"h264", MemModel::CC},     {"h264", MemModel::STR},
    {"raytrace", MemModel::CC}, {"raytrace", MemModel::STR},
    {"jpeg_enc", MemModel::CC}, {"jpeg_enc", MemModel::STR},
    {"jpeg_dec", MemModel::CC}, {"jpeg_dec", MemModel::STR},
    {"depth", MemModel::CC},    {"depth", MemModel::STR},
    {"fem", MemModel::CC},      {"fem", MemModel::STR},
    {"fir", MemModel::CC},      {"fir", MemModel::STR},
    {"art", MemModel::CC},      {"art", MemModel::STR},
    {"bitonic", MemModel::CC},  {"bitonic", MemModel::STR},
    {"merge", MemModel::CC},    {"merge", MemModel::STR},
};

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFunctional,
                         testing::ValuesIn(kCases), caseName);

/** The unoptimized (Figure 9/10) variants must also verify. */
TEST(WorkloadVariants, UnoptimizedVariantsVerify)
{
    WorkloadParams params;
    params.scale = 0;
    params.streamOptimized = false;
    for (const char *name : {"mpeg2", "art"}) {
        RunResult r =
            runWorkload(name, makeConfig(4, MemModel::CC), params);
        EXPECT_TRUE(r.verified) << name;
    }
}

/** PFS and prefetch configurations keep outputs correct. */
TEST(WorkloadVariants, PfsAndPrefetchVerify)
{
    WorkloadParams params;
    params.scale = 0;

    SystemConfig pfs = makeConfig(4, MemModel::CC);
    pfs.pfsEnabled = true;
    RunResult r1 = runWorkload("fir", pfs, params);
    EXPECT_TRUE(r1.verified);
    EXPECT_GT(r1.stats.l1Total.pfsStores, 0u);

    SystemConfig pf = makeConfig(4, MemModel::CC);
    pf.hwPrefetch = true;
    pf.prefetchDepth = 4;
    RunResult r2 = runWorkload("merge", pf, params);
    EXPECT_TRUE(r2.verified);
    EXPECT_GT(r2.stats.l1Total.prefetchesIssued, 0u);
    EXPECT_GT(r2.stats.l1Total.prefetchesUseful, 0u);
}

/** Workloads verify across core counts (1, 2, 8, 16). */
TEST(WorkloadVariants, CoreCountSweepVerifies)
{
    WorkloadParams params;
    params.scale = 0;
    for (int cores : {1, 2, 8, 16}) {
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            RunResult r = runWorkload("fir", makeConfig(cores, m),
                                      params);
            EXPECT_TRUE(r.verified)
                << cores << " cores " << to_string(m);
        }
    }
}

} // namespace
} // namespace cmpmem
