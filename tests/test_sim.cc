/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, clock
 * conversions, RNG determinism, statistics containers, and the
 * coroutine plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace cmpmem
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.schedule(5, [&] { ++fired; });   // same tick
        eq.schedule(15, [&] { ++fired; });  // later
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(Clock, PeriodsMatchTable2Frequencies)
{
    EXPECT_EQ(Clock::fromMhz(800).period(), 1250u);
    EXPECT_EQ(Clock::fromMhz(1600).period(), 625u);
    EXPECT_EQ(Clock::fromMhz(3200).period(), 313u); // 312.5 rounded
    EXPECT_EQ(Clock::fromMhz(6400).period(), 156u);
}

TEST(Clock, CycleTickConversionsRoundTrip)
{
    Clock c(1250);
    EXPECT_EQ(c.cyclesToTicks(4), 5000u);
    EXPECT_EQ(c.ticksToCycles(5000), 4u);
    EXPECT_EQ(c.ticksToCycles(5001), 5u); // rounds up
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 1250u);
    EXPECT_EQ(c.nextEdge(1250), 1250u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123), c(124);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        double e = r.nextDouble(-2.0, 3.0);
        EXPECT_GE(e, -2.0);
        EXPECT_LT(e, 3.0);
    }
}

TEST(StatSet, AccumulateAndFormat)
{
    StatSet a, b;
    a.set("x", 1);
    a.add("x", 2);
    b.set("x", 10);
    b.set("y", 5);
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 13);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
    EXPECT_TRUE(a.has("y"));
    EXPECT_FALSE(a.has("z"));
    EXPECT_DOUBLE_EQ(a.get("z", -1), -1);
    EXPECT_NE(a.format().find("x"), std::string::npos);
}

TEST(Histogram, MeanMinMaxPercentile)
{
    Histogram h(10, 16);
    for (std::uint64_t v : {5u, 15u, 25u, 35u, 45u})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 45u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
    EXPECT_LE(h.percentile(0.5), 29u);
    EXPECT_GE(h.percentile(1.0), 40u);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1, 4);
    h.sample(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 1000u);
}

//
// Coroutine plumbing.
//

struct ManualAwait
{
    std::coroutine_handle<> *slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { *slot = h; }
    void await_resume() const noexcept {}
};

KernelTask
simpleKernel(std::coroutine_handle<> *slot, int *progress)
{
    *progress = 1;
    co_await ManualAwait{slot};
    *progress = 2;
}

TEST(KernelTask, StartsSuspendedAndRunsToCompletion)
{
    std::coroutine_handle<> slot;
    int progress = 0;
    KernelTask t = simpleKernel(&slot, &progress);
    EXPECT_FALSE(t.done());
    EXPECT_EQ(progress, 0); // initial suspend
    t.resume();
    EXPECT_EQ(progress, 1);
    EXPECT_FALSE(t.done());
    slot.resume();
    EXPECT_EQ(progress, 2);
    EXPECT_TRUE(t.done());
}

Co<int>
inner(std::coroutine_handle<> *slot)
{
    co_await ManualAwait{slot};
    co_return 42;
}

KernelTask
outer(std::coroutine_handle<> *slot, int *result)
{
    *result = co_await inner(slot);
}

TEST(KernelTask, NestedCoResumesThroughChain)
{
    std::coroutine_handle<> slot;
    int result = 0;
    KernelTask t = outer(&slot, &result);
    t.resume();
    EXPECT_EQ(result, 0);
    // Resuming the leaf suspension propagates the value out through
    // the Co<int> and completes the kernel.
    slot.resume();
    EXPECT_EQ(result, 42);
    EXPECT_TRUE(t.done());
}

Co<void>
level2(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    trace->push_back(2);
    co_await ManualAwait{slot};
    trace->push_back(3);
}

Co<void>
level1(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    trace->push_back(1);
    co_await level2(slot, trace);
    trace->push_back(4);
}

KernelTask
level0(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    co_await level1(slot, trace);
    trace->push_back(5);
}

TEST(KernelTask, DeeplyNestedSymmetricTransfer)
{
    std::coroutine_handle<> slot;
    std::vector<int> trace;
    KernelTask t = level0(&slot, &trace);
    t.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2}));
    slot.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(t.done());
}

} // namespace
} // namespace cmpmem
