/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, clock
 * conversions, RNG determinism, statistics containers, and the
 * coroutine plumbing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace cmpmem
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.schedule(5, [&] { ++fired; });   // same tick
        eq.schedule(15, [&] { ++fired; });  // later
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTickFifoAcrossScheduleDuringDispatch)
{
    // Events queued before tick T is reached and events scheduled
    // *at* T from a dispatching callback share one FIFO order: the
    // pre-queued ones (lower sequence numbers) fire first.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        eq.schedule(100, [&] { order.push_back(2); });
        eq.schedule(100, [&] {
            order.push_back(3);
            eq.schedule(100, [&] { order.push_back(4); });
        });
    });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SchedulingInThePastThrowsModelError)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 50u);
    try {
        eq.schedule(49, [] {});
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Model);
    }
    // The queue survives the rejected event and keeps running.
    int fired = 0;
    eq.schedule(60, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, FreeListReusesNodesUnderChurn)
{
    // A long self-rescheduling chain keeps at most a handful of
    // events pending, so the pool must not grow with total events:
    // every dispatched node goes back on the free list.
    EventQueue eq;
    std::uint64_t fired = 0;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        std::uint64_t left;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                ++*fired;
                if (--left)
                    arm(when + 501);
            });
        }
    };
    Chain chains[4];
    for (int i = 0; i < 4; ++i) {
        chains[i] = {&eq, &fired, 50000};
        chains[i].arm(Tick(i));
    }
    eq.run();
    EXPECT_EQ(fired, 200000u);
    EXPECT_EQ(eq.executed(), 200000u);
    // One pool chunk covers 4 concurrent chains many times over.
    EXPECT_LE(eq.nodesAllocated(), 256u);
    EXPECT_EQ(eq.peakPending(), 4u);
}

TEST(EventQueue, FarFutureEventsOverflowAndStillFireInOrder)
{
    // Horizons beyond the calendar ring go to the overflow heap and
    // migrate back as the window advances; order must be untouched.
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick horizon = 1024 * 256; // the ring covers [now, now+this)
    eq.schedule(horizon * 3, [&] { fired.push_back(eq.now()); });
    eq.schedule(horizon + 1, [&] { fired.push_back(eq.now()); });
    eq.schedule(10, [&] { fired.push_back(eq.now()); });
    eq.schedule(horizon * 2, [&] { fired.push_back(eq.now()); });
    EXPECT_EQ(eq.calendarOverflows(), 3u);
    eq.run();
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired.back(), horizon * 3);
}

TEST(EventQueue, SetBucketShiftValidates)
{
    EventQueue eq;
    EXPECT_EQ(eq.bucketShift(), EventQueue::kDefaultBucketShift);
    eq.setBucketShift(12);
    EXPECT_EQ(eq.bucketShift(), 12u);
    EXPECT_EQ(eq.horizonTicks(), Tick(1024) << 12);

    // Out-of-range shifts are config errors.
    EXPECT_THROW(eq.setBucketShift(EventQueue::kMinBucketShift - 1),
                 SimError);
    EXPECT_THROW(eq.setBucketShift(EventQueue::kMaxBucketShift + 1),
                 SimError);

    // Geometry is per-run: once the queue has been used, changing it
    // is a model error.
    eq.schedule(10, [] {});
    EXPECT_THROW(eq.setBucketShift(8), SimError);
}

TEST(EventQueue, BucketShiftIsOrderInvariant)
{
    // The same far-future event stream under two geometries must
    // dispatch in the same global order with the same totals; only
    // the overflow count (a host-performance telemetry) may differ.
    auto drive = [](unsigned shift) {
        EventQueue eq;
        eq.setBucketShift(shift);
        std::vector<Tick> fired;
        struct Chain
        {
            EventQueue *eq;
            std::vector<Tick> *fired;
            std::uint64_t left;
            Tick stride;

            void
            arm(Tick when)
            {
                eq->schedule(when, [this, when] {
                    fired->push_back(when);
                    if (--left)
                        arm(when + stride);
                });
            }
        };
        std::vector<Chain> chains(8);
        for (std::size_t i = 0; i < chains.size(); ++i) {
            chains[i] = {&eq, &fired, 200, Tick(300000 + 40001 * i)};
            chains[i].arm(Tick(i));
        }
        eq.run();
        return std::tuple(fired, eq.executed(), eq.now(),
                          eq.calendarOverflows());
    };

    auto [fired8, n8, end8, ovf8] = drive(8);
    auto [fired12, n12, end12, ovf12] = drive(12);
    EXPECT_EQ(fired8, fired12);
    EXPECT_EQ(n8, n12);
    EXPECT_EQ(end8, end12);
    // 16x wider buckets: most hops now land inside the ring.
    EXPECT_LT(ovf12, ovf8);
}

TEST(EventQueue, RecommendBucketShiftCoversObservedHorizon)
{
    // Cold queue (no overflows): keep the current geometry.
    EventQueue cold;
    for (Tick t = 1; t <= 100; ++t)
        cold.schedule(t * 100, [] {});
    cold.run();
    EXPECT_EQ(cold.calendarOverflows(), 0u);
    EXPECT_EQ(cold.recommendBucketShift(), cold.bucketShift());

    // Hot queue: every hop of a 300k-tick-stride chain overflows the
    // default ~262k window; the recommendation must widen the ring
    // enough to cover the observed horizon.
    EventQueue hot;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t left;

        void
        arm(Tick when)
        {
            eq->schedule(when, [this, when] {
                if (--left)
                    arm(when + 300000);
            });
        }
    };
    Chain c{&hot, 500};
    c.arm(0);
    hot.run();
    EXPECT_GT(hot.calendarOverflows(), 0u);

    unsigned tuned = hot.recommendBucketShift();
    EXPECT_GT(tuned, hot.bucketShift());
    EXPECT_GE(Tick(1024) << tuned, hot.overflowHorizon());

    // Replaying the stream under the tuned geometry keeps the same
    // totals and (here) eliminates the overflows entirely.
    EventQueue replay;
    replay.setBucketShift(tuned);
    Chain c2{&replay, 500};
    c2.arm(0);
    replay.run();
    EXPECT_EQ(replay.executed(), hot.executed());
    EXPECT_EQ(replay.now(), hot.now());
    EXPECT_LT(replay.calendarOverflows(), hot.calendarOverflows());
}

TEST(EventQueue, PeakPendingTracksHighWaterMark)
{
    EventQueue eq;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t * 1000, [] {});
    EXPECT_EQ(eq.pending(), 10u);
    EXPECT_EQ(eq.peakPending(), 10u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.peakPending(), 10u); // high-water mark sticks
}

TEST(EventQueue, PendingEventTicksReturnsFiringPrefix)
{
    EventQueue eq;
    const Tick horizon = 1024 * 256;
    // Spread across now-FIFO range, ring buckets, and overflow.
    std::vector<Tick> when = {5,      3,          900,     40000,
                              70000,  horizon * 2, 12,     260000,
                              130000, horizon * 5, 770,    41000};
    for (Tick t : when)
        eq.schedule(t, [] {});
    std::vector<Tick> expect = when;
    std::sort(expect.begin(), expect.end());

    std::vector<Tick> all = eq.pendingEventTicks(64);
    EXPECT_EQ(all, expect);

    std::vector<Tick> first4 = eq.pendingEventTicks(4);
    EXPECT_EQ(first4,
              std::vector<Tick>(expect.begin(), expect.begin() + 4));
}

TEST(EventQueue, RandomizedOrderMatchesReferenceModel)
{
    // Drive the calendar queue with an adversarial mix of horizons
    // (same-tick, in-bucket, cross-bucket, beyond-window) scheduled
    // both up front and from dispatching callbacks, and check the
    // observed order against the (when, seq) sort of a reference log.
    EventQueue eq;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };

    struct Ref
    {
        Tick when;
        std::uint64_t seq;
    };
    std::vector<Ref> ref;
    std::vector<std::uint64_t> observed;
    std::uint64_t seq = 0;
    std::uint64_t budget = 20000;

    // Returns a horizon hitting every container class.
    auto horizonFor = [&next](std::uint64_t roll) -> Tick {
        switch (roll % 4) {
          case 0: return 0;                       // same tick
          case 1: return 1 + next() % 200;        // active bucket-ish
          case 2: return 1 + next() % 200000;     // ring buckets
          default: return 250000 + next() % 600000; // overflow
        }
    };

    struct Spawner
    {
        EventQueue *eq;
        std::vector<Ref> *ref;
        std::vector<std::uint64_t> *observed;
        std::uint64_t *seq;
        std::uint64_t *budget;
        std::function<Tick(std::uint64_t)> horizon;
        std::function<std::uint64_t()> roll;

        void
        spawn(Tick when)
        {
            std::uint64_t id = (*seq)++;
            ref->push_back({when, id});
            eq->schedule(when, [this, id] {
                observed->push_back(id);
                if (*budget == 0)
                    return;
                // Fan out 0..2 children from inside dispatch.
                std::uint64_t kids = roll() % 3;
                for (std::uint64_t k = 0; k < kids && *budget; ++k) {
                    --*budget;
                    spawn(eq->now() + horizon(roll()));
                }
            });
        }
    };
    Spawner sp{&eq,  &ref, &observed, &seq, &budget,
               horizonFor, next};
    for (int i = 0; i < 64; ++i) {
        --budget;
        sp.spawn(horizonFor(next()));
    }
    eq.run();

    ASSERT_EQ(observed.size(), ref.size());
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Ref &a, const Ref &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.seq < b.seq;
                     });
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(observed[i], ref[i].seq) << "at position " << i;
}

//
// InlineFunction (the event callback type).
//

TEST(InlineFunction, InvokesAndMoves)
{
    int hits = 0;
    InlineFunction<void()> f([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(hits, 1);

    InlineFunction<void()> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f)); // moved-from is empty
    g();
    EXPECT_EQ(hits, 2);

    InlineFunction<void()> h;
    EXPECT_FALSE(static_cast<bool>(h));
    h = std::move(g);
    h();
    EXPECT_EQ(hits, 3);
    h.reset();
    EXPECT_FALSE(static_cast<bool>(h));
}

TEST(InlineFunction, DestroysCaptureExactlyOnce)
{
    struct Probe
    {
        int *ctor, *dtor;
        Probe(int *c, int *d) : ctor(c), dtor(d) { ++*ctor; }
        Probe(Probe &&o) noexcept : ctor(o.ctor), dtor(o.dtor)
        {
            ++*ctor;
        }
        ~Probe() { ++*dtor; }
        void operator()() const {}
    };
    int ctor = 0, dtor = 0;
    {
        InlineFunction<void()> f(Probe(&ctor, &dtor));
        InlineFunction<void()> g(std::move(f)); // relocate
        g();
    }
    EXPECT_GE(ctor, 2);     // original + at least one relocate
    EXPECT_EQ(ctor, dtor);  // every construction destroyed exactly once
}

TEST(InlineFunction, ArgumentsAndReturnValues)
{
    InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);
}

//
// TickCallback (the capacity-24 miss-path waiter type, DESIGN.md §18):
// the same contract as the event callback above, at the tighter
// capture budget the MSHR/store-buffer/sync waiters live under.
//

TEST(TickCallback, InvokesMovesAndDetaches)
{
    Tick seen = 0;
    TickCallback f([&seen](Tick t) { seen = t; });
    EXPECT_TRUE(static_cast<bool>(f));
    f(41);
    EXPECT_EQ(seen, 41u);

    TickCallback g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f)); // moved-from is empty
    g(42);
    EXPECT_EQ(seen, 42u);

    TickCallback h;
    EXPECT_FALSE(static_cast<bool>(h));
    h = std::move(g);
    h(43);
    EXPECT_EQ(seen, 43u);
    // `= nullptr` detach, the idiom the L1 member slots rely on.
    h = nullptr;
    EXPECT_FALSE(static_cast<bool>(h));
    TickCallback k(nullptr);
    EXPECT_FALSE(static_cast<bool>(k));
}

TEST(TickCallback, DestroysCaptureExactlyOnce)
{
    struct Probe
    {
        int *ctor, *dtor;
        Probe(int *c, int *d) : ctor(c), dtor(d) { ++*ctor; }
        Probe(Probe &&o) noexcept : ctor(o.ctor), dtor(o.dtor)
        {
            ++*ctor;
        }
        ~Probe() { ++*dtor; }
        void operator()(Tick) const {}
    };
    int ctor = 0, dtor = 0;
    {
        TickCallback f(Probe(&ctor, &dtor));
        TickCallback g(std::move(f)); // relocate
        g(7);
    }
    EXPECT_GE(ctor, 2);     // original + at least one relocate
    EXPECT_EQ(ctor, dtor);  // every construction destroyed exactly once
}

TEST(TickCallback, ArgumentsReachTheCapture)
{
    std::uint64_t sum = 0;
    TickCallback acc([&sum](Tick t) { sum += t; });
    acc(10);
    acc(32);
    EXPECT_EQ(sum, 42u);
}

TEST(Clock, PeriodsMatchTable2Frequencies)
{
    EXPECT_EQ(Clock::fromMhz(800).period(), 1250u);
    EXPECT_EQ(Clock::fromMhz(1600).period(), 625u);
    EXPECT_EQ(Clock::fromMhz(3200).period(), 313u); // 312.5 rounded
    EXPECT_EQ(Clock::fromMhz(6400).period(), 156u);
}

TEST(Clock, CycleTickConversionsRoundTrip)
{
    Clock c(1250);
    EXPECT_EQ(c.cyclesToTicks(4), 5000u);
    EXPECT_EQ(c.ticksToCycles(5000), 4u);
    EXPECT_EQ(c.ticksToCycles(5001), 5u); // rounds up
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 1250u);
    EXPECT_EQ(c.nextEdge(1250), 1250u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123), c(124);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        double e = r.nextDouble(-2.0, 3.0);
        EXPECT_GE(e, -2.0);
        EXPECT_LT(e, 3.0);
    }
}

TEST(StatSet, AccumulateAndFormat)
{
    StatSet a, b;
    a.set("x", 1);
    a.add("x", 2);
    b.set("x", 10);
    b.set("y", 5);
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 13);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
    EXPECT_TRUE(a.has("y"));
    EXPECT_FALSE(a.has("z"));
    EXPECT_DOUBLE_EQ(a.get("z", -1), -1);
    EXPECT_NE(a.format().find("x"), std::string::npos);
}

TEST(Histogram, MeanMinMaxPercentile)
{
    Histogram h(10, 16);
    for (std::uint64_t v : {5u, 15u, 25u, 35u, 45u})
        h.sample(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 45u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
    EXPECT_LE(h.percentile(0.5), 29u);
    EXPECT_GE(h.percentile(1.0), 40u);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1, 4);
    h.sample(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 1000u);
}

//
// Coroutine plumbing.
//

struct ManualAwait
{
    std::coroutine_handle<> *slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { *slot = h; }
    void await_resume() const noexcept {}
};

KernelTask
simpleKernel(std::coroutine_handle<> *slot, int *progress)
{
    *progress = 1;
    co_await ManualAwait{slot};
    *progress = 2;
}

TEST(KernelTask, StartsSuspendedAndRunsToCompletion)
{
    std::coroutine_handle<> slot;
    int progress = 0;
    KernelTask t = simpleKernel(&slot, &progress);
    EXPECT_FALSE(t.done());
    EXPECT_EQ(progress, 0); // initial suspend
    t.resume();
    EXPECT_EQ(progress, 1);
    EXPECT_FALSE(t.done());
    slot.resume();
    EXPECT_EQ(progress, 2);
    EXPECT_TRUE(t.done());
}

Co<int>
inner(std::coroutine_handle<> *slot)
{
    co_await ManualAwait{slot};
    co_return 42;
}

KernelTask
outer(std::coroutine_handle<> *slot, int *result)
{
    *result = co_await inner(slot);
}

TEST(KernelTask, NestedCoResumesThroughChain)
{
    std::coroutine_handle<> slot;
    int result = 0;
    KernelTask t = outer(&slot, &result);
    t.resume();
    EXPECT_EQ(result, 0);
    // Resuming the leaf suspension propagates the value out through
    // the Co<int> and completes the kernel.
    slot.resume();
    EXPECT_EQ(result, 42);
    EXPECT_TRUE(t.done());
}

Co<void>
level2(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    trace->push_back(2);
    co_await ManualAwait{slot};
    trace->push_back(3);
}

Co<void>
level1(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    trace->push_back(1);
    co_await level2(slot, trace);
    trace->push_back(4);
}

KernelTask
level0(std::coroutine_handle<> *slot, std::vector<int> *trace)
{
    co_await level1(slot, trace);
    trace->push_back(5);
}

TEST(KernelTask, DeeplyNestedSymmetricTransfer)
{
    std::coroutine_handle<> slot;
    std::vector<int> trace;
    KernelTask t = level0(&slot, &trace);
    t.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2}));
    slot.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(t.done());
}

} // namespace
} // namespace cmpmem
