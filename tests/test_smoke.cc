/**
 * @file
 * End-to-end smoke tests: a tiny kernel runs on both memory models
 * and the machine produces sane time, traffic, and functional
 * results. These tests exist to catch wiring regressions early; the
 * real coverage lives in the per-module test files.
 */

#include <gtest/gtest.h>

#include "core/context.hh"
#include "system/cmp_system.hh"

namespace cmpmem
{
namespace
{

KernelTask
vectorAddCc(Context &ctx, Addr a, Addr b, Addr out, int n, Barrier &bar)
{
    int per = n / ctx.nthreads();
    int lo = ctx.tid() * per;
    int hi = (ctx.tid() == ctx.nthreads() - 1) ? n : lo + per;
    for (int i = lo; i < hi; ++i) {
        auto x = co_await ctx.load<std::uint32_t>(a + Addr(i) * 4);
        auto y = co_await ctx.load<std::uint32_t>(b + Addr(i) * 4);
        co_await ctx.compute(1);
        co_await ctx.storeNA<std::uint32_t>(out + Addr(i) * 4, x + y);
    }
    co_await ctx.barrier(bar);
}

KernelTask
vectorAddStr(Context &ctx, Addr a, Addr b, Addr out, int n, Barrier &bar)
{
    constexpr int block = 256; // elements per DMA block
    int per = n / ctx.nthreads();
    int lo = ctx.tid() * per;
    int hi = (ctx.tid() == ctx.nthreads() - 1) ? n : lo + per;

    const std::uint32_t lsA = 0;
    const std::uint32_t lsB = block * 4;
    const std::uint32_t lsOut = 2 * block * 4;

    for (int base = lo; base < hi; base += block) {
        int count = std::min(block, hi - base);
        auto t1 = co_await ctx.dmaGet(a + Addr(base) * 4, lsA,
                                      count * 4);
        auto t2 = co_await ctx.dmaGet(b + Addr(base) * 4, lsB,
                                      count * 4);
        co_await ctx.dmaWait(t1);
        co_await ctx.dmaWait(t2);
        for (int i = 0; i < count; ++i) {
            auto x = co_await ctx.lsRead<std::uint32_t>(lsA + i * 4);
            auto y = co_await ctx.lsRead<std::uint32_t>(lsB + i * 4);
            co_await ctx.compute(1);
            co_await ctx.lsWrite<std::uint32_t>(lsOut + i * 4, x + y);
        }
        auto t3 = co_await ctx.dmaPut(out + Addr(base) * 4, lsOut,
                                      count * 4);
        co_await ctx.dmaWait(t3);
    }
    co_await ctx.barrier(bar);
}

struct SmokeResult
{
    RunStats stats;
    bool correct;
};

SmokeResult
runVectorAdd(MemModel model, int cores, int n)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.model = model;
    CmpSystem sys(cfg);

    Addr a = sys.mem().alloc(n * 4);
    Addr b = sys.mem().alloc(n * 4);
    Addr out = sys.mem().alloc(n * 4);
    for (int i = 0; i < n; ++i) {
        sys.mem().write<std::uint32_t>(a + Addr(i) * 4, i);
        sys.mem().write<std::uint32_t>(b + Addr(i) * 4, 1000000 + i);
    }

    Barrier bar(cores);
    for (int i = 0; i < cores; ++i) {
        if (model == MemModel::CC) {
            sys.bindKernel(i, vectorAddCc(sys.context(i), a, b, out, n,
                                          bar));
        } else {
            sys.bindKernel(i, vectorAddStr(sys.context(i), a, b, out, n,
                                           bar));
        }
    }
    sys.simulate();

    bool ok = true;
    for (int i = 0; i < n; ++i) {
        auto v = sys.mem().read<std::uint32_t>(out + Addr(i) * 4);
        if (v != std::uint32_t(1000000 + 2 * i)) {
            ok = false;
            break;
        }
    }
    return {sys.collectStats(), ok};
}

TEST(Smoke, VectorAddCcFunctional)
{
    auto r = runVectorAdd(MemModel::CC, 4, 4096);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.execTicks, 0u);
    EXPECT_GT(r.stats.l1Total.loadMisses, 0u);
    EXPECT_GT(r.stats.dramReadBytes, 0u);
}

TEST(Smoke, VectorAddStrFunctional)
{
    auto r = runVectorAdd(MemModel::STR, 4, 4096);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.execTicks, 0u);
    EXPECT_GT(r.stats.dmaAccesses, 0u);
    EXPECT_GT(r.stats.lsReads, 0u);
}

TEST(Smoke, MoreCoresAreFaster)
{
    auto r1 = runVectorAdd(MemModel::CC, 1, 8192);
    auto r8 = runVectorAdd(MemModel::CC, 8, 8192);
    EXPECT_LT(r8.stats.execTicks, r1.stats.execTicks);
}

TEST(Smoke, BreakdownSumsToExecTime)
{
    auto r = runVectorAdd(MemModel::CC, 2, 2048);
    // Each core's four categories account for its full busy time.
    for (const auto &cs : r.stats.perCore) {
        EXPECT_GT(cs.totalTicks(), 0u);
        EXPECT_LE(cs.totalTicks(), r.stats.execTicks + 1);
    }
}

} // namespace
} // namespace cmpmem
