/**
 * @file
 * Quickstart: run one paper workload on both on-chip memory models
 * and print the comparison — the 60-second tour of the library.
 *
 *   ./quickstart [workload] [cores]
 *
 * Defaults to FIR on 8 cores. Workload names: mpeg2 h264 raytrace
 * jpeg_enc jpeg_dec depth fem fir art bitonic merge.
 */

#include <cstdio>
#include <cstdlib>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "fir";
    const int cores = argc > 2 ? std::atoi(argv[2]) : 8;

    std::printf("cmpmem quickstart: %s on %d cores (Table 2 defaults: "
                "800 MHz, 3.2 GB/s channel)\n\n",
                workload.c_str(), cores);

    TextTable table({"model", "exec (ms)", "useful", "sync", "load",
                     "store", "DRAM MB", "energy (mJ)", "verified"});

    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        SystemConfig cfg = makeConfig(cores, m);
        RunResult r = runWorkload(workload, cfg);
        NormBreakdown b =
            normalizedBreakdown(r.stats, r.stats.execTicks);
        table.addRow(
            {to_string(m), fmtF(r.stats.execSeconds() * 1e3, 3),
             fmtPct(b.useful / b.total()), fmtPct(b.sync / b.total()),
             fmtPct(b.load / b.total()), fmtPct(b.store / b.total()),
             fmtF((r.stats.dramReadBytes + r.stats.dramWriteBytes) /
                      1e6,
                  2),
             fmtF(r.energy.totalMj(), 3), r.verified ? "yes" : "NO"});
    }

    std::printf("%s\n", table.format().c_str());
    std::printf("CC  = hardware-managed coherent caches (32 KB L1 + "
                "MESI)\nSTR = software-managed streaming (24 KB local "
                "store + DMA + 8 KB cache)\n");
    return 0;
}
