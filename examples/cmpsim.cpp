/**
 * @file
 * cmpsim — command-line driver over the full public API: run any
 * workload on any configuration and emit text, JSON, or CSV.
 *
 *   cmpsim [options]
 *     --workload NAME   (default fir; "all" sweeps the suite)
 *     --model CC|STR    (default CC)
 *     --cores N         (default 16)
 *     --ghz F           (default 0.8)
 *     --gbps F          (default 3.2)
 *     --prefetch N      hardware prefetcher with depth N
 *     --pfs             enable non-allocating stores
 *     --scale N         workload input scale (0 = tiny)
 *     --orig            unoptimized variant (mpeg2/art)
 *     --json | --csv    machine-readable output
 *     --list            list workloads and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cmpmem.hh"

using namespace cmpmem;

namespace
{

struct Options
{
    std::string workload = "fir";
    SystemConfig cfg = makeConfig(16, MemModel::CC);
    WorkloadParams params;
    bool json = false;
    bool csv = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: cmpsim [--workload NAME|all] [--model CC|STR] "
                 "[--cores N]\n              [--ghz F] [--gbps F] "
                 "[--prefetch N] [--pfs] [--scale N]\n              "
                 "[--orig] [--json|--csv] [--list]\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--workload") {
            o.workload = next();
        } else if (a == "--model") {
            std::string m = next();
            if (m == "CC" || m == "cc")
                o.cfg.model = MemModel::CC;
            else if (m == "STR" || m == "str")
                o.cfg.model = MemModel::STR;
            else
                usage();
        } else if (a == "--cores") {
            o.cfg.cores = std::atoi(next());
        } else if (a == "--ghz") {
            o.cfg.coreClockGhz = std::atof(next());
        } else if (a == "--gbps") {
            o.cfg.dram.bandwidthGBps = std::atof(next());
        } else if (a == "--prefetch") {
            o.cfg.hwPrefetch = true;
            o.cfg.prefetchDepth = std::uint32_t(std::atoi(next()));
        } else if (a == "--pfs") {
            o.cfg.pfsEnabled = true;
        } else if (a == "--scale") {
            o.params.scale = std::atoi(next());
        } else if (a == "--orig") {
            o.params.streamOptimized = false;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--list") {
            for (const auto &n : workloadNames())
                std::printf("%s\n", n.c_str());
            std::exit(0);
        } else {
            usage();
        }
    }
    return o;
}

int
runOne(const Options &o, const std::string &name, bool header)
{
    RunResult r = runWorkload(name, o.cfg, o.params);
    StatSet s = r.stats.toStatSet();
    s.set("verified", r.verified ? 1 : 0);
    s.set("energy_total_mj", r.energy.totalMj());
    s.set("energy_dram_mj", r.energy.dramMj);

    if (o.json) {
        std::printf("{\"workload\": \"%s\", \"model\": \"%s\", "
                    "\"stats\": %s}\n",
                    name.c_str(), to_string(o.cfg.model),
                    s.toJson().c_str());
    } else if (o.csv) {
        std::string csv = s.toCsv();
        if (header) {
            std::printf("workload,model,%s",
                        csv.substr(0, csv.find('\n') + 1).c_str());
        }
        std::printf("%s,%s,%s", name.c_str(), to_string(o.cfg.model),
                    csv.substr(csv.find('\n') + 1).c_str());
    } else {
        std::printf("== %s on %d x %.1f GHz cores (%s, %.1f GB/s)\n",
                    name.c_str(), o.cfg.cores, o.cfg.coreClockGhz,
                    to_string(o.cfg.model), o.cfg.dram.bandwidthGBps);
        std::printf("exec %.3f ms | energy %s | verified=%s | host "
                    "%.2f s\n",
                    r.stats.execSeconds() * 1e3,
                    r.energy.format().c_str(),
                    r.verified ? "yes" : "NO", r.hostSeconds);
        if (r.stats.hostThreads > 1) {
            std::printf("host threads %d | windows %llu (parallel "
                        "%llu) | barrier wait %.2f s | %.1f Mevents/s\n",
                        r.stats.hostThreads,
                        (unsigned long long)r.stats.hostWindows,
                        (unsigned long long)r.stats.hostParallelWindows,
                        r.stats.hostBarrierWaitSeconds,
                        r.hostSeconds > 0
                            ? double(r.stats.eventsExecuted) /
                                  r.hostSeconds * 1e-6
                            : 0.0);
        }
        std::printf("%s\n", s.format().c_str());
    }
    return r.verified ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    int rc = 0;
    try {
        if (o.workload == "all") {
            bool first = true;
            for (const auto &n : workloadNames()) {
                rc |= runOne(o, n, first);
                first = false;
            }
        } else {
            rc = runOne(o, o.workload, true);
        }
    } catch (const SimError &e) {
        std::fprintf(stderr, "cmpsim: %s\n", e.what());
        return 1;
    }
    return rc;
}
