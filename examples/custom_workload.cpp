/**
 * @file
 * Shows how to bring your own workload to the simulator: implement
 * the Workload interface, write the kernel as a C++20 coroutine
 * against Context, and run it on both memory models.
 *
 * The example is a blocked dense matrix-vector product (y = A x):
 * the cache version streams rows; the streaming version DMAs row
 * blocks and the (reused) x vector into the local store.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cmpmem.hh"

using namespace cmpmem;

namespace
{

constexpr int kRows = 512;
constexpr int kCols = 512;

class MatVec : public Workload
{
  public:
    explicit MatVec(const WorkloadParams &p) : Workload(p) {}

    std::string name() const override { return "matvec"; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        a = ArrayRef<float>::alloc(mem, std::uint64_t(kRows) * kCols);
        x = ArrayRef<float>::alloc(mem, kCols);
        y = ArrayRef<float>::alloc(mem, kRows);
        bar = std::make_unique<Barrier>(sys.cores());

        Rng rng(1);
        hostA.resize(std::size_t(kRows) * kCols);
        hostX.resize(kCols);
        for (auto &v : hostA)
            v = float(rng.nextDouble(-1, 1));
        for (auto &v : hostX)
            v = float(rng.nextDouble(-1, 1));
        for (std::size_t i = 0; i < hostA.size(); ++i)
            mem.write<float>(a.at(i), hostA[i]);
        for (int i = 0; i < kCols; ++i)
            mem.write<float>(x.at(i), hostX[i]);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        return ctx.model() == MemModel::STR ? kernelStr(ctx)
                                            : kernelCc(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        for (int r = 0; r < kRows; ++r) {
            float want = 0;
            for (int c = 0; c < kCols; ++c)
                want += hostA[std::size_t(r) * kCols + c] * hostX[c];
            if (sys.mem().read<float>(y.at(r)) != want)
                return false;
        }
        return true;
    }

  private:
    KernelTask
    kernelCc(Context &ctx)
    {
        Range rows = splitRange(kRows, ctx.tid(), ctx.nthreads());
        for (auto r = rows.begin; r < rows.end; ++r) {
            float acc = 0;
            for (int c = 0; c < kCols; ++c) {
                auto av = co_await ctx.load<float>(
                    a.at(r * kCols + std::uint64_t(c)));
                auto xv = co_await ctx.load<float>(x.at(c));
                co_await ctx.computeFp(1);
                acc += av * xv;
            }
            co_await ctx.storeNA<float>(y.at(r), acc);
        }
        co_await ctx.barrier(*bar);
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        Range rows = splitRange(kRows, ctx.tid(), ctx.nthreads());
        const std::uint32_t lsX = 0;            // x vector (reused)
        const std::uint32_t lsRow = kCols * 4;  // current row

        auto gx = co_await ctx.dmaGet(x.at(0), lsX, kCols * 4);
        co_await ctx.dmaWait(gx);

        for (auto r = rows.begin; r < rows.end; ++r) {
            auto gr = co_await ctx.dmaGet(a.at(r * kCols), lsRow,
                                          kCols * 4);
            co_await ctx.dmaWait(gr);
            float acc = 0;
            for (int c = 0; c < kCols; ++c) {
                auto av = co_await ctx.lsRead<float>(lsRow + c * 4);
                auto xv = co_await ctx.lsRead<float>(lsX + c * 4);
                co_await ctx.computeFp(1);
                acc += av * xv;
            }
            co_await ctx.storeNA<float>(y.at(r), acc);
        }
        co_await ctx.barrier(*bar);
    }

    ArrayRef<float> a, x, y;
    std::unique_ptr<Barrier> bar;
    std::vector<float> hostA, hostX;
};

} // namespace

int
main()
{
    std::printf("custom workload example: 512x512 matrix-vector "
                "product\n\n");
    for (MemModel m : {MemModel::CC, MemModel::STR}) {
        SystemConfig cfg = makeConfig(8, m);
        CmpSystem sys(cfg);
        MatVec wl{WorkloadParams{}};
        wl.setup(sys);
        for (int i = 0; i < sys.cores(); ++i)
            sys.bindKernel(i, wl.kernel(sys.context(i)));
        sys.simulate();
        RunStats rs = sys.collectStats();
        std::printf("%s: %.3f ms, DRAM %.2f MB, verified=%s\n",
                    to_string(m), rs.execSeconds() * 1e3,
                    (rs.dramReadBytes + rs.dramWriteBytes) / 1e6,
                    wl.verify(sys) ? "yes" : "NO");
    }
    return 0;
}
