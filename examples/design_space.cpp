/**
 * @file
 * Design-space exploration with the public API: sweep core count and
 * memory-channel bandwidth for a chosen workload on both models and
 * print a scaling matrix — the kind of study Section 5.3/5.4 of the
 * paper runs, available as a one-command tool.
 *
 * The whole study is one declarative SweepSpec: three named axes
 * (cores, gbps, model) cross-multiplied over the workload and
 * executed on the engine's worker pool (CMPMEM_JOBS to override).
 *
 *   ./design_space [workload]
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "merge";

    std::printf("design-space sweep: %s (800 MHz cores)\n\n",
                workload.c_str());

    SweepSpec spec("design_space");
    spec.base(makeConfig(16, MemModel::CC))
        .workloads({workload})
        .axis("cores", {2, 4, 8, 16},
              [](SystemConfig &cfg, double v) { cfg.cores = int(v); },
              0)
        .axis("gbps", {1.6, 3.2, 6.4},
              [](SystemConfig &cfg, double v) {
                  cfg.dram.bandwidthGBps = v;
              })
        .modelAxis();
    spec.baseline({workload + "/base", workload,
                   makeConfig(1, MemModel::CC), {}, {},
                   {{"workload", workload}, {"role", "baseline"}}});
    SweepResult res = runSweep(spec);

    const RunResult &base = res.runOf(workload + "/base");
    std::printf("baseline: 1 caching core, 3.2 GB/s -> %.3f ms\n\n",
                base.stats.execSeconds() * 1e3);

    TextTable table({"cores", "GB/s", "CC speedup", "STR speedup",
                     "CC dram busy", "STR dram busy"});
    for (int cores : {2, 4, 8, 16}) {
        for (double gbps : {1.6, 3.2, 6.4}) {
            double speedup[2] = {0, 0};
            double busy[2] = {0, 0};
            int i = 0;
            for (MemModel m : {MemModel::CC, MemModel::STR}) {
                const RunResult &r = res.runOf(
                    fmt("%s/cores=%d/gbps=%.1f/model=%s",
                        workload.c_str(), cores, gbps, to_string(m)));
                speedup[i] = double(base.stats.execTicks) /
                             double(r.stats.execTicks);
                busy[i] = double(r.stats.dramBusyTicks) /
                          double(r.stats.execTicks);
                ++i;
            }
            table.addRow({fmt("%d", cores), fmtF(gbps, 1),
                          fmt("%.2fx", speedup[0]),
                          fmt("%.2fx", speedup[1]), fmtPct(busy[0]),
                          fmtPct(busy[1])});
        }
    }
    std::printf("%s", table.format().c_str());
    std::printf("\n%s\n", res.summary().c_str());
    return res.allRan() ? 0 : 1;
}
