/**
 * @file
 * Energy-report example: per-component energy for every paper
 * workload on both models at 16 cores — the Figure 4 methodology
 * applied across the full suite.
 */

#include <cstdio>

#include "cmpmem.hh"

using namespace cmpmem;

int
main()
{
    std::printf("energy report: 16 cores @ 800 MHz, both models\n\n");
    TextTable table({"workload", "model", "core", "I$", "D$/LMem",
                     "net", "L2", "DRAM", "total (mJ)", "STR/CC"});

    for (const auto &name : workloadNames()) {
        double cc_total = 0;
        for (MemModel m : {MemModel::CC, MemModel::STR}) {
            RunResult r = runWorkload(name, makeConfig(16, m));
            const EnergyBreakdown &e = r.energy;
            if (m == MemModel::CC)
                cc_total = e.totalMj();
            table.addRow(
                {name, to_string(m), fmtF(e.coreMj, 3),
                 fmtF(e.icacheMj, 3), fmtF(e.dstoreMj, 3),
                 fmtF(e.networkMj, 3), fmtF(e.l2Mj, 3),
                 fmtF(e.dramMj, 3), fmtF(e.totalMj(), 3),
                 m == MemModel::STR
                     ? fmt("%.2f", e.totalMj() / cc_total)
                     : std::string("-")});
        }
    }
    std::printf("%s", table.format().c_str());
    return 0;
}
