#!/usr/bin/env bash
#
# Build the `profile` preset (-O2 -g -fno-omit-frame-pointer) and run
# a command under `perf record`, then print the hot-spot summary.
# Frame pointers are kept so --call-graph fp unwinds without DWARF
# cost; see DESIGN.md §13 for the fast-path work this flow measured.
#
# Usage: scripts/profile.sh [--bench NAME] [command args...]
#   default command: build-profile/bench/micro_access
#   --bench NAME is shorthand for build-profile/bench/NAME (e.g.
#   `scripts/profile.sh --bench micro_miss` profiles the miss path)
#
# Without a `perf` binary on the host (e.g. a slim container), the
# command still runs under `time` so the flow degrades to a coarse
# host-cost check instead of failing.

set -euo pipefail

cd "$(dirname "$0")/.."

cmd=()
if [ "${1:-}" = "--bench" ]; then
    if [ -z "${2:-}" ]; then
        echo "usage: scripts/profile.sh --bench NAME [args...]" >&2
        exit 2
    fi
    cmd=("build-profile/bench/$2")
    shift 2
fi
cmd+=("$@")

echo "==> configuring + building profile preset"
cmake --preset profile >/dev/null
cmake --build --preset profile -j "$(nproc)"

if [ "${#cmd[@]}" -eq 0 ]; then
    cmd=(build-profile/bench/micro_access)
fi

if ! command -v perf >/dev/null 2>&1; then
    echo "==> perf(1) not found; running under time(1) instead" >&2
    time "${cmd[@]}"
    exit 0
fi

out="build-profile/perf.data"
echo "==> perf record: ${cmd[*]}"
perf record -g --call-graph fp -o "${out}" -- "${cmd[@]}"
echo
echo "==> hottest symbols (full report: perf report -i ${out})"
perf report --stdio -i "${out}" | head -40
