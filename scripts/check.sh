#!/usr/bin/env bash
#
# Full verification sweep: build and run the test suite in the plain
# Release configuration, then again with AddressSanitizer + UBSan
# (CMPMEM_SANITIZE=ON). The sanitized pass exists to catch memory and
# UB bugs the functional tests would miss; both configurations must
# be green before a change ships.
#
# Usage: scripts/check.sh [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_config() {
    local dir="$1"
    shift
    echo "==> configuring ${dir} ($*)"
    cmake -S . -B "${dir}" -G Ninja "$@" >/dev/null
    echo "==> building ${dir}"
    cmake --build "${dir}" -j "${jobs}"
    echo "==> testing ${dir}"
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config build -DCMAKE_BUILD_TYPE=Release
run_config build-sanitize -DCMAKE_BUILD_TYPE=Release \
    -DCMPMEM_SANITIZE=ON

echo "==> all configurations green"
