#!/usr/bin/env bash
#
# Verification driver.
#
# Default (quick) mode: build the Release configuration and run every
# test except those labelled "long" or "perf" — a sub-minute signal
# suitable for the inner edit loop.
#
# --full: the pre-ship sweep. Runs the complete suite (including the
# long label) in the plain Release configuration, follows with the
# host-performance pass (label "perf": the micro_events event-engine
# bench, run serially and only in the unsanitized tree), then builds
# and runs everything again under AddressSanitizer + UBSan
# (CMPMEM_SANITIZE=ON), and finishes with a widened fault-injection
# stress pass (CMPMEM_FAULT_SCALE=2) in the sanitizer tree — the
# recovery paths (ECC re-reads, NACK/DMA retries, watchdog kills)
# are exactly where latent lifetime bugs hide. All passes must be
# green before a change ships.
#
# Usage: scripts/check.sh [--full] [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."

full=0
jobs="$(nproc)"
for arg in "$@"; do
    case "${arg}" in
        --full) full=1 ;;
        [0-9]*) jobs="${arg}" ;;
        *)
            echo "usage: scripts/check.sh [--full] [jobs]" >&2
            exit 2
            ;;
    esac
done

run_config() {
    local dir="$1"
    local label_args="$2"
    shift 2
    echo "==> configuring ${dir} ($*)"
    cmake -S . -B "${dir}" -G Ninja "$@" >/dev/null
    echo "==> building ${dir}"
    cmake --build "${dir}" -j "${jobs}"
    echo "==> testing ${dir}"
    # shellcheck disable=SC2086  # label_args is intentionally a list
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
        ${label_args}
}

if [[ "${full}" -eq 1 ]]; then
    run_config build "-LE perf" -DCMAKE_BUILD_TYPE=Release
    echo "==> host-performance pass (Release, label perf)"
    # Serial, in the plain Release tree only: events/sec from a
    # sanitized or contended run would be meaningless.
    ctest --test-dir build --output-on-failure -L perf
    run_config build-sanitize "-LE perf" -DCMAKE_BUILD_TYPE=Release \
        -DCMPMEM_SANITIZE=ON
    echo "==> fault-injection stress pass (sanitized, scale 2)"
    CMPMEM_FAULT_SCALE=2 ctest --test-dir build-sanitize \
        --output-on-failure -j "${jobs}" -R test_faults_stress
    echo "==> all configurations green"
else
    run_config build "-LE long|perf" -DCMAKE_BUILD_TYPE=Release
    echo "==> quick suite green (use --full before shipping)"
fi
