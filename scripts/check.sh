#!/usr/bin/env bash
#
# Verification driver.
#
# Default (quick) mode: build the Release configuration and run every
# test except those labelled "long" or "perf" — a sub-minute signal
# suitable for the inner edit loop.
#
# --full: the pre-ship sweep. Runs the complete suite (including the
# long label) in the plain Release configuration, follows with the
# host-performance pass (label "perf": the micro_events event-engine
# bench, run serially and only in the unsanitized tree), then the
# strict perf-regression gate (3 repeats of each baselined bench,
# compared bit-for-bit and median-throughput against baselines/ via
# bench_compare; DESIGN.md §14), then re-runs the sweep and
# supervisor suites with CMPMEM_ISOLATE=1 (every job in a forked
# sandbox, plus the kill-then-resume gate; DESIGN.md §16), then
# builds and runs everything again under AddressSanitizer + UBSan
# (CMPMEM_SANITIZE=ON), runs the thread-safety subset (the parallel
# intra-run engine and the sweep executor) under ThreadSanitizer
# (CMPMEM_SANITIZE=thread), and
# finishes with a widened fault-injection stress pass
# (CMPMEM_FAULT_SCALE=2) in the sanitizer tree — the recovery paths
# (ECC re-reads, NACK/DMA retries, watchdog kills) are exactly where
# latent lifetime bugs hide. All passes must be green before a change
# ships.
#
# --update-baselines: regenerate baselines/BENCH_*.json from the
# current tree (Release, CMPMEM_SCALE=0, no iteration divisor) and
# stop. Run this deliberately when a reviewed change moves simulated
# stats, and commit the result.
#
# Usage: scripts/check.sh [--full | --update-baselines] [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."

# The benches with committed baselines; keep in step with the
# cmpmem_gate() entries in bench/CMakeLists.txt and DESIGN.md §14.
gate_benches="micro_events micro_access micro_miss micro_parallel table3 policy_space fig2_scaling fig3_traffic"

full=0
update=0
jobs="$(nproc)"
for arg in "$@"; do
    case "${arg}" in
        --full) full=1 ;;
        --update-baselines) update=1 ;;
        [0-9]*) jobs="${arg}" ;;
        *)
            echo "usage: scripts/check.sh [--full | --update-baselines] [jobs]" >&2
            exit 2
            ;;
    esac
done

run_config() {
    local dir="$1"
    local label_args="$2"
    shift 2
    echo "==> configuring ${dir} ($*)"
    cmake -S . -B "${dir}" -G Ninja "$@" >/dev/null
    echo "==> building ${dir}"
    cmake --build "${dir}" -j "${jobs}"
    echo "==> testing ${dir}"
    # shellcheck disable=SC2086  # label_args is intentionally a list
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
        ${label_args}
}

# Run one baselined bench at the pinned deterministic sizing
# (CMPMEM_SCALE=0, divisor 1), writing its artifact into $2.
run_bench_pinned() {
    local bench="$1"
    local dir="$2"
    mkdir -p "${dir}"
    CMPMEM_SCALE=0 CMPMEM_BENCH_SCALE=1 CMPMEM_ARTIFACT_DIR="${dir}" \
        "build/bench/${bench}" >/dev/null
    # The write-ahead journal (DESIGN.md §16) is run-local scratch,
    # not an artifact: never let it ride into baselines/ or a gate
    # directory diff.
    rm -f "${dir}/BENCH_${bench}.journal.jsonl"
}

if [[ "${update}" -eq 1 ]]; then
    echo "==> regenerating baselines/ (Release, CMPMEM_SCALE=0)"
    cmake -S . -B build -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build -j "${jobs}"
    for bench in ${gate_benches}; do
        run_bench_pinned "${bench}" baselines
        echo "    baselines/BENCH_${bench}.json"
    done
    if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        git add -A baselines
        echo "==> staged baseline changes:"
        git --no-pager diff --cached --stat -- baselines
        echo "==> review the per-metric diff and commit deliberately"
        echo "    (remember matching golden digests in tests/test_golden.cc)"
    fi
    exit 0
fi

if [[ "${full}" -eq 1 ]]; then
    run_config build "-LE perf" -DCMAKE_BUILD_TYPE=Release
    echo "==> host-performance pass (Release, label perf)"
    # Serial, in the plain Release tree only: events/sec from a
    # sanitized or contended run would be meaningless. The gate_*
    # entries run in warn host mode here; the strict pass follows.
    ctest --test-dir build --output-on-failure -L perf
    echo "==> perf-regression gate (strict, 3 repeats per bench)"
    for bench in ${gate_benches}; do
        gate_dir="build/gate/${bench}"
        rm -rf "${gate_dir}"
        fresh=()
        for r in 1 2 3; do
            run_bench_pinned "${bench}" "${gate_dir}/r${r}"
            fresh+=("${gate_dir}/r${r}/BENCH_${bench}.json")
        done
        build/bench/bench_compare --host-mode=strict --annotate \
            "baselines/BENCH_${bench}.json" "${fresh[@]}"
    done
    echo "==> isolation pass (Release, CMPMEM_ISOLATE=1)"
    # Re-run the sweep-engine and supervisor suites with every job in
    # a forked sandbox: the §16 contract says sandboxed execution is
    # bit-identical and the whole determinism story must hold through
    # the process boundary. This includes gate_resume_table3, the
    # kill-then-resume bench gate.
    CMPMEM_ISOLATE=1 ctest --test-dir build --output-on-failure \
        -j "${jobs}" -R 'test_sweep|test_supervisor|gate_resume'
    run_config build-sanitize "-LE perf" -DCMAKE_BUILD_TYPE=Release \
        -DCMPMEM_SANITIZE=ON
    echo "==> policy smoke sweep (sanitized, one workload, all points)"
    # Every policy point exercises its own allocate/prefetch code
    # under ASan+UBSan; one workload keeps the sanitized run quick.
    CMPMEM_SCALE=0 CMPMEM_POLICY_WORKLOAD=fir \
        CMPMEM_ARTIFACT_DIR=build-sanitize \
        build-sanitize/bench/policy_space >/dev/null
    echo "==> fault-injection stress pass (sanitized, scale 2)"
    CMPMEM_FAULT_SCALE=2 ctest --test-dir build-sanitize \
        --output-on-failure -j "${jobs}" -R test_faults_stress
    echo "==> thread-sanitizer pass (parallel engine + sweep executor)"
    # TSan and ASan cannot share a build; a third tree covers the two
    # suites that actually run host threads — the intra-run parallel
    # engine (DESIGN.md §17) and the inter-job sweep pool (§16).
    cmake -S . -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Release \
        -DCMPMEM_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "${jobs}"
    ctest --test-dir build-tsan --output-on-failure -j "${jobs}" \
        -R 'test_parallel|test_sweep'
    echo "==> all configurations green"
else
    run_config build "-LE long|perf" -DCMAKE_BUILD_TYPE=Release
    echo "==> quick suite green (use --full before shipping)"
fi
