#!/usr/bin/env bash
#
# Build and run the full figure/table suite on the sweep engine and
# collect the machine-readable artifacts (BENCH_<name>.json) at the
# repository root.
#
# Knobs (environment):
#   CMPMEM_SCALE     workload scale factor (default 1; 0 = smoke size)
#   CMPMEM_JOBS      sweep worker count (default: hardware concurrency)
#   CMPMEM_ISOLATE   1 = run every sweep job in a forked sandbox
#                    (DESIGN.md §16)
#   CMPMEM_RUN_JOBS  intra-run host threads per simulation
#                    (DESIGN.md §17); stats are bit-identical at any
#                    value, only host_seconds moves
#
# Flags:
#   --resume       pick up where a killed run left off: each sweep
#                  merges completed jobs from its write-ahead journal
#                  (BENCH_<name>.journal.jsonl) instead of re-running
#                  them. The merged artifact is bit-identical to an
#                  uninterrupted run's.
#   --run-jobs=N   shorthand for CMPMEM_RUN_JOBS=N (per-run sharding
#                  axis; the sweep engine caps it against its own
#                  worker pool so the two levels compose)
#
# Usage: scripts/bench.sh [--resume] [--run-jobs=N] [jobs]
#        (jobs = build parallelism)

set -euo pipefail

cd "$(dirname "$0")/.."
root="$PWD"
resume=0
jobs="$(nproc)"
for arg in "$@"; do
    case "${arg}" in
        --resume) resume=1 ;;
        --run-jobs=*) export CMPMEM_RUN_JOBS="${arg#--run-jobs=}" ;;
        [0-9]*) jobs="${arg}" ;;
        *)
            echo "usage: scripts/bench.sh [--resume] [--run-jobs=N] [jobs]" >&2
            exit 2
            ;;
    esac
done

benches=(
    table3
    fig2_scaling
    fig3_traffic
    fig4_energy
    fig5_comp_throughput
    fig6_bandwidth
    fig7_prefetch
    fig8_pfs
    fig9_stream_opt_mpeg2
    fig10_stream_opt_art
    ablation_quantum
    ablation_interconnect
    ablation_dram
    ablation_hybrid
    policy_space
    micro_events
    micro_access
    micro_miss
    micro_parallel
    microbench
)

echo "==> configuring build"
cmake -S . -B build -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> building bench suite"
cmake --build build -j "${jobs}" --target "${benches[@]}" bench_compare

export CMPMEM_ARTIFACT_DIR="${root}"
for b in "${benches[@]}"; do
    echo
    echo "==> ${b}"
    flags=()
    # microbench is a google-benchmark binary with its own CLI; the
    # sweep flags belong to the parseBenchArgs() benches only.
    if [[ "${resume}" -eq 1 && "${b}" != "microbench" ]]; then
        flags+=(--resume)
    fi
    "build/bench/${b}" ${flags[@]+"${flags[@]}"}
done

echo
echo "==> artifacts:"
ls -l "${root}"/BENCH_*.json

# Compare against the committed baselines where one exists and the
# sizing matches (baselines are pinned at CMPMEM_SCALE=0 with no
# iteration divisor — the gate refuses cross-sizing diffs, so skip
# rather than fail a full-scale run). Host throughput is warn-only
# here: bench.sh runs at whatever scale the caller picked on
# whatever machine this is; the strict gate is scripts/check.sh
# --full.
if [[ "${CMPMEM_SCALE:-1}" == "0" && "${CMPMEM_BENCH_SCALE:-1}" == "1" ]]
then
    echo
    echo "==> comparing against baselines/ (warn host mode)"
    for b in "${benches[@]}"; do
        baseline="baselines/BENCH_${b}.json"
        [[ -f "${baseline}" ]] || continue
        build/bench/bench_compare --host-mode=warn --annotate \
            "${baseline}" "${root}/BENCH_${b}.json"
    done
else
    echo "==> skipping baseline comparison (sizing differs from the"
    echo "    pinned baseline config; see DESIGN.md §14)"
fi

# One-line host-throughput aggregate across every job in every
# artifact, for eyeballing the trajectory PR over PR.
python3 - "${root}"/BENCH_*.json <<'EOF'
import json, sys

host = events = accesses = 0.0
jobs = 0
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    for job in doc.get("results", []):
        if not job.get("ran"):
            continue
        jobs += 1
        secs = job.get("host_seconds", 0.0)
        host += secs
        events += job.get("events_per_sec", 0.0) * secs
        accesses += job.get("accesses_per_sec", 0.0) * secs
if host > 0:
    print(f"==> summary: {jobs} jobs, {host:.1f} s host CPU, "
          f"{events / host:.3g} events/sec, "
          f"{accesses / host:.3g} accesses/sec (host-time weighted)")
EOF
