#!/usr/bin/env bash
#
# Kill-then-resume gate (DESIGN.md §16): prove that a sweep SIGKILLed
# mid-run resumes from its write-ahead journal to an artifact
# bit-identical to an uninterrupted run.
#
#   1. Run the bench uninterrupted (reference artifact).
#   2. Start it again isolated (--isolate), SIGKILL the process
#      after a short head start, leaving a partial journal.
#   3. Re-run with --isolate --resume: journaled jobs merge, the
#      rest execute.
#   4. bench_compare --host-mode=off must find the resumed artifact
#      bit-identical (stats, digests, energy, config) to the
#      reference.
#
# The kill lands wherever it lands: before the first record, mid
# sweep, or after completion — resume must produce the identical
# artifact in every case, so the gate does not need to control the
# race, only report it.
#
# Usage: scripts/resume_gate.sh <bench-exe> <compare-exe> <workdir>

set -euo pipefail

if [[ $# -ne 3 ]]; then
    echo "usage: $0 <bench-exe> <compare-exe> <workdir>" >&2
    exit 2
fi

bench="$1"
compare="$2"
work="$3"
name="$(basename "${bench}")"

# Pinned deterministic sizing, same as the perf gate.
export CMPMEM_SCALE=0

rm -rf "${work}"
mkdir -p "${work}/ref" "${work}/int"

echo "==> ${name}: uninterrupted reference run"
CMPMEM_ARTIFACT_DIR="${work}/ref" "${bench}" >/dev/null

echo "==> ${name}: isolated run, killed mid-sweep"
CMPMEM_ARTIFACT_DIR="${work}/int" "${bench}" --isolate \
    >/dev/null 2>&1 &
victim=$!
sleep 1.2
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true

journal="${work}/int/BENCH_${name}.journal.jsonl"
if [[ -f "${journal}" ]]; then
    # Header + N records; report how far the run got before dying.
    records=$(($(wc -l < "${journal}") - 1))
    echo "    journal survived the kill with ${records} completed job(s)"
else
    echo "    killed before the journal existed (resume runs the full sweep)"
fi

echo "==> ${name}: resuming"
CMPMEM_ARTIFACT_DIR="${work}/int" "${bench}" --isolate --resume \
    >/dev/null

echo "==> ${name}: comparing resumed artifact against the reference"
"${compare}" --host-mode=off \
    "${work}/ref/BENCH_${name}.json" \
    "${work}/int/BENCH_${name}.json"

echo "==> ${name}: kill-then-resume bit-identical"
