/**
 * @file
 * Per-core DMA engine for the streaming memory model.
 *
 * Supports sequential, strided, and indexed (gather/scatter)
 * transfers with command queuing, and keeps up to 16 outstanding
 * 32-byte accesses in flight (Table 2). Transfers move data between
 * the core's local store and the global address space through the
 * cluster bus, global crossbar and shared L2 — the same uncore path
 * coherent misses take, so both models contend for identical
 * resources.
 *
 * Functional data movement happens at command issue in core program
 * order; because kernels only read DMA'd buffers after dma_wait and
 * only reuse output buffers after the put is issued, this is
 * equivalent to copying at completion for all legal programs and is
 * robust for double-buffered code.
 */

#ifndef CMPMEM_STREAM_DMA_ENGINE_HH
#define CMPMEM_STREAM_DMA_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/diagnosable.hh"
#include "sim/types.hh"

namespace cmpmem
{

class CoherenceFabric;
class FaultInjector;
class FunctionalMemory;
class LocalStore;

struct DmaConfig
{
    std::uint32_t accessBytes = 32;     ///< sub-transfer granule
    std::uint32_t maxOutstanding = 16;  ///< concurrent accesses
    Tick issueOverhead = 1250;          ///< engine ticks per access issue
};

/** Statistics for the DMA engine. */
struct DmaCounters
{
    std::uint64_t commands = 0;
    std::uint64_t accesses = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t waits = 0;
};

/**
 * The DMA engine of one streaming core.
 */
class DmaEngine : public Diagnosable
{
  public:
    using Ticket = std::uint64_t;

    DmaEngine(int core_id, const DmaConfig &cfg, CoherenceFabric &fabric,
              FunctionalMemory &mem, LocalStore &ls);

    /**
     * Attach the system fault injector (null to detach). Each
     * line-granule access then samples the transfer-failure model:
     * a failed access backs off and reissues, up to dmaMaxRetries
     * before SimErrorKind::Fault.
     */
    void setFaultInjector(FaultInjector *fi) { faults = fi; }

    /** Sequential memory -> local store. @return completion ticket. */
    Ticket get(Tick t, Addr mem_addr, std::uint32_t ls_off,
               std::uint32_t bytes);

    /** Sequential local store -> memory. */
    Ticket put(Tick t, Addr mem_addr, std::uint32_t ls_off,
               std::uint32_t bytes);

    /**
     * Strided gather: @p rows rows of @p row_bytes, consecutive rows
     * @p mem_stride apart in memory, packed densely into the local
     * store at @p ls_off.
     */
    Ticket getStrided(Tick t, Addr mem_base, std::uint64_t mem_stride,
                      std::uint32_t row_bytes, std::uint32_t rows,
                      std::uint32_t ls_off);

    /** Strided scatter: the inverse of getStrided. */
    Ticket putStrided(Tick t, Addr mem_base, std::uint64_t mem_stride,
                      std::uint32_t row_bytes, std::uint32_t rows,
                      std::uint32_t ls_off);

    /**
     * Indexed gather: fetch @p elem_bytes at each address in
     * @p addrs, packed densely into the local store at @p ls_off.
     */
    Ticket getIndexed(Tick t, const std::vector<Addr> &addrs,
                      std::uint32_t elem_bytes, std::uint32_t ls_off);

    /** Indexed scatter. */
    Ticket putIndexed(Tick t, const std::vector<Addr> &addrs,
                      std::uint32_t elem_bytes, std::uint32_t ls_off);

    /**
     * Completion tick of @p ticket. @pre ticket was returned here.
     * Completion slots live in a fixed ring of the most recent
     * kTicketWindow tickets; querying an older (expired) ticket
     * raises SimErrorKind::Model. Every workload waits on tickets
     * from the current double-buffer generation, so the window is
     * orders of magnitude deeper than any legal wait.
     */
    Tick completionTick(Ticket ticket) const;

    /** Completion tick of everything issued so far. */
    Tick allDoneTick() const { return lastCompletion; }

    const DmaCounters &counters() const { return stats; }

    /** Host heap allocations past the warm-up reservations. */
    std::uint64_t hostAllocs() const { return hostAllocCount; }

    /** Completion-ring depth (see completionTick()). */
    static constexpr std::size_t kTicketWindow = 4096;

    /** One contiguous piece of a transfer's memory-side footprint. */
    struct Chunk
    {
        Addr mem;
        std::uint32_t lsOff;
        std::uint32_t bytes;
    };

    /** Chunk lists matching the public command shapes. */
    static std::vector<Chunk> seqChunks(Addr mem_addr, std::uint32_t ls_off,
                                        std::uint32_t bytes);
    static std::vector<Chunk> stridedChunks(Addr mem_base,
                                            std::uint64_t mem_stride,
                                            std::uint32_t row_bytes,
                                            std::uint32_t rows,
                                            std::uint32_t ls_off);
    static std::vector<Chunk> indexedChunks(const std::vector<Addr> &addrs,
                                            std::uint32_t elem_bytes,
                                            std::uint32_t ls_off);

    /**
     * A command split for parallel worker-phase issue (DESIGN.md
     * §17): defer() reserves the ticket immediately (the ticket
     * table is core-private) and, for puts, snapshots the local-
     * store source — the engine copies at issue in core program
     * order (see file comment), so the kernel may reuse an output
     * buffer right after the command issues. The timed walk and the
     * global-memory side of the functional copy run later, at this
     * command's position in the serial replay phase, where earlier-
     * tick writes by other cores are already visible.
     */
    struct Pending
    {
        Tick t = 0;
        Ticket ticket = 0;
        bool isGet = false;
        std::vector<Chunk> chunks;
        std::vector<std::uint8_t> putData; ///< put source snapshot
    };

    std::unique_ptr<Pending> defer(Tick t, bool is_get,
                                   std::vector<Chunk> chunks);

    /** Run a deferred command's walk. @return the completion tick. */
    Tick executePending(const Pending &p);

    std::string diagName() const override;
    std::string diagnose() const override;

  private:
    /** Append a placeholder completion slot for a new command. */
    Ticket reserveTicket();

    /**
     * Run one command's chunks through the engine and uncore,
     * recording the completion under @p ticket. @p put_data, when
     * non-null, supplies the put's functional source bytes (chunk
     * data concatenated) in place of a live local-store read.
     */
    Tick executeChunks(Tick t, Ticket ticket,
                       const std::vector<Chunk> &chunks, bool is_get,
                       const std::uint8_t *put_data);

    Tick issueSlot(Tick earliest);

    /**
     * Clear the chunk scratch list and make room for @p n chunks;
     * growth past the warm-up reservation counts a host allocation.
     */
    void stageChunks(std::size_t n);

    /** Reusable functional-copy bounce buffer of @p bytes. */
    std::uint8_t *copyBuffer(std::size_t bytes);

    int coreId;
    DmaConfig cfg;
    CoherenceFabric &fabric;
    FunctionalMemory &mem;
    LocalStore &ls;
    FaultInjector *faults = nullptr;

    /** Engine command processor availability. */
    Tick engineFree = 0;

    /**
     * FIFO ring of the most recent access-completion ticks, sized to
     * maxOutstanding (an access is only retired — popped — when the
     * ring is full and a new slot is needed, so occupancy never
     * exceeds the window).
     */
    std::vector<Tick> inFlight;
    std::size_t inFlightHead = 0;
    std::size_t inFlightCount = 0;

    /** Completion ring indexed by ticket % kTicketWindow. */
    std::vector<Tick> ticketDone;
    Ticket ticketNext = 0;

    /** Reusable command staging for the immediate (non-defer) path. */
    std::vector<Chunk> chunkScratch;
    std::vector<std::uint8_t> copyScratch;
    std::uint64_t hostAllocCount = 0;

    Tick lastCompletion = 0;
    DmaCounters stats;
};

} // namespace cmpmem

#endif // CMPMEM_STREAM_DMA_ENGINE_HH
