#include "stream/dma_engine.hh"

#include <algorithm>
#include <cassert>

#include "faults/fault_injector.hh"
#include "mem/functional_memory.hh"
#include "mem/l1_controller.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"
#include "stream/local_store.hh"

namespace cmpmem
{

DmaEngine::DmaEngine(int core_id, const DmaConfig &config,
                     CoherenceFabric &coherence_fabric,
                     FunctionalMemory &memory, LocalStore &local_store)
    : coreId(core_id),
      cfg(config),
      fabric(coherence_fabric),
      mem(memory),
      ls(local_store),
      inFlight(std::max<std::size_t>(1, config.maxOutstanding), 0),
      ticketDone(kTicketWindow, 0)
{
    // Warm-up reservations (uncounted): typical command shapes stay
    // within these, so steady-state streaming never allocates.
    chunkScratch.reserve(256);
    copyScratch.reserve(4096);
}

Tick
DmaEngine::issueSlot(Tick earliest)
{
    // The engine issues one access per issueOverhead; at most
    // maxOutstanding accesses are in flight at once (retire the
    // oldest when the ring is full).
    Tick start = std::max(earliest, engineFree);
    if (inFlightCount >= cfg.maxOutstanding) {
        start = std::max(start, inFlight[inFlightHead]);
        if (++inFlightHead == inFlight.size())
            inFlightHead = 0;
        --inFlightCount;
    }
    engineFree = start + cfg.issueOverhead;
    return start;
}

DmaEngine::Ticket
DmaEngine::reserveTicket()
{
    Ticket tk = ticketNext++;
    ticketDone[tk % kTicketWindow] = 0;
    return tk;
}

void
DmaEngine::stageChunks(std::size_t n)
{
    chunkScratch.clear();
    if (n > chunkScratch.capacity()) {
        ++hostAllocCount;
        chunkScratch.reserve(std::max(n, 2 * chunkScratch.capacity()));
    }
}

std::uint8_t *
DmaEngine::copyBuffer(std::size_t bytes)
{
    if (bytes > copyScratch.capacity()) {
        ++hostAllocCount;
        copyScratch.reserve(std::max(bytes, 2 * copyScratch.capacity()));
    }
    copyScratch.resize(bytes);
    return copyScratch.data();
}

std::vector<DmaEngine::Chunk>
DmaEngine::seqChunks(Addr mem_addr, std::uint32_t ls_off,
                     std::uint32_t bytes)
{
    return {{mem_addr, ls_off, bytes}};
}

std::vector<DmaEngine::Chunk>
DmaEngine::stridedChunks(Addr mem_base, std::uint64_t mem_stride,
                         std::uint32_t row_bytes, std::uint32_t rows,
                         std::uint32_t ls_off)
{
    std::vector<Chunk> chunks;
    chunks.reserve(rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
        chunks.push_back({mem_base + Addr(r) * mem_stride,
                          ls_off + r * row_bytes, row_bytes});
    }
    return chunks;
}

std::vector<DmaEngine::Chunk>
DmaEngine::indexedChunks(const std::vector<Addr> &addrs,
                         std::uint32_t elem_bytes, std::uint32_t ls_off)
{
    std::vector<Chunk> chunks;
    chunks.reserve(addrs.size());
    std::uint32_t off = ls_off;
    for (Addr a : addrs) {
        chunks.push_back({a, off, elem_bytes});
        off += elem_bytes;
    }
    return chunks;
}

std::unique_ptr<DmaEngine::Pending>
DmaEngine::defer(Tick t, bool is_get, std::vector<Chunk> chunks)
{
    // The deferred (parallel worker-phase) path allocates its command
    // snapshot by design: a Pending outlives this call and travels to
    // the serial replay phase. The zero-allocation contract covers
    // the immediate single-threaded path (get/put/*Strided/*Indexed).
    auto p = std::make_unique<Pending>();
    p->t = t;
    p->ticket = reserveTicket();
    p->isGet = is_get;
    p->chunks = std::move(chunks);
    if (!is_get) {
        std::size_t total = 0;
        for (const auto &c : p->chunks)
            total += c.bytes;
        p->putData.resize(total);
        std::size_t off = 0;
        for (const auto &c : p->chunks) {
            ls.read(c.lsOff, p->putData.data() + off, c.bytes);
            off += c.bytes;
        }
    }
    return p;
}

Tick
DmaEngine::executePending(const Pending &p)
{
    return executeChunks(p.t, p.ticket, p.chunks, p.isGet,
                         p.putData.empty() ? nullptr : p.putData.data());
}

Tick
DmaEngine::executeChunks(Tick t, Ticket ticket,
                         const std::vector<Chunk> &chunks, bool is_get,
                         const std::uint8_t *put_data)
{
    const int cluster = fabric.clusterOf(coreId);
    const std::uint32_t line = cfg.accessBytes;
    Tick done = t;
    std::size_t put_off = 0;

    for (const auto &c : chunks) {
        // Split the chunk into line-granule accesses. The uncore
        // moves whole granules; partial granules still occupy a full
        // granule slot (the block-transfer inefficiency of strided
        // access the paper discusses).
        Addr a = c.mem;
        std::uint32_t ls_off = c.lsOff;
        std::uint32_t remaining = c.bytes;
        while (remaining > 0) {
            Addr line_addr = a & ~Addr(line - 1);
            std::uint32_t in_line =
                std::min<std::uint32_t>(remaining,
                                        line - std::uint32_t(a - line_addr));
            Tick start = issueSlot(t);
            Tick comp;
            bool full = (in_line == line);
            for (int attempt = 1;; ++attempt) {
                if (is_get) {
                    comp = fabric.uncoreRead(start, cluster, line_addr,
                                             line);
                    stats.bytesRead += line;
                } else {
                    comp = fabric.uncoreWrite(start, cluster, line_addr,
                                              line, full);
                    stats.bytesWritten += line;
                }
                ++stats.accesses;
                if (!faults || !faults->dmaFault())
                    break;
                if (attempt >= faults->config().dmaMaxRetries) {
                    throwSimError(SimErrorKind::Fault,
                                  "DMA %s at 0x%llx on core %d still "
                                  "failing after %d attempts",
                                  is_get ? "get" : "put",
                                  (unsigned long long)line_addr, coreId,
                                  attempt);
                }
                faults->noteDmaRetry();
                start = comp + faults->dmaBackoff(attempt);
            }
            inFlight[(inFlightHead + inFlightCount) % inFlight.size()] =
                comp;
            ++inFlightCount;
            done = std::max(done, comp);

            a += in_line;
            ls_off += in_line;
            remaining -= in_line;
        }

        // Functional copy, in issue order (see file comment). A
        // deferred put carries its local-store bytes from defer()
        // time — the command's true issue point in program order.
        if (is_get) {
            std::uint8_t *buf = copyBuffer(c.bytes);
            mem.read(c.mem, buf, c.bytes);
            ls.write(c.lsOff, buf, c.bytes);
        } else if (put_data) {
            mem.write(c.mem, put_data + put_off, c.bytes);
            put_off += c.bytes;
        } else {
            std::uint8_t *buf = copyBuffer(c.bytes);
            ls.read(c.lsOff, buf, c.bytes);
            mem.write(c.mem, buf, c.bytes);
        }
    }

    ++stats.commands;
    ticketDone[ticket % kTicketWindow] = done;
    lastCompletion = std::max(lastCompletion, done);
    return done;
}

DmaEngine::Ticket
DmaEngine::get(Tick t, Addr mem_addr, std::uint32_t ls_off,
               std::uint32_t bytes)
{
    Ticket tk = reserveTicket();
    stageChunks(1);
    chunkScratch.push_back({mem_addr, ls_off, bytes});
    executeChunks(t, tk, chunkScratch, true, nullptr);
    return tk;
}

DmaEngine::Ticket
DmaEngine::put(Tick t, Addr mem_addr, std::uint32_t ls_off,
               std::uint32_t bytes)
{
    Ticket tk = reserveTicket();
    stageChunks(1);
    chunkScratch.push_back({mem_addr, ls_off, bytes});
    executeChunks(t, tk, chunkScratch, false, nullptr);
    return tk;
}

DmaEngine::Ticket
DmaEngine::getStrided(Tick t, Addr mem_base, std::uint64_t mem_stride,
                      std::uint32_t row_bytes, std::uint32_t rows,
                      std::uint32_t ls_off)
{
    Ticket tk = reserveTicket();
    stageChunks(rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
        chunkScratch.push_back({mem_base + Addr(r) * mem_stride,
                                ls_off + r * row_bytes, row_bytes});
    }
    executeChunks(t, tk, chunkScratch, true, nullptr);
    return tk;
}

DmaEngine::Ticket
DmaEngine::putStrided(Tick t, Addr mem_base, std::uint64_t mem_stride,
                      std::uint32_t row_bytes, std::uint32_t rows,
                      std::uint32_t ls_off)
{
    Ticket tk = reserveTicket();
    stageChunks(rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
        chunkScratch.push_back({mem_base + Addr(r) * mem_stride,
                                ls_off + r * row_bytes, row_bytes});
    }
    executeChunks(t, tk, chunkScratch, false, nullptr);
    return tk;
}

DmaEngine::Ticket
DmaEngine::getIndexed(Tick t, const std::vector<Addr> &addrs,
                      std::uint32_t elem_bytes, std::uint32_t ls_off)
{
    Ticket tk = reserveTicket();
    stageChunks(addrs.size());
    std::uint32_t off = ls_off;
    for (Addr a : addrs) {
        chunkScratch.push_back({a, off, elem_bytes});
        off += elem_bytes;
    }
    executeChunks(t, tk, chunkScratch, true, nullptr);
    return tk;
}

DmaEngine::Ticket
DmaEngine::putIndexed(Tick t, const std::vector<Addr> &addrs,
                      std::uint32_t elem_bytes, std::uint32_t ls_off)
{
    Ticket tk = reserveTicket();
    stageChunks(addrs.size());
    std::uint32_t off = ls_off;
    for (Addr a : addrs) {
        chunkScratch.push_back({a, off, elem_bytes});
        off += elem_bytes;
    }
    executeChunks(t, tk, chunkScratch, false, nullptr);
    return tk;
}

Tick
DmaEngine::completionTick(Ticket ticket) const
{
    assert(ticket < ticketNext);
    if (ticket + kTicketWindow <= ticketNext) {
        throwSimError(SimErrorKind::Model,
                      "DMA ticket %llu on core %d expired (completion "
                      "ring holds the most recent %zu tickets; newest "
                      "is %llu)",
                      (unsigned long long)ticket, coreId, kTicketWindow,
                      (unsigned long long)(ticketNext - 1));
    }
    return ticketDone[ticket % kTicketWindow];
}

std::string
DmaEngine::diagName() const
{
    return strformat("dma[%d]", coreId);
}

std::string
DmaEngine::diagnose() const
{
    std::string out = strformat(
        "commands=%llu accesses=%llu, in flight=%zu, engine free at "
        "tick %llu, last completion tick %llu",
        (unsigned long long)stats.commands,
        (unsigned long long)stats.accesses, inFlightCount,
        (unsigned long long)engineFree,
        (unsigned long long)lastCompletion);
    if (inFlightCount > 0) {
        out += strformat(
            "\noldest outstanding access completes at tick %llu",
            (unsigned long long)inFlight[inFlightHead]);
    }
    return out;
}

} // namespace cmpmem
