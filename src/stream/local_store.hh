/**
 * @file
 * Per-core software-managed local store (scratch-pad) for the
 * streaming memory model.
 *
 * The 24 KB local store "is indexed as a random access memory" and,
 * unlike a cache, has no tag or control-bit overhead — which is why
 * its per-access energy is lower (see energy_params.cc). It is
 * private to its core, so it carries real data (unlike the caches,
 * which are timing metadata over the shared FunctionalMemory).
 */

#ifndef CMPMEM_STREAM_LOCAL_STORE_HH
#define CMPMEM_STREAM_LOCAL_STORE_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "sim/types.hh"

namespace cmpmem
{

class LocalStore
{
  public:
    explicit LocalStore(std::uint32_t size_bytes = 24 * 1024);

    std::uint32_t size() const { return std::uint32_t(bytes.size()); }

    /** Raw byte access (bounds-checked; overruns are workload bugs). */
    void read(std::uint32_t offset, void *dst, std::size_t n) const;
    void write(std::uint32_t offset, const void *src, std::size_t n);

    template <typename T>
    T
    read(std::uint32_t offset) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(offset, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(std::uint32_t offset, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(offset, &v, sizeof(T));
    }

    /** Direct pointers for the DMA engine's bulk copies. */
    std::uint8_t *data() { return bytes.data(); }
    const std::uint8_t *data() const { return bytes.data(); }

    std::uint64_t coreReads() const { return numReads; }
    std::uint64_t coreWrites() const { return numWrites; }

    /** Core-side access accounting (timing handled by the Core). */
    void countRead() { ++numReads; }
    void countWrite() { ++numWrites; }

    //
    // FIFO access mode. Table 2's local store "provides hardware
    // support for FIFO accesses"; the paper's applications did not
    // use it, but the capability is part of the modelled hardware.
    // A FIFO is a circular channel over a region of the store.
    //

    /** Configure FIFO @p id over [base, base+bytes). */
    void fifoConfig(int id, std::uint32_t base, std::uint32_t bytes);

    /** Elements currently queued in FIFO @p id (in bytes). */
    std::uint32_t fifoDepth(int id) const;

    /** Push @p n bytes; @return false when the FIFO is full. */
    bool fifoPush(int id, const void *src, std::uint32_t n);

    /** Pop @p n bytes; @return false when underflowing. */
    bool fifoPop(int id, void *dst, std::uint32_t n);

  private:
    struct Fifo
    {
        std::uint32_t base = 0;
        std::uint32_t size = 0;
        std::uint32_t head = 0; ///< pop cursor (offset in region)
        std::uint32_t depth = 0;
    };

    static constexpr int maxFifos = 4;

    const Fifo &fifoAt(int id) const;
    Fifo &fifoAt(int id);

    void checkRange(std::uint32_t offset, std::size_t n) const;

    std::vector<std::uint8_t> bytes;
    Fifo fifos[maxFifos];
    std::uint64_t numReads = 0;
    std::uint64_t numWrites = 0;
};

} // namespace cmpmem

#endif // CMPMEM_STREAM_LOCAL_STORE_HH
