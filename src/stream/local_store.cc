#include "stream/local_store.hh"

#include "sim/sim_error.hh"

namespace cmpmem
{

LocalStore::LocalStore(std::uint32_t size_bytes)
    : bytes(size_bytes, 0)
{
}

void
LocalStore::checkRange(std::uint32_t offset, std::size_t n) const
{
    if (std::uint64_t(offset) + n > bytes.size())
        throwSimError(SimErrorKind::Model,
                      "local store access out of range: offset=%u "
                      "size=%zu capacity=%zu",
                      offset, n, bytes.size());
}

void
LocalStore::read(std::uint32_t offset, void *dst, std::size_t n) const
{
    checkRange(offset, n);
    std::memcpy(dst, bytes.data() + offset, n);
}

void
LocalStore::write(std::uint32_t offset, const void *src, std::size_t n)
{
    checkRange(offset, n);
    std::memcpy(bytes.data() + offset, src, n);
}

const LocalStore::Fifo &
LocalStore::fifoAt(int id) const
{
    if (id < 0 || id >= maxFifos)
        throwSimError(SimErrorKind::Model,
                      "local store FIFO id %d out of range", id);
    return fifos[id];
}

LocalStore::Fifo &
LocalStore::fifoAt(int id)
{
    return const_cast<Fifo &>(
        static_cast<const LocalStore *>(this)->fifoAt(id));
}

void
LocalStore::fifoConfig(int id, std::uint32_t base, std::uint32_t n)
{
    checkRange(base, n);
    if (n == 0)
        throwSimError(SimErrorKind::Model,
                      "local store FIFO must cover a non-empty region");
    fifoAt(id) = Fifo{base, n, 0, 0};
}

std::uint32_t
LocalStore::fifoDepth(int id) const
{
    return fifoAt(id).depth;
}

bool
LocalStore::fifoPush(int id, const void *src, std::uint32_t n)
{
    Fifo &f = fifoAt(id);
    if (f.depth + n > f.size)
        return false;
    const auto *in = static_cast<const std::uint8_t *>(src);
    std::uint32_t tail = (f.head + f.depth) % f.size;
    for (std::uint32_t i = 0; i < n; ++i)
        bytes[f.base + (tail + i) % f.size] = in[i];
    f.depth += n;
    return true;
}

bool
LocalStore::fifoPop(int id, void *dst, std::uint32_t n)
{
    Fifo &f = fifoAt(id);
    if (f.depth < n)
        return false;
    auto *out = static_cast<std::uint8_t *>(dst);
    for (std::uint32_t i = 0; i < n; ++i)
        out[i] = bytes[f.base + (f.head + i) % f.size];
    f.head = (f.head + n) % f.size;
    f.depth -= n;
    return true;
}

} // namespace cmpmem
