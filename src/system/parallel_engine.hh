/**
 * @file
 * Parallel intra-run execution: shard per-core events across host
 * worker threads with window-barrier synchronization (DESIGN.md §17).
 *
 * The engine alternates two phases per window:
 *
 *  - a parallel phase, where each worker thread drains its shards'
 *    core-local events (kernel resumes) with every shared-state
 *    operation recorded instead of executed, and
 *  - a serial replay phase on the coordinator, where the recorded
 *    operations — merged with the window's shared-machinery events —
 *    run in exact single-threaded (tick, sequence) order.
 *
 * A shadow EventQueue receives the identical sequence of schedule/pop
 * operations a hostThreads=1 run would perform, so every event key,
 * stat and telemetry counter is bit-identical by construction; the
 * replay loop asserts each merged key against the shadow's pop.
 */

#ifndef CMPMEM_SYSTEM_PARALLEL_ENGINE_HH
#define CMPMEM_SYSTEM_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cmpmem
{

class Core;

/**
 * Drives one CmpSystem run across several host threads. Owns the
 * worker pool, the per-core shard recorders and the shadow queue;
 * the real EventQueue is reduced to a key-ordered store of
 * cross-window events.
 */
class ParallelEngine : private ParallelHook
{
  public:
    /** Host-side run telemetry (never part of stat digests). */
    struct Telemetry
    {
        std::uint64_t windows = 0;         ///< execution windows run
        std::uint64_t parallelWindows = 0; ///< windows with a worker phase
        double barrierWaitSeconds = 0;     ///< coordinator wait at barriers
        std::vector<std::uint64_t> shardEvents; ///< worker-phase events/core
    };

    /**
     * @param real_queue   the system's event queue (must be idle)
     * @param core_ptrs    one entry per core; core i is shard i
     * @param host_threads total threads including the coordinator
     * @param window_ticks width of one execution window (a pure host
     *                     performance knob; any width is bit-identical)
     */
    ParallelEngine(EventQueue &real_queue, std::vector<Core *> core_ptrs,
                   int host_threads, Tick window_ticks);
    ~ParallelEngine() override;

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /**
     * Start the cores and run to completion under @p guard's budgets
     * (same contract as EventQueue::runGuarded, except the host-time
     * budget is wall-clock here: worker time is real cost even when
     * the coordinator sleeps). @return the final simulated tick.
     */
    Tick run(const EventQueue::RunGuard &guard);

    /**
     * The shadow queue. Its executed/pending/peak/overflow/geometry
     * telemetry and its pendingEventTicks() are bit-identical to a
     * hostThreads=1 run, and — between windows — form a coherent
     * snapshot of the quiesced machine; read stats and diagnostics
     * here, never from the real queue.
     */
    const EventQueue &shadow() const { return shadowQ; }

    /**
     * True whenever no worker phase is in flight (shard state and
     * shared structures are coherent). Diagnostics must only run in
     * the serial phase; CmpSystem::dumpDiagnostics asserts this.
     */
    bool inSerialPhase() const
    {
        return !workerPhaseActive.load(std::memory_order_acquire);
    }

    int hostThreads() const { return nThreads; }

    const Telemetry &telemetry() const { return tele; }

  private:
    struct LocalEvent;
    struct Action;
    struct ExecRec;
    struct SerialEvent;
    struct Shard;

    // Coordinator-side hook: installed for core start-up and the
    // replay phase, where schedules execute for real (shadow key,
    // then the serial working heap or the real queue).
    void routeSchedule(Tick when, std::int32_t shard,
                       EventQueue::Callback &&cb) override;
    void recordOp(OpFn &&op) override;

    Tick runLoop(const EventQueue::RunGuard &guard);
    template <typename CheckFn> void replayWindow(CheckFn &&check);
    void applyAction(Shard &sh, Action &a);
    void execShard(Shard &sh);
    void runShardSet(int tid);
    void workerMain(int tid);
    void waitForWorkers();
    void pushSerial(SerialEvent &&ev);
    SerialEvent popSerial();
    void restoreNowSources();

    EventQueue &realQ;
    EventQueue shadowQ;
    std::vector<Core *> cores;
    const int nThreads;
    const Tick windowTicks;

    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<SerialEvent> serialHeap;

    /** Per-core "now" slots for the parallel phase (padded: each is
     *  written by the worker owning that shard). */
    struct alignas(64) PaddedTick
    {
        Tick v = 0;
    };
    std::vector<PaddedTick> coreNow;

    /** Global now during serial phases; all cores' nowSrc points here
     *  outside worker phases (barrier wakeups cross cores). */
    Tick replayNow = 0;

    Tick windowLimit = 0;
    bool inWindow = false;

    Telemetry tele;

    // Spin barrier: the coordinator publishes a generation to release
    // the workers and waits for all of them to report done.
    std::atomic<std::uint64_t> goGen{0};
    std::atomic<int> doneCount{0};
    std::atomic<bool> shuttingDown{false};
    std::atomic<bool> workerPhaseActive{false};
    std::vector<std::jthread> workers;
};

} // namespace cmpmem

#endif // CMPMEM_SYSTEM_PARALLEL_ENGINE_HH
