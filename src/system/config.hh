/**
 * @file
 * Whole-system configuration: the paper's Table 2 in one struct.
 */

#ifndef CMPMEM_SYSTEM_CONFIG_HH
#define CMPMEM_SYSTEM_CONFIG_HH

#include <cstdint>

#include "core/context.hh"
#include "core/icache_model.hh"
#include "energy/energy_params.hh"
#include "faults/fault_config.hh"
#include "mem/cache_policy.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "prefetch/prefetcher.hh"
#include "sim/clock.hh"
#include "sim/types.hh"
#include "stream/dma_engine.hh"

namespace cmpmem
{

/**
 * Cache-policy descriptors (DESIGN.md §15): the replacement/
 * insertion policy of each cache level and the hardware-prefetch
 * algorithm, plus their sizing knobs. The defaults reproduce the
 * paper's fixed policy point — true LRU everywhere and the tagged
 * sequential stream prefetcher — bit-identically (pinned by the
 * golden digests in tests/test_golden.cc).
 */
struct CachePolicyConfig
{
    ReplacementPolicy l1Replacement = ReplacementPolicy::LRU;
    ReplacementPolicy l2Replacement = ReplacementPolicy::LRU;

    /** Prefetch algorithm used when hwPrefetch is on (CC model). */
    PrefetchPolicy prefetch = PrefetchPolicy::Stream;

    /** BIP: one in this many insertions goes to MRU. */
    std::uint32_t bipThrottle = 32;

    /**
     * Seed of BIP's bimodal RNG. The wiring salts it per structure
     * (core id for L1s, bank index for L2 banks), so sibling caches
     * do not make lock-step bimodal choices.
     */
    std::uint64_t policySeed = 1;

    /** Markov correlation table: rows (power of two) x successors. */
    std::uint32_t markovRows = 256;
    std::uint32_t markovSuccessors = 2;

    /** Jouppi stream buffers: count x depth in lines. */
    std::uint32_t streamBuffers = 4;
    std::uint32_t streamBufferDepth = 4;
};

/**
 * Configuration of a simulated CMP. Defaults are the bold values of
 * the paper's Table 2 (16 Tensilica-LX-like cores at 800 MHz, CC
 * model, 3.2 GB/s memory channel).
 */
struct SystemConfig
{
    int cores = 16;
    double coreClockGhz = 0.8;
    MemModel model = MemModel::CC;
    int clusterSize = 4;

    /** Hardware prefetcher (CC model; off unless stated). */
    bool hwPrefetch = false;
    std::uint32_t prefetchDepth = 4;

    /** Replacement/prefetch policy selection (DESIGN.md §15). */
    CachePolicyConfig policy;

    /** Honour non-allocating stores (PrepareForStore). */
    bool pfsEnabled = false;

    /**
     * Attach the runtime MESI invariant checker (see src/check/).
     * Off by default: with no checker attached every hook is a
     * single pointer test and simulated timing is bit-identical to
     * a build without the checker.
     */
    bool checkCoherence = false;

    /**
     * Enable the memory-access fast path's per-core line-hit micro
     * cache (DESIGN.md §13). A host-time optimization only: results
     * and stats are bit-identical either way (pinned by the golden
     * regressions in tests/test_determinism.cc), so this stays on
     * except when isolating the fast path itself.
     */
    bool memFastPath = true;

    /** First-level data storage (constant capacity across models). */
    std::uint32_t ccL1SizeBytes = 32 * 1024;
    std::uint32_t ccL1Assoc = 2;
    std::uint32_t strCacheSizeBytes = 8 * 1024;
    std::uint32_t strCacheAssoc = 2;
    std::uint32_t lsSizeBytes = 24 * 1024;
    std::uint32_t lineBytes = 32;
    std::size_t storeBufferEntries = 8;
    std::size_t mshrs = 64;

    /** Core-local/global time skew bound, in core cycles. */
    Cycles quantumCycles = 100;

    /**
     * Host worker threads for intra-run parallel execution
     * (DESIGN.md §17). 1 — the default — is the plain
     * single-threaded event loop. N > 1 shards per-core events
     * across min(hostThreads, cores) host threads with
     * window-barrier synchronization; results, stats and energy
     * digests are bit-identical for any value (pinned by
     * tests/test_parallel.cc). The runner maps CMPMEM_RUN_JOBS onto
     * this field, and sweeps cap it against the inter-job pool.
     */
    int hostThreads = 1;

    /**
     * Width of one parallel execution window in core cycles;
     * 0 picks 4x quantumCycles. A pure host-performance knob:
     * any width yields bit-identical simulated results.
     */
    Cycles hostWindowCycles = 0;

    L2Config l2;
    DramConfig dram;
    InterconnectConfig net;
    DmaConfig dma;
    ICacheConfig icache;
    ContextConfig ctx;
    EnergyParams energy;

    /**
     * Deterministic fault injection (see src/faults/). Disabled by
     * default; with faults.enabled == false no injector is built and
     * timing is bit-identical to a build without the subsystem.
     */
    FaultConfig faults;

    /**
     * Liveness watchdog for simulate(). Disengaged by default (all
     * budgets zero); an engaged watchdog turns hangs and livelocks
     * into SimErrorKind::Watchdog with a machine-state diagnostic.
     */
    WatchdogConfig watchdog;

    /**
     * Event-engine calendar geometry (DESIGN.md §12/§14). The ring
     * has a fixed 1024 buckets; bucketShift sets each bucket's width
     * to 2^bucketShift ticks, so the in-window horizon is
     * 1024 << bucketShift ticks and events scheduled further out pay
     * the overflow heap (RunStats::calendarOverflows).
     *
     * autoTune closes the loop: runWorkload() first executes a
     * tuneDryRunTicks-bounded dry run under the configured geometry,
     * and when the overflow heap is hot (overflows per executed
     * event above tuneHotThreshold) widens the buckets just enough
     * to cover the worst horizon observed, then runs the real
     * simulation under the chosen geometry. Geometry never changes
     * simulated behaviour — stats are bit-identical for any shift
     * except sim.calendar_overflows (and the recorded
     * sim.calendar_bucket_shift itself).
     */
    struct EventQueueTuning
    {
        std::uint32_t bucketShift = 8;

        bool autoTune = false;

        /** Simulated-tick budget of the tuning dry run (4x the
         *  default geometry's horizon, enough to watch several
         *  window advances). */
        Tick tuneDryRunTicks = 4 * (1024u << 8);

        /** Overflows per executed event above which the geometry is
         *  considered hot and retuned. */
        double tuneHotThreshold = 0.01;
    };
    EventQueueTuning eq;

    Clock coreClock() const { return Clock::fromMhz(coreClockGhz * 1000); }

    int clusters() const
    {
        return (cores + clusterSize - 1) / clusterSize;
    }

    /** Sanity-check the configuration; throws SimErrorKind::Config. */
    void validate() const;

    /** Fill dependent fields (ctx.pfsEnabled etc.) from top-level ones. */
    void finalize();
};

} // namespace cmpmem

#endif // CMPMEM_SYSTEM_CONFIG_HH
