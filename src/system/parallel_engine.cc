#include "system/parallel_engine.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "core/core.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/** Spins this many times before falling back to yield(). */
constexpr int kSpinBound = 4096;

/**
 * Busy-spinning only makes sense when every engine thread can own a
 * host CPU; on an oversubscribed host a spinning waiter steals the
 * very core the thread it waits on needs, so fall straight to
 * yield() there.
 */
int
spinBound(int engine_threads)
{
    unsigned hw = std::thread::hardware_concurrency();
    return (hw != 0 && hw >= unsigned(engine_threads)) ? kSpinBound : 0;
}

/**
 * Hard per-shard, per-window event cap. The engine's watchdog checks
 * run between events on the coordinator; a same-tick livelock inside
 * a worker phase would otherwise spin a worker forever with the
 * coordinator parked at the barrier. Far above any legitimate window
 * (a window is a few quanta of one core's execution), and the event
 * stream is deterministic, so tripping it is reproducible.
 */
constexpr std::uint64_t kMaxShardWindowEvents = std::uint64_t(1) << 27;

double
wallSeconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
}

} // namespace

/**
 * One pending event in a shard's window-local queue. Snapshot events
 * (popped from the real queue at window start) carry their true
 * sequence number in key2; generated events (scheduled by this shard
 * onto itself within the window) carry their creation index and sort
 * after every same-tick snapshot event — correct because their
 * sequence numbers are allocated during replay, after every
 * already-pending event's.
 */
struct ParallelEngine::LocalEvent
{
    Tick when;
    std::uint64_t key2;
    bool isGen;
    std::int32_t genId;
    EventQueue::Callback cb;

    /** a fires after b (min-heap comparator). */
    static bool
    after(const LocalEvent &a, const LocalEvent &b)
    {
        if (a.when != b.when)
            return b.when < a.when;
        if (a.isGen != b.isGen)
            return a.isGen;
        return b.key2 < a.key2;
    }
};

/**
 * One side effect recorded during a shard event: either a schedule
 * (replayed against the shadow queue to allocate its true sequence
 * number) or a deferred shared-state operation (invoked verbatim).
 */
struct ParallelEngine::Action
{
    Tick when = 0;
    std::int32_t shard = EventQueue::kNoShard;
    std::int32_t genId = -1; ///< >= 0: schedule ran locally in-window
    bool isOp = false;
    EventQueue::Callback cb; ///< schedule target unless genId >= 0
    ParallelHook::OpFn op;
};

/**
 * One event a shard executed in the worker phase, in local key order:
 * its global key (via seq or genSeq[genId]) plus the half-open range
 * of its recorded actions and any exception it raised.
 */
struct ParallelEngine::ExecRec
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::int32_t genId = -1;
    std::uint32_t actBegin = 0;
    std::uint32_t actEnd = 0;
    std::exception_ptr fault;
};

/** A shared-machinery event replayed serially at its exact key. */
struct ParallelEngine::SerialEvent
{
    Tick when;
    std::uint64_t seq;
    EventQueue::Callback cb;

    static bool
    after(const SerialEvent &a, const SerialEvent &b)
    {
        if (a.when != b.when)
            return b.when < a.when;
        return b.seq < a.seq;
    }
};

/**
 * Per-core recorder: the ParallelHook a worker installs while
 * executing this core's events. Everything here is touched by exactly
 * one thread per phase (the owning worker in the parallel phase, the
 * coordinator during replay), with the barrier ordering the handoff.
 */
struct ParallelEngine::Shard final : ParallelHook
{
    std::int32_t id = 0;
    Tick limit = 0;   ///< current window's inclusive tick bound
    Tick curWhen = 0; ///< tick of the event being executed
    Tick *nowSlot = nullptr;

    std::vector<LocalEvent> heap; ///< min-heap by localAfter
    std::vector<ExecRec> recs;
    std::vector<Action> actions;
    std::vector<std::uint64_t> genSeq; ///< genId -> shadow seq (replay)
    std::int32_t genCount = 0;
    std::size_t streamPos = 0; ///< replay cursor into recs

    std::uint64_t eventsExecuted = 0; ///< lifetime, for telemetry

    Shard() { workerPhase = true; }

    void
    routeSchedule(Tick when, std::int32_t shard,
                  EventQueue::Callback &&cb) override
    {
        if (when < curWhen) {
            throwSimError(
                SimErrorKind::Model,
                "event scheduled in the past (when=%llu, now=%llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curWhen));
        }
        Action a;
        a.when = when;
        a.shard = shard;
        if (shard == id && when <= limit) {
            // Stays local: execute within this window's worker phase.
            // The callback lives in the local heap; the action only
            // claims the event's sequence number at replay.
            a.genId = genCount++;
            heap.push_back(LocalEvent{when, std::uint64_t(a.genId), true,
                                      a.genId, std::move(cb)});
            std::push_heap(heap.begin(), heap.end(), LocalEvent::after);
        } else {
            a.cb = std::move(cb);
        }
        actions.push_back(std::move(a));
    }

    void
    recordOp(OpFn &&op) override
    {
        Action a;
        a.isOp = true;
        a.op = std::move(op);
        actions.push_back(std::move(a));
    }
};

ParallelEngine::ParallelEngine(EventQueue &real_queue,
                               std::vector<Core *> core_ptrs,
                               int host_threads, Tick window_ticks)
    : realQ(real_queue),
      cores(std::move(core_ptrs)),
      nThreads(std::max(1, std::min<int>(host_threads,
                                         int(cores.size())))),
      windowTicks(std::max<Tick>(window_ticks, 1))
{
    shadowQ.setBucketShift(realQ.bucketShift());
    coreNow.resize(cores.size());
    shards.reserve(cores.size());
    for (std::size_t i = 0; i < cores.size(); ++i) {
        shards.push_back(std::make_unique<Shard>());
        shards.back()->id = std::int32_t(i);
        shards.back()->nowSlot = &coreNow[i].v;
    }
    workers.reserve(std::size_t(nThreads - 1));
    for (int t = 1; t < nThreads; ++t)
        workers.emplace_back([this, t] { workerMain(t); });
}

ParallelEngine::~ParallelEngine()
{
    shuttingDown.store(true, std::memory_order_release);
    goGen.fetch_add(1, std::memory_order_release);
    workers.clear(); // jthread joins
    restoreNowSources();
}

void
ParallelEngine::restoreNowSources()
{
    for (Core *c : cores)
        c->setNowSource(realQ.nowPtr());
}

void
ParallelEngine::routeSchedule(Tick when, std::int32_t shard,
                              EventQueue::Callback &&cb)
{
    // The shadow allocates the key — including the past-time check
    // (its curTick tracks the replayed event's tick exactly).
    const std::uint64_t seq = shadowQ.scheduleKeyOnly(when);
    if (inWindow && when <= windowLimit)
        pushSerial(SerialEvent{when, seq, std::move(cb)});
    else
        realQ.insertWithSeq(when, seq, shard, std::move(cb));
}

void
ParallelEngine::recordOp(OpFn &&)
{
    throwSimError(SimErrorKind::Model,
                  "deferred op recorded outside a parallel worker phase");
}

void
ParallelEngine::pushSerial(SerialEvent &&ev)
{
    serialHeap.push_back(std::move(ev));
    std::push_heap(serialHeap.begin(), serialHeap.end(), SerialEvent::after);
}

ParallelEngine::SerialEvent
ParallelEngine::popSerial()
{
    std::pop_heap(serialHeap.begin(), serialHeap.end(), SerialEvent::after);
    SerialEvent ev = std::move(serialHeap.back());
    serialHeap.pop_back();
    return ev;
}

void
ParallelEngine::execShard(Shard &sh)
{
    if (sh.heap.empty())
        return;
    EventQueue::setCurrentHook(&sh);
    std::uint64_t executed = 0;
    while (!sh.heap.empty()) {
        std::pop_heap(sh.heap.begin(), sh.heap.end(), LocalEvent::after);
        LocalEvent ev = std::move(sh.heap.back());
        sh.heap.pop_back();

        sh.curWhen = ev.when;
        *sh.nowSlot = ev.when;

        ExecRec rec;
        rec.when = ev.when;
        rec.seq = ev.isGen ? 0 : ev.key2;
        rec.genId = ev.genId;
        rec.actBegin = std::uint32_t(sh.actions.size());
        bool faulted = false;
        try {
            if (++executed > kMaxShardWindowEvents) {
                throwSimError(
                    SimErrorKind::Watchdog,
                    "shard %d livelocked within one parallel window "
                    "(over %llu events at tick %llu)",
                    int(sh.id),
                    static_cast<unsigned long long>(kMaxShardWindowEvents),
                    static_cast<unsigned long long>(ev.when));
            }
            ev.cb();
        } catch (...) {
            rec.fault = std::current_exception();
            faulted = true;
        }
        rec.actEnd = std::uint32_t(sh.actions.size());
        sh.recs.push_back(std::move(rec));
        if (faulted) {
            // The run is unwinding at this key; later local events
            // would never have executed in the single-threaded run.
            sh.heap.clear();
            break;
        }
    }
    sh.eventsExecuted += executed;
    EventQueue::setCurrentHook(nullptr);
}

void
ParallelEngine::runShardSet(int tid)
{
    for (std::size_t s = std::size_t(tid); s < shards.size();
         s += std::size_t(nThreads))
        execShard(*shards[s]);
}

void
ParallelEngine::workerMain(int tid)
{
    std::uint64_t gen = 0;
    const int spin_bound = spinBound(nThreads);
    for (;;) {
        ++gen;
        int spins = 0;
        while (goGen.load(std::memory_order_acquire) < gen) {
            if (shuttingDown.load(std::memory_order_acquire))
                return;
            if (++spins < spin_bound)
                cpuRelax();
            else
                std::this_thread::yield();
        }
        if (shuttingDown.load(std::memory_order_acquire))
            return;
        runShardSet(tid);
        doneCount.fetch_add(1, std::memory_order_release);
    }
}

void
ParallelEngine::waitForWorkers()
{
    const double t0 = wallSeconds();
    const int spin_bound = spinBound(nThreads);
    int spins = 0;
    while (doneCount.load(std::memory_order_acquire) < nThreads - 1) {
        if (++spins < spin_bound)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    tele.barrierWaitSeconds += wallSeconds() - t0;
}

void
ParallelEngine::applyAction(Shard &sh, Action &a)
{
    if (a.isOp) {
        a.op();
        return;
    }
    const std::uint64_t seq = shadowQ.scheduleKeyOnly(a.when);
    if (a.genId >= 0) {
        // The event already ran locally; it only needed its key.
        sh.genSeq[std::size_t(a.genId)] = seq;
    } else if (a.when <= windowLimit) {
        pushSerial(SerialEvent{a.when, seq, std::move(a.cb)});
    } else {
        realQ.insertWithSeq(a.when, seq, a.shard, std::move(a.cb));
    }
}

template <typename CheckFn>
void
ParallelEngine::replayWindow(CheckFn &&check)
{
    for (;;) {
        // Merge front: the minimal key among every shard's next
        // unconsumed record and the serial working heap. Each shard
        // stream is key-sorted (local execution order), and a
        // generated record's key is always resolved by the time it
        // reaches the stream head — its creating event precedes it.
        Shard *best = nullptr;
        Tick bw = 0;
        std::uint64_t bs = 0;
        for (auto &shp : shards) {
            Shard &sh = *shp;
            if (sh.streamPos >= sh.recs.size())
                continue;
            const ExecRec &r = sh.recs[sh.streamPos];
            const std::uint64_t seq =
                r.genId >= 0 ? sh.genSeq[std::size_t(r.genId)] : r.seq;
            if (!best || r.when < bw || (r.when == bw && seq < bs)) {
                best = &sh;
                bw = r.when;
                bs = seq;
            }
        }
        bool useSerial = false;
        if (!serialHeap.empty()) {
            const SerialEvent &se = serialHeap.front();
            if (!best || se.when < bw ||
                (se.when == bw && se.seq < bs)) {
                useSerial = true;
                bw = se.when;
                bs = se.seq;
            }
        }
        if (!best && !useSerial)
            return;

        // The bit-identity check: the shadow queue, having seen the
        // exact single-threaded operation sequence, must agree on
        // which event fires next.
        const auto key = shadowQ.popKey();
        if (key.first != bw || key.second != bs) {
            throwSimError(
                SimErrorKind::Model,
                "parallel replay divergence: merged key (%llu, %llu) "
                "but the shadow queue pops (%llu, %llu)",
                static_cast<unsigned long long>(bw),
                static_cast<unsigned long long>(bs),
                static_cast<unsigned long long>(key.first),
                static_cast<unsigned long long>(key.second));
        }
        replayNow = bw;
        realQ.curTick = bw;

        if (useSerial) {
            SerialEvent se = popSerial();
            se.cb();
        } else {
            ExecRec &r = best->recs[best->streamPos++];
            for (std::uint32_t i = r.actBegin; i < r.actEnd; ++i)
                applyAction(*best, best->actions[i]);
            if (r.fault) {
                // Surface the worker-phase exception at exactly the
                // key where the single-threaded run would have thrown
                // (every earlier event has fully replayed).
                std::rethrow_exception(r.fault);
            }
        }
        check();
    }
}

Tick
ParallelEngine::runLoop(const EventQueue::RunGuard &guard)
{
    const Tick startTick = shadowQ.now();
    const bool checkHost = guard.maxHostSeconds > 0;
    const bool checkProgress = guard.progressCheckEvents != 0;
    const double hostStart = checkHost ? wallSeconds() : 0;
    const std::uint64_t cadence =
        guard.progressCheckEvents ? guard.progressCheckEvents : 4096;
    std::uint64_t nextCheck = shadowQ.executed() + cadence;
    std::uint64_t lastProbe =
        guard.progressProbe ? guard.progressProbe() : shadowQ.now();
    bool probeArmed = false;

    auto fail = [&](const char *what, std::string detail) {
        std::string diag = guard.diagnostic ? guard.diagnostic() : "";
        throw SimError(SimErrorKind::Watchdog,
                       strformat("watchdog: %s (%s)", what, detail.c_str()),
                       std::move(diag));
    };

    // Called between replayed events and between windows — the same
    // cadence contract runGuarded() keeps, so watchdog behaviour is
    // equivalent (modulo wall-vs-thread time; see run()'s doc).
    auto guardChecks = [&] {
        if (shadowQ.executed() < nextCheck)
            return;
        nextCheck = shadowQ.executed() + cadence;
        if (checkHost) {
            double spent = wallSeconds() - hostStart;
            if (spent > guard.maxHostSeconds) {
                fail("host time budget exceeded",
                     strformat("%.1fs spent, budget %.1fs", spent,
                               guard.maxHostSeconds));
            }
        }
        if (checkProgress) {
            std::uint64_t probe =
                guard.progressProbe ? guard.progressProbe() : shadowQ.now();
            if (probe != lastProbe) {
                lastProbe = probe;
                probeArmed = false;
            } else if (!probeArmed) {
                probeArmed = true;
            } else {
                fail("no forward progress",
                     strformat("probe stuck at %llu for %llu events "
                               "(tick %llu)",
                               static_cast<unsigned long long>(probe),
                               static_cast<unsigned long long>(2 * cadence),
                               static_cast<unsigned long long>(
                                   shadowQ.now())));
            }
        }
    };

    for (;;) {
        EventQueue::Node *head = realQ.peekNext();
        if (!head)
            break;
        const Tick first = head->when;
        if (guard.maxTicks != 0 && first > startTick + guard.maxTicks) {
            fail("simulated-tick budget exceeded",
                 strformat("next event at tick %llu, budget was %llu "
                           "ticks from tick %llu",
                           static_cast<unsigned long long>(first),
                           static_cast<unsigned long long>(guard.maxTicks),
                           static_cast<unsigned long long>(startTick)));
        }

        windowLimit = first + windowTicks;
        if (windowLimit < first) // tick overflow near the end of time
            windowLimit = maxTick;
        inWindow = true;
        ++tele.windows;

        // Partition the window: core-tagged events to their shards,
        // everything else straight to the serial working heap.
        bool anyLocal = false;
        EventQueue::Node *n;
        while ((n = realQ.peekNext()) && n->when <= windowLimit) {
            realQ.takeNext();
            const std::int32_t s = n->shard;
            if (s >= 0 && std::size_t(s) < shards.size()) {
                Shard &sh = *shards[std::size_t(s)];
                sh.heap.push_back(
                    LocalEvent{n->when, n->seq, false, -1,
                               std::move(n->cb)});
                std::push_heap(sh.heap.begin(), sh.heap.end(),
                               LocalEvent::after);
                anyLocal = true;
            } else {
                pushSerial(SerialEvent{n->when, n->seq, std::move(n->cb)});
            }
            realQ.releaseNode(n);
        }

        if (anyLocal) {
            ++tele.parallelWindows;
            for (std::size_t c = 0; c < shards.size(); ++c) {
                shards[c]->limit = windowLimit;
                cores[c]->setNowSource(&coreNow[c].v);
            }
            workerPhaseActive.store(true, std::memory_order_release);
            doneCount.store(0, std::memory_order_relaxed);
            goGen.fetch_add(1, std::memory_order_release);
            runShardSet(0);
            waitForWorkers();
            workerPhaseActive.store(false, std::memory_order_release);
            for (std::size_t c = 0; c < shards.size(); ++c) {
                shards[c]->genSeq.resize(
                    std::size_t(shards[c]->genCount));
                cores[c]->setNowSource(&replayNow);
            }
            // runShardSet(0) cleared the coordinator's hook on exit.
            EventQueue::setCurrentHook(this);
        }

        replayWindow(guardChecks);
        inWindow = false;

        for (auto &shp : shards) {
            Shard &sh = *shp;
            assert(sh.streamPos == sh.recs.size() &&
                   "parallel window replay left unconsumed records");
            assert(sh.heap.empty() &&
                   "parallel window left unexecuted local events");
            sh.recs.clear();
            sh.actions.clear();
            sh.genSeq.clear();
            sh.genCount = 0;
            sh.streamPos = 0;
        }
        assert(serialHeap.empty() &&
               "parallel window left unreplayed serial events");

        guardChecks();
    }

    realQ.curTick = shadowQ.now();
    return shadowQ.now();
}

Tick
ParallelEngine::run(const EventQueue::RunGuard &guard)
{
    assert(realQ.empty() && realQ.executed() == 0 &&
           "the parallel engine must own the queue from the first event");

    // RAII hook ownership: on any exit — normal completion, a fault
    // replayed out of a shard, a watchdog trip — the coordinator's
    // hook is cleared and the cores read time from the real queue
    // again (whose curTick the replay loop kept in sync).
    struct Scope
    {
        ParallelEngine *e;
        ~Scope()
        {
            EventQueue::setCurrentHook(nullptr);
            e->restoreNowSources();
        }
    } scope{this};

    EventQueue::setCurrentHook(this);
    for (Core *c : cores)
        c->setNowSource(&replayNow);
    for (Core *c : cores)
        c->start();

    const Tick end = runLoop(guard);

    tele.shardEvents.clear();
    for (const auto &shp : shards)
        tele.shardEvents.push_back(shp->eventsExecuted);
    return end;
}

} // namespace cmpmem
