/**
 * @file
 * CmpSystem assembles the full simulated chip of Figure 1 for either
 * memory model and runs kernels to completion.
 */

#ifndef CMPMEM_SYSTEM_CMP_SYSTEM_HH
#define CMPMEM_SYSTEM_CMP_SYSTEM_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "check/coherence_checker.hh"
#include "core/context.hh"
#include "core/core.hh"
#include "faults/fault_injector.hh"
#include "mem/dram.hh"
#include "mem/functional_memory.hh"
#include "mem/l1_controller.hh"
#include "mem/l2_cache.hh"
#include "prefetch/prefetcher.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "system/config.hh"

namespace cmpmem
{

class ParallelEngine;

/** Everything measured in one simulation run. */
struct RunStats
{
    std::string workload;
    std::string variant;
    SystemConfig config;

    Tick execTicks = 0; ///< last core's finish tick

    /** Aggregates over all cores. */
    CoreStats coreTotal;
    std::vector<CoreStats> perCore;

    L1Counters l1Total;
    std::uint64_t icacheFetches = 0;
    std::uint64_t icacheMisses = 0;

    std::uint64_t lsReads = 0;
    std::uint64_t lsWrites = 0;
    std::uint64_t dmaAccesses = 0;
    std::uint64_t dmaBytesRead = 0;
    std::uint64_t dmaBytesWritten = 0;

    FabricCounters fabric;
    std::uint64_t busBytes = 0;
    std::uint64_t xbarBytes = 0;

    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l2RefillsAvoided = 0;

    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    Tick dramBusyTicks = 0;
    std::uint64_t dramRowHits = 0;   ///< bank model only, else 0
    std::uint64_t dramRowMisses = 0; ///< bank model only, else 0

    /** Runtime MESI checker results (zero when not attached). */
    std::uint64_t checkerViolations = 0;
    std::uint64_t checkerEvents = 0;

    /** Fault-injection outcomes (all zero when faults are disabled). */
    FaultStats faults;

    /**
     * Host-throughput telemetry from the event engine. All three are
     * pure functions of the deterministic event stream (no host
     * timing), so they compare bit-identically across runs; the
     * nondeterministic events/sec figure lives next to host_seconds
     * in the bench JSON instead.
     */
    std::uint64_t eventsExecuted = 0;
    std::uint64_t peakPendingEvents = 0;
    std::uint64_t calendarOverflows = 0;

    /**
     * Calendar-queue geometry the run executed under (the log2 tick
     * width of one ring bucket). Recorded so artifacts and the
     * bench_compare gate see which geometry — configured or
     * auto-tuned — produced the numbers.
     */
    std::uint64_t calendarBucketShift = 0;

    /**
     * Parallel-execution telemetry (DESIGN.md §17). Host-side only:
     * thread count and window/barrier figures depend on the host
     * topology and wall clock, so none of these enter toStatSet() —
     * stat digests must be bit-identical across hostThreads values.
     */
    int hostThreads = 1;
    std::uint64_t hostWindows = 0;
    std::uint64_t hostParallelWindows = 0;
    double hostBarrierWaitSeconds = 0;
    std::vector<std::uint64_t> hostShardEvents;

    /**
     * Miss-path host allocations (DESIGN.md §18): heap allocations
     * taken by MSHR waiter pools and DMA scratch buffers past their
     * warm-up reservations, summed over all cores. Host-side only
     * (never enters toStatSet()); 0 in steady state.
     */
    std::uint64_t missPathAllocs = 0;

    double execSeconds() const
    {
        return double(execTicks) / double(ticksPerSec);
    }

    double l1MissRate() const
    {
        auto acc = l1Total.demandAccesses();
        return acc ? double(l1Total.demandMisses()) / double(acc) : 0.0;
    }

    double l2MissRate() const
    {
        auto acc = l2Hits + l2Misses;
        return acc ? double(l2Misses) / double(acc) : 0.0;
    }

    double offChipBytesPerSec() const
    {
        double s = execSeconds();
        return s > 0 ? double(dramReadBytes + dramWriteBytes) / s : 0.0;
    }

    /** Flatten into a StatSet for generic reporting. */
    StatSet toStatSet() const;
};

/**
 * The simulated chip multiprocessor.
 */
class CmpSystem
{
  public:
    explicit CmpSystem(const SystemConfig &cfg);
    ~CmpSystem();

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    const SystemConfig &config() const { return cfg; }
    int cores() const { return cfg.cores; }

    EventQueue &eventQueue() { return eq; }
    FunctionalMemory &mem() { return fmem; }
    Core &core(int i) { return *coreVec.at(i); }
    Context &context(int i) { return *ctxVec.at(i); }
    CoherenceFabric &fabric() { return *fab; }
    L2Cache &l2() { return *l2cache; }
    DramChannel &dram() { return *dramChannel; }

    /** The runtime MESI checker (null unless cfg.checkCoherence). */
    CoherenceChecker *checker() { return check.get(); }
    const CoherenceChecker *checker() const { return check.get(); }

    /** The fault injector (null unless cfg.faults.enabled). */
    FaultInjector *faultInjector() { return faultInj.get(); }
    const FaultInjector *faultInjector() const { return faultInj.get(); }

    /** Attach core @p i's kernel coroutine. */
    void bindKernel(int i, KernelTask task);

    /**
     * Tuning dry run: start the cores and execute events up to
     * simulated tick @p max_ticks, with no drain epilogue, no
     * deadlock check, and no watchdog — the machine is abandoned
     * where it stands (safe: the whole system, suspended kernels
     * included, is torn down by the destructor). Used by the
     * calendar-geometry auto-tuner to sample a workload's scheduling
     * horizons cheaply; read the telemetry off eventQueue().
     */
    Tick dryRun(Tick max_ticks);

    /**
     * Run every bound kernel to completion, then drain dirty cache
     * state for traffic accounting.
     *
     * When cfg.watchdog is engaged the run is guarded: exceeding the
     * tick/host-time budget or stalling forward progress raises
     * SimErrorKind::Watchdog carrying dumpDiagnostics(); a drained
     * queue with unfinished cores raises SimErrorKind::Deadlock. With
     * the watchdog disengaged, guarded and unguarded runs are
     * bit-identical.
     *
     * @return the finish tick of the slowest core.
     */
    Tick simulate();

    /** Gather all counters (call after simulate()). */
    RunStats collectStats() const;

    /**
     * One-stop machine-state dump for hang triage: event-queue
     * summary, per-core progress/stall state, and every Diagnosable
     * component (L1s, L2, fabric, DMA engines). Side-effect free.
     */
    std::string dumpDiagnostics() const;

  private:
    SystemConfig cfg;
    EventQueue eq;
    FunctionalMemory fmem;
    std::unique_ptr<DramChannel> dramChannel;
    std::unique_ptr<L2Cache> l2cache;
    std::unique_ptr<CoherenceFabric> fab;
    std::unique_ptr<CoherenceChecker> check;
    std::unique_ptr<FaultInjector> faultInj;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<std::unique_ptr<L1Controller>> l1Vec;
    std::vector<std::unique_ptr<LocalStore>> lsVec;
    std::vector<std::unique_ptr<DmaEngine>> dmaVec;
    std::vector<std::unique_ptr<Core>> coreVec;
    std::vector<std::unique_ptr<Context>> ctxVec;

    /**
     * The parallel intra-run engine, built by simulate() when
     * min(cfg.hostThreads, cfg.cores) > 1 and kept alive afterwards:
     * its shadow queue is the coherent source for stats and
     * diagnostics (the real queue's counters stop at the events the
     * engine popped itself).
     */
    std::unique_ptr<ParallelEngine> engine;

    /** The queue whose counters/introspection describe this run. */
    const EventQueue &statsQueue() const;

    /** Atomic: kernels can finish on worker threads mid-quantum. */
    std::atomic<int> finishedCores{0};
};

} // namespace cmpmem

#endif // CMPMEM_SYSTEM_CMP_SYSTEM_HH
