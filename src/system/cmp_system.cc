#include "system/cmp_system.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/sim_error.hh"
#include "system/parallel_engine.hh"

namespace cmpmem
{

CmpSystem::CmpSystem(const SystemConfig &config) : cfg(config)
{
    cfg.finalize();
    cfg.validate();

    eq.setBucketShift(cfg.eq.bucketShift);

    dramChannel = std::make_unique<DramChannel>(cfg.dram);
    l2cache = std::make_unique<L2Cache>(cfg.l2, *dramChannel);
    fab = std::make_unique<CoherenceFabric>(cfg.net, cfg.cores,
                                            cfg.clusterSize, *l2cache,
                                            *dramChannel);

    if (cfg.checkCoherence) {
        check = std::make_unique<CoherenceChecker>(fmem, cfg.lineBytes);
        fab->attachChecker(check.get());
        l2cache->setObserver(check.get());
    }

    if (cfg.faults.enabled) {
#if CMPMEM_FAULTS_ENABLED
        faultInj = std::make_unique<FaultInjector>(cfg.faults);
        dramChannel->setFaultInjector(faultInj.get());
        fab->setFaultInjector(faultInj.get());
#else
        throwSimError(SimErrorKind::Config,
                      "fault injection requested but this build was "
                      "configured with CMPMEM_FAULTS=OFF");
#endif
    }

    const Clock clock = cfg.coreClock();
    const bool cc = (cfg.model == MemModel::CC);

    for (int i = 0; i < cfg.cores; ++i) {
        L1Config l1c;
        l1c.geom.sizeBytes = cc ? cfg.ccL1SizeBytes
                                : cfg.strCacheSizeBytes;
        l1c.geom.assoc = cc ? cfg.ccL1Assoc : cfg.strCacheAssoc;
        l1c.geom.lineBytes = cfg.lineBytes;
        l1c.coherent = cc;
        l1c.mshrs = cfg.mshrs;
        l1c.storeBufferEntries = cfg.storeBufferEntries;
        l1c.cyclePeriod = clock.period();
        l1c.fastPath = cfg.memFastPath;
        l1c.repl.policy = cfg.policy.l1Replacement;
        l1c.repl.bipThrottle = cfg.policy.bipThrottle;
        // Salt the (BIP) seed per core so sibling L1s don't make
        // lock-step bimodal choices.
        l1c.repl.seed = cfg.policy.policySeed + std::uint64_t(i);
        l1Vec.push_back(
            std::make_unique<L1Controller>(i, l1c, eq, *fab));
        if (check)
            l1Vec.back()->attachChecker(check.get());

        if (cc && cfg.hwPrefetch) {
            PrefetcherConfig pc;
            pc.lineBytes = cfg.lineBytes;
            pc.depth = cfg.prefetchDepth;
            pc.markovRows = cfg.policy.markovRows;
            pc.markovSuccessors = cfg.policy.markovSuccessors;
            pc.streamBuffers = cfg.policy.streamBuffers;
            pc.streamBufferDepth = cfg.policy.streamBufferDepth;
            prefetchers.push_back(
                makePrefetcher(cfg.policy.prefetch, pc));
            l1Vec.back()->setPrefetcher(prefetchers.back().get());
        }

        LocalStore *ls = nullptr;
        DmaEngine *dma = nullptr;
        if (!cc) {
            lsVec.push_back(
                std::make_unique<LocalStore>(cfg.lsSizeBytes));
            ls = lsVec.back().get();
            dmaVec.push_back(std::make_unique<DmaEngine>(
                i, cfg.dma, *fab, fmem, *ls));
            dma = dmaVec.back().get();
            if (faultInj)
                dma->setFaultInjector(faultInj.get());
        }

        coreVec.push_back(std::make_unique<Core>(
            i, eq, clock, cfg.model, l1Vec.back().get(),
            ICacheModel(cfg.icache), ls, dma, fab.get(),
            cfg.quantumCycles));
        coreVec.back()->onFinish([this] { ++finishedCores; });

        ctxVec.push_back(std::make_unique<Context>(
            *coreVec.back(), fmem, i, cfg.cores, cfg.ctx));
    }
}

CmpSystem::~CmpSystem() = default;

void
CmpSystem::bindKernel(int i, KernelTask task)
{
    coreVec.at(i)->bindKernel(std::move(task));
}

Tick
CmpSystem::dryRun(Tick max_ticks)
{
    for (auto &core : coreVec)
        core->start();
    return eq.runUntil(max_ticks);
}

Tick
CmpSystem::simulate()
{
    EventQueue::RunGuard guard;
    if (cfg.watchdog.engaged()) {
        guard.maxTicks = cfg.watchdog.maxTicks;
        guard.maxHostSeconds = cfg.watchdog.maxHostSeconds;
        guard.progressCheckEvents = cfg.watchdog.progressCheckEvents;
        guard.progressProbe = [this] {
            std::uint64_t retired = 0;
            for (const auto &core : coreVec)
                retired += core->stats().instructions();
            return retired;
        };
        guard.diagnostic = [this] { return dumpDiagnostics(); };
    }

    try {
        const int ht = std::min(cfg.hostThreads, cfg.cores);
        if (ht > 1) {
            // Parallel intra-run execution (DESIGN.md §17). The
            // engine starts the cores itself so their launch events
            // already carry shadow-queue keys.
            const Cycles window_cycles =
                cfg.hostWindowCycles ? cfg.hostWindowCycles
                                     : 512 * cfg.quantumCycles;
            std::vector<Core *> core_ptrs;
            core_ptrs.reserve(coreVec.size());
            for (auto &core : coreVec)
                core_ptrs.push_back(core.get());
            engine = std::make_unique<ParallelEngine>(
                eq, std::move(core_ptrs), ht,
                cfg.coreClock().cyclesToTicks(window_cycles));
            engine->run(guard);
        } else if (cfg.watchdog.engaged()) {
            for (auto &core : coreVec)
                core->start();
            eq.runGuarded(guard);
        } else {
            for (auto &core : coreVec)
                core->start();
            eq.run();
        }
    } catch (const SimError &e) {
        // Mid-run failures (an injected fault out of retries, a model
        // contract violation) abandon the machine where it stands;
        // attach the state dump if the thrower didn't already.
        if (e.diagnostic().empty())
            throw SimError(e.kind(), e.what(), dumpDiagnostics());
        throw;
    }

    if (finishedCores.load() != cfg.cores) {
        throw SimError(
            SimErrorKind::Deadlock,
            strformat("deadlock: only %d of %d cores finished (a "
                      "kernel is waiting on an event that never fires)",
                      finishedCores.load(), cfg.cores),
            dumpDiagnostics());
    }

    Tick finish = 0;
    for (auto &core : coreVec)
        finish = std::max(finish, core->finishTick());

    // Drain epilogue: dirty first-level lines write back to the L2,
    // then dirty L2 lines to DRAM, so traffic totals are invariant
    // to where write-backs happen to be parked at the end of a run.
    for (auto &l1 : l1Vec)
        l1->drainDirty(finish);
    l2cache->drainDirty();

    // With the machine quiesced and drained, sweep the real tag
    // arrays against the checker's shadow state and golden data.
    if (check)
        check->audit(finish);

    return finish;
}

RunStats
CmpSystem::collectStats() const
{
    RunStats rs;
    rs.config = cfg;

    for (const auto &core : coreVec) {
        rs.perCore.push_back(core->stats());
        const CoreStats &s = core->stats();
        rs.coreTotal.usefulTicks += s.usefulTicks;
        rs.coreTotal.syncTicks += s.syncTicks;
        rs.coreTotal.loadStallTicks += s.loadStallTicks;
        rs.coreTotal.storeStallTicks += s.storeStallTicks;
        rs.coreTotal.bundles += s.bundles;
        rs.coreTotal.fpBundles += s.fpBundles;
        rs.coreTotal.loads += s.loads;
        rs.coreTotal.stores += s.stores;
        rs.coreTotal.atomics += s.atomics;
        rs.coreTotal.lsReads += s.lsReads;
        rs.coreTotal.lsWrites += s.lsWrites;
        rs.coreTotal.dmaCommands += s.dmaCommands;
        rs.coreTotal.barriers += s.barriers;

        rs.execTicks = std::max(rs.execTicks, core->finishTick());

        const ICacheModel &ic = core->icache();
        rs.icacheFetches += ic.fetches();
        rs.icacheMisses += ic.misses();
    }

    for (const auto &l1 : l1Vec) {
        const L1Counters &c = l1->counters();
        rs.l1Total.loadHits += c.loadHits;
        rs.l1Total.loadMisses += c.loadMisses;
        rs.l1Total.storeHits += c.storeHits;
        rs.l1Total.storeMisses += c.storeMisses;
        rs.l1Total.storeMerged += c.storeMerged;
        rs.l1Total.pfsStores += c.pfsStores;
        rs.l1Total.atomicOps += c.atomicOps;
        rs.l1Total.writebacks += c.writebacks;
        rs.l1Total.fills += c.fills;
        rs.l1Total.snoopsReceived += c.snoopsReceived;
        rs.l1Total.invalidationsReceived += c.invalidationsReceived;
        rs.l1Total.suppliesProvided += c.suppliesProvided;
        rs.l1Total.prefetchesIssued += c.prefetchesIssued;
        rs.l1Total.prefetchesUseful += c.prefetchesUseful;
        rs.l1Total.fastpathHits += c.fastpathHits;
        rs.missPathAllocs += l1->missPathHostAllocs();
    }

    for (const auto &ls : lsVec) {
        rs.lsReads += ls->coreReads();
        rs.lsWrites += ls->coreWrites();
    }
    for (const auto &dma : dmaVec) {
        rs.dmaAccesses += dma->counters().accesses;
        rs.dmaBytesRead += dma->counters().bytesRead;
        rs.dmaBytesWritten += dma->counters().bytesWritten;
        rs.missPathAllocs += dma->hostAllocs();
    }

    rs.fabric = fab->counters();
    for (int c = 0; c < fab->clusters(); ++c)
        rs.busBytes += fab->bus(c).bytesMoved();
    rs.xbarBytes = fab->crossbar().bytesMoved();

    rs.l2Hits = l2cache->hits();
    rs.l2Misses = l2cache->misses();
    rs.l2RefillsAvoided = l2cache->refillsAvoided();

    rs.dramReadBytes = dramChannel->readBytes();
    rs.dramWriteBytes = dramChannel->writeBytes();
    rs.dramBusyTicks = dramChannel->busyTicks();
    rs.dramRowHits = dramChannel->rowHits();
    rs.dramRowMisses = dramChannel->rowMisses();

    if (check) {
        rs.checkerViolations = check->violations();
        rs.checkerEvents = check->eventsObserved();
    }

    if (faultInj)
        rs.faults = faultInj->stats();

    const EventQueue &q = statsQueue();
    rs.eventsExecuted = q.executed();
    rs.peakPendingEvents = q.peakPending();
    rs.calendarOverflows = q.calendarOverflows();
    rs.calendarBucketShift = q.bucketShift();

    if (engine) {
        const ParallelEngine::Telemetry &t = engine->telemetry();
        rs.hostThreads = engine->hostThreads();
        rs.hostWindows = t.windows;
        rs.hostParallelWindows = t.parallelWindows;
        rs.hostBarrierWaitSeconds = t.barrierWaitSeconds;
        rs.hostShardEvents = t.shardEvents;
    }

    return rs;
}

const EventQueue &
CmpSystem::statsQueue() const
{
    // At hostThreads > 1 the real queue saw only a subset of the
    // operation stream (workers and the replay bypass it); the
    // engine's shadow queue carries the bit-identical single-threaded
    // counters and the coherent pending set.
    return engine ? engine->shadow() : eq;
}

std::string
CmpSystem::dumpDiagnostics() const
{
    // Shard state and shared structures are only coherent while the
    // workers are quiesced at a barrier; a dump from inside a worker
    // phase would mix half-executed window state.
    if (engine && !engine->inSerialPhase()) {
        throwSimError(SimErrorKind::Model,
                      "diagnostics requested during a parallel worker "
                      "phase (dumps are barrier-phase only)");
    }
    const EventQueue &q = statsQueue();
    std::string out = strformat(
        "=== machine state @ tick %llu ===\n"
        "event queue: %zu pending, %llu executed; %d of %d cores "
        "finished",
        (unsigned long long)q.now(), q.pending(),
        (unsigned long long)q.executed(), finishedCores.load(),
        cfg.cores);

    std::vector<Tick> next = q.pendingEventTicks();
    if (!next.empty()) {
        out += "\nnext event ticks:";
        for (Tick t : next)
            out += strformat(" %llu", (unsigned long long)t);
    }

    for (const auto &core : coreVec) {
        if (core->finished()) {
            out += strformat("\ncore %d: finished at tick %llu",
                             core->id(),
                             (unsigned long long)core->finishTick());
        } else {
            out += strformat(
                "\ncore %d: RUNNING, local tick %llu, %llu "
                "instruction(s) retired",
                core->id(), (unsigned long long)core->now(),
                (unsigned long long)core->stats().instructions());
        }
    }

    auto append = [&out](const Diagnosable &d) {
        out += "\n--- " + d.diagName() + " ---\n" + d.diagnose();
    };
    append(*fab);
    append(*l2cache);
    for (const auto &l1 : l1Vec)
        append(*l1);
    for (const auto &dma : dmaVec)
        append(*dma);
    return out;
}

StatSet
RunStats::toStatSet() const
{
    StatSet s;
    s.set("exec_ticks", double(execTicks));
    s.set("exec_seconds", execSeconds());
    s.set("core.useful_ticks", double(coreTotal.usefulTicks));
    s.set("core.sync_ticks", double(coreTotal.syncTicks));
    s.set("core.load_stall_ticks", double(coreTotal.loadStallTicks));
    s.set("core.store_stall_ticks", double(coreTotal.storeStallTicks));
    s.set("core.instructions", double(coreTotal.instructions()));
    s.set("core.loads", double(coreTotal.loads));
    s.set("core.stores", double(coreTotal.stores));
    s.set("core.atomics", double(coreTotal.atomics));
    s.set("core.barriers", double(coreTotal.barriers));
    s.set("core.dma_commands", double(coreTotal.dmaCommands));
    s.set("icache.fetches", double(icacheFetches));
    s.set("icache.misses", double(icacheMisses));
    s.set("l1.load_hits", double(l1Total.loadHits));
    s.set("l1.load_misses", double(l1Total.loadMisses));
    s.set("l1.store_hits", double(l1Total.storeHits));
    s.set("l1.store_misses", double(l1Total.storeMisses));
    s.set("l1.pfs_stores", double(l1Total.pfsStores));
    s.set("l1.writebacks", double(l1Total.writebacks));
    s.set("l1.miss_rate", l1MissRate());
    s.set("l1.snoops", double(l1Total.snoopsReceived));
    s.set("l1.prefetches_issued", double(l1Total.prefetchesIssued));
    s.set("l1.prefetches_useful", double(l1Total.prefetchesUseful));
    s.set("mem.fastpath_hits", double(l1Total.fastpathHits));
    s.set("ls.reads", double(lsReads));
    s.set("ls.writes", double(lsWrites));
    s.set("dma.accesses", double(dmaAccesses));
    s.set("l2.hits", double(l2Hits));
    s.set("l2.misses", double(l2Misses));
    s.set("l2.miss_rate", l2MissRate());
    s.set("l2.refills_avoided", double(l2RefillsAvoided));
    s.set("net.bus_bytes", double(busBytes));
    s.set("net.xbar_bytes", double(xbarBytes));
    s.set("dram.read_bytes", double(dramReadBytes));
    s.set("dram.write_bytes", double(dramWriteBytes));
    s.set("dram.busy_ticks", double(dramBusyTicks));
    s.set("dram.row_hits", double(dramRowHits));
    s.set("dram.row_misses", double(dramRowMisses));
    s.set("offchip_bytes_per_sec", offChipBytesPerSec());
    s.set("checker.violations", double(checkerViolations));
    s.set("checker.events", double(checkerEvents));
    s.set("faults.dram_flips", double(faults.dramFlips));
    s.set("faults.ecc_corrected", double(faults.eccCorrected));
    s.set("faults.ecc_detected", double(faults.eccDetected));
    s.set("faults.net_nacks", double(faults.netNacks));
    s.set("faults.net_retries", double(faults.netRetries));
    s.set("faults.dma_faults", double(faults.dmaFaults));
    s.set("faults.dma_retries", double(faults.dmaRetries));
    s.set("sim.events_executed", double(eventsExecuted));
    s.set("sim.peak_pending_events", double(peakPendingEvents));
    s.set("sim.calendar_overflows", double(calendarOverflows));
    s.set("sim.calendar_bucket_shift", double(calendarBucketShift));
    return s;
}

} // namespace cmpmem
