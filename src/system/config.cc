#include "system/config.hh"

#include "sim/log.hh"

namespace cmpmem
{

void
SystemConfig::validate() const
{
    if (cores < 1 || cores > 1024)
        fatal("core count %d out of range", cores);
    if (coreClockGhz <= 0)
        fatal("core clock must be positive");
    if (clusterSize < 1)
        fatal("cluster size must be at least 1");
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("line size must be a power of two");
    if (dram.bandwidthGBps <= 0)
        fatal("DRAM bandwidth must be positive");
    if (hwPrefetch && model == MemModel::STR)
        fatal("hardware prefetching applies to the cache-based model");
    if (pfsEnabled && model == MemModel::STR)
        fatal("PFS stores apply to the cache-based model");
}

void
SystemConfig::finalize()
{
    ctx.pfsEnabled = pfsEnabled;
    l2.lineBytes = lineBytes;
    dram.granuleBytes = lineBytes;
    dma.accessBytes = lineBytes;
}

} // namespace cmpmem
