#include "system/config.hh"

#include "sim/event_queue.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

void
SystemConfig::validate() const
{
    if (cores < 1 || cores > 1024)
        throwSimError(SimErrorKind::Config, "core count %d out of range",
                      cores);
    if (coreClockGhz <= 0)
        throwSimError(SimErrorKind::Config, "core clock must be positive");
    if (clusterSize < 1)
        throwSimError(SimErrorKind::Config,
                      "cluster size must be at least 1");
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        throwSimError(SimErrorKind::Config,
                      "line size must be a power of two");
    if (dram.bandwidthGBps <= 0)
        throwSimError(SimErrorKind::Config,
                      "DRAM bandwidth must be positive");
    if (hwPrefetch && model == MemModel::STR)
        throwSimError(SimErrorKind::Config,
                      "hardware prefetching applies to the cache-based model");
    if (pfsEnabled && model == MemModel::STR)
        throwSimError(SimErrorKind::Config,
                      "PFS stores apply to the cache-based model");
    if (policy.bipThrottle < 1)
        throwSimError(SimErrorKind::Config,
                      "BIP throttle must be at least 1");
    if (policy.markovRows == 0 ||
        (policy.markovRows & (policy.markovRows - 1)) != 0)
        throwSimError(SimErrorKind::Config,
                      "Markov table rows must be a power of two (got %u)",
                      policy.markovRows);
    if (policy.markovSuccessors < 1)
        throwSimError(SimErrorKind::Config,
                      "Markov table needs at least one successor slot");
    if (policy.streamBuffers < 1 || policy.streamBufferDepth < 1)
        throwSimError(SimErrorKind::Config,
                      "stream buffers need at least one buffer of "
                      "depth one");
    if (hostThreads < 1 || hostThreads > 256)
        throwSimError(SimErrorKind::Config,
                      "host thread count %d out of range [1, 256]",
                      hostThreads);
    if (eq.bucketShift < EventQueue::kMinBucketShift ||
        eq.bucketShift > EventQueue::kMaxBucketShift)
        throwSimError(SimErrorKind::Config,
                      "calendar bucket shift %u out of range [%u, %u]",
                      eq.bucketShift, EventQueue::kMinBucketShift,
                      EventQueue::kMaxBucketShift);
    if (eq.autoTune &&
        (eq.tuneDryRunTicks == 0 || eq.tuneHotThreshold < 0))
        throwSimError(SimErrorKind::Config,
                      "calendar auto-tuning needs a positive dry-run "
                      "tick budget and a non-negative hot threshold");
    if (faults.enabled) {
        if (faults.dramBitFlipProb < 0 || faults.dramBitFlipProb >= 1 ||
            faults.netNackProb < 0 || faults.netNackProb >= 1 ||
            faults.dmaFaultProb < 0 || faults.dmaFaultProb >= 1)
            throwSimError(SimErrorKind::Config,
                          "fault probabilities must lie in [0, 1)");
        if (faults.netMaxRetries < 1 || faults.dmaMaxRetries < 1)
            throwSimError(SimErrorKind::Config,
                          "fault retry limits must be at least 1");
    }
}

void
SystemConfig::finalize()
{
    ctx.pfsEnabled = pfsEnabled;
    l2.lineBytes = lineBytes;
    l2.repl.policy = policy.l2Replacement;
    l2.repl.bipThrottle = policy.bipThrottle;
    l2.repl.seed = policy.policySeed;
    dram.granuleBytes = lineBytes;
    dma.accessBytes = lineBytes;
}

} // namespace cmpmem
