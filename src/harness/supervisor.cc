#include "harness/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/experiment.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"
#include "system/cmp_system.hh"

namespace cmpmem
{

namespace
{

// ---------------------------------------------------------------- //
// JobResult codec                                                  //
//                                                                  //
// The codec carries the *raw* RunStats members, not the rendered   //
// StatSet: bench text tables read raw fields (perCore breakdowns,  //
// miss counters), and the digest is recomputed from the restored   //
// struct — so a lossy codec would be caught, not papered over.     //
// One visitor per struct keeps the two directions in lockstep: a   //
// new counter added to a struct needs exactly one new line here.   //
// ---------------------------------------------------------------- //

template <typename CS, typename F>
void
visitCoreStats(CS &c, F &&f)
{
    f("useful_ticks", c.usefulTicks);
    f("sync_ticks", c.syncTicks);
    f("load_stall_ticks", c.loadStallTicks);
    f("store_stall_ticks", c.storeStallTicks);
    f("bundles", c.bundles);
    f("fp_bundles", c.fpBundles);
    f("loads", c.loads);
    f("stores", c.stores);
    f("atomics", c.atomics);
    f("ls_reads", c.lsReads);
    f("ls_writes", c.lsWrites);
    f("dma_commands", c.dmaCommands);
    f("barriers", c.barriers);
}

template <typename L1, typename F>
void
visitL1Counters(L1 &l, F &&f)
{
    f("load_hits", l.loadHits);
    f("load_misses", l.loadMisses);
    f("store_hits", l.storeHits);
    f("store_misses", l.storeMisses);
    f("store_merged", l.storeMerged);
    f("pfs_stores", l.pfsStores);
    f("atomic_ops", l.atomicOps);
    f("writebacks", l.writebacks);
    f("fills", l.fills);
    f("snoops_received", l.snoopsReceived);
    f("invalidations_received", l.invalidationsReceived);
    f("supplies_provided", l.suppliesProvided);
    f("prefetches_issued", l.prefetchesIssued);
    f("prefetches_useful", l.prefetchesUseful);
    f("fastpath_hits", l.fastpathHits);
}

template <typename FC, typename F>
void
visitFabricCounters(FC &fc, F &&f)
{
    f("cluster_requests", fc.clusterRequests);
    f("global_requests", fc.globalRequests);
    f("snoop_probes", fc.snoopProbes);
    f("local_supplies", fc.localSupplies);
    f("remote_supplies", fc.remoteSupplies);
    f("upgrades", fc.upgrades);
    f("writebacks", fc.writebacks);
    f("uncore_reads", fc.uncoreReads);
    f("uncore_writes", fc.uncoreWrites);
    f("remote_atomics", fc.remoteAtomics);
}

template <typename FS, typename F>
void
visitFaultStats(FS &fs, F &&f)
{
    f("dram_flips", fs.dramFlips);
    f("ecc_corrected", fs.eccCorrected);
    f("ecc_detected", fs.eccDetected);
    f("net_nacks", fs.netNacks);
    f("net_retries", fs.netRetries);
    f("dma_faults", fs.dmaFaults);
    f("dma_retries", fs.dmaRetries);
}

template <typename RS, typename F>
void
visitRunStatsScalars(RS &s, F &&f)
{
    f("exec_ticks", s.execTicks);
    f("icache_fetches", s.icacheFetches);
    f("icache_misses", s.icacheMisses);
    f("ls_reads", s.lsReads);
    f("ls_writes", s.lsWrites);
    f("dma_accesses", s.dmaAccesses);
    f("dma_bytes_read", s.dmaBytesRead);
    f("dma_bytes_written", s.dmaBytesWritten);
    f("bus_bytes", s.busBytes);
    f("xbar_bytes", s.xbarBytes);
    f("l2_hits", s.l2Hits);
    f("l2_misses", s.l2Misses);
    f("l2_refills_avoided", s.l2RefillsAvoided);
    f("dram_read_bytes", s.dramReadBytes);
    f("dram_write_bytes", s.dramWriteBytes);
    f("dram_busy_ticks", s.dramBusyTicks);
    f("dram_row_hits", s.dramRowHits);
    f("dram_row_misses", s.dramRowMisses);
    f("checker_violations", s.checkerViolations);
    f("checker_events", s.checkerEvents);
    f("events_executed", s.eventsExecuted);
    f("peak_pending_events", s.peakPendingEvents);
    f("calendar_overflows", s.calendarOverflows);
    f("calendar_bucket_shift", s.calendarBucketShift);
}

template <typename EB, typename F>
void
visitEnergy(EB &e, F &&f)
{
    f("core_mj", e.coreMj);
    f("icache_mj", e.icacheMj);
    f("dstore_mj", e.dstoreMj);
    f("network_mj", e.networkMj);
    f("l2_mj", e.l2Mj);
    f("dram_mj", e.dramMj);
}

/** Visitor writing each field as a "%.17g" JSON number member. */
struct FieldWriter
{
    JsonValue &obj;

    template <typename T>
    void
    operator()(const char *name, const T &v)
    {
        obj.set(name, JsonValue::makeNumber(double(v)));
    }
};

/** Visitor restoring each field; missing members are Config errors. */
struct FieldReader
{
    const JsonValue &obj;

    template <typename T>
    void
    operator()(const char *name, T &v)
    {
        v = T(obj.at(name).asNumber());
    }
};

std::string
jsonStringOr(const JsonValue &doc, const char *key, const char *dflt)
{
    const JsonValue *v = doc.find(key);
    return v ? v->asString() : std::string(dflt);
}

// ---------------------------------------------------------------- //
// Pipe protocol                                                    //
//                                                                  //
// Length-prefixed frames: "<kind> <payload-bytes>\n<payload>".     //
// 'L' frames stream captured log lines as the job produces them;   //
// one final 'R' frame carries the serialized JobResult. A child    //
// killed mid-frame leaves a prefix the parser simply never         //
// completes — the partial frame is dropped, everything before it   //
// survives.                                                        //
// ---------------------------------------------------------------- //

bool
writeAll(int fd, const char *p, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false; // parent gone (EPIPE) or pipe broken
        }
        p += w;
        n -= std::size_t(w);
    }
    return true;
}

void
writeFrame(int fd, char kind, const std::string &payload)
{
    std::string buf;
    buf += kind;
    buf += ' ';
    buf += std::to_string(payload.size());
    buf += '\n';
    buf += payload;
    (void)writeAll(fd, buf.data(), buf.size());
}

struct FrameParser
{
    std::string buf;

    /** Extract the next complete frame; false when none is buffered. */
    bool
    next(char &kind, std::string &payload)
    {
        const std::size_t nl = buf.find('\n');
        if (nl == std::string::npos)
            return false;
        if (nl < 3 || buf[1] != ' ')
            return false; // malformed header: stop consuming
        char *end = nullptr;
        const unsigned long long len =
            std::strtoull(buf.c_str() + 2, &end, 10);
        if (!end || *end != '\n')
            return false;
        if (buf.size() < nl + 1 + len)
            return false; // payload still in flight
        kind = buf[0];
        payload = buf.substr(nl + 1, len);
        buf.erase(0, nl + 1 + len);
        return true;
    }
};

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGKILL: return "SIGKILL";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGILL: return "SIGILL";
      case SIGFPE: return "SIGFPE";
      case SIGTERM: return "SIGTERM";
      case SIGINT: return "SIGINT";
    }
    return strformat("signal %d", sig);
}

/** Child body after fork: run the job, stream log + result, _exit. */
[[noreturn]] void
childRun(const SweepJob &job, const SweepOptions &opts, int fd)
{
    // The pipe is the only channel back; a vanished parent must not
    // kill us with SIGPIPE mid-write (writeAll already stops on the
    // resulting EPIPE).
    std::signal(SIGPIPE, SIG_IGN);
    JobResult jr =
        runJobInProcess(job, opts, [fd](const std::string &line) {
            writeFrame(fd, 'L', line);
        });
    writeFrame(fd, 'R', jobResultToJson(jr, false).dumpCompact());
    ::close(fd);
    // _exit, not exit: the forked image shares atexit handlers and
    // static destructors with the parent; running them here would
    // corrupt shared artifacts (flushed stdio, temp files).
    ::_exit(0);
}

/** One fork/supervise cycle; retry policy lives in the caller. */
JobResult
superviseOnce(const SweepJob &job, const SweepOptions &opts)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        warn("sweep job '%s': pipe() failed (%s); running in-process",
             job.id.c_str(), std::strerror(errno));
        return runJobInProcess(job, opts);
    }

    pid_t pid;
    {
        // Hold the log mutex across fork(): a child created while
        // another pool thread owns it would inherit the lock forever
        // and deadlock on its first fatal()/emitRaw(). Flushing
        // stdio under the same lock keeps buffered output from being
        // emitted twice (once per process).
        std::lock_guard<std::mutex> lock(logMutex());
        std::fflush(stdout);
        std::fflush(stderr);
        pid = ::fork();
    }
    if (pid < 0) {
        warn("sweep job '%s': fork() failed (%s); running in-process",
             job.id.c_str(), std::strerror(errno));
        ::close(fds[0]);
        ::close(fds[1]);
        return runJobInProcess(job, opts);
    }
    if (pid == 0) {
        ::close(fds[0]);
        childRun(job, opts, fds[1]); // does not return
    }
    ::close(fds[1]);

    using clock = std::chrono::steady_clock;
    const bool hasDeadline = opts.jobDeadlineSeconds > 0;
    const clock::time_point deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(
                               opts.jobDeadlineSeconds));

    FrameParser parser;
    std::string log, resultJson;
    bool sawResult = false;
    bool killedOnDeadline = false;
    char chunk[4096];
    for (;;) {
        int timeout_ms = -1;
        if (hasDeadline && !killedOnDeadline) {
            const auto left = deadline - clock::now();
            const auto ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    left)
                    .count();
            timeout_ms = int(std::clamp<long long>(ms, 0, 60 * 60 * 1000));
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        const int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0) {
            // Deadline expired with the child still holding the
            // pipe: hard-kill it, then keep reading — frames already
            // in the pipe (the partial log) are still ours.
            ::kill(pid, SIGKILL);
            killedOnDeadline = true;
            continue;
        }
        const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: the child exited (or was killed)
        parser.buf.append(chunk, std::size_t(n));
        char kind = 0;
        std::string payload;
        while (parser.next(kind, payload)) {
            if (kind == 'L')
                log += payload;
            else if (kind == 'R') {
                resultJson = std::move(payload);
                sawResult = true;
            }
        }
    }
    ::close(fds[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    JobResult jr;
    jr.job = job;
    jr.log = log;

    if (sawResult) {
        // A result that raced a deadline kill still counts: the job
        // finished its work and reported before the SIGKILL landed.
        try {
            jobResultFromJson(JsonValue::parse(resultJson), jr);
            // The codec intentionally omits the config (the artifact
            // renders job.cfg); restore it for table code reading
            // stats.config off the merged result.
            jr.run.stats.config = job.cfg;
            jr.log = log; // 'L' frames are authoritative
            return jr;
        } catch (const SimError &e) {
            jr = JobResult();
            jr.job = job;
            jr.log = log;
            jr.errorKind = to_string(SimErrorKind::Crash);
            jr.error = strformat(
                "child result frame did not decode (%s)", e.what());
            return jr;
        }
    }

    if (killedOnDeadline) {
        jr.errorKind = to_string(SimErrorKind::Timeout);
        jr.signal = "SIGKILL";
        jr.error = strformat(
            "job exceeded the %.3g s wall-clock deadline and was "
            "killed",
            opts.jobDeadlineSeconds);
    } else if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        jr.errorKind = to_string(SimErrorKind::Crash);
        jr.signal = signalName(sig);
        jr.error = strformat("child killed by %s", jr.signal.c_str());
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        jr.errorKind = to_string(SimErrorKind::Crash);
        jr.error = strformat(
            "child exited with status %d before reporting a result",
            WEXITSTATUS(status));
    } else {
        jr.errorKind = to_string(SimErrorKind::Crash);
        jr.error = "child exited without reporting a result";
    }
    return jr;
}

bool
sandboxDied(const JobResult &jr)
{
    return jr.errorKind == to_string(SimErrorKind::Crash) ||
           jr.errorKind == to_string(SimErrorKind::Timeout);
}

} // namespace

bool
isolationEnabled(const SweepOptions &opts)
{
    switch (opts.isolate) {
      case SweepIsolate::On: return true;
      case SweepIsolate::Off: return false;
      case SweepIsolate::Env: break;
    }
    const char *env = std::getenv("CMPMEM_ISOLATE");
    return env && *env && std::strcmp(env, "0") != 0;
}

JobResult
runJobSupervised(const SweepJob &job, const SweepOptions &opts)
{
    const int maxAttempts = 1 + std::max(0, opts.maxRetries);
    JobResult jr;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            const double backoff =
                std::min(opts.retryBackoffSeconds * (attempt - 1),
                         opts.retryBackoffMaxSeconds);
            if (backoff > 0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
            }
        }
        jr = superviseOnce(job, opts);
        jr.attempts = attempt;
        // Only sandbox death is worth retrying: a deterministic
        // SimError (bad config, watchdog, checker) would fail the
        // same way on every attempt.
        if (!sandboxDied(jr))
            break;
        if (attempt < maxAttempts) {
            warn("sweep job '%s': %s (%s); re-dispatching, attempt "
                 "%d of %d",
                 job.id.c_str(), jr.errorKind.c_str(),
                 jr.error.c_str(), attempt + 1, maxAttempts);
        }
    }
    return jr;
}

JsonValue
jobResultToJson(const JobResult &jr, bool include_log)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("ran", JsonValue::makeBool(jr.ran));
    doc.set("verified", JsonValue::makeBool(jr.run.verified));
    doc.set("attempts", JsonValue::makeNumber(jr.attempts));
    doc.set("host_seconds", JsonValue::makeNumber(jr.run.hostSeconds));
    doc.set("workload", JsonValue::makeString(jr.run.stats.workload));
    doc.set("variant", JsonValue::makeString(jr.run.stats.variant));
    doc.set("error", JsonValue::makeString(jr.error));
    doc.set("error_kind", JsonValue::makeString(jr.errorKind));
    doc.set("signal", JsonValue::makeString(jr.signal));
    doc.set("diagnostic", JsonValue::makeString(jr.diagnostic));

    JsonValue stats = JsonValue::makeObject();
    FieldWriter sw{stats};
    visitRunStatsScalars(jr.run.stats, sw);

    JsonValue coreTotal = JsonValue::makeObject();
    FieldWriter cw{coreTotal};
    visitCoreStats(jr.run.stats.coreTotal, cw);
    stats.set("core_total", std::move(coreTotal));

    JsonValue perCore = JsonValue::makeArray();
    for (const auto &cs : jr.run.stats.perCore) {
        JsonValue one = JsonValue::makeObject();
        FieldWriter w{one};
        visitCoreStats(cs, w);
        perCore.append(std::move(one));
    }
    stats.set("per_core", std::move(perCore));

    JsonValue l1 = JsonValue::makeObject();
    FieldWriter lw{l1};
    visitL1Counters(jr.run.stats.l1Total, lw);
    stats.set("l1_total", std::move(l1));

    JsonValue fabric = JsonValue::makeObject();
    FieldWriter fw{fabric};
    visitFabricCounters(jr.run.stats.fabric, fw);
    stats.set("fabric", std::move(fabric));

    JsonValue faults = JsonValue::makeObject();
    FieldWriter ff{faults};
    visitFaultStats(jr.run.stats.faults, ff);
    stats.set("faults", std::move(faults));

    doc.set("stats", std::move(stats));

    JsonValue energy = JsonValue::makeObject();
    FieldWriter ew{energy};
    visitEnergy(jr.run.energy, ew);
    doc.set("energy", std::move(energy));

    doc.set("stats_digest",
            JsonValue::makeString(jr.run.stats.toStatSet().digest()));
    if (include_log)
        doc.set("log", JsonValue::makeString(jr.log));
    return doc;
}

void
jobResultFromJson(const JsonValue &doc, JobResult &jr)
{
    jr.run = RunResult();
    jr.ran = doc.at("ran").asBool();
    jr.run.verified = doc.at("verified").asBool();
    jr.attempts = int(doc.at("attempts").asNumber());
    jr.run.hostSeconds = doc.at("host_seconds").asNumber();
    jr.run.stats.workload = doc.at("workload").asString();
    jr.run.stats.variant = doc.at("variant").asString();
    jr.error = jsonStringOr(doc, "error", "");
    jr.errorKind = jsonStringOr(doc, "error_kind", "");
    jr.signal = jsonStringOr(doc, "signal", "");
    jr.diagnostic = jsonStringOr(doc, "diagnostic", "");
    jr.log = jsonStringOr(doc, "log", "");

    const JsonValue &stats = doc.at("stats");
    FieldReader sr{stats};
    visitRunStatsScalars(jr.run.stats, sr);

    FieldReader cr{stats.at("core_total")};
    visitCoreStats(jr.run.stats.coreTotal, cr);

    jr.run.stats.perCore.clear();
    for (const JsonValue &one : stats.at("per_core").items()) {
        CoreStats cs;
        FieldReader r{one};
        visitCoreStats(cs, r);
        jr.run.stats.perCore.push_back(cs);
    }

    FieldReader lr{stats.at("l1_total")};
    visitL1Counters(jr.run.stats.l1Total, lr);

    FieldReader fr{stats.at("fabric")};
    visitFabricCounters(jr.run.stats.fabric, fr);

    FieldReader xr{stats.at("faults")};
    visitFaultStats(jr.run.stats.faults, xr);

    FieldReader er{doc.at("energy")};
    visitEnergy(jr.run.energy, er);
}

// ---------------------------------------------------------------- //
// SweepJournal                                                     //
// ---------------------------------------------------------------- //

namespace
{

JsonValue
journalHeader(const std::string &sweep_name)
{
    JsonValue hdr = JsonValue::makeObject();
    hdr.set("journal", JsonValue::makeString(sweep_name));
    hdr.set("schema", JsonValue::makeNumber(2));
    // The same sizing identity the artifact records: a journal
    // written at one scale must not seed a resume at another.
    hdr.set("scale", JsonValue::makeNumber(benchScale()));
    hdr.set("bench_scale_div",
            JsonValue::makeNumber(double(benchScaleDivisor())));
    return hdr;
}

} // namespace

SweepJournal::SweepJournal(const std::string &path,
                           const std::string &sweep_name, bool fresh)
    : path_(path)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (fresh)
        flags |= O_TRUNC;
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        warn("cannot open sweep journal %s: %s (journaling disabled "
             "for this run)",
             path.c_str(), std::strerror(errno));
        return;
    }
    struct stat st;
    const bool empty = ::fstat(fd, &st) == 0 && st.st_size == 0;
    if (empty)
        writeLine(journalHeader(sweep_name).dumpCompact());
}

SweepJournal::~SweepJournal()
{
    if (fd >= 0)
        ::close(fd);
}

void
SweepJournal::writeLine(const std::string &line)
{
    std::string out = line;
    out += '\n';
    if (!writeAll(fd, out.data(), out.size())) {
        warn("sweep journal %s: write failed (%s); journaling "
             "disabled for the rest of the run",
             path_.c_str(), std::strerror(errno));
        ::close(fd);
        fd = -1;
        return;
    }
    // The write-ahead property: a record is durable before the
    // sweep moves on, so a kill at any instant leaves at most one
    // torn trailing line (which load() discards).
    ::fsync(fd);
}

bool
SweepJournal::eligible(const JobResult &jr)
{
    // Crashes and timeouts are exactly what resume must re-attempt;
    // completed runs and deterministic failures are settled.
    return !sandboxDied(jr);
}

void
SweepJournal::record(const JobResult &jr)
{
    JsonValue rec = JsonValue::makeObject();
    rec.set("id", JsonValue::makeString(jr.job.id));
    rec.set("config", JsonValue::parse(configIdentityJson(jr.job.cfg)));
    rec.set("stats_digest",
            JsonValue::makeString(jr.run.stats.toStatSet().digest()));
    rec.set("result", jobResultToJson(jr, true));
    const std::string line = rec.dumpCompact();
    std::lock_guard<std::mutex> lock(m);
    if (fd < 0)
        return;
    writeLine(line);
}

std::map<std::string, JobResult>
SweepJournal::load(const std::string &path,
                   const std::string &sweep_name,
                   const std::vector<SweepJob> &jobs)
{
    std::map<std::string, JobResult> out;

    std::ifstream ifs(path, std::ios::binary);
    if (!ifs) {
        warn("resume: no journal at %s; running the full sweep",
             path.c_str());
        return out;
    }
    std::string text((std::istreambuf_iterator<char>(ifs)),
                     std::istreambuf_iterator<char>());
    if (text.empty()) {
        warn("resume: journal %s is empty; running the full sweep",
             path.c_str());
        return out;
    }

    // Split into lines; a file not ending in '\n' has a torn tail
    // (the process died mid-record).
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    const bool endsComplete = !text.empty() && text.back() == '\n';

    // Header: identity of the sweep this journal belongs to. A torn
    // or unparseable header means no usable records at all.
    JsonValue hdr;
    try {
        if (lines.size() == 1 && !endsComplete)
            throw SimError(SimErrorKind::Config, "torn header line");
        hdr = JsonValue::parse(lines[0]);
    } catch (const SimError &) {
        warn("resume: journal %s has an unreadable header; running "
             "the full sweep",
             path.c_str());
        return out;
    }
    if (hdr.at("journal").asString() != sweep_name) {
        throwSimError(SimErrorKind::Config,
                      "refusing --resume: journal %s belongs to sweep "
                      "'%s', not '%s' — delete it or rerun without "
                      "--resume",
                      path.c_str(), hdr.at("journal").asString().c_str(),
                      sweep_name.c_str());
    }
    if (int(hdr.at("schema").asNumber()) != 2) {
        throwSimError(SimErrorKind::Config,
                      "refusing --resume: journal %s has schema %d, "
                      "expected 2",
                      path.c_str(), int(hdr.at("schema").asNumber()));
    }
    if (int(hdr.at("scale").asNumber()) != benchScale() ||
        std::uint64_t(hdr.at("bench_scale_div").asNumber()) !=
            benchScaleDivisor()) {
        throwSimError(
            SimErrorKind::Config,
            "refusing --resume: journal %s was written at scale=%d/"
            "div=%d but this run is scale=%d/div=%llu — results "
            "would not be comparable",
            path.c_str(), int(hdr.at("scale").asNumber()),
            int(hdr.at("bench_scale_div").asNumber()), benchScale(),
            (unsigned long long)benchScaleDivisor());
    }

    std::map<std::string, const SweepJob *> byId;
    for (const SweepJob &job : jobs)
        byId.emplace(job.id, &job);

    for (std::size_t i = 1; i < lines.size(); ++i) {
        const bool isLast = i + 1 == lines.size();
        if (isLast && !endsComplete && lines[i].empty())
            break;

        std::string id;
        JobResult jr;
        std::string recordedDigest;
        JsonValue recConfig;
        try {
            JsonValue rec = JsonValue::parse(lines[i]);
            id = rec.at("id").asString();
            recordedDigest = rec.at("stats_digest").asString();
            recConfig = rec.at("config");
            jobResultFromJson(rec.at("result"), jr);
        } catch (const SimError &) {
            // Shape/parse damage: tolerable only as the torn tail of
            // a killed run — anywhere else the file is corrupt.
            if (isLast) {
                warn("resume: discarding torn trailing record in %s "
                     "(the interrupted job will re-run)",
                     path.c_str());
                break;
            }
            throwSimError(SimErrorKind::Config,
                          "journal %s: corrupt record on line %zu — "
                          "delete the journal or rerun without "
                          "--resume",
                          path.c_str(), i + 1);
        }

        auto it = byId.find(id);
        if (it == byId.end()) {
            warn("resume: journal record for unknown job '%s' "
                 "ignored (sweep definition changed?)",
                 id.c_str());
            continue;
        }

        // Config identity must match the spec exactly — these are
        // the same fields bench_compare refuses to diff across.
        const std::string want =
            JsonValue::parse(configIdentityJson(it->second->cfg))
                .dumpCompact();
        if (recConfig.dumpCompact() != want) {
            throwSimError(
                SimErrorKind::Config,
                "refusing --resume: journal %s config identity for "
                "job '%s' does not match the sweep spec (the sweep "
                "definition changed) — delete the journal or rerun "
                "without --resume",
                path.c_str(), id.c_str());
        }

        // Integrity: the digest recomputed from the decoded stats
        // must equal the recorded key, or the record is damaged.
        if (jr.run.stats.toStatSet().digest() != recordedDigest) {
            if (isLast) {
                warn("resume: discarding trailing record with a "
                     "stats-digest mismatch in %s",
                     path.c_str());
                break;
            }
            throwSimError(SimErrorKind::Config,
                          "journal %s: stats digest mismatch on line "
                          "%zu — the journal is corrupt",
                          path.c_str(), i + 1);
        }

        jr.job = *it->second;
        // Merged without re-running: attempts = 0 distinguishes a
        // journal merge from a fresh single-attempt execution.
        jr.attempts = 0;
        out[id] = std::move(jr); // duplicates: last complete wins
    }
    return out;
}

} // namespace cmpmem
