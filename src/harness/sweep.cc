#include "harness/sweep.hh"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "harness/experiment.hh"
#include "harness/supervisor.hh"
#include "harness/table.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"
#include "system/cmp_system.hh"

namespace cmpmem
{

namespace
{

/** JSON string escaping (quotes, backslash, control characters). */
std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += fmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

/** JSON number (non-finite values are not valid JSON; map to 0). */
std::string
jnum(double v)
{
    if (!std::isfinite(v))
        v = 0;
    return fmt("%.17g", v);
}

std::string
jbool(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
configIdentityJson(const SystemConfig &cfg)
{
    std::string out = "{";
    out += "\"cores\": " + fmt("%d", cfg.cores);
    out += ", \"model\": " + jstr(to_string(cfg.model));
    out += ", \"ghz\": " + jnum(cfg.coreClockGhz);
    out += ", \"dram_gbps\": " + jnum(cfg.dram.bandwidthGBps);
    out += ", \"hw_prefetch\": " + jbool(cfg.hwPrefetch);
    out += ", \"prefetch_depth\": " +
           fmt("%u", unsigned(cfg.prefetchDepth));
    out += ", \"pfs\": " + jbool(cfg.pfsEnabled);
    out += ", \"quantum_cycles\": " +
           fmt("%llu", (unsigned long long)cfg.quantumCycles);
    out += ", \"line_bytes\": " + fmt("%u", unsigned(cfg.lineBytes));
    out += ", \"cluster_size\": " + fmt("%d", cfg.clusterSize);
    // Cache-policy identity: bench_compare refuses to diff artifacts
    // produced under different policies (same rationale as the
    // scale fields in toJson()).
    out += ", \"l1_replacement\": " +
           jstr(to_string(cfg.policy.l1Replacement));
    out += ", \"l2_replacement\": " +
           jstr(to_string(cfg.policy.l2Replacement));
    out += ", \"prefetch_policy\": " +
           jstr(to_string(cfg.policy.prefetch));
    out += ", \"bip_throttle\": " +
           fmt("%u", unsigned(cfg.policy.bipThrottle));
    out += "}";
    return out;
}

namespace
{

std::string
energyJson(const EnergyBreakdown &e)
{
    std::string out = "{";
    out += "\"core_mj\": " + jnum(e.coreMj);
    out += ", \"icache_mj\": " + jnum(e.icacheMj);
    out += ", \"dstore_mj\": " + jnum(e.dstoreMj);
    out += ", \"network_mj\": " + jnum(e.networkMj);
    out += ", \"l2_mj\": " + jnum(e.l2Mj);
    out += ", \"dram_mj\": " + jnum(e.dramMj);
    out += ", \"total_mj\": " + jnum(e.totalMj());
    out += "}";
    return out;
}

} // namespace

JobResult
runJobInProcess(const SweepJob &job, const SweepOptions &opts,
                const LogSink &log_sink)
{
    JobResult jr;
    jr.job = job;

    LogCapture capture;
    if (log_sink)
        capture.setSink(log_sink);
    double t0 = threadCpuSeconds();
    try {
        if (job.run) {
            jr.run = job.run();
        } else {
            // Per-job liveness budgets: fill in whatever the job's
            // own config left unset, so a single hung point cannot
            // stall the whole sweep.
            SystemConfig cfg = job.cfg;
            // Intra-run parallelism (hostThreads) composes with the
            // inter-job worker pool; cap the per-job thread count so
            // a multi-worker sweep doesn't fan out into
            // pool × hostThreads host threads. The CMPMEM_RUN_JOBS
            // mapping is resolved here (explicit config beats the
            // env, mirroring runWorkload) so the cap covers it too.
            // Stats are unaffected: runs are bit-identical at any
            // hostThreads value.
            if (cfg.hostThreads == 1) {
                if (const char *env =
                        std::getenv("CMPMEM_RUN_JOBS")) {
                    int n = std::atoi(env);
                    if (n > 1)
                        cfg.hostThreads = std::min(n, 256);
                }
            }
            const int pool = sweepWorkerCount(opts.jobs);
            if (pool > 1 && cfg.hostThreads > 1) {
                unsigned hw = std::thread::hardware_concurrency();
                cfg.hostThreads =
                    std::min(cfg.hostThreads,
                             std::max(1, int(hw ? hw : 1) / pool));
            }
            if (opts.jobMaxTicks && !cfg.watchdog.maxTicks)
                cfg.watchdog.maxTicks = opts.jobMaxTicks;
            if (opts.jobMaxHostSeconds > 0 &&
                cfg.watchdog.maxHostSeconds <= 0) {
                cfg.watchdog.maxHostSeconds = opts.jobMaxHostSeconds;
            }
            jr.run = runWorkload(job.workload, cfg, job.params);
        }
        jr.ran = true;
    } catch (const SimError &e) {
        jr.error = e.what();
        jr.errorKind = e.kindName();
        jr.diagnostic = e.diagnostic();
    } catch (const std::exception &e) {
        jr.error = e.what();
        jr.errorKind = "exception";
    } catch (...) {
        jr.error = "unknown exception";
        jr.errorKind = "exception";
    }
    // Custom-run jobs usually don't fill hostSeconds themselves;
    // charge them the thread CPU time spent here (see runner.hh for
    // why CPU time, not wall time).
    if (jr.run.hostSeconds == 0)
        jr.run.hostSeconds = threadCpuSeconds() - t0;
    jr.log = capture.drain();
    return jr;
}

// ---------------------------------------------------------------- //
// SweepSpec                                                        //
// ---------------------------------------------------------------- //

SweepSpec::SweepSpec(std::string name) : specName(std::move(name))
{
    if (specName.empty())
        fatal("sweep spec needs a non-empty name");
}

SweepSpec &
SweepSpec::base(const SystemConfig &cfg)
{
    baseCfg = cfg;
    return *this;
}

SweepSpec &
SweepSpec::baseParams(const WorkloadParams &p)
{
    baseprm = p;
    return *this;
}

SweepSpec &
SweepSpec::workloads(std::vector<std::string> names)
{
    workloadList = std::move(names);
    return *this;
}

SweepSpec &
SweepSpec::axis(std::string name, std::vector<AxisValue> values)
{
    if (values.empty())
        fatal("sweep %s: axis '%s' has no values", specName.c_str(),
              name.c_str());
    axes.push_back({std::move(name), std::move(values)});
    return *this;
}

SweepSpec &
SweepSpec::axis(std::string name, const std::vector<double> &values,
                std::function<void(SystemConfig &, double)> set,
                int label_precision)
{
    std::vector<AxisValue> vals;
    for (double v : values) {
        vals.push_back({fmtF(v, label_precision),
                        [set, v](SweepJob &job) { set(job.cfg, v); }});
    }
    return axis(std::move(name), std::move(vals));
}

SweepSpec &
SweepSpec::modelAxis(std::vector<MemModel> models)
{
    std::vector<AxisValue> vals;
    for (MemModel m : models) {
        vals.push_back({to_string(m),
                        [m](SweepJob &job) { job.cfg.model = m; }});
    }
    return axis("model", std::move(vals));
}

std::vector<PolicyPoint>
defaultPolicyPoints()
{
    using R = ReplacementPolicy;
    using P = PrefetchPolicy;
    return {
        {"lru", R::LRU, R::LRU, P::Stream, true},
        {"mip", R::MIP, R::MIP, P::Stream, true},
        {"lip", R::LIP, R::LIP, P::Stream, true},
        {"bip", R::BIP, R::BIP, P::Stream, true},
        {"markov", R::LRU, R::LRU, P::Markov, true},
        {"sbuf", R::LRU, R::LRU, P::StreamBuffer, true},
    };
}

SweepSpec &
SweepSpec::policyAxis(std::vector<PolicyPoint> pts)
{
    std::vector<AxisValue> vals;
    for (const PolicyPoint &pt : pts) {
        vals.push_back({pt.label, [pt](SweepJob &job) {
            job.cfg.policy.l1Replacement = pt.l1Replacement;
            job.cfg.policy.l2Replacement = pt.l2Replacement;
            job.cfg.policy.prefetch = pt.prefetch;
            // validate() rejects hwPrefetch under the streaming
            // model, so the request only lands on CC jobs; this is
            // why policyAxis must come after modelAxis.
            job.cfg.hwPrefetch =
                pt.hwPrefetch && job.cfg.model == MemModel::CC;
        }});
    }
    return axis("policy", std::move(vals));
}

SweepSpec &
SweepSpec::point(SweepJob job)
{
    points.push_back(std::move(job));
    return *this;
}

SweepSpec &
SweepSpec::baseline(SweepJob job)
{
    baselines.push_back(std::move(job));
    return *this;
}

std::vector<SweepJob>
SweepSpec::expand() const
{
    std::vector<SweepJob> jobs;

    std::vector<std::string> baselineIds;
    for (const auto &b : baselines) {
        baselineIds.push_back(b.id);
        jobs.push_back(b);
    }

    // Cross product: workloads (outermost) x axes in insertion
    // order, visited as a mixed-radix counter so expansion order is
    // deterministic and independent of axis value count.
    const std::vector<std::string> &wl =
        workloadList.empty() ? std::vector<std::string>{std::string()}
                             : workloadList;
    if (!axes.empty() || !workloadList.empty()) {
        // Mixed-radix counter over the axes; the last axis is the
        // innermost loop. Returns false once every combination has
        // been visited.
        auto increment = [this](std::vector<std::size_t> &idx) {
            for (std::size_t a = axes.size(); a-- > 0;) {
                if (++idx[a] < axes[a].values.size())
                    return true;
                idx[a] = 0;
            }
            return false;
        };
        for (const auto &w : wl) {
            std::vector<std::size_t> idx(axes.size(), 0);
            do {
                SweepJob job;
                job.cfg = baseCfg;
                job.params = baseprm;
                job.workload = w;
                job.deps = baselineIds;
                std::string id = w;
                if (!w.empty())
                    job.tags["workload"] = w;
                for (std::size_t a = 0; a < axes.size(); ++a) {
                    const AxisValue &v = axes[a].values[idx[a]];
                    if (!id.empty())
                        id += '/';
                    id += axes[a].name + '=' + v.label;
                    job.tags[axes[a].name] = v.label;
                    v.apply(job);
                }
                job.id = id;
                jobs.push_back(std::move(job));
            } while (increment(idx));
        }
    }

    for (const auto &p : points)
        jobs.push_back(p);

    return jobs;
}

// ---------------------------------------------------------------- //
// SweepResult                                                      //
// ---------------------------------------------------------------- //

SweepResult::SweepResult(std::string name,
                         std::vector<JobResult> job_results,
                         double wall_seconds, int workers)
    : sweepName(std::move(name)), results(std::move(job_results)),
      wallSecs(wall_seconds), nWorkers(workers)
{
    for (std::size_t i = 0; i < results.size(); ++i)
        index.emplace(results[i].job.id, i);
}

const JobResult *
SweepResult::find(const std::string &id) const
{
    auto it = index.find(id);
    return it == index.end() ? nullptr : &results[it->second];
}

const JobResult &
SweepResult::at(const std::string &id) const
{
    const JobResult *jr = find(id);
    if (!jr)
        fatal("sweep %s has no job '%s'", sweepName.c_str(),
              id.c_str());
    return *jr;
}

const RunResult &
SweepResult::runOf(const std::string &id) const
{
    return at(id).run;
}

bool
SweepResult::allRan() const
{
    for (const auto &jr : results)
        if (!jr.ran)
            return false;
    return true;
}

bool
SweepResult::allVerified() const
{
    for (const auto &jr : results)
        if (!jr.ran || !jr.run.verified)
            return false;
    return true;
}

double
SweepResult::serialSeconds() const
{
    double sum = 0;
    for (const auto &jr : results)
        sum += jr.run.hostSeconds;
    return sum;
}

double
SweepResult::speedup() const
{
    return wallSecs > 0 ? serialSeconds() / wallSecs : 1.0;
}

std::string
SweepResult::summary() const
{
    return fmt("sweep %s: %zu jobs on %d worker%s: %.2f s host CPU, "
               "%.2f s wall, speedup %.2fx",
               sweepName.c_str(), results.size(), nWorkers,
               nWorkers == 1 ? "" : "s", serialSeconds(), wallSecs,
               speedup());
}

std::string
SweepResult::toJson() const
{
    std::string out = "{\n";
    out += "  \"sweep\": " + jstr(sweepName) + ",\n";
    out += "  \"schema\": 2,\n";
    // The effective workload scale and micro-iteration divisor: the
    // two environment knobs that legitimately change simulated
    // stats, recorded so bench_compare can refuse to diff artifacts
    // produced under different sizings (DESIGN.md §14).
    out += "  \"scale\": " + fmt("%d", benchScale()) + ",\n";
    out += "  \"bench_scale_div\": " +
           fmt("%llu", (unsigned long long)benchScaleDivisor()) + ",\n";
    out += "  \"workers\": " + fmt("%d", nWorkers) + ",\n";
    out += "  \"wall_seconds\": " + jnum(wallSecs) + ",\n";
    out += "  \"serial_seconds\": " + jnum(serialSeconds()) + ",\n";
    out += "  \"speedup\": " + jnum(speedup()) + ",\n";
    out += "  \"all_verified\": " + jbool(allVerified()) + ",\n";
    out += "  \"results\": [";
    bool first = true;
    for (const auto &jr : results) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\n";
        out += "      \"id\": " + jstr(jr.job.id) + ",\n";
        out += "      \"workload\": " + jstr(jr.job.workload) + ",\n";
        out += "      \"variant\": " + jstr(jr.run.stats.variant) +
               ",\n";
        out += "      \"tags\": {";
        bool tfirst = true;
        for (const auto &[k, v] : jr.job.tags) {
            if (!tfirst)
                out += ", ";
            tfirst = false;
            out += jstr(k) + ": " + jstr(v);
        }
        out += "},\n";
        out += "      \"config\": " + configIdentityJson(jr.job.cfg) +
               ",\n";
        out += "      \"ran\": " + jbool(jr.ran) + ",\n";
        // Host-side dispatch bookkeeping, excluded from identity
        // comparison like host_seconds (DESIGN.md §16).
        out += "      \"attempts\": " + fmt("%d", jr.attempts) + ",\n";
        if (!jr.error.empty()) {
            out += "      \"error\": {\"kind\": " +
                   jstr(jr.errorKind.empty() ? "exception"
                                             : jr.errorKind) +
                   ", \"message\": " + jstr(jr.error);
            if (!jr.signal.empty())
                out += ", \"signal\": " + jstr(jr.signal);
            if (!jr.diagnostic.empty())
                out += ", \"diagnostic\": " + jstr(jr.diagnostic);
            out += "},\n";
        }
        out += "      \"verified\": " + jbool(jr.run.verified) + ",\n";
        out += "      \"host_seconds\": " + jnum(jr.run.hostSeconds) +
               ",\n";
        // Parallel-engine telemetry (DESIGN.md §17): host-side only,
        // excluded from identity comparison like host_seconds.
        out += "      \"host_threads\": " +
               fmt("%d", jr.run.stats.hostThreads) + ",\n";
        if (jr.run.stats.hostThreads > 1) {
            out += "      \"host_windows\": " +
                   fmt("%llu",
                       (unsigned long long)jr.run.stats.hostWindows) +
                   ",\n";
            out += "      \"host_parallel_windows\": " +
                   fmt("%llu", (unsigned long long)
                                   jr.run.stats.hostParallelWindows) +
                   ",\n";
            out += "      \"host_barrier_wait_seconds\": " +
                   jnum(jr.run.stats.hostBarrierWaitSeconds) + ",\n";
            out += "      \"host_shard_events\": [";
            bool sfirst = true;
            for (auto ev : jr.run.stats.hostShardEvents) {
                if (!sfirst)
                    out += ", ";
                sfirst = false;
                out += fmt("%llu", (unsigned long long)ev);
            }
            out += "],\n";
        }
        out += "      \"events_per_sec\": " + jnum(jr.run.eventsPerSec()) +
               ",\n";
        out += "      \"accesses_per_sec\": " +
               jnum(jr.run.accessesPerSec()) + ",\n";
        out += "      \"misses_per_sec\": " + jnum(jr.run.missesPerSec()) +
               ",\n";
        out += "      \"miss_path_allocs\": " +
               fmt("%llu",
                   (unsigned long long)jr.run.stats.missPathAllocs) +
               ",\n";
        out += "      \"stats\": " + jr.run.stats.toStatSet().toJson() +
               ",\n";
        out += "      \"stats_digest\": " +
               jstr(jr.run.stats.toStatSet().digest()) + ",\n";
        out += "      \"energy\": " + energyJson(jr.run.energy);
        if (!jr.log.empty())
            out += ",\n      \"log\": " + jstr(jr.log);
        out += "\n    }";
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
SweepResult::writeArtifact() const
{
    std::string path = artifactPath(sweepName);
    std::ofstream ofs(path, std::ios::trunc);
    if (!ofs) {
        warn("cannot write sweep artifact %s", path.c_str());
        return std::string();
    }
    ofs << toJson();
    return path;
}

// ---------------------------------------------------------------- //
// Executor                                                         //
// ---------------------------------------------------------------- //

int
sweepWorkerCount(int requested)
{
    int n = requested;
    if (n <= 0) {
        if (const char *env = std::getenv("CMPMEM_JOBS"))
            n = std::atoi(env);
    }
    if (n <= 0)
        n = int(std::thread::hardware_concurrency());
    return n > 0 ? n : 1;
}

std::string
artifactPath(const std::string &name)
{
    const char *dir = std::getenv("CMPMEM_ARTIFACT_DIR");
    std::string base = (dir && *dir) ? dir : ".";
    return base + "/BENCH_" + name + ".json";
}

std::string
journalPath(const std::string &name)
{
    const char *dir = std::getenv("CMPMEM_ARTIFACT_DIR");
    std::string base = (dir && *dir) ? dir : ".";
    return base + "/BENCH_" + name + ".journal.jsonl";
}

SweepResult
runJobs(std::string name, std::vector<SweepJob> jobs,
        const SweepOptions &opts)
{
    const std::size_t n = jobs.size();

    // Validate ids and dependencies; build the dependency graph.
    std::map<std::string, std::size_t> byId;
    for (std::size_t i = 0; i < n; ++i) {
        SweepJob &job = jobs[i];
        if (job.id.empty())
            fatal("sweep %s: job %zu has an empty id", name.c_str(), i);
        if (!byId.emplace(job.id, i).second)
            fatal("sweep %s: duplicate job id '%s'", name.c_str(),
                  job.id.c_str());
        if (job.workload.empty() && !job.run)
            fatal("sweep %s: job '%s' has neither a workload nor a "
                  "custom run function",
                  name.c_str(), job.id.c_str());
    }
    std::vector<int> remaining(n, 0);
    std::vector<std::vector<std::size_t>> dependents(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const auto &dep : jobs[i].deps) {
            auto it = byId.find(dep);
            if (it == byId.end())
                fatal("sweep %s: job '%s' depends on unknown job '%s'",
                      name.c_str(), jobs[i].id.c_str(), dep.c_str());
            if (it->second == i)
                fatal("sweep %s: job '%s' depends on itself",
                      name.c_str(), jobs[i].id.c_str());
            dependents[it->second].push_back(i);
            ++remaining[i];
        }
    }

    // Kahn's algorithm up front: reject cycles before spawning the
    // pool rather than deadlocking in it.
    {
        std::vector<int> rem = remaining;
        std::deque<std::size_t> q;
        for (std::size_t i = 0; i < n; ++i)
            if (rem[i] == 0)
                q.push_back(i);
        std::size_t seen = 0;
        while (!q.empty()) {
            std::size_t i = q.front();
            q.pop_front();
            ++seen;
            for (std::size_t d : dependents[i])
                if (--rem[d] == 0)
                    q.push_back(d);
        }
        if (seen != n)
            fatal("sweep %s: dependency cycle among its %zu jobs",
                  name.c_str(), n);
    }

    const int workers =
        int(std::min<std::size_t>(std::size_t(sweepWorkerCount(opts.jobs)),
                                  std::max<std::size_t>(n, 1)));

    // Resume: merge journaled completions before dispatch. load()
    // throws SimErrorKind::Config on identity mismatch — a changed
    // sweep must not silently absorb stale results.
    std::map<std::string, JobResult> resumed;
    if (opts.resume) {
        if (opts.journalPath.empty()) {
            warn("sweep %s: resume requested but no journal path is "
                 "set; running the full sweep",
                 name.c_str());
        } else {
            resumed = SweepJournal::load(opts.journalPath, name, jobs);
            if (!resumed.empty()) {
                inform("sweep %s: resuming — %zu of %zu jobs merged "
                       "from %s",
                       name.c_str(), resumed.size(), n,
                       opts.journalPath.c_str());
            }
        }
    }

    std::unique_ptr<SweepJournal> journal;
    if (!opts.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(
            opts.journalPath, name, /*fresh=*/!opts.resume);
    }

    const bool isolate = isolationEnabled(opts);

    std::vector<JobResult> results(n);
    std::vector<char> preloaded(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        auto it = resumed.find(jobs[i].id);
        if (it == resumed.end())
            continue;
        results[i] = std::move(it->second);
        preloaded[i] = 1;
    }

    auto wall0 = std::chrono::steady_clock::now();
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::size_t> ready;
        std::size_t completed = 0;
        // Journal-merged jobs are already complete: they satisfy
        // their dependents' ordering constraints without dispatch
        // (and their logs are not re-echoed).
        for (std::size_t i = 0; i < n; ++i) {
            if (!preloaded[i])
                continue;
            ++completed;
            for (std::size_t d : dependents[i])
                --remaining[d];
        }
        for (std::size_t i = 0; i < n; ++i)
            if (!preloaded[i] && remaining[i] == 0)
                ready.push_back(i);

        auto workerLoop = [&] {
            std::unique_lock<std::mutex> lock(m);
            for (;;) {
                cv.wait(lock, [&] {
                    return !ready.empty() || completed == n;
                });
                if (ready.empty())
                    return; // all jobs done
                std::size_t i = ready.front();
                ready.pop_front();
                lock.unlock();

                JobResult jr = isolate
                                   ? runJobSupervised(jobs[i], opts)
                                   : runJobInProcess(jobs[i], opts);
                // Journal before reporting: the record must be
                // durable by the time anything downstream can
                // observe the job as done (record() has its own
                // lock and fsyncs).
                if (journal && SweepJournal::eligible(jr))
                    journal->record(jr);
                if (opts.echoLogs && !jr.log.empty()) {
                    emitRaw("--- log from sweep job '" + jobs[i].id +
                            "' ---\n" + jr.log);
                }

                lock.lock();
                results[i] = std::move(jr);
                ++completed;
                // Dependencies are ordering constraints only: a
                // failed dependency does not cancel its dependents.
                for (std::size_t d : dependents[i])
                    if (--remaining[d] == 0)
                        ready.push_back(d);
                cv.notify_all();
            }
        };

        std::vector<std::jthread> pool;
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop);
        // jthreads join on destruction.
    }
    auto wall1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(wall1 - wall0).count();

    return SweepResult(std::move(name), std::move(results), wall,
                       workers);
}

SweepResult
runSweep(const SweepSpec &spec, const SweepOptions &opts)
{
    return runJobs(spec.name(), spec.expand(), opts);
}

} // namespace cmpmem
