/**
 * @file
 * Shared helpers for the reproduction benches: canonical
 * configurations (Table 2 defaults with one knob turned) and the
 * normalized execution-time breakdown of Figure 2.
 */

#ifndef CMPMEM_HARNESS_EXPERIMENT_HH
#define CMPMEM_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "system/config.hh"

namespace cmpmem
{

/**
 * A Table 2 configuration with the usual experiment knobs. Also
 * applies any process-wide bench overrides recorded by
 * parseBenchArgs() (fault injection, watchdog budget).
 */
SystemConfig makeConfig(int cores, MemModel model, double ghz = 0.8,
                        double dram_gbps = 3.2);

/**
 * Parse the common bench command-line flags and record them as
 * process-wide overrides that makeConfig() folds into every
 * configuration it hands out:
 *
 *   --faults[=SEED]      enable the stress fault-injection config
 *                        (stressFaultConfig) with the given seed
 *                        (default 1); see DESIGN.md section 11
 *   --watchdog-ticks=N   guard every run with an N-simulated-tick
 *                        liveness budget
 *   --isolate            run every job in a forked sandbox process
 *                        (same as CMPMEM_ISOLATE=1; DESIGN.md §16)
 *   --resume             merge completed jobs from the sweep's
 *                        write-ahead journal instead of re-running
 *                        them
 *   --retries=N          re-dispatch a crashed/timed-out sandbox up
 *                        to N extra times (default 1)
 *   --deadline=SECS      hard per-job wall-clock deadline enforced
 *                        with SIGKILL (isolation only; default none)
 *
 * Unknown arguments are fatal so typos don't silently run the
 * default experiment. Call it first thing in main().
 */
void parseBenchArgs(int argc, char **argv);

/**
 * Figure 2-style breakdown: each component is the per-core average
 * time in that category divided by @p baseline_ticks (the 1-core CC
 * execution time). The components sum to approximately the
 * normalized execution time of the run.
 */
struct NormBreakdown
{
    double useful = 0;
    double sync = 0;
    double load = 0;
    double store = 0;

    double total() const { return useful + sync + load + store; }
};

NormBreakdown normalizedBreakdown(const RunStats &rs,
                                  Tick baseline_ticks);

/** One row of a Figure 2-style chart, formatted. */
std::string breakdownCells(const NormBreakdown &b);

/**
 * Workload scale for bench binaries: reads the CMPMEM_SCALE
 * environment variable (default 1; 0 selects the tiny test inputs
 * for a quick pass).
 */
WorkloadParams benchParams();

/** The CMPMEM_SCALE in effect (default 1, 0 = smoke). */
int benchScale();

/**
 * Iteration divisor for the substrate microbenchmarks, from the
 * CMPMEM_BENCH_SCALE environment variable (default 1, clamped to at
 * least 1). Sanitized trees set it so the ctest "perf" entries fit
 * their TIMEOUT budget under ASan's ~10-20x slowdown; because it
 * changes iteration counts (and therefore simulated stats), the
 * value is recorded in every BENCH artifact and bench_compare
 * refuses to diff artifacts produced under different divisors.
 */
std::uint64_t benchScaleDivisor();

/**
 * @p base iterations scaled for the current environment:
 * base * max(1, 20 * CMPMEM_SCALE) / CMPMEM_BENCH_SCALE, clamped to
 * at least 1. The common sizing helper of micro_events/micro_access.
 */
std::uint64_t benchIters(std::uint64_t base);

/**
 * Bench epilogue: print the sweep's aggregate host-time and
 * speedup line (serial-sum vs wall-clock), write the
 * BENCH_<name>.json artifact, and return the process exit code
 * (0 unless a job failed to execute).
 */
int finishBench(const SweepResult &res);

/**
 * runSweep()/runJobs() with the process-wide bench options folded
 * in: --isolate/--resume/--retries/--deadline from parseBenchArgs(),
 * plus a write-ahead journal at journalPath(name) (fresh unless
 * resuming). A resume refusal (SimErrorKind::Config) is fatal()ed
 * with its message instead of escaping main(). Every bench main
 * calls these instead of the raw engine entry points.
 */
SweepResult runBenchSweep(const SweepSpec &spec, SweepOptions opts = {});
SweepResult runBenchJobs(const std::string &name,
                         std::vector<SweepJob> jobs,
                         SweepOptions opts = {});

} // namespace cmpmem

#endif // CMPMEM_HARNESS_EXPERIMENT_HH
