/**
 * @file
 * Plain-text table formatting for the bench binaries, which print
 * the same rows/series the paper's tables and figures report.
 */

#ifndef CMPMEM_HARNESS_TABLE_HH
#define CMPMEM_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace cmpmem
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Aligned, pipe-separated rendering with a rule under headers. */
    std::string format() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** printf-style helpers for cells. */
std::string fmt(const char *format, ...)
    __attribute__((format(printf, 1, 2)));

/** Fixed-precision double. */
std::string fmtF(double v, int precision = 2);

/** Percent with one decimal ("3.4%"). */
std::string fmtPct(double fraction);

} // namespace cmpmem

#endif // CMPMEM_HARNESS_TABLE_HH
