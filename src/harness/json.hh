/**
 * @file
 * Minimal JSON reader/writer for harness tooling.
 *
 * The sweep engine has always *written* BENCH_<name>.json artifacts;
 * the perf-regression gate (harness/bench_compare.hh) needs to read
 * them back, diff them, and annotate them — so this module provides
 * the missing half: a strict recursive-descent parser into an
 * ordered document tree, plus a serializer that round-trips doubles
 * exactly ("%.17g", the same convention the artifact writer uses).
 *
 * Scope is deliberately small: UTF-8 text, no comments, no trailing
 * commas, objects keep insertion order (duplicate keys are a parse
 * error). Every malformed or truncated input is rejected with a
 * SimErrorKind::Config error naming the line — a corrupt artifact
 * must fail the gate loudly, not quietly compare equal.
 */

#ifndef CMPMEM_HARNESS_JSON_HH
#define CMPMEM_HARNESS_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace cmpmem
{

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    /** Leaf constructors (tooling builds summaries with these). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    /**
     * Parse a complete JSON document; trailing non-whitespace (and
     * any other syntax error, including truncation) throws
     * SimErrorKind::Config with the offending line number.
     */
    static JsonValue parse(const std::string &text);

    /** parse() of a file's contents; unreadable files are Config errors. */
    static JsonValue parseFile(const std::string &path);

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    /** Typed accessors; a kind mismatch throws SimErrorKind::Config. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements (requires isArray()). */
    const std::vector<JsonValue> &items() const;
    std::vector<JsonValue> &items();

    /** Object members in insertion order (requires isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Member lookup; null when absent (requires isObject()). */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup; SimErrorKind::Config when absent. */
    const JsonValue &at(const std::string &key) const;
    JsonValue &at(const std::string &key);

    /** Insert or replace a member, preserving existing order. */
    void set(const std::string &key, JsonValue value);

    /** Append an array element (requires isArray()). */
    void append(JsonValue value);

    /**
     * Serialize. Nested containers indent by two spaces per level;
     * numbers print with "%.17g" so every double round-trips
     * bit-exactly through parse().
     */
    std::string dump() const;

    /**
     * Serialize onto a single line with no trailing newline — the
     * JSONL form used by the sweep journal and the supervisor's
     * result pipe. Same "%.17g" number convention as dump(), so the
     * two forms round-trip identically.
     */
    std::string dumpCompact() const;

  private:
    Kind k = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> elems;
    std::vector<std::pair<std::string, JsonValue>> fields;

    void dumpTo(std::string &out, int depth) const;
    void dumpCompactTo(std::string &out) const;
};

} // namespace cmpmem

#endif // CMPMEM_HARNESS_JSON_HH
