#include "harness/runner.hh"

#include <chrono>

#include "sim/log.hh"
#include "workloads/registry.hh"

namespace cmpmem
{

RunResult
runWorkload(const std::string &workload_name, const SystemConfig &cfg,
            const WorkloadParams &params)
{
    auto t0 = std::chrono::steady_clock::now();

    CmpSystem sys(cfg);
    auto workload = createWorkload(workload_name, params);
    workload->setup(sys);

    double mpki = workload->icacheMpki(sys.config());
    for (int i = 0; i < sys.cores(); ++i) {
        sys.core(i).icache().setMissesPerKiloInstr(mpki);
        sys.bindKernel(i, workload->kernel(sys.context(i)));
    }

    sys.simulate();

    RunResult result;
    result.stats = sys.collectStats();
    result.stats.workload = workload->name();
    result.stats.variant = workload->variant();
    result.energy = EnergyModel(cfg.energy).compute(result.stats);
    result.verified = workload->verify(sys);
    if (!result.verified)
        warn("workload %s/%s failed verification",
             workload->name().c_str(), workload->variant().c_str());

    auto t1 = std::chrono::steady_clock::now();
    result.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace cmpmem
