#include "harness/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>

#include "sim/log.hh"
#include "workloads/registry.hh"

namespace cmpmem
{

/*
 * Concurrency audit (the sweep engine runs many of these calls in
 * parallel, one per worker thread):
 *
 *  - CmpSystem owns every piece of mutable simulation state — the
 *    event queue, functional memory, caches, interconnect, DRAM
 *    channel, prefetchers, DMA engines, cores, and contexts are all
 *    members (or unique_ptr members) constructed per instance.
 *    Nothing in src/core, src/mem, src/stream, src/prefetch,
 *    src/check, or src/sim keeps namespace-scope mutable state.
 *  - The workload registry (workloads/registry.cc) is a constexpr
 *    factory table; createWorkload() allocates a fresh Workload, and
 *    each Workload's inputs/reference outputs live in that instance
 *    and the system's own FunctionalMemory.
 *  - RNG state (sim/rng.hh) is per-object and seeded from the
 *    config/params, never a process-wide generator.
 *  - Logging (sim/log.cc) is the one shared facility: the quiet
 *    flag is atomic, direct writes are serialized, and sweep
 *    workers capture per-run output via LogCapture (thread_local).
 *
 * Hence concurrent runWorkload() calls share no mutable state, and
 * per-point results are bit-identical to serial execution
 * (tests/test_sweep.cc and tests/test_determinism.cc assert this).
 */

double
threadCpuSeconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Calendar-geometry auto-tuning (SystemConfig::eq.autoTune): sample
 * the workload's event stream with a short bounded dry run under the
 * configured geometry, then let the queue recommend the bucket shift
 * for the real run. The dry run is deterministic (fixed tick budget,
 * same seeds), so the chosen geometry — and therefore everything the
 * artifact records — is reproducible.
 */
static std::uint32_t
tunedBucketShift(const std::string &workload_name, const SystemConfig &cfg,
                 const WorkloadParams &params)
{
    SystemConfig dry_cfg = cfg;
    dry_cfg.eq.autoTune = false;

    CmpSystem sys(dry_cfg);
    auto workload = createWorkload(workload_name, params);
    workload->setup(sys);
    double mpki = workload->icacheMpki(sys.config());
    for (int i = 0; i < sys.cores(); ++i) {
        sys.core(i).icache().setMissesPerKiloInstr(mpki);
        sys.bindKernel(i, workload->kernel(sys.context(i)));
    }
    sys.dryRun(cfg.eq.tuneDryRunTicks);
    return sys.eventQueue().recommendBucketShift(cfg.eq.tuneHotThreshold);
}

RunResult
runWorkload(const std::string &workload_name, const SystemConfig &cfg,
            const WorkloadParams &params)
{
    double t0 = threadCpuSeconds();
    auto w0 = std::chrono::steady_clock::now();

    SystemConfig run_cfg = cfg;
    // CMPMEM_RUN_JOBS maps onto hostThreads for single runs launched
    // from the CLI/bench scripts; an explicit config value wins.
    if (run_cfg.hostThreads == 1) {
        if (const char *env = std::getenv("CMPMEM_RUN_JOBS")) {
            int n = std::atoi(env);
            if (n > 1)
                run_cfg.hostThreads = std::min(n, 256);
        }
    }
    const bool parallel_run =
        std::min(run_cfg.hostThreads, run_cfg.cores) > 1;
    if (cfg.eq.autoTune) {
        run_cfg.eq.autoTune = false;
        run_cfg.eq.bucketShift =
            tunedBucketShift(workload_name, cfg, params);
    }

    CmpSystem sys(run_cfg);
    auto workload = createWorkload(workload_name, params);
    workload->setup(sys);

    double mpki = workload->icacheMpki(sys.config());
    for (int i = 0; i < sys.cores(); ++i) {
        sys.core(i).icache().setMissesPerKiloInstr(mpki);
        sys.bindKernel(i, workload->kernel(sys.context(i)));
    }

    sys.simulate();

    RunResult result;
    result.stats = sys.collectStats();
    result.stats.workload = workload->name();
    result.stats.variant = workload->variant();
    result.energy = EnergyModel(cfg.energy).compute(result.stats);
    result.verified = workload->verify(sys);
    if (!result.verified)
        warn("workload %s/%s failed verification",
             workload->name().c_str(), workload->variant().c_str());

    // Parallel runs bill wall time: worker-thread CPU is real cost
    // that the calling thread's CPU clock never sees, and the
    // events/sec figure should reflect the actual speedup.
    result.hostSeconds =
        parallel_run
            ? std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - w0)
                  .count()
            : threadCpuSeconds() - t0;
    return result;
}

} // namespace cmpmem
