#include "harness/experiment.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "harness/table.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

/** Process-wide overrides from parseBenchArgs(). */
FaultConfig benchFaults;
WatchdogConfig benchWatchdog;
bool benchIsolate = false;
bool benchResume = false;
int benchRetries = 1;
double benchDeadline = 0;

} // namespace

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--faults") == 0) {
            benchFaults = stressFaultConfig(1);
        } else if (std::strncmp(arg, "--faults=", 9) == 0) {
            benchFaults = stressFaultConfig(
                std::strtoull(arg + 9, nullptr, 0));
        } else if (std::strncmp(arg, "--watchdog-ticks=", 17) == 0) {
            benchWatchdog.maxTicks =
                std::strtoull(arg + 17, nullptr, 0);
        } else if (std::strcmp(arg, "--isolate") == 0) {
            benchIsolate = true;
        } else if (std::strcmp(arg, "--resume") == 0) {
            benchResume = true;
        } else if (std::strncmp(arg, "--retries=", 10) == 0) {
            benchRetries = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--deadline=", 11) == 0) {
            benchDeadline = std::strtod(arg + 11, nullptr);
        } else {
            fatal("%s: unknown argument '%s' (supported: "
                  "--faults[=SEED], --watchdog-ticks=N, --isolate, "
                  "--resume, --retries=N, --deadline=SECS)",
                  argv[0], arg);
        }
    }
}

SystemConfig
makeConfig(int cores, MemModel model, double ghz, double dram_gbps)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.model = model;
    cfg.coreClockGhz = ghz;
    cfg.dram.bandwidthGBps = dram_gbps;
    cfg.faults = benchFaults;
    cfg.watchdog = benchWatchdog;
    return cfg;
}

NormBreakdown
normalizedBreakdown(const RunStats &rs, Tick baseline_ticks)
{
    NormBreakdown b;
    if (baseline_ticks == 0 || rs.perCore.empty())
        return b;
    double denom =
        double(baseline_ticks) * double(rs.perCore.size());
    // Idle tail (a core finishing before the slowest) counts as
    // sync, as a barrier at program end would.
    double idle = 0;
    for (const auto &cs : rs.perCore) {
        b.useful += double(cs.usefulTicks) / denom;
        b.sync += double(cs.syncTicks) / denom;
        b.load += double(cs.loadStallTicks) / denom;
        b.store += double(cs.storeStallTicks) / denom;
        idle += double(rs.execTicks - cs.totalTicks()) / denom;
    }
    b.sync += idle;
    return b;
}

WorkloadParams
benchParams()
{
    WorkloadParams params;
    params.scale = benchScale();
    return params;
}

int
benchScale()
{
    if (const char *env = std::getenv("CMPMEM_SCALE"))
        return std::atoi(env);
    return 1;
}

std::uint64_t
benchScaleDivisor()
{
    if (const char *env = std::getenv("CMPMEM_BENCH_SCALE")) {
        long long v = std::atoll(env);
        if (v > 1)
            return std::uint64_t(v);
    }
    return 1;
}

std::uint64_t
benchIters(std::uint64_t base)
{
    const int scale = benchScale();
    const std::uint64_t factor = scale <= 0 ? 1 : 20 * std::uint64_t(scale);
    const std::uint64_t iters = base * factor / benchScaleDivisor();
    return iters ? iters : 1;
}

SweepResult
runBenchJobs(const std::string &name, std::vector<SweepJob> jobs,
             SweepOptions opts)
{
    if (benchIsolate)
        opts.isolate = SweepIsolate::On;
    if (benchResume)
        opts.resume = true;
    if (benchRetries > 0 && opts.maxRetries == 0)
        opts.maxRetries = benchRetries;
    if (benchDeadline > 0 && opts.jobDeadlineSeconds <= 0)
        opts.jobDeadlineSeconds = benchDeadline;
    if (opts.journalPath.empty())
        opts.journalPath = journalPath(name);
    try {
        return runJobs(name, std::move(jobs), opts);
    } catch (const SimError &e) {
        // Resume refusal (journal identity mismatch) and similar
        // harness-level Config errors: CLI misuse, not a bug.
        fatal("%s", e.what());
    }
}

SweepResult
runBenchSweep(const SweepSpec &spec, SweepOptions opts)
{
    return runBenchJobs(spec.name(), spec.expand(), std::move(opts));
}

int
finishBench(const SweepResult &res)
{
    std::printf("\n%s\n", res.summary().c_str());
    std::string path = res.writeArtifact();
    if (!path.empty())
        std::printf("artifact: %s\n", path.c_str());
    return res.allRan() ? 0 : 1;
}

std::string
breakdownCells(const NormBreakdown &b)
{
    return fmt("total=%.3f useful=%.3f sync=%.3f load=%.3f store=%.3f",
               b.total(), b.useful, b.sync, b.load, b.store);
}

} // namespace cmpmem
