/**
 * @file
 * Process-sandboxed job execution and the write-ahead sweep journal
 * (DESIGN.md §16).
 *
 * The sweep engine's failure isolation (SimError per job) only
 * covers failures that *throw*. A SIGSEGV, sanitizer abort, OOM
 * kill, or a host loop that wedges without simulating takes down the
 * whole process — every sibling's finished work with it. The
 * supervisor closes that gap with a process boundary per job:
 *
 *   parent (pool worker)                child (fork)
 *   --------------------                ------------
 *   fork(), close write end            close read end
 *   poll() read end with a             runJobInProcess(job)
 *     hard wall-clock deadline           - streams captured log
 *   on deadline: SIGKILL                   lines as 'L' frames
 *   read 'L'/'R' frames to EOF           - serializes the full
 *   waitpid(), classify:                   JobResult as one 'R'
 *     result frame  -> decoded result      frame (exact %.17g
 *     WIFSIGNALED   -> Crash + signal      double round-trip)
 *     nonzero exit  -> Crash             _exit(0)
 *     deadline kill -> Timeout
 *   crash/timeout: re-dispatch up to
 *     SweepOptions::maxRetries with
 *     bounded linear backoff
 *
 * Because the child reports raw RunStats fields (not a rendered
 * table), a sandboxed job's artifact entry — stats, digest, energy —
 * is bit-identical to in-process execution; tests/test_supervisor.cc
 * pins serial == parallel == isolated.
 *
 * The journal is the durability half: one fsynced JSONL record per
 * completed job, keyed by job id + config identity + stats digest.
 * A sweep killed at any point (including mid-write: a torn trailing
 * line is discarded) resumes by merging journaled completions and
 * re-running only the rest, producing the exact artifact an
 * uninterrupted run would have. This fork/classify/re-dispatch/
 * journal shape is deliberately the worker half of the ROADMAP's
 * distributed-sweep coordinator.
 */

#ifndef CMPMEM_HARNESS_SUPERVISOR_HH
#define CMPMEM_HARNESS_SUPERVISOR_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/sweep.hh"

namespace cmpmem
{

/** Resolve SweepOptions::isolate (Env reads CMPMEM_ISOLATE). */
bool isolationEnabled(const SweepOptions &opts);

/**
 * Run one job in a forked, supervised child, re-dispatching on
 * crash/timeout per opts.maxRetries. Falls back to in-process
 * execution (with a warning) if fork/pipe themselves fail. Never
 * throws; sandbox death is recorded in the returned JobResult
 * (errorKind "crash"/"timeout", signal name, attempts).
 */
JobResult runJobSupervised(const SweepJob &job, const SweepOptions &opts);

/**
 * Serialize a JobResult — raw RunStats (scalars, per-core, fabric,
 * fault counters), energy, outcome, and optionally the captured log
 * — as a JSON object that jobResultFromJson() restores bit-exactly.
 * Shared by the child->parent result pipe and the journal.
 */
JsonValue jobResultToJson(const JobResult &jr, bool include_log);

/**
 * Restore the codec fields of @p jr (everything except jr.job,
 * which the caller owns) from @p doc. Missing or mistyped members
 * throw SimErrorKind::Config.
 */
void jobResultFromJson(const JsonValue &doc, JobResult &jr);

/**
 * Append-only write-ahead journal of completed jobs.
 *
 * File layout (JSONL): a header line carrying the sweep identity
 * {journal, schema, scale, bench_scale_div}, then one record per
 * completed job {id, config, stats_digest, result}. Each record is
 * written under a lock and fsynced before record() returns, so a
 * record either exists completely or is a torn trailing line the
 * loader discards.
 */
class SweepJournal
{
  public:
    /**
     * Open @p path for appending (@p fresh truncates first) and
     * write the header if the file is empty. An unopenable path
     * disables journaling with a warning rather than failing the
     * sweep (the journal is an optimization for re-runs, not a
     * correctness requirement of this run).
     */
    SweepJournal(const std::string &path, const std::string &sweep_name,
                 bool fresh);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    bool ok() const { return fd >= 0; }

    /** Append one fsynced record for @p jr (thread-safe). */
    void record(const JobResult &jr);

    /**
     * Whether @p jr is worth journaling: completed runs and
     * deterministic SimError failures (which would fail identically
     * on re-run) are; crashes and timeouts are not — resume must
     * re-attempt those.
     */
    static bool eligible(const JobResult &jr);

    /**
     * Parse @p path for resume: journaled completions for jobs in
     * @p jobs, keyed by id. Duplicate ids take the last complete
     * record; a torn/corrupt trailing line is discarded with a
     * warning (that job re-runs); a missing or empty journal returns
     * no entries. Refuses with SimErrorKind::Config when the header
     * identity (sweep name, schema, scale, bench_scale_div) or a
     * record's config identity does not match the spec — a changed
     * sweep definition must not silently merge stale results.
     */
    static std::map<std::string, JobResult>
    load(const std::string &path, const std::string &sweep_name,
         const std::vector<SweepJob> &jobs);

  private:
    void writeLine(const std::string &line);

    std::mutex m;
    std::string path_;
    int fd = -1;
};

} // namespace cmpmem

#endif // CMPMEM_HARNESS_SUPERVISOR_HH
