#include "harness/bench_compare.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "harness/table.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

double
numberField(const JsonValue &job, const std::string &name)
{
    const JsonValue *v = job.find(name);
    return v && v->isNumber() ? v->asNumber() : 0.0;
}

std::map<std::string, const JsonValue *>
jobIndex(const JsonValue &artifact)
{
    std::map<std::string, const JsonValue *> index;
    for (const JsonValue &job : artifact.at("results").items()) {
        const std::string &id = job.at("id").asString();
        if (!index.emplace(id, &job).second)
            throwSimError(SimErrorKind::Config,
                          "artifact for sweep %s lists job '%s' twice",
                          artifact.at("sweep").asString().c_str(),
                          id.c_str());
    }
    return index;
}

/**
 * Validate one artifact's envelope and check it is comparable with
 * the baseline: same sweep, same schema, same sizing knobs.
 */
void
checkEnvelope(const JsonValue &baseline, const JsonValue &artifact,
              const char *role)
{
    double schema = artifact.at("schema").asNumber();
    if (schema != 2) {
        throwSimError(SimErrorKind::Config,
                      "%s artifact has schema %g; bench_compare "
                      "understands schema 2 (regenerate the baseline "
                      "with scripts/check.sh --update-baselines)",
                      role, schema);
    }
    const std::string &sweep = artifact.at("sweep").asString();
    const std::string &base_sweep = baseline.at("sweep").asString();
    if (sweep != base_sweep) {
        throwSimError(SimErrorKind::Config,
                      "%s artifact is for sweep '%s', baseline is "
                      "'%s'", role, sweep.c_str(), base_sweep.c_str());
    }
    for (const char *knob : {"scale", "bench_scale_div"}) {
        double b = baseline.at(knob).asNumber();
        double f = artifact.at(knob).asNumber();
        if (b != f) {
            throwSimError(SimErrorKind::Config,
                          "refusing to compare sweep %s: %s artifact "
                          "ran at %s=%g but the baseline was produced "
                          "at %s=%g (different sizings legitimately "
                          "change simulated stats)",
                          sweep.c_str(), role, knob, f, knob, b);
        }
    }
}

/** Median of a non-empty sample (average of middles when even). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

class Comparer
{
  public:
    Comparer(const JsonValue &baseline,
             const std::vector<JsonValue> &fresh,
             const CompareOptions &opts)
        : base(baseline), repeats(fresh), options(opts)
    {
    }

    CompareReport
    run()
    {
        if (repeats.empty())
            throwSimError(SimErrorKind::Config,
                          "bench_compare needs at least one fresh "
                          "artifact");
        checkEnvelope(base, base, "baseline");
        for (const JsonValue &f : repeats)
            checkEnvelope(base, f, "fresh");

        report.sweep = base.at("sweep").asString();
        report.repeats = repeats.size();
        report.hostMode = options.hostMode;
        report.hostTolerance = options.hostTolerance;

        const auto baseJobs = jobIndex(base);
        report.jobsCompared = baseJobs.size();

        for (std::size_t r = 0; r < repeats.size(); ++r) {
            const auto freshJobs = jobIndex(repeats[r]);
            for (const auto &[id, bjob] : baseJobs) {
                auto it = freshJobs.find(id);
                if (it == freshJobs.end()) {
                    identity(id, "(job)",
                             fmt("missing from fresh repeat %zu", r));
                    continue;
                }
                compareJob(id, *bjob, *it->second);
            }
            for (const auto &[id, fjob] : freshJobs) {
                (void)fjob;
                if (!baseJobs.count(id) && noted.insert(id).second) {
                    report.notes.push_back(
                        fmt("job '%s' is new (not in baseline); "
                            "extend the baseline to cover it",
                            id.c_str()));
                }
            }
        }

        if (options.hostMode != HostMode::Off) {
            for (const auto &[id, bjob] : baseJobs)
                compareHost(id, *bjob);
        }
        return std::move(report);
    }

  private:
    const JsonValue &base;
    const std::vector<JsonValue> &repeats;
    const CompareOptions &options;
    CompareReport report;
    std::set<std::string> seen;  ///< (job, metric) already reported
    std::set<std::string> noted; ///< new-job ids already noted

    /** Record an identity issue once per (job, metric) pair. */
    void
    identity(const std::string &job, const std::string &metric,
             std::string detail)
    {
        if (!seen.insert(job + '\n' + metric).second)
            return;
        report.identity.push_back({job, metric, std::move(detail)});
    }

    void
    compareJob(const std::string &id, const JsonValue &bjob,
               const JsonValue &fjob)
    {
        for (const char *flag : {"ran", "verified"}) {
            bool b = bjob.at(flag).asBool();
            bool f = fjob.at(flag).asBool();
            if (b != f) {
                identity(id, flag,
                         fmt("baseline %s, fresh %s",
                             b ? "true" : "false",
                             f ? "true" : "false"));
            }
        }
        compareScalars(id, "stats", bjob.at("stats"),
                       fjob.at("stats"));
        compareScalars(id, "energy", bjob.at("energy"),
                       fjob.at("energy"));
        const std::string &bd = bjob.at("stats_digest").asString();
        const std::string &fd = fjob.at("stats_digest").asString();
        if (bd != fd)
            identity(id, "stats_digest",
                     "baseline " + bd + ", fresh " + fd);
        compareConfig(id, bjob.at("config"), fjob.at("config"));
    }

    /**
     * Per-field config comparison. Cache-policy fields get a hard
     * refusal (throwSimError) rather than an identity issue: a
     * cross-policy diff is a category error — every stat would
     * "regress", drowning real findings — exactly like the scale
     * refusal in checkEnvelope(). Other field mismatches are
     * reported per field so the report names what drifted.
     */
    void
    compareConfig(const std::string &id, const JsonValue &bcfg,
                  const JsonValue &fcfg)
    {
        static const std::set<std::string> policyFields = {
            "l1_replacement", "l2_replacement", "prefetch_policy",
            "bip_throttle"};

        auto render = [](const JsonValue &v) {
            return v.isString() ? v.asString() : v.dump();
        };

        for (const auto &[name, bval] : bcfg.members()) {
            const JsonValue *fval = fcfg.find(name);
            std::string bs = render(bval);
            if (fval && bval.dump() == fval->dump())
                continue;
            if (policyFields.count(name)) {
                throwSimError(
                    SimErrorKind::Config,
                    "refusing to compare job '%s': cache-policy "
                    "field '%s' differs (baseline %s, fresh %s) — "
                    "policy changes legitimately change simulated "
                    "stats, so diff within one policy point instead",
                    id.c_str(), name.c_str(), bs.c_str(),
                    fval ? render(*fval).c_str() : "(absent)");
            }
            identity(id, "config." + name,
                     fval ? fmt("baseline %s, fresh %s", bs.c_str(),
                                render(*fval).c_str())
                          : "present in baseline, missing from fresh");
        }
        for (const auto &[name, fval] : fcfg.members()) {
            if (bcfg.find(name))
                continue;
            if (policyFields.count(name)) {
                throwSimError(
                    SimErrorKind::Config,
                    "refusing to compare job '%s': cache-policy "
                    "field '%s' is absent from the baseline (fresh "
                    "%s) — regenerate baselines with scripts/"
                    "check.sh --update-baselines",
                    id.c_str(), name.c_str(),
                    render(fval).c_str());
            }
            identity(id, "config." + name,
                     "missing from baseline, present in fresh");
        }
    }

    /** Bit-identity over a flat {name: number} object, both ways. */
    void
    compareScalars(const std::string &id, const std::string &group,
                   const JsonValue &bobj, const JsonValue &fobj)
    {
        for (const auto &[name, bval] : bobj.members()) {
            const JsonValue *fval = fobj.find(name);
            if (!fval) {
                identity(id, group + '.' + name,
                         "present in baseline, missing from fresh");
                continue;
            }
            if (bval.asNumber() != fval->asNumber()) {
                identity(id, group + '.' + name,
                         fmt("baseline %.17g, fresh %.17g",
                             bval.asNumber(), fval->asNumber()));
            }
        }
        for (const auto &[name, fval] : fobj.members()) {
            (void)fval;
            if (!bobj.find(name)) {
                identity(id, group + '.' + name,
                         "missing from baseline, present in fresh");
            }
        }
    }

    /**
     * Median fresh throughput vs baseline. Higher is better for both
     * guarded rates; a job the baseline recorded as idle (rate 0) is
     * not guarded.
     */
    void
    compareHost(const std::string &id, const JsonValue &bjob)
    {
        for (const char *rate : {"events_per_sec", "accesses_per_sec",
                                 "misses_per_sec"}) {
            double b = numberField(bjob, rate);
            if (b <= 0)
                continue;
            std::vector<double> samples;
            for (const JsonValue &f : repeats) {
                for (const JsonValue &fjob :
                     f.at("results").items()) {
                    if (fjob.at("id").asString() == id)
                        samples.push_back(numberField(fjob, rate));
                }
            }
            if (samples.empty())
                continue;
            double m = median(samples);
            if (m < b * (1.0 - options.hostTolerance)) {
                report.host.push_back(
                    {id, rate,
                     fmt("median %.3g over %zu repeat%s vs baseline "
                         "%.3g (-%.1f%%, tolerance %.0f%%)",
                         m, samples.size(),
                         samples.size() == 1 ? "" : "s", b,
                         100.0 * (1.0 - m / b),
                         100.0 * options.hostTolerance)});
            }
        }
    }
};

} // namespace

HostMode
parseHostMode(const std::string &s)
{
    if (s == "strict")
        return HostMode::Strict;
    if (s == "warn")
        return HostMode::Warn;
    if (s == "off")
        return HostMode::Off;
    throwSimError(SimErrorKind::Config,
                  "unknown host mode '%s' (want strict, warn, or off)",
                  s.c_str());
}

int
CompareReport::exitCode() const
{
    if (!identity.empty())
        return 1;
    if (!host.empty() && hostMode == HostMode::Strict)
        return 3;
    return 0;
}

std::string
CompareReport::format() const
{
    std::string out =
        fmt("bench_compare %s: %zu job%s x %zu repeat%s vs baseline\n",
            sweep.c_str(), jobsCompared, jobsCompared == 1 ? "" : "s",
            repeats, repeats == 1 ? "" : "s");
    for (const CompareIssue &i : identity) {
        out += fmt("  IDENTITY %s %s: %s\n", i.jobId.c_str(),
                   i.metric.c_str(), i.detail.c_str());
    }
    for (const CompareIssue &i : host) {
        const char *tag = hostMode == HostMode::Strict ? "HOST"
                                                       : "HOST(warn)";
        out += fmt("  %s %s %s: %s\n", tag, i.jobId.c_str(),
                   i.metric.c_str(), i.detail.c_str());
    }
    for (const std::string &n : notes)
        out += "  note: " + n + '\n';
    if (identity.empty() && host.empty())
        out += "  OK: simulated stats bit-identical, host throughput "
               "within tolerance\n";
    return out;
}

JsonValue
CompareReport::toJson() const
{
    auto issueArray = [](const std::vector<CompareIssue> &issues) {
        JsonValue arr = JsonValue::makeArray();
        for (const CompareIssue &i : issues) {
            JsonValue o = JsonValue::makeObject();
            o.set("job", JsonValue::makeString(i.jobId));
            o.set("metric", JsonValue::makeString(i.metric));
            o.set("detail", JsonValue::makeString(i.detail));
            arr.append(std::move(o));
        }
        return arr;
    };

    JsonValue o = JsonValue::makeObject();
    o.set("sweep", JsonValue::makeString(sweep));
    o.set("repeats", JsonValue::makeNumber(double(repeats)));
    o.set("jobs", JsonValue::makeNumber(double(jobsCompared)));
    const char *mode = hostMode == HostMode::Strict ? "strict"
                       : hostMode == HostMode::Warn ? "warn"
                                                    : "off";
    o.set("host_mode", JsonValue::makeString(mode));
    o.set("host_tolerance", JsonValue::makeNumber(hostTolerance));
    o.set("identity_clean", JsonValue::makeBool(identity.empty()));
    o.set("host_clean", JsonValue::makeBool(host.empty()));
    o.set("exit_code", JsonValue::makeNumber(double(exitCode())));
    o.set("identity", issueArray(identity));
    o.set("host", issueArray(host));
    JsonValue narr = JsonValue::makeArray();
    for (const std::string &n : notes)
        narr.append(JsonValue::makeString(n));
    o.set("notes", std::move(narr));
    return o;
}

CompareReport
compareArtifacts(const JsonValue &baseline,
                 const std::vector<JsonValue> &fresh,
                 const CompareOptions &opts)
{
    return Comparer(baseline, fresh, opts).run();
}

void
annotateArtifact(const std::string &path, const CompareReport &report)
{
    JsonValue doc = JsonValue::parseFile(path);
    doc.set("compare", report.toJson());
    std::ofstream ofs(path, std::ios::trunc);
    if (!ofs)
        throwSimError(SimErrorKind::Config,
                      "cannot rewrite artifact %s", path.c_str());
    ofs << doc.dump();
}

} // namespace cmpmem
