#include "harness/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

/**
 * Recursive-descent parser over the whole document. Tracks the
 * current line so error messages point somewhere useful in a
 * multi-hundred-line artifact.
 */
class Parser
{
  public:
    explicit Parser(const std::string &src) : s(src) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after the top-level value");
        return v;
    }

  private:
    const std::string &s;
    std::size_t pos = 0;
    int line = 1;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throwSimError(SimErrorKind::Config,
                      "JSON parse error at line %d: %s", line,
                      what.c_str());
    }

    void
    skipWs()
    {
        while (pos < s.size()) {
            char c = s[pos];
            if (c == '\n')
                ++line;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (pos >= s.size() || s[pos] != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = 0;
        while (w[n])
            ++n;
        if (s.compare(pos, n, w) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return JsonValue::makeString(string());
          case 't':
            if (consumeWord("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null"))
                return JsonValue::makeNull();
            fail("invalid literal");
          default: return number();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected a quoted object key");
            std::string key = string();
            if (obj.find(key))
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            obj.set(key, value());
            skipWs();
            char c = peek();
            ++pos;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.append(value());
            skipWs();
            char c = peek();
            ++pos;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline inside a string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape sequence");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default: fail("invalid escape sequence");
            }
        }
    }

    std::string
    unicodeEscape()
    {
        if (pos + 4 > s.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = s[pos++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= unsigned(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        // Encode as UTF-8. Surrogate pairs are not combined — the
        // artifact writer only ever emits \u00xx control escapes.
        std::string out;
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
        return out;
    }

    JsonValue
    number()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               ((s[pos] >= '0' && s[pos] <= '9') || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        const std::string tok = s.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(v))
            fail("malformed number \"" + tok + "\"");
        return JsonValue::makeNumber(v);
    }
};

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.k = Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.k = Kind::Number;
    v.number = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.k = Kind::String;
    v.text = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.k = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.k = Kind::Object;
    return v;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).document();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throwSimError(SimErrorKind::Config, "cannot read %s",
                      path.c_str());
    std::ostringstream ss;
    ss << ifs.rdbuf();
    try {
        return parse(ss.str());
    } catch (const SimError &e) {
        throwSimError(SimErrorKind::Config, "%s: %s", path.c_str(),
                      e.what());
    }
}

bool
JsonValue::asBool() const
{
    if (k != Kind::Bool)
        throwSimError(SimErrorKind::Config, "JSON value is not a bool");
    return boolean;
}

double
JsonValue::asNumber() const
{
    if (k != Kind::Number)
        throwSimError(SimErrorKind::Config, "JSON value is not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (k != Kind::String)
        throwSimError(SimErrorKind::Config, "JSON value is not a string");
    return text;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (k != Kind::Array)
        throwSimError(SimErrorKind::Config, "JSON value is not an array");
    return elems;
}

std::vector<JsonValue> &
JsonValue::items()
{
    if (k != Kind::Array)
        throwSimError(SimErrorKind::Config, "JSON value is not an array");
    return elems;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (k != Kind::Object)
        throwSimError(SimErrorKind::Config, "JSON value is not an object");
    return fields;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (k != Kind::Object)
        throwSimError(SimErrorKind::Config, "JSON value is not an object");
    for (const auto &[name, value] : fields)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throwSimError(SimErrorKind::Config,
                      "JSON object has no member \"%s\"", key.c_str());
    return *v;
}

JsonValue &
JsonValue::at(const std::string &key)
{
    return const_cast<JsonValue &>(
        static_cast<const JsonValue &>(*this).at(key));
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    if (k != Kind::Object)
        throwSimError(SimErrorKind::Config, "JSON value is not an object");
    for (auto &[name, existing] : fields) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    fields.emplace_back(key, std::move(value));
}

void
JsonValue::append(JsonValue value)
{
    if (k != Kind::Array)
        throwSimError(SimErrorKind::Config, "JSON value is not an array");
    elems.push_back(std::move(value));
}

void
JsonValue::dumpTo(std::string &out, int depth) const
{
    const std::string pad(2 * std::size_t(depth + 1), ' ');
    const std::string close(2 * std::size_t(depth), ' ');
    switch (k) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number);
        out += buf;
        break;
      }
      case Kind::String:
        escapeTo(out, text);
        break;
      case Kind::Array:
        if (elems.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < elems.size(); ++i) {
            out += pad;
            elems[i].dumpTo(out, depth + 1);
            out += i + 1 < elems.size() ? ",\n" : "\n";
        }
        out += close + "]";
        break;
      case Kind::Object:
        if (fields.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < fields.size(); ++i) {
            out += pad;
            escapeTo(out, fields[i].first);
            out += ": ";
            fields[i].second.dumpTo(out, depth + 1);
            out += i + 1 < fields.size() ? ",\n" : "\n";
        }
        out += close + "}";
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

void
JsonValue::dumpCompactTo(std::string &out) const
{
    switch (k) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number);
        out += buf;
        break;
      }
      case Kind::String:
        escapeTo(out, text);
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < elems.size(); ++i) {
            if (i)
                out += ", ";
            elems[i].dumpCompactTo(out);
        }
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i)
                out += ", ";
            escapeTo(out, fields[i].first);
            out += ": ";
            fields[i].second.dumpCompactTo(out);
        }
        out += '}';
        break;
    }
}

std::string
JsonValue::dumpCompact() const
{
    std::string out;
    dumpCompactTo(out);
    return out;
}

} // namespace cmpmem
