#include "harness/table.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace cmpmem
{

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::format() const
{
    std::vector<std::size_t> widths(head.size(), 0);
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            line += c == 0 ? "" : " | ";
            line += cell;
            line.append(widths[c] - cell.size(), ' ');
        }
        line += "\n";
        return line;
    };

    std::string out = renderRow(head);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 3 : 0);
    out.append(total, '-');
    out += "\n";
    for (const auto &row : rows)
        out += renderRow(row);
    return out;
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    std::va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

std::string
fmtF(double v, int precision)
{
    return fmt("%.*f", precision, v);
}

std::string
fmtPct(double fraction)
{
    return fmt("%.2f%%", fraction * 100.0);
}

} // namespace cmpmem
