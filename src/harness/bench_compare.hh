/**
 * @file
 * The perf-regression gate: diff fresh BENCH_<name>.json sweep
 * artifacts against a committed baseline (DESIGN.md §14).
 *
 * Two classes of fields, two rules:
 *
 *  - Simulated results ("stats", "stats_digest", "energy", "config",
 *    "ran", "verified", job membership) must be bit-identical. They
 *    are deterministic functions of the configuration, so any drift
 *    is a correctness change that must be reviewed (and the baseline
 *    regenerated deliberately via scripts/check.sh
 *    --update-baselines).
 *
 *  - Host-time-derived fields ("host_seconds", "events_per_sec",
 *    "accesses_per_sec", plus the sweep-level wall/serial/speedup
 *    aggregates) are excluded from identity — they vary run to run —
 *    but throughput is still guarded: the gate takes the median over
 *    the fresh repeats it is given and flags any job whose
 *    events/sec or accesses/sec dropped more than the tolerance
 *    (default 10%) below baseline. Feeding 3+ repeats is the noise
 *    guard; a single outlier cannot move the median.
 *
 * Artifacts record the two environment knobs that legitimately
 * change simulated stats ("scale" = CMPMEM_SCALE, "bench_scale_div"
 * = CMPMEM_BENCH_SCALE); comparing across different sizings is
 * refused outright rather than reported as a regression.
 */

#ifndef CMPMEM_HARNESS_BENCH_COMPARE_HH
#define CMPMEM_HARNESS_BENCH_COMPARE_HH

#include <string>
#include <vector>

#include "harness/json.hh"

namespace cmpmem
{

/** How host-throughput regressions affect the verdict/exit code. */
enum class HostMode
{
    Strict, ///< a flagged regression fails the gate (exit 3)
    Warn,   ///< printed but non-fatal (noisy shared machines, CI)
    Off,    ///< host metrics not checked at all
};

/** Parse "strict"/"warn"/"off"; anything else is a Config error. */
HostMode parseHostMode(const std::string &s);

struct CompareOptions
{
    /** Relative throughput drop that flags a host regression. */
    double hostTolerance = 0.10;
    HostMode hostMode = HostMode::Strict;
};

/** One mismatch, locatable by job and metric. */
struct CompareIssue
{
    std::string jobId;
    std::string metric; ///< e.g. "stats.l2.misses", "events_per_sec"
    std::string detail; ///< human-readable "baseline X, fresh Y"
};

struct CompareReport
{
    std::string sweep;
    std::size_t repeats = 0;  ///< fresh artifacts compared
    std::size_t jobsCompared = 0;
    std::vector<CompareIssue> identity; ///< bit-identity violations
    std::vector<CompareIssue> host;     ///< median throughput drops
    std::vector<std::string> notes;     ///< non-fatal observations
    HostMode hostMode = HostMode::Strict;
    double hostTolerance = 0.10;

    bool identityClean() const { return identity.empty(); }
    bool hostClean() const { return host.empty(); }

    /** 0 clean; 1 identity mismatch; 3 host regression (strict). */
    int exitCode() const;

    /** Multi-line human-readable report (one line per issue). */
    std::string format() const;

    /** Machine-readable summary for embedding into an artifact. */
    JsonValue toJson() const;
};

/**
 * Diff @p fresh repeats of one sweep against @p baseline. All
 * artifacts must be the same sweep at the same scale/divisor
 * (SimErrorKind::Config otherwise); at least one fresh repeat is
 * required. Identity must hold on every repeat; host metrics are
 * compared median-vs-baseline.
 */
CompareReport compareArtifacts(const JsonValue &baseline,
                               const std::vector<JsonValue> &fresh,
                               const CompareOptions &opts = {});

/**
 * Write the report's summary into artifact @p path as a top-level
 * "compare" member (replacing any previous one), preserving the rest
 * of the document.
 */
void annotateArtifact(const std::string &path,
                      const CompareReport &report);

} // namespace cmpmem

#endif // CMPMEM_HARNESS_BENCH_COMPARE_HH
