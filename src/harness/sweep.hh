/**
 * @file
 * Declarative sweep engine: every table and figure of the paper is a
 * sweep over {workload x SystemConfig knobs}, and every point is an
 * independent, deterministic, single-threaded simulation — so the
 * configuration axis is embarrassingly parallel.
 *
 * A SweepSpec names the axes (cross-product) and/or lists explicit
 * points; expand() turns it into a job graph (jobs plus ordering
 * dependencies, e.g. "normalized points run after their baseline");
 * runSweep() executes the graph on a worker pool of std::jthread
 * (default std::thread::hardware_concurrency, overridable with the
 * CMPMEM_JOBS environment variable or SweepOptions::jobs) and
 * collects a SweepResult that renders both the existing text tables
 * (via per-id lookup) and a machine-readable BENCH_<name>.json
 * artifact.
 *
 * Determinism: results are stored by job index, not completion
 * order, and each simulation owns all of its mutable state (see the
 * audit note in harness/runner.cc), so for a fixed spec the
 * per-point simulated tick counts are bit-identical regardless of
 * worker count. tests/test_sweep.cc asserts this.
 */

#ifndef CMPMEM_HARNESS_SWEEP_HH
#define CMPMEM_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "system/config.hh"
#include "workloads/workload.hh"

namespace cmpmem
{

/** One fully-specified simulation point within a sweep. */
struct SweepJob
{
    SweepJob() = default;

    SweepJob(std::string id_, std::string workload_, SystemConfig cfg_,
             WorkloadParams params_ = {},
             std::vector<std::string> deps_ = {},
             std::map<std::string, std::string> tags_ = {},
             std::function<RunResult()> run_ = {})
        : id(std::move(id_)), workload(std::move(workload_)),
          cfg(cfg_), params(params_), deps(std::move(deps_)),
          tags(std::move(tags_)), run(std::move(run_))
    {
    }

    /** Unique id within the sweep ("fir/cores=4/model=CC"). */
    std::string id;

    /** Registry workload name; may be empty when @c run is set. */
    std::string workload;

    SystemConfig cfg;
    WorkloadParams params;

    /**
     * Ids of jobs that must complete before this one starts. A pure
     * ordering constraint: a dependency that fails to run does not
     * cancel its dependents (they run and report their own outcome).
     */
    std::vector<std::string> deps;

    /** Axis-point labels for reporting ("cores" -> "4"). */
    std::map<std::string, std::string> tags;

    /**
     * Custom simulation body for points that are not a registry
     * workload (e.g. the hybrid-ablation kernels). When empty, the
     * engine runs runWorkload(workload, cfg, params).
     */
    std::function<RunResult()> run;
};

/** Outcome of one job. */
struct JobResult
{
    SweepJob job;
    RunResult run;
    bool ran = false;  ///< completed without throwing
    std::string error; ///< exception text when !ran

    /**
     * Error taxonomy when !ran: a SimErrorKind name ("watchdog",
     * "deadlock", "fault", "crash", "timeout", ...) or "exception"
     * for anything else.
     */
    std::string errorKind;

    /**
     * Signal that terminated the sandboxed child ("SIGSEGV",
     * "SIGKILL", ...) when errorKind is "crash"/"timeout" and a
     * signal was involved; empty otherwise.
     */
    std::string signal;

    /**
     * Execution attempts consumed (1 for a job that ran once; >1
     * after crash/timeout re-dispatch; 0 for a result merged from a
     * resume journal without re-running). Host-side bookkeeping:
     * bench_compare excludes it from identity comparison, like
     * host_seconds.
     */
    int attempts = 1;

    /**
     * Machine-state dump attached to the failure (SimError::
     * diagnostic()), e.g. the watchdog's pending-event / MSHR /
     * store-buffer report. Empty for plain exceptions.
     */
    std::string diagnostic;

    std::string log;   ///< warn()/inform() output captured from the run
};

/** One value of a named axis: a label plus a job mutation. */
struct AxisValue
{
    std::string label;
    std::function<void(SweepJob &)> apply;
};

/**
 * One point of the cache-policy axis (SweepSpec::policyAxis):
 * replacement policy per level plus the prefetch algorithm.
 */
struct PolicyPoint
{
    std::string label; ///< axis label ("lru", "bip", "markov", ...)
    ReplacementPolicy l1Replacement = ReplacementPolicy::LRU;
    ReplacementPolicy l2Replacement = ReplacementPolicy::LRU;
    PrefetchPolicy prefetch = PrefetchPolicy::Stream;

    /**
     * Request hardware prefetching. Applied only to CC-model jobs
     * (SystemConfig::validate() rejects hwPrefetch under STR), so
     * STR points still sweep the replacement policies.
     */
    bool hwPrefetch = false;
};

/**
 * The canonical six-point policy axis of the policy_space bench: the
 * four insertion/replacement policies under the paper's stream
 * prefetcher, plus the two alternative prefetch engines under LRU.
 */
std::vector<PolicyPoint> defaultPolicyPoints();

/**
 * A declarative sweep: base config/params, a workload list, named
 * axes expanded as a cross-product, and/or explicit points.
 */
class SweepSpec
{
  public:
    explicit SweepSpec(std::string name);

    const std::string &name() const { return specName; }

    /** Base configuration cloned into every cross-product job. */
    SweepSpec &base(const SystemConfig &cfg);

    /** Base workload parameters cloned into every cross-product job. */
    SweepSpec &baseParams(const WorkloadParams &p);

    /** The workload axis (outermost loop of the cross-product). */
    SweepSpec &workloads(std::vector<std::string> names);

    /** Generic named axis. */
    SweepSpec &axis(std::string name, std::vector<AxisValue> values);

    /** Numeric axis over a SystemConfig knob. */
    SweepSpec &axis(std::string name, const std::vector<double> &values,
                    std::function<void(SystemConfig &, double)> set,
                    int label_precision = 1);

    /** Convenience axis over the two memory models. */
    SweepSpec &modelAxis(std::vector<MemModel> models = {MemModel::CC,
                                                         MemModel::STR});

    /**
     * Cache-policy axis: each point sets the L1/L2 replacement
     * policy, the prefetch algorithm, and (CC only) hwPrefetch.
     * Because a point's hwPrefetch gating reads job.cfg.model, call
     * modelAxis() (or fix base().model) *before* adding this axis —
     * axes apply in insertion order.
     */
    SweepSpec &policyAxis(std::vector<PolicyPoint> points =
                              defaultPolicyPoints());

    /**
     * Explicit point, run alongside the cross-product jobs. The
     * caller provides the id (fatal() at expand() if missing or
     * duplicated).
     */
    SweepSpec &point(SweepJob job);

    /**
     * Explicit point that every *cross-product* job depends on —
     * the "1-core CC baseline" pattern of the normalized figures.
     */
    SweepSpec &baseline(SweepJob job);

    /**
     * Expand into the job graph: baselines, then the cross-product
     * of workloads x axes (ids "<workload>/<axis>=<label>/..."),
     * then explicit points. Deterministic order; fatal()s on
     * duplicate ids, unknown deps, or dependency cycles.
     */
    std::vector<SweepJob> expand() const;

  private:
    struct Axis
    {
        std::string name;
        std::vector<AxisValue> values;
    };

    std::string specName;
    SystemConfig baseCfg;
    WorkloadParams baseprm;
    std::vector<std::string> workloadList;
    std::vector<Axis> axes;
    std::vector<SweepJob> baselines;
    std::vector<SweepJob> points;
};

/**
 * Whether jobs run in forked sandbox processes (harness/supervisor.hh).
 * Env defers to the CMPMEM_ISOLATE environment variable (unset/"0"
 * means off), so one knob flips a whole test or bench run.
 */
enum class SweepIsolate
{
    Env,
    Off,
    On,
};

/** Execution knobs for runSweep(). */
struct SweepOptions
{
    /**
     * Worker count; 0 means the CMPMEM_JOBS environment variable,
     * falling back to std::thread::hardware_concurrency().
     */
    int jobs = 0;

    /**
     * Re-emit each job's captured warn()/inform() text to stderr
     * (as one block, prefixed with the job id) once the job ends.
     * When false the text is only kept in JobResult::log.
     */
    bool echoLogs = true;

    /**
     * Per-job simulated-tick budget for registry-workload jobs
     * (0 = none). Applied as cfg.watchdog.maxTicks where the job's
     * own config has not already set one; a job that exceeds it is
     * recorded as a "watchdog" failure with a diagnostic dump, and
     * the rest of the sweep completes normally. Custom-run jobs
     * manage their own budgets.
     */
    Tick jobMaxTicks = 0;

    /**
     * Per-job host CPU-time budget in seconds for registry-workload
     * jobs (0 = none); same semantics as jobMaxTicks. Host time is
     * nondeterministic — prefer jobMaxTicks when reproducibility of
     * the failure point matters.
     */
    double jobMaxHostSeconds = 0;

    /**
     * Run each job in a forked child supervised by the parent
     * (DESIGN.md §16): a SIGSEGV, abort, or runaway host loop in one
     * job can no longer take down its siblings. Simulated stats are
     * bit-identical to in-process execution — the child serializes
     * the full RunStats/energy over a pipe with exact double
     * round-tripping.
     */
    SweepIsolate isolate = SweepIsolate::Env;

    /**
     * Extra dispatch attempts for a job whose *sandbox* died (crash
     * or deadline kill) — deterministic SimError failures are
     * recorded, not retried, since they would fail identically
     * again. 0 disables re-dispatch. Only meaningful under
     * isolation.
     */
    int maxRetries = 0;

    /**
     * Bounded linear backoff between re-dispatches: attempt n sleeps
     * n * retryBackoffSeconds, capped at retryBackoffMaxSeconds.
     */
    double retryBackoffSeconds = 0.05;
    double retryBackoffMaxSeconds = 1.0;

    /**
     * Hard per-attempt wall-clock deadline in seconds (0 = none),
     * enforced by the supervisor with SIGKILL. Unlike the in-process
     * watchdog (cooperative, checked between events), this stops
     * jobs that wedge host time without simulating. Requires
     * isolation; ignored for in-process jobs.
     */
    double jobDeadlineSeconds = 0;

    /**
     * Write-ahead journal path (empty = no journal). Every completed
     * job appends one fsynced JSONL record keyed by id + config
     * identity + stats digest, so a killed sweep can resume.
     */
    std::string journalPath;

    /**
     * Resume from journalPath: jobs with a journaled completion (and
     * matching config identity) are merged bit-identically instead
     * of re-run. Jobs journaled as crashed/timed-out are re-run.
     */
    bool resume = false;
};

/** Structured results of a sweep, in job-graph order. */
class SweepResult
{
  public:
    SweepResult(std::string name, std::vector<JobResult> results,
                double wall_seconds, int workers);

    const std::string &name() const { return sweepName; }
    const std::vector<JobResult> &jobs() const { return results; }

    /** Lookup by id; null when absent. */
    const JobResult *find(const std::string &id) const;

    /** Lookup by id; fatal()s when absent (bench formatting). */
    const JobResult &at(const std::string &id) const;

    /** Shorthand for at(id).run. */
    const RunResult &runOf(const std::string &id) const;

    bool allRan() const;
    bool allVerified() const;

    /** Sum of per-job host seconds (the serial-execution cost). */
    double serialSeconds() const;

    /** Wall-clock seconds of the pooled execution. */
    double wallSeconds() const { return wallSecs; }

    /** Serial-sum / wall-clock (the parallelism win). */
    double speedup() const;

    int workers() const { return nWorkers; }

    /** One-line aggregate: jobs, host time, wall time, speedup. */
    std::string summary() const;

    /** Full machine-readable artifact (see DESIGN.md for schema). */
    std::string toJson() const;

    /**
     * Write toJson() to "<dir>/BENCH_<name>.json" where dir is
     * CMPMEM_ARTIFACT_DIR or ".". @return the path written.
     */
    std::string writeArtifact() const;

  private:
    std::string sweepName;
    std::vector<JobResult> results;
    std::map<std::string, std::size_t> index;
    double wallSecs = 0;
    int nWorkers = 1;
};

/** Expand @p spec and execute the job graph on the worker pool. */
SweepResult runSweep(const SweepSpec &spec, const SweepOptions &opts = {});

/** Execute an already-expanded job graph (id/dep validation applies). */
SweepResult runJobs(std::string name, std::vector<SweepJob> jobs,
                    const SweepOptions &opts = {});

/** Resolved worker count for @p requested (0 = env/default). */
int sweepWorkerCount(int requested);

/** Artifact path "<CMPMEM_ARTIFACT_DIR or .>/BENCH_<name>.json". */
std::string artifactPath(const std::string &name);

/** Journal path "<CMPMEM_ARTIFACT_DIR or .>/BENCH_<name>.journal.jsonl". */
std::string journalPath(const std::string &name);

/**
 * The config-identity JSON object recorded per job in artifacts and
 * journal records — exactly the fields bench_compare diffs (and
 * hard-refuses on policy mismatch), so "same config identity" means
 * the same thing to the gate and to resume.
 */
std::string configIdentityJson(const SystemConfig &cfg);

/** Incremental log consumer for runJobInProcess (may be empty). */
using LogSink = std::function<void(const std::string &)>;

/**
 * Execute one job on the calling thread (the isolation-off body of
 * the executor, also the body a sandbox child runs after fork).
 * Catches SimError/std::exception into the JobResult taxonomy;
 * never throws. @p log_sink additionally receives each captured log
 * line as it is produced.
 */
JobResult runJobInProcess(const SweepJob &job, const SweepOptions &opts,
                          const LogSink &log_sink = {});

} // namespace cmpmem

#endif // CMPMEM_HARNESS_SWEEP_HH
