/**
 * @file
 * One-call experiment runner: build a system, run a workload on it,
 * verify the output, and collect statistics and energy.
 */

#ifndef CMPMEM_HARNESS_RUNNER_HH
#define CMPMEM_HARNESS_RUNNER_HH

#include <string>

#include "energy/energy_model.hh"
#include "system/cmp_system.hh"
#include "workloads/workload.hh"

namespace cmpmem
{

struct RunResult
{
    RunStats stats;
    EnergyBreakdown energy;
    bool verified = false;
    double hostSeconds = 0; ///< host CPU cost of this simulation

    /**
     * Simulator host throughput: events dispatched per host CPU
     * second. Nondeterministic (depends on the machine and its
     * load), so it is reported alongside host_seconds rather than in
     * the deterministic stats block.
     */
    double
    eventsPerSec() const
    {
        return hostSeconds > 0 ? double(stats.eventsExecuted) / hostSeconds
                               : 0;
    }

    /**
     * Access-path host throughput: simulated first-level data
     * accesses (loads, stores, atomics, local-store reads/writes)
     * per host CPU second — the figure of merit for the memory-access
     * fast path (DESIGN.md §13). Nondeterministic, like
     * eventsPerSec(), so it is reported next to it rather than in
     * the deterministic stats block.
     */
    double
    accessesPerSec() const
    {
        const CoreStats &c = stats.coreTotal;
        const double a = double(c.loads + c.stores + c.atomics +
                                c.lsReads + c.lsWrites);
        return hostSeconds > 0 ? a / hostSeconds : 0;
    }

    /**
     * Miss-path host throughput: simulated miss-side transactions
     * (L1 demand misses, PFS allocates, DMA line-granule accesses)
     * per host CPU second — the figure of merit for the allocation-
     * free miss path (DESIGN.md §18). Nondeterministic, like the
     * other per-second figures.
     */
    double
    missesPerSec() const
    {
        const double m = double(stats.l1Total.demandMisses() +
                                stats.l1Total.pfsStores +
                                stats.dmaAccesses);
        return hostSeconds > 0 ? m / hostSeconds : 0;
    }
};

/**
 * CPU time consumed by the calling thread so far, in seconds.
 *
 * This — not wall-clock — is how per-job host cost is measured: with
 * several sweep workers sharing cores, a job's wall time includes
 * stretches where the thread was descheduled, which would inflate
 * the serial-sum and overstate the pool's speedup.
 */
double threadCpuSeconds();

/**
 * Run @p workload_name on a system configured by @p cfg.
 *
 * Verification failure is a reproduction bug: the runner reports it
 * in the result and warn()s, leaving the decision to the caller
 * (tests assert on it; benches print a diagnostic).
 */
RunResult runWorkload(const std::string &workload_name,
                      const SystemConfig &cfg,
                      const WorkloadParams &params = {});

} // namespace cmpmem

#endif // CMPMEM_HARNESS_RUNNER_HH
