/**
 * @file
 * Small deterministic pseudo-random generator for workload inputs.
 *
 * Simulations must be bit-reproducible across runs and hosts, so the
 * workloads never touch std::random_device or the unseeded global
 * generators. xoshiro256** is tiny, fast, and has well-understood
 * statistical quality.
 */

#ifndef CMPMEM_SIM_RNG_HH
#define CMPMEM_SIM_RNG_HH

#include <cstdint>

namespace cmpmem
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Bias is negligible for the bounds used by the workloads.
        return next() % bound;
    }

    std::uint32_t next32() { return static_cast<std::uint32_t>(next()); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + nextDouble() * (hi - lo);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace cmpmem

#endif // CMPMEM_SIM_RNG_HH
