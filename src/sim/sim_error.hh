/**
 * @file
 * Recoverable simulation errors.
 *
 * fatal()/panic() (sim/log.hh) kill the whole process, which is the
 * right behaviour for CLI misuse and for bugs in the harness itself —
 * but a sweep runs many independent simulations, and one bad config
 * point, injected fault, or hung kernel must not take the other jobs
 * down with it. Every failure path reachable from *simulation* code
 * therefore throws SimError instead; the sweep executor
 * (harness/sweep.cc) catches it per job and records a structured
 * {kind, message, diagnostic} blob in the BENCH_<name>.json artifact.
 *
 * The taxonomy (see DESIGN.md §11):
 *  - Config:   invalid user configuration (bad knob values, unknown
 *              workload, fault injection compiled out).
 *  - Model:    a kernel or model-API contract violation (DMA on a
 *              cache-model core, local-store overrun, an event
 *              scheduled in the past).
 *  - Deadlock: the event queue drained with kernels still blocked.
 *  - Watchdog: a liveness budget tripped (max ticks, host CPU time,
 *              or no forward progress); carries a diagnostic dump.
 *  - Fault:    an injected fault exhausted its recovery budget
 *              (uncorrectable ECC, NACK/DMA retry limit).
 *  - Check:    the runtime MESI checker failed fast on a violation.
 *  - Crash:    a sandboxed sweep child died without reporting a
 *              result (signal, nonzero exit, torn pipe). Only the
 *              supervisor (harness/supervisor.hh) classifies this
 *              kind — simulation code cannot observe its own crash.
 *  - Timeout:  the supervisor's hard wall-clock deadline expired and
 *              the child was SIGKILLed. Distinct from Watchdog: the
 *              watchdog is cooperative and runs inside the child;
 *              the deadline covers hangs the child cannot interrupt
 *              (wedged host loops, stuck syscalls).
 */

#ifndef CMPMEM_SIM_SIM_ERROR_HH
#define CMPMEM_SIM_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace cmpmem
{

enum class SimErrorKind
{
    Config,
    Model,
    Deadlock,
    Watchdog,
    Fault,
    Check,
    Crash,
    Timeout,
};

/** Lower-case kind tag, as recorded in sweep JSON artifacts. */
const char *to_string(SimErrorKind kind);

class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, std::string message,
             std::string diagnostic = {})
        : std::runtime_error(std::move(message)), k(kind),
          diag(std::move(diagnostic))
    {
    }

    SimErrorKind kind() const { return k; }

    /** to_string(kind()): the JSON "kind" field. */
    const char *kindName() const { return to_string(k); }

    /**
     * Machine-state dump attached at throw time (watchdog/deadlock
     * errors); empty otherwise.
     */
    const std::string &diagnostic() const { return diag; }

  private:
    SimErrorKind k;
    std::string diag;
};

/** printf-style SimError with no diagnostic attached. */
[[noreturn]] void throwSimError(SimErrorKind kind, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace cmpmem

#endif // CMPMEM_SIM_SIM_ERROR_HH
