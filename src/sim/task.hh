/**
 * @file
 * Coroutine plumbing for execution-driven workload kernels.
 *
 * Workload kernels are ordinary C++ algorithms written as C++20
 * coroutines. Every simulated memory access or synchronization point
 * is a co_await on an awaitable produced by the per-core Context; the
 * coroutine suspends only when the simulated core actually blocks
 * (miss, full store buffer, barrier, DMA wait, or a time-quantum
 * flush), which keeps the hot hit path free of event-queue traffic.
 * Each resumption is a pooled inline-callback event (the Core
 * schedules Core::scheduleResume capturing only {this, tick}, well
 * inside the EventQueue::kCallbackBytes bound), so suspending and
 * resuming a kernel never allocates.
 */

#ifndef CMPMEM_SIM_TASK_HH
#define CMPMEM_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace cmpmem
{

/**
 * Return type of a workload kernel coroutine.
 *
 * The coroutine starts suspended; the owning Core resumes it to begin
 * execution and checks done() after every resumption. The frame is
 * kept alive at final suspension so done() is reliable; the KernelTask
 * destructor destroys the frame.
 */
class KernelTask
{
  public:
    struct promise_type
    {
        KernelTask
        get_return_object()
        {
            return KernelTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        /**
         * A throwing kernel (a SimError from the model, typically)
         * must not take the process down: park the exception and let
         * the owning Core rethrow it out of the event loop, where
         * the sweep engine can record it per job.
         */
        std::exception_ptr error;

        void
        unhandled_exception() noexcept
        {
            error = std::current_exception();
        }
    };

    KernelTask() = default;

    explicit KernelTask(std::coroutine_handle<promise_type> handle)
        : h(handle)
    {}

    KernelTask(KernelTask &&other) noexcept
        : h(std::exchange(other.h, nullptr))
    {}

    KernelTask &
    operator=(KernelTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h = std::exchange(other.h, nullptr);
        }
        return *this;
    }

    KernelTask(const KernelTask &) = delete;
    KernelTask &operator=(const KernelTask &) = delete;

    ~KernelTask() { destroy(); }

    bool valid() const { return static_cast<bool>(h); }

    bool done() const { return !h || h.done(); }

    /**
     * Rethrow the exception that terminated the kernel, if any.
     * Called by the owning Core after every resumption so a dying
     * kernel propagates out of EventQueue::run() to the caller of
     * CmpSystem::simulate() instead of std::terminate()ing.
     */
    void
    rethrowIfFailed() const
    {
        if (h && h.done() && h.promise().error)
            std::rethrow_exception(h.promise().error);
    }

    /** Resume the kernel; must not be called once done(). */
    void
    resume()
    {
        assert(h && !h.done());
        h.resume();
    }

    std::coroutine_handle<> handle() const { return h; }

  private:
    void
    destroy()
    {
        if (h) {
            h.destroy();
            h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> h;
};

/**
 * A nestable sub-coroutine: kernels can structure themselves as
 * helper coroutines (e.g. `co_await dct8x8(ctx, block)`), with
 * symmetric transfer so that resuming the leaf suspension resumes
 * the whole chain.
 *
 * Usage: `Co<int> helper(Context &ctx) { ...; co_return 42; }` and
 * `int v = co_await helper(ctx);` inside a KernelTask or another Co.
 */
template <typename T = void>
class Co;

namespace detail
{

struct CoPromiseBase
{
    std::coroutine_handle<> continuation;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    /** Parked for the awaiting coroutine's await_resume to rethrow. */
    std::exception_ptr error;

    void
    unhandled_exception() noexcept
    {
        error = std::current_exception();
    }
};

} // namespace detail

template <typename T>
class Co
{
  public:
    struct promise_type : detail::CoPromiseBase
    {
        T result{};

        Co
        get_return_object()
        {
            return Co(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) noexcept { result = std::move(v); }
    };

    explicit Co(std::coroutine_handle<promise_type> handle) : h(handle) {}
    Co(Co &&other) noexcept : h(std::exchange(other.h, nullptr)) {}
    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;
    Co &operator=(Co &&) = delete;

    ~Co()
    {
        if (h)
            h.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        h.promise().continuation = cont;
        return h;
    }

    T
    await_resume()
    {
        if (h.promise().error)
            std::rethrow_exception(h.promise().error);
        return std::move(h.promise().result);
    }

  private:
    std::coroutine_handle<promise_type> h;
};

template <>
class Co<void>
{
  public:
    struct promise_type : detail::CoPromiseBase
    {
        Co
        get_return_object()
        {
            return Co(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() noexcept {}
    };

    explicit Co(std::coroutine_handle<promise_type> handle) : h(handle) {}
    Co(Co &&other) noexcept : h(std::exchange(other.h, nullptr)) {}
    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;
    Co &operator=(Co &&) = delete;

    ~Co()
    {
        if (h)
            h.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        h.promise().continuation = cont;
        return h;
    }

    void
    await_resume() const
    {
        if (h.promise().error)
            std::rethrow_exception(h.promise().error);
    }

  private:
    std::coroutine_handle<promise_type> h;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_TASK_HH
