#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace cmpmem
{

void
StatSet::set(const std::string &name, double value)
{
    auto [it, inserted] = values.emplace(name, value);
    if (inserted)
        order.push_back(name);
    else
        it->second = value;
}

void
StatSet::add(const std::string &name, double value)
{
    auto [it, inserted] = values.emplace(name, value);
    if (inserted)
        order.push_back(name);
    else
        it->second += value;
}

double
StatSet::get(const std::string &name, double dflt) const
{
    auto it = values.find(name);
    return it == values.end() ? dflt : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values.count(name) != 0;
}

void
StatSet::accumulate(const StatSet &other)
{
    for (const auto &name : other.order)
        add(name, other.get(name));
}

std::string
StatSet::format() const
{
    std::size_t width = 0;
    for (const auto &name : order)
        width = std::max(width, name.size());

    std::string out;
    char buf[256];
    for (const auto &name : order) {
        std::snprintf(buf, sizeof(buf), "%-*s %.6g\n", int(width),
                      name.c_str(), get(name));
        out += buf;
    }
    return out;
}

std::string
StatSet::toJson() const
{
    std::string out = "{";
    char buf[128];
    bool first = true;
    for (const auto &name : order) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.17g",
                      first ? "" : ", ", name.c_str(), get(name));
        out += buf;
        first = false;
    }
    out += "}";
    return out;
}

std::string
StatSet::toCsv() const
{
    std::string header;
    std::string values;
    char buf[64];
    for (const auto &name : order) {
        if (!header.empty()) {
            header += ",";
            values += ",";
        }
        header += name;
        std::snprintf(buf, sizeof(buf), "%.17g", get(name));
        values += buf;
    }
    return header + "\n" + values + "\n";
}

std::string
StatSet::digest() const
{
    // FNV-1a, 64-bit. Values hash by bit pattern (not by formatted
    // text) so the digest is exactly as strict as operator== on the
    // underlying doubles; +0.0 is normalized over -0.0 so an
    // all-zero counter digests the same however it was computed.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void *data, std::size_t len) {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    for (const auto &name : order) {
        mix(name.data(), name.size() + 1); // include the NUL: no
                                           // name-concatenation aliasing
        double v = get(name);
        if (v == 0.0)
            v = 0.0;
        const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
        mix(&bits, sizeof(bits));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fnv1a:%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
StatSet::clear()
{
    values.clear();
    order.clear();
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t buckets)
    : width(bucket_width ? bucket_width : 1), counts(buckets ? buckets : 1, 0)
{
}

void
Histogram::sample(std::uint64_t value)
{
    std::size_t idx = std::min<std::uint64_t>(value / width,
                                              counts.size() - 1);
    ++counts[idx];
    ++total;
    sum += value;
    minSeen = std::min(minSeen, value);
    maxSeen = std::max(maxSeen, value);
}

double
Histogram::mean() const
{
    return total ? double(sum) / double(total) : 0.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (total == 0)
        return 0;
    std::uint64_t threshold =
        static_cast<std::uint64_t>(p * double(total) + 0.5);
    threshold = std::max<std::uint64_t>(threshold, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= threshold)
            return (i + 1) * width - 1;
    }
    return maxSeen;
}

void
Histogram::clear()
{
    std::fill(counts.begin(), counts.end(), 0);
    total = 0;
    sum = 0;
    minSeen = ~std::uint64_t(0);
    maxSeen = 0;
}

} // namespace cmpmem
