/**
 * @file
 * Interface for components that can describe their internal state
 * when a simulation dies.
 *
 * When the liveness watchdog trips or the deadlock detector fires,
 * CmpSystem::dumpDiagnostics() walks every Diagnosable — the L1
 * controllers (with their MSHR files and store buffers), the L2, the
 * coherence fabric, and the DMA engines — and assembles a text dump
 * of pending events, queue occupancies, in-flight transfers, and
 * blocked-coroutine state. The dump rides on the SimError's
 * diagnostic() field into the sweep's JSON artifact, so a hung config
 * point in a 100-job sweep leaves enough evidence to debug offline.
 *
 * diagnose() must be side-effect free: it is called on a machine
 * that is wedged mid-transaction and must not touch the event queue
 * or mutate any simulation state.
 */

#ifndef CMPMEM_SIM_DIAGNOSABLE_HH
#define CMPMEM_SIM_DIAGNOSABLE_HH

#include <string>

namespace cmpmem
{

class Diagnosable
{
  public:
    virtual ~Diagnosable() = default;

    /** Short instance name for the dump ("l1[3]", "dma[0]"). */
    virtual std::string diagName() const = 0;

    /** One-or-few-line summary of internal state (no trailing \n). */
    virtual std::string diagnose() const = 0;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_DIAGNOSABLE_HH
