/**
 * @file
 * Lightweight statistics collection.
 *
 * Hot paths increment plain integer members; at the end of a run each
 * component exports its counters into a StatSet (an ordered
 * name -> value map) which the harness aggregates and formats. This
 * keeps the per-access cost of statistics at a single increment.
 */

#ifndef CMPMEM_SIM_STATS_HH
#define CMPMEM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cmpmem
{

/**
 * An ordered collection of named scalar statistics.
 *
 * Values are stored as doubles; integral counters fit exactly up to
 * 2^53, far beyond any counter in this simulator's runs.
 */
class StatSet
{
  public:
    /** Set (or overwrite) a statistic. */
    void set(const std::string &name, double value);

    /** Add to a statistic, creating it at zero if absent. */
    void add(const std::string &name, double value);

    /** @return the value, or @p dflt when absent. */
    double get(const std::string &name, double dflt = 0.0) const;

    bool has(const std::string &name) const;

    /** Merge another set into this one by summation. */
    void accumulate(const StatSet &other);

    /** Names in insertion order. */
    const std::vector<std::string> &names() const { return order; }

    /** Render as aligned "name value" lines. */
    std::string format() const;

    /** Render as a flat JSON object (insertion order preserved). */
    std::string toJson() const;

    /** Render as two CSV lines: header and values. */
    std::string toCsv() const;

    /**
     * Order-sensitive 64-bit FNV-1a digest over every (name, value)
     * pair, hashing the exact IEEE-754 bit pattern of each value —
     * two sets digest equal iff their names, insertion order, and
     * values are bit-identical. The compact currency of the golden
     * regressions (tests/test_golden.cc) and the bench_compare gate:
     * "fnv1a:" followed by 16 hex digits.
     */
    std::string digest() const;

    void clear();

  private:
    std::map<std::string, double> values;
    std::vector<std::string> order;
};

/**
 * A simple fixed-bucket histogram for latency-style distributions.
 */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket; @param buckets count. */
    explicit Histogram(std::uint64_t bucket_width = 1,
                       std::size_t buckets = 64);

    void sample(std::uint64_t value);

    std::uint64_t count() const { return total; }
    double mean() const;
    std::uint64_t min() const { return total ? minSeen : 0; }
    std::uint64_t max() const { return maxSeen; }

    /** Smallest value v such that at least fraction p of samples <= v. */
    std::uint64_t percentile(double p) const;

    void clear();

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> counts; ///< last bucket catches overflow
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t minSeen = ~std::uint64_t(0);
    std::uint64_t maxSeen = 0;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_STATS_HH
