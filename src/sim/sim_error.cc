#include "sim/sim_error.hh"

#include <cstdarg>

#include "sim/log.hh"

namespace cmpmem
{

const char *
to_string(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Model: return "model";
      case SimErrorKind::Deadlock: return "deadlock";
      case SimErrorKind::Watchdog: return "watchdog";
      case SimErrorKind::Fault: return "fault";
      case SimErrorKind::Check: return "check";
      case SimErrorKind::Crash: return "crash";
      case SimErrorKind::Timeout: return "timeout";
    }
    return "unknown";
}

void
throwSimError(SimErrorKind kind, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrformat(fmt, ap);
    va_end(ap);
    throw SimError(kind, std::move(msg));
}

} // namespace cmpmem
