#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace cmpmem
{

namespace
{
bool quietMode = false;

void
vlog(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlog("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlog("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

} // namespace cmpmem
