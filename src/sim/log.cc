#include "sim/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <vector>

namespace cmpmem
{

namespace
{

std::atomic<bool> quietMode{false};

thread_local LogCapture *tlsCapture = nullptr;

/** One locked, line-atomic write to stderr. */
void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
vlog(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vstrformat(fmt, ap);
    if (tlsCapture)
        tlsCapture->append(tag, msg);
    else
        emit(tag, msg);
}

/**
 * Terminal path: flush this thread's pending capture (the dying
 * run's context) and write the final message straight to stderr.
 */
void
vlogFatal(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vstrformat(fmt, ap);
    std::lock_guard<std::mutex> lock(logMutex());
    if (tlsCapture && !tlsCapture->empty())
        std::fputs(tlsCapture->drain().c_str(), stderr);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

/** Serializes direct stderr writes across sweep worker threads. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::string
vstrformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return fmt; // formatting error: fall back to the raw string
    std::vector<char> buf(std::size_t(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), std::size_t(n));
}

std::string
strformat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vstrformat(fmt, ap);
    va_end(ap);
    return out;
}

LogCapture::LogCapture() : prev(tlsCapture)
{
    tlsCapture = this;
}

LogCapture::~LogCapture()
{
    tlsCapture = prev;
    // Dying via exception with lines still buffered: hand them to the
    // enclosing capture (the sweep worker's, typically) or emit them,
    // so a failed job's log block survives the unwind.
    if (!buf.empty() && std::uncaught_exceptions() > 0) {
        if (prev)
            prev->buf += buf;
        else
            emitRaw(buf);
    }
}

std::string
LogCapture::drain()
{
    std::string out = std::move(buf);
    buf.clear();
    return out;
}

void
LogCapture::append(const char *tag, const std::string &msg)
{
    std::string line = tag;
    line += ": ";
    line += msg;
    line += '\n';
    buf += line;
    if (sink)
        sink(line);
}

void
LogCapture::setSink(std::function<void(const std::string &)> s)
{
    sink = std::move(s);
}

void
emitRaw(const std::string &text)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fputs(text.c_str(), stderr);
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietMode.load(std::memory_order_relaxed);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlogFatal("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlogFatal("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (isQuiet())
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

} // namespace cmpmem
