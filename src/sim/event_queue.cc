#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <ctime>
#include <utility>

#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

/**
 * CPU seconds consumed by the calling thread. Local copy of the
 * harness helper: sim/ must not depend on harness/, and the watchdog
 * wants per-thread time so one slow sweep job cannot spend the
 * budgets of its siblings.
 */
double
hostThreadSeconds()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

} // namespace

thread_local ParallelHook *EventQueue::tlHook = nullptr;

void
EventQueue::routeToHook(Tick when, std::int32_t shard, Callback &&cb)
{
    tlHook->routeSchedule(when, shard, std::move(cb));
}

EventQueue::Node *
EventQueue::allocNode(Tick when)
{
    Node *n = freeList;
    if (n) {
        freeList = n->next;
    } else {
        chunks.push_back(std::make_unique<Node[]>(kChunkNodes));
        Node *chunk = chunks.back().get();
        // Keep chunk[0] for the caller; thread the rest onto the
        // free list (reverse order so they hand out in address order).
        for (std::size_t i = kChunkNodes - 1; i >= 1; --i) {
            chunk[i].next = freeList;
            freeList = &chunk[i];
        }
        n = &chunk[0];
    }
    n->when = when;
    n->seq = nextSeq++;
    n->next = nullptr;
    n->shard = kNoShard;
    return n;
}

std::uint64_t
EventQueue::scheduleKeyOnly(Tick when)
{
    if (when < curTick)
        throwSchedulePast(when);
    Node *n = allocNode(when);
    insert(n);
    return n->seq;
}

std::pair<Tick, std::uint64_t>
EventQueue::popKey()
{
    Node *n = peekNext();
    // The engine only pops keys it knows are pending; an empty pop
    // is a merge-logic bug, not a recoverable condition.
    if (!n)
        throwSimError(SimErrorKind::Model,
                      "shadow popKey on an empty queue (tick %llu)",
                      static_cast<unsigned long long>(curTick));
    takeNext();
    curTick = n->when;
    ++numExecuted;
    const std::pair<Tick, std::uint64_t> key{n->when, n->seq};
    releaseNode(n);
    return key;
}

void
EventQueue::insertWithSeq(Tick when, std::uint64_t seq, std::int32_t shard,
                          Callback &&cb)
{
    if (when < curTick)
        throwSchedulePast(when);
    Node *n = allocNode(when);
    n->seq = seq;
    n->shard = shard;
    n->cb = std::move(cb);
    insert(n);
}

void
EventQueue::throwSchedulePast(Tick when) const
{
    // A model bug, not user error — but one that must surface in
    // release builds too, or the event silently fires "now" and
    // corrupts timing for the rest of the run.
    throwSimError(SimErrorKind::Model,
                  "event scheduled in the past (when=%llu, now=%llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curTick));
}

void
EventQueue::setBucketShift(unsigned shift)
{
    if (shift < kMinBucketShift || shift > kMaxBucketShift) {
        throwSimError(SimErrorKind::Config,
                      "calendar bucket shift %u out of range [%u, %u]",
                      shift, kMinBucketShift, kMaxBucketShift);
    }
    if (pendingCount != 0 || numExecuted != 0) {
        // Re-bucketing live events would be possible but is never
        // needed: geometry is a per-run decision, and allowing it
        // mid-run invites accidental nondeterminism in callers.
        throwSimError(SimErrorKind::Model,
                      "calendar geometry change on a non-idle queue "
                      "(%zu pending, %llu executed)",
                      pendingCount,
                      static_cast<unsigned long long>(numExecuted));
    }
    tickShift = shift;
}

unsigned
EventQueue::recommendBucketShift(double hot_threshold) const
{
    if (numExecuted == 0 || overflowCount == 0 ||
        double(overflowCount) / double(numExecuted) <= hot_threshold)
        return tickShift;
    // A horizon of H ticks can span (H >> shift) + 1 bucket indices
    // when it straddles bucket boundaries, so require one spare slot
    // below kNumBuckets for the worst overflow seen to fit in-window.
    unsigned shift = tickShift;
    while (shift < kMaxBucketShift &&
           (maxOverflowHorizon >> shift) >= kNumBuckets - 1)
        ++shift;
    return shift;
}

void
EventQueue::releaseNode(Node *n)
{
    n->cb.reset();
    n->next = freeList;
    freeList = n;
}

void
EventQueue::heapPush(std::vector<Node *> &heap, Node *n)
{
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(),
                   [](const Node *a, const Node *b) { return before(b, a); });
}

EventQueue::Node *
EventQueue::heapPop(std::vector<Node *> &heap)
{
    std::pop_heap(heap.begin(), heap.end(),
                  [](const Node *a, const Node *b) { return before(b, a); });
    Node *n = heap.back();
    heap.pop_back();
    return n;
}

void
EventQueue::pushBucket(Node *n)
{
    const std::size_t slot = bucketOf(n->when) & kBucketMask;
    n->next = buckets[slot];
    buckets[slot] = n;
    bucketBits[slot >> 6] |= std::uint64_t(1) << (slot & 63);
}

void
EventQueue::insert(Node *n)
{
    const Tick when = n->when;
    if (when == curTick) {
        // Same-tick events append in sequence order, so the now-FIFO
        // is sorted by construction.
        if (nowTail)
            nowTail->next = n;
        else
            nowHead = n;
        nowTail = n;
    } else {
        const std::uint64_t b = bucketOf(when);
        if (b <= cursor) {
            // The active bucket — or behind it: peekNext() may park
            // the cursor ahead of curTick (e.g. runUntil stopping
            // short of the next event), and anything scheduled into
            // that gap still precedes every ring/overflow event.
            const Entry e{when, n->seq, n};
            active.insert(std::upper_bound(active.begin() + activePos,
                                           active.end(), e),
                          e);
        } else if (b < cursor + kNumBuckets) {
            pushBucket(n);
        } else {
            heapPush(farHeap, n);
            ++overflowCount;
            // Off the hot path: the horizon high-water mark feeds
            // recommendBucketShift(), and only overflowed events
            // matter to it (in-window events fit by definition).
            if (when - curTick > maxOverflowHorizon)
                maxOverflowHorizon = when - curTick;
        }
    }
    if (++pendingCount > peakPendingCount)
        peakPendingCount = pendingCount;
}

bool
EventQueue::advanceWindow()
{
    // Nearest occupied ring slot, as a wrap-corrected delta from the
    // cursor's slot (0 when the ring is empty; the cursor's own slot
    // is empty by invariant while the bucket is active).
    std::size_t delta = 0;
    {
        const std::size_t start = cursor & kBucketMask;
        std::size_t slot = (start + 1) & kBucketMask;
        for (std::size_t visits = 0; visits <= kBitmapWords; ++visits) {
            const unsigned bit = slot & 63;
            if (std::uint64_t word = bucketBits[slot >> 6] >> bit) {
                const std::size_t s =
                    slot + std::size_t(std::countr_zero(word));
                delta = (s - start) & kBucketMask;
                break;
            }
            slot = (slot + (64 - bit)) & kBucketMask;
        }
    }

    const bool haveRing = delta != 0;
    const bool haveFar = !farHeap.empty();
    if (!haveRing && !haveFar)
        return false;

    std::uint64_t target = haveRing ? cursor + delta : ~std::uint64_t(0);
    if (haveFar)
        target = std::min(target, bucketOf(farHeap.front()->when));
    cursor = target;

    active.clear();
    activePos = 0;

    // Pull overflow events that the new window now covers back into
    // the calendar (each event migrates at most once).
    while (!farHeap.empty() &&
           bucketOf(farHeap.front()->when) < cursor + kNumBuckets) {
        Node *n = heapPop(farHeap);
        if (bucketOf(n->when) == cursor)
            active.push_back(Entry{n->when, n->seq, n});
        else
            pushBucket(n);
    }

    // Activate the target bucket: copy its unsorted list into the
    // active array and sort once, restoring (when, seq) order.
    const std::size_t slot = cursor & kBucketMask;
    Node *n = buckets[slot];
    buckets[slot] = nullptr;
    bucketBits[slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
    while (n) {
        active.push_back(Entry{n->when, n->seq, n});
        n = n->next;
    }
    std::sort(active.begin(), active.end());
    return true;
}

EventQueue::Node *
EventQueue::peekNext()
{
    if (!nowHead && activePos == active.size() && !advanceWindow())
        return nullptr;
    // The global minimum is always the better of the now-FIFO head
    // and the active array's front: every ring bucket is a strictly
    // later tick range, and the overflow heap is later still.
    const Entry *e = activePos < active.size() ? &active[activePos] : nullptr;
    if (nowHead &&
        (!e || nowHead->when < e->when ||
         (nowHead->when == e->when && nowHead->seq < e->seq))) {
        peekedNow = true;
        return nowHead;
    }
    peekedNow = false;
    return e->node;
}

EventQueue::Node *
EventQueue::takeNext()
{
    // Relies on the immediately preceding peekNext(); schedule()
    // cannot run in between (callbacks execute only after take).
    --pendingCount;
    if (peekedNow) {
        Node *n = nowHead;
        nowHead = n->next;
        if (!nowHead)
            nowTail = nullptr;
        return n;
    }
    return active[activePos++].node;
}

void
EventQueue::dispatch(Node *n)
{
    curTick = n->when;
    ++numExecuted;
    // Invoke in place: the node is off every list but not yet on the
    // free list, so callbacks may schedule (and allocate) freely.
    n->cb();
    releaseNode(n);
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    Node *n;
    while ((n = peekNext()) && n->when <= limit) {
        takeNext();
        dispatch(n);
    }
    return curTick;
}

Tick
EventQueue::runGuarded(const RunGuard &guard)
{
    if (!guard.engaged())
        return run();

    const Tick startTick = curTick;
    const double startHost = guard.maxHostSeconds > 0 ? hostThreadSeconds() : 0;

    // The host-time check needs a cadence even when the caller only
    // set maxHostSeconds; checking every event would thrash
    // clock_gettime.
    const std::uint64_t cadence = guard.progressCheckEvents != 0
                                      ? guard.progressCheckEvents
                                      : 4096;
    std::uint64_t nextCheck = numExecuted + cadence;
    std::uint64_t lastProbe =
        guard.progressProbe ? guard.progressProbe() : curTick;
    bool probeArmed = false;

    auto fail = [&](const char *what, std::string detail) {
        std::string diag = guard.diagnostic ? guard.diagnostic() : "";
        throw SimError(SimErrorKind::Watchdog,
                       strformat("watchdog: %s (%s)", what, detail.c_str()),
                       std::move(diag));
    };

    Node *n;
    while ((n = peekNext())) {
        // Budget check against a true peek: the event stays queued,
        // so a post-mortem diagnostic sees it as pending.
        if (guard.maxTicks != 0 && n->when > startTick + guard.maxTicks) {
            fail("simulated-tick budget exceeded",
                 strformat("next event at tick %llu, budget was %llu ticks "
                           "from tick %llu",
                           static_cast<unsigned long long>(n->when),
                           static_cast<unsigned long long>(guard.maxTicks),
                           static_cast<unsigned long long>(startTick)));
        }

        takeNext();
        dispatch(n);

        if (numExecuted < nextCheck)
            continue;
        nextCheck = numExecuted + cadence;

        if (guard.maxHostSeconds > 0) {
            double spent = hostThreadSeconds() - startHost;
            if (spent > guard.maxHostSeconds) {
                fail("host CPU-time budget exceeded",
                     strformat("%.1fs spent, budget %.1fs", spent,
                               guard.maxHostSeconds));
            }
        }

        if (guard.progressCheckEvents != 0) {
            std::uint64_t probe =
                guard.progressProbe ? guard.progressProbe() : curTick;
            if (probe != lastProbe) {
                lastProbe = probe;
                probeArmed = false;
            } else if (!probeArmed) {
                // Grace interval: require two consecutive stalled
                // windows so a long-latency phase isn't misread as a
                // livelock.
                probeArmed = true;
            } else {
                fail("no forward progress",
                     strformat("probe stuck at %llu for %llu events "
                               "(tick %llu)",
                               static_cast<unsigned long long>(probe),
                               static_cast<unsigned long long>(2 * cadence),
                               static_cast<unsigned long long>(curTick)));
            }
        }
    }
    return curTick;
}

std::vector<Tick>
EventQueue::pendingEventTicks(std::size_t max) const
{
    std::vector<Tick> out;
    if (max == 0 || pendingCount == 0)
        return out;
    out.reserve(max < pendingCount ? max : pendingCount);

    // (when, seq) keys only — unlike the old full-queue copy, the
    // callbacks are never touched.
    using Key = std::pair<Tick, std::uint64_t>;

    // Now-FIFO and active array first: together they hold everything
    // that precedes the ring buckets.
    std::vector<Key> head;
    head.reserve(active.size() - activePos + 8);
    for (const Node *n = nowHead; n; n = n->next)
        head.emplace_back(n->when, n->seq);
    for (std::size_t i = activePos; i < active.size(); ++i)
        head.emplace_back(active[i].when, active[i].seq);
    std::sort(head.begin(), head.end());
    for (const Key &k : head) {
        if (out.size() == max)
            return out;
        out.push_back(k.first);
    }

    // Ring buckets nearest-first; each bucket wholly precedes the
    // next, so we can stop as soon as `max` is reached.
    const std::size_t start = cursor & kBucketMask;
    for (std::size_t d = 1; d < kNumBuckets && out.size() < max; ++d) {
        const std::size_t slot = (start + d) & kBucketMask;
        if (!(bucketBits[slot >> 6] & (std::uint64_t(1) << (slot & 63))))
            continue;
        std::vector<Key> b;
        for (const Node *n = buckets[slot]; n; n = n->next)
            b.emplace_back(n->when, n->seq);
        std::sort(b.begin(), b.end());
        for (const Key &k : b) {
            if (out.size() == max)
                return out;
            out.push_back(k.first);
        }
    }

    if (out.size() < max && !farHeap.empty()) {
        std::vector<Key> far;
        far.reserve(farHeap.size());
        for (const Node *n : farHeap)
            far.emplace_back(n->when, n->seq);
        const std::size_t want =
            std::min(max - out.size(), far.size());
        std::partial_sort(far.begin(), far.begin() + want, far.end());
        for (std::size_t i = 0; i < want; ++i)
            out.push_back(far[i].first);
    }
    return out;
}

} // namespace cmpmem
