#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace cmpmem
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    assert(when >= curTick && "scheduling an event in the past");
    events.push(Event{when, nextSeq++, std::move(cb)});
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit) {
        // Move the callback out before popping so that callbacks may
        // schedule new events without invalidating the one in flight.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        curTick = ev.when;
        ++numExecuted;
        ev.cb();
    }
    return curTick;
}

} // namespace cmpmem
