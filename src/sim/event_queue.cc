#include "sim/event_queue.hh"

#include <ctime>
#include <utility>

#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

/**
 * CPU seconds consumed by the calling thread. Local copy of the
 * harness helper: sim/ must not depend on harness/, and the watchdog
 * wants per-thread time so one slow sweep job cannot spend the
 * budgets of its siblings.
 */
double
hostThreadSeconds()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

} // namespace

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < curTick) {
        // A model bug, not user error — but one that must surface in
        // release builds too, or the event silently fires "now" and
        // corrupts timing for the rest of the run.
        throwSimError(SimErrorKind::Model,
                      "event scheduled in the past (when=%llu, now=%llu)",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(curTick));
    }
    events.push(Event{when, nextSeq++, std::move(cb)});
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit) {
        // Move the callback out before popping so that callbacks may
        // schedule new events without invalidating the one in flight.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        curTick = ev.when;
        ++numExecuted;
        ev.cb();
    }
    return curTick;
}

Tick
EventQueue::runGuarded(const RunGuard &guard)
{
    if (!guard.engaged())
        return run();

    const Tick startTick = curTick;
    const double startHost = guard.maxHostSeconds > 0 ? hostThreadSeconds() : 0;

    // The host-time check needs a cadence even when the caller only
    // set maxHostSeconds; checking every event would thrash
    // clock_gettime.
    const std::uint64_t cadence = guard.progressCheckEvents != 0
                                      ? guard.progressCheckEvents
                                      : 4096;
    std::uint64_t nextCheck = numExecuted + cadence;
    std::uint64_t lastProbe =
        guard.progressProbe ? guard.progressProbe() : curTick;
    bool probeArmed = false;

    auto fail = [&](const char *what, std::string detail) {
        std::string diag = guard.diagnostic ? guard.diagnostic() : "";
        throw SimError(SimErrorKind::Watchdog,
                       strformat("watchdog: %s (%s)", what, detail.c_str()),
                       std::move(diag));
    };

    while (!events.empty()) {
        const Tick next = events.top().when;
        if (guard.maxTicks != 0 && next > startTick + guard.maxTicks) {
            fail("simulated-tick budget exceeded",
                 strformat("next event at tick %llu, budget was %llu ticks "
                           "from tick %llu",
                           static_cast<unsigned long long>(next),
                           static_cast<unsigned long long>(guard.maxTicks),
                           static_cast<unsigned long long>(startTick)));
        }

        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        curTick = ev.when;
        ++numExecuted;
        ev.cb();

        if (numExecuted < nextCheck)
            continue;
        nextCheck = numExecuted + cadence;

        if (guard.maxHostSeconds > 0) {
            double spent = hostThreadSeconds() - startHost;
            if (spent > guard.maxHostSeconds) {
                fail("host CPU-time budget exceeded",
                     strformat("%.1fs spent, budget %.1fs", spent,
                               guard.maxHostSeconds));
            }
        }

        if (guard.progressCheckEvents != 0) {
            std::uint64_t probe =
                guard.progressProbe ? guard.progressProbe() : curTick;
            if (probe != lastProbe) {
                lastProbe = probe;
                probeArmed = false;
            } else if (!probeArmed) {
                // Grace interval: require two consecutive stalled
                // windows so a long-latency phase isn't misread as a
                // livelock.
                probeArmed = true;
            } else {
                fail("no forward progress",
                     strformat("probe stuck at %llu for %llu events "
                               "(tick %llu)",
                               static_cast<unsigned long long>(probe),
                               static_cast<unsigned long long>(2 * cadence),
                               static_cast<unsigned long long>(curTick)));
            }
        }
    }
    return curTick;
}

std::vector<Tick>
EventQueue::pendingEventTicks(std::size_t max) const
{
    auto copy = events;
    std::vector<Tick> out;
    out.reserve(max < copy.size() ? max : copy.size());
    while (!copy.empty() && out.size() < max) {
        out.push_back(copy.top().when);
        copy.pop();
    }
    return out;
}

} // namespace cmpmem
