/**
 * @file
 * Minimal logging in the gem5 spirit: fatal() for user errors,
 * panic() for simulator bugs, warn()/inform() for status.
 */

#ifndef CMPMEM_SIM_LOG_HH
#define CMPMEM_SIM_LOG_HH

#include <cstdarg>

namespace cmpmem
{

/** Print an error caused by bad user input/configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an internal-invariant violation and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and sweeps). */
void setQuiet(bool quiet);

} // namespace cmpmem

#endif // CMPMEM_SIM_LOG_HH
