/**
 * @file
 * Minimal logging in the gem5 spirit: fatal() for user errors,
 * panic() for simulator bugs, warn()/inform() for status.
 *
 * Thread safety: the sweep engine (harness/sweep.hh) runs many
 * simulations concurrently, so the logging layer is thread-aware.
 * Direct writes are serialized under one mutex, the quiet flag is
 * atomic, and a worker can install a thread-local LogCapture so the
 * messages of one job are buffered and re-emitted as a block instead
 * of interleaving with other jobs mid-line.
 */

#ifndef CMPMEM_SIM_LOG_HH
#define CMPMEM_SIM_LOG_HH

#include <cstdarg>
#include <functional>
#include <mutex>
#include <string>

namespace cmpmem
{

/** vsnprintf into a std::string (the formatter behind fatal/warn). */
std::string vstrformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error caused by bad user input/configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an internal-invariant violation and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and sweeps). */
void setQuiet(bool quiet);

/**
 * Write @p text to stderr verbatim as one block, serialized against
 * all other log output (used by the sweep engine to re-emit a job's
 * captured log without interleaving).
 */
void emitRaw(const std::string &text);

/** Current quiet state (atomic load). */
bool isQuiet();

/**
 * The mutex serializing direct stderr writes. Exposed for one
 * purpose: the fork-based job supervisor (harness/supervisor.hh)
 * holds it across fork() so a child is never created while another
 * thread owns the lock — the child would inherit a locked,
 * never-to-be-unlocked mutex and deadlock on its first fatal() or
 * emitRaw(). Not for general use.
 */
std::mutex &logMutex();

/**
 * RAII sink that redirects this thread's warn()/inform() output into
 * a buffer for the capture's lifetime. Captures nest (the previous
 * sink is restored on destruction) and are strictly thread-local:
 * installing one never affects logging on other threads.
 *
 * fatal()/panic() bypass the capture — they first flush the pending
 * buffer so the context of a dying run is not lost, then write their
 * own message directly to stderr.
 *
 * A capture destroyed during stack unwinding (a job dying via
 * exception) does not lose its pending lines: they flush into the
 * enclosing capture if one exists, else straight to stderr, so a
 * failed sweep job still emits its log block.
 */
class LogCapture
{
  public:
    LogCapture();
    ~LogCapture();

    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    /** Captured text so far ("tag: message\n" lines, possibly empty). */
    const std::string &text() const { return buf; }

    bool empty() const { return buf.empty(); }

    /** Move the captured text out and reset the buffer. */
    std::string drain();

    /** Internal: append one formatted line (called by warn/inform). */
    void append(const char *tag, const std::string &msg);

    /**
     * Install a sink invoked with each line as it is appended (in
     * addition to buffering). The supervisor's forked child uses
     * this to stream its log over the result pipe incrementally, so
     * a SIGKILLed job still leaves its partial log with the parent.
     * The sink runs on the capturing thread; pass an empty function
     * to remove it.
     */
    void setSink(std::function<void(const std::string &)> s);

  private:
    LogCapture *prev;
    std::string buf;
    std::function<void(const std::string &)> sink;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_LOG_HH
