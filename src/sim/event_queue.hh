/**
 * @file
 * The global discrete-event scheduler driving a simulation.
 */

#ifndef CMPMEM_SIM_EVENT_QUEUE_HH
#define CMPMEM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * A single-threaded discrete-event queue ordered by (tick, sequence).
 *
 * Events scheduled for the same tick fire in scheduling order, which
 * keeps the simulation deterministic. Callbacks may schedule further
 * events, including at the current tick.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. Never decreases. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p cb to run at tick @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and asserts.
     */
    void schedule(Tick when, Callback cb);

    /** Run until the queue drains. @return the final tick reached. */
    Tick run();

    /**
     * Run until the queue drains or @p limit is reached.
     * Events at ticks > limit remain queued.
     */
    Tick runUntil(Tick limit);

    bool empty() const { return events.empty(); }

    std::size_t pending() const { return events.size(); }

    /** Total events executed so far (monotone; useful in tests). */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_EVENT_QUEUE_HH
