/**
 * @file
 * The global discrete-event scheduler driving a simulation.
 *
 * Engine layout (see DESIGN.md section 12): events live in pooled
 * nodes (free list, no per-event heap allocation) holding the
 * callback inline (sim/inline_function.hh), and are ordered by a
 * two-level calendar queue:
 *
 *  - a "now" FIFO for events at exactly the current tick (same-tick
 *    chains append and pop in O(1), sequence order by construction);
 *  - a sorted array over the *active* bucket (the one containing the
 *    current tick), popped by index;
 *  - a ring of 1024 buckets x 2^bucketShift ticks (256 by default,
 *    runtime-tunable — see setBucketShift) of unsorted singly-linked
 *    lists with an occupancy bitmap (push O(1), activation sorts one
 *    bucket);
 *  - an overflow heap for events beyond the ring horizon (~262 ns at
 *    the default geometry), migrated into the ring as the window
 *    advances.
 *
 * Pop order is globally (tick, sequence) — bit-identical to the old
 * single priority queue — because every container holds a disjoint,
 * ordered slice of the future: now-FIFO and active-bucket events
 * precede all ring buckets, which precede the overflow heap.
 */

#ifndef CMPMEM_SIM_EVENT_QUEUE_HH
#define CMPMEM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace cmpmem
{

class ParallelHook;
class ParallelEngine;

/**
 * A single-threaded discrete-event queue ordered by (tick, sequence).
 *
 * Events scheduled for the same tick fire in scheduling order, which
 * keeps the simulation deterministic. Callbacks may schedule further
 * events, including at the current tick.
 *
 * Parallel intra-run execution (DESIGN.md §17) layers on top without
 * changing this contract: while a ParallelEngine is driving the run,
 * a thread-local ParallelHook intercepts every schedule() so worker
 * threads never touch the queue structure, and the engine's shadow
 * queue replays the exact single-threaded (tick, seq) stream through
 * scheduleKeyOnly()/popKey().
 */
class EventQueue
{
  public:
    /**
     * Scheduled callbacks store their captures inline in the event
     * node; a capture beyond kCallbackBytes is a compile error at the
     * schedule() site (shrink it — every scheduler in src/mem,
     * src/core and src/stream fits).
     */
    static constexpr std::size_t kCallbackBytes = 48;
    using Callback = InlineFunction<void(), kCallbackBytes>;

    /**
     * Shard tag for an event. Core-local events (kernel resumes) are
     * tagged with their core id so the parallel engine can hand them
     * to that core's worker thread; everything else defaults to
     * kNoShard and executes in the serial (replay) phase. The tag is
     * ignored entirely in single-threaded runs.
     */
    static constexpr std::int32_t kNoShard = -1;

    /**
     * Calendar geometry bounds. The bucket shift is the log2 of the
     * tick width of one ring bucket, so the ring horizon is
     * kNumBuckets << shift ticks; events past the horizon take the
     * overflow heap. The shift is a runtime knob (SystemConfig::eq)
     * because the right width depends on the workload's scheduling
     * horizons — see recommendBucketShift().
     */
    static constexpr unsigned kDefaultBucketShift = 8;
    static constexpr unsigned kMinBucketShift = 4;
    static constexpr unsigned kMaxBucketShift = 20;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. Never decreases. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p f to run at tick @p when.
     *
     * The callable is constructed directly in a pooled event node —
     * the one move happens inline at the call site; only dispatch
     * and destruction go through the type-erased table.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and throws SimErrorKind::Model (in release builds too).
     */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        schedule(when, kNoShard, std::forward<F>(f));
    }

    /**
     * Shard-tagged schedule. The hook check precedes the past-time
     * check: while a parallel worker is executing, this queue's
     * curTick is stale for that worker, so the hook (which knows the
     * worker's true position) owns the past-schedule diagnostic.
     */
    template <typename F>
    void
    schedule(Tick when, std::int32_t shard, F &&f)
    {
        if (tlHook) {
            Callback cb;
            cb.emplace(std::forward<F>(f));
            routeToHook(when, shard, std::move(cb));
            return;
        }
        if (when < curTick)
            throwSchedulePast(when);
        Node *n = allocNode(when);
        n->shard = shard;
        n->cb.emplace(std::forward<F>(f));
        insert(n);
    }

    /**
     * The ParallelHook installed on the calling thread (null outside
     * a parallel-engine phase). Static: at most one engine drives a
     * thread at a time, and the hook must catch schedules regardless
     * of which queue reference a model component holds.
     */
    static ParallelHook *currentHook() { return tlHook; }

    /** Install/clear the calling thread's hook (engine only). */
    static void setCurrentHook(ParallelHook *h) { tlHook = h; }

    /** Run until the queue drains. @return the final tick reached. */
    Tick run();

    /**
     * Run until the queue drains or @p limit is reached.
     * Events at ticks > limit remain queued.
     */
    Tick runUntil(Tick limit);

    /**
     * Liveness budgets for runGuarded(). All budgets are optional;
     * with none set the guarded run degenerates to run(). The guard
     * only observes execution — it never changes event order or
     * timing, so a guarded run that stays within budget produces
     * bit-identical results to an unguarded one.
     */
    struct RunGuard
    {
        /** Budget of simulated ticks past the tick at run start. */
        Tick maxTicks = 0;

        /** Budget of host thread-CPU seconds (hang insurance). */
        double maxHostSeconds = 0;

        /**
         * Every this many executed events, progressProbe() must have
         * advanced; catches livelocks that neither drain the queue
         * nor run out the tick budget (0 disables the check).
         */
        std::uint64_t progressCheckEvents = 0;

        /**
         * Monotone forward-progress counter (instructions retired,
         * typically). When empty, the current tick is the probe, so
         * a same-tick self-rescheduling loop is still caught.
         */
        std::function<std::uint64_t()> progressProbe;

        /**
         * Machine-state dump attached to the thrown SimError
         * (CmpSystem wires dumpDiagnostics() here).
         */
        std::function<std::string()> diagnostic;

        bool engaged() const
        {
            return maxTicks != 0 || maxHostSeconds > 0 ||
                   progressCheckEvents != 0;
        }
    };

    /**
     * Run until the queue drains, enforcing @p guard's budgets.
     * Throws SimErrorKind::Watchdog (diagnostic attached) when a
     * budget is exceeded or forward progress stops.
     */
    Tick runGuarded(const RunGuard &guard);

    bool empty() const { return pendingCount == 0; }

    std::size_t pending() const { return pendingCount; }

    /** Total events executed so far (monotone; useful in tests). */
    std::uint64_t executed() const { return numExecuted; }

    //
    // Host-throughput telemetry. All three are pure functions of the
    // deterministic event stream (no host timing), so they are
    // bit-identical across runs and safe to ship in RunStats/JSON.
    //

    /** High-water mark of pending() over the queue's lifetime. */
    std::uint64_t peakPending() const { return peakPendingCount; }

    /**
     * Events whose horizon exceeded the calendar ring at schedule
     * time and were routed to the overflow heap (they migrate back
     * into the ring as the window advances).
     */
    std::uint64_t calendarOverflows() const { return overflowCount; }

    //
    // Calendar geometry: runtime bucket width plus the tuning hook
    // that picks it from an observed event stream (DESIGN.md §14).
    //

    /** Current log2 tick width of one ring bucket. */
    unsigned bucketShift() const { return tickShift; }

    /** Ring horizon in ticks under the current geometry. */
    Tick horizonTicks() const { return Tick(kNumBuckets) << tickShift; }

    /**
     * Set the bucket width to 2^@p shift ticks. Only legal on an
     * idle queue (nothing pending, nothing executed): geometry is
     * per-run, chosen before the first schedule(). Throws
     * SimErrorKind::Config for an out-of-range shift and
     * SimErrorKind::Model when the queue is already in use.
     *
     * Geometry never changes pop order — every container holds a
     * disjoint ordered slice of the future for any shift — so two
     * runs differing only in bucket shift execute bit-identical
     * event streams; only calendarOverflows() (and host speed)
     * moves. tests/test_sim.cc pins this.
     */
    void setBucketShift(unsigned shift);

    /**
     * Largest schedule-time horizon (when - now) among events that
     * overflowed the ring so far; 0 when nothing overflowed. A pure
     * function of the deterministic event stream.
     */
    Tick overflowHorizon() const { return maxOverflowHorizon; }

    /**
     * Tuning hook: the bucket shift a re-run of the observed stream
     * should use. Returns the current shift while the overflow heap
     * is cold (overflows/executed <= @p hot_threshold); when hot,
     * returns the smallest shift (capped at kMaxBucketShift) whose
     * ring horizon covers the worst overflow horizon seen. Callers
     * run a short dry run, read this, and rebuild the queue
     * (harness/runner.cc does exactly that for
     * SystemConfig::eq.autoTune).
     */
    unsigned recommendBucketShift(double hot_threshold = 0.01) const;

    /** Pool capacity in nodes (tests: free-list reuse under churn). */
    std::size_t nodesAllocated() const
    {
        return chunks.size() * kChunkNodes;
    }

    /**
     * Ticks of the next @p max pending events in firing order
     * (diagnostics only). Walks the calendar structures and
     * partial-sorts candidates; never copies callbacks.
     */
    std::vector<Tick> pendingEventTicks(std::size_t max = 16) const;

    //
    // Shadow-queue primitives for the parallel engine (DESIGN.md
    // §17). The engine keeps a second EventQueue that receives the
    // exact single-threaded sequence of schedule/pop operations, so
    // its (tick, seq) keys — and all deterministic telemetry above —
    // are bit-identical to a hostThreads=1 run by construction.
    //

    /**
     * Allocate a key for an event without a callback: the shadow
     * queue orders keys, the engine owns the callbacks. Same
     * past-time contract as schedule().
     * @return the sequence number assigned.
     */
    std::uint64_t scheduleKeyOnly(Tick when);

    /**
     * Pop the globally minimal pending event, advancing curTick and
     * the executed count exactly as dispatch() would, but without
     * invoking anything. @pre !empty().
     * @return the popped (tick, seq) key.
     */
    std::pair<Tick, std::uint64_t> popKey();

    /**
     * Insert an event under an externally assigned sequence number
     * (the shadow queue's). Used by the engine to feed replayed
     * cross-window events back into the real queue so their pop order
     * matches the single-threaded run. @pre when > now().
     */
    void insertWithSeq(Tick when, std::uint64_t seq, std::int32_t shard,
                       Callback &&cb);

    /**
     * Stable pointer to the current tick, for components that must
     * read "now" through an engine-controlled indirection (Core).
     */
    const Tick *nowPtr() const { return &curTick; }

  private:
    friend class ParallelEngine;
    /**
     * Ring geometry: 1024 buckets x 2^tickShift ticks (256-tick
     * buckets and a ~262 ns horizon at the default shift).
     */
    static constexpr std::size_t kNumBuckets = 1024;
    static constexpr std::size_t kBucketMask = kNumBuckets - 1;
    static constexpr std::size_t kBitmapWords = kNumBuckets / 64;
    static constexpr std::size_t kChunkNodes = 256;

    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr; ///< free list / bucket list / now FIFO
        std::int32_t shard = kNoShard;
        Callback cb;
    };

    /**
     * Sorted-array element for the active bucket: the key is copied
     * next to the pointer so ordering the bucket never chases nodes.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Node *node;

        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    /** (when, seq) strict ordering. */
    static bool
    before(const Node *a, const Node *b)
    {
        if (a->when != b->when)
            return a->when < b->when;
        return a->seq < b->seq;
    }

    Node *allocNode(Tick when);
    void releaseNode(Node *n);

    /** Out-of-line hook dispatch (ParallelHook is incomplete here). */
    static void routeToHook(Tick when, std::int32_t shard, Callback &&cb);

    static thread_local ParallelHook *tlHook;

    /** Route a fresh node into now-FIFO / active / ring / overflow. */
    void insert(Node *n);

    [[noreturn]] void throwSchedulePast(Tick when) const;

    void pushBucket(Node *n);
    void heapPush(std::vector<Node *> &heap, Node *n);
    Node *heapPop(std::vector<Node *> &heap);

    /**
     * Make the global minimum O(1)-reachable (advancing the window /
     * migrating overflow events as needed) and return it without
     * removing it; null when empty. The returned node stays owned by
     * the queue.
     */
    Node *peekNext();

    /** Remove the node peekNext() returned (must follow a peek). */
    Node *takeNext();

    /**
     * Advance the ring cursor to the earliest non-empty bucket (or
     * to the overflow heap's earliest bucket, whichever is sooner),
     * migrate newly-in-window overflow events, and drain that bucket
     * into the sorted active array. @return false when nothing is
     * pending beyond the now-FIFO and active array.
     */
    bool advanceWindow();

    /** Absolute bucket index of a tick under the current geometry. */
    std::uint64_t bucketOf(Tick t) const { return t >> tickShift; }

    /** The shared body of run()/runUntil()/runGuarded()'s inner step. */
    void dispatch(Node *n);

    // Node pool.
    std::vector<std::unique_ptr<Node[]>> chunks;
    Node *freeList = nullptr;

    // Now-FIFO: events at exactly curTick, in sequence order.
    Node *nowHead = nullptr;
    Node *nowTail = nullptr;

    // Active bucket (index == cursor): entries sorted by (when, seq),
    // consumed from activePos (pop is an index bump). Rebuilt by
    // advanceWindow(); same-bucket stragglers binary-search-insert
    // into the unconsumed tail.
    std::vector<Entry> active;
    std::size_t activePos = 0;

    // Ring buckets (unsorted lists) + occupancy bitmap. A slot holds
    // only events for the current window (cursor, cursor+kNumBuckets);
    // anything later sits in the overflow heap.
    Node *buckets[kNumBuckets] = {};
    std::uint64_t bucketBits[kBitmapWords] = {};

    // Far future: min-heap by (when, seq).
    std::vector<Node *> farHeap;

    /** Absolute index of the active bucket (contains curTick). */
    std::uint64_t cursor = 0;

    /** Set by peekNext(): the peeked node is nowHead, not the heap. */
    bool peekedNow = false;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::size_t pendingCount = 0;
    std::uint64_t peakPendingCount = 0;
    std::uint64_t overflowCount = 0;
    unsigned tickShift = kDefaultBucketShift;
    Tick maxOverflowHorizon = 0;
};

/**
 * Interception point for parallel intra-run execution (DESIGN.md
 * §17). While installed on a thread via EventQueue::setCurrentHook,
 * every EventQueue::schedule on that thread routes here instead of
 * touching the queue, and model code consults workerPhase to decide
 * whether an operation on shared state must be recorded for the
 * serial replay phase instead of executing immediately.
 */
class ParallelHook
{
  public:
    /**
     * Deferred-operation closure. Wider than EventQueue::Callback
     * because some deferred bodies (indexed DMA walks) carry an
     * owning pointer plus bookkeeping that a schedule callback never
     * needs.
     */
    using OpFn = InlineFunction<void(), 64>;

    virtual ~ParallelHook() = default;

    /**
     * A schedule issued while this hook is installed. @p shard is
     * the originating event's tag (EventQueue::kNoShard for shared
     * machinery).
     */
    virtual void routeSchedule(Tick when, std::int32_t shard,
                               EventQueue::Callback &&cb) = 0;

    /**
     * Record a deferred operation: @p op runs in the serial replay
     * phase at the key of the event that recorded it, in record
     * order. Only legal while workerPhase is true.
     */
    virtual void recordOp(OpFn &&op) = 0;

    /**
     * True on a worker thread executing core-local events in the
     * parallel phase: operations touching shared state must defer.
     * False on the coordinator during replay, where deferred bodies
     * execute with full access to shared structures.
     */
    bool workerPhase = false;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_EVENT_QUEUE_HH
