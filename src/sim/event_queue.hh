/**
 * @file
 * The global discrete-event scheduler driving a simulation.
 */

#ifndef CMPMEM_SIM_EVENT_QUEUE_HH
#define CMPMEM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * A single-threaded discrete-event queue ordered by (tick, sequence).
 *
 * Events scheduled for the same tick fire in scheduling order, which
 * keeps the simulation deterministic. Callbacks may schedule further
 * events, including at the current tick.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. Never decreases. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p cb to run at tick @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and throws SimErrorKind::Model (in release builds too).
     */
    void schedule(Tick when, Callback cb);

    /** Run until the queue drains. @return the final tick reached. */
    Tick run();

    /**
     * Run until the queue drains or @p limit is reached.
     * Events at ticks > limit remain queued.
     */
    Tick runUntil(Tick limit);

    /**
     * Liveness budgets for runGuarded(). All budgets are optional;
     * with none set the guarded run degenerates to run(). The guard
     * only observes execution — it never changes event order or
     * timing, so a guarded run that stays within budget produces
     * bit-identical results to an unguarded one.
     */
    struct RunGuard
    {
        /** Budget of simulated ticks past the tick at run start. */
        Tick maxTicks = 0;

        /** Budget of host thread-CPU seconds (hang insurance). */
        double maxHostSeconds = 0;

        /**
         * Every this many executed events, progressProbe() must have
         * advanced; catches livelocks that neither drain the queue
         * nor run out the tick budget (0 disables the check).
         */
        std::uint64_t progressCheckEvents = 0;

        /**
         * Monotone forward-progress counter (instructions retired,
         * typically). When empty, the current tick is the probe, so
         * a same-tick self-rescheduling loop is still caught.
         */
        std::function<std::uint64_t()> progressProbe;

        /**
         * Machine-state dump attached to the thrown SimError
         * (CmpSystem wires dumpDiagnostics() here).
         */
        std::function<std::string()> diagnostic;

        bool engaged() const
        {
            return maxTicks != 0 || maxHostSeconds > 0 ||
                   progressCheckEvents != 0;
        }
    };

    /**
     * Run until the queue drains, enforcing @p guard's budgets.
     * Throws SimErrorKind::Watchdog (diagnostic attached) when a
     * budget is exceeded or forward progress stops.
     */
    Tick runGuarded(const RunGuard &guard);

    bool empty() const { return events.empty(); }

    std::size_t pending() const { return events.size(); }

    /** Total events executed so far (monotone; useful in tests). */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Ticks of the next @p max pending events in firing order
     * (diagnostics only: copies the queue).
     */
    std::vector<Tick> pendingEventTicks(std::size_t max = 16) const;

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_EVENT_QUEUE_HH
