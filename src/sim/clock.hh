/**
 * @file
 * Clock-domain helper converting between cycles and ticks.
 */

#ifndef CMPMEM_SIM_CLOCK_HH
#define CMPMEM_SIM_CLOCK_HH

#include <cassert>
#include <cstdint>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * A fixed-frequency clock domain.
 *
 * Stores the period in picoseconds. 800 MHz -> 1250 ps, 1.6 GHz ->
 * 625 ps, 3.2 GHz -> 312.5 ps (rounded to 312), 6.4 GHz -> 156 ps.
 * The sub-picosecond rounding at the highest frequencies is below the
 * resolution of any reported result.
 */
class Clock
{
  public:
    Clock() : periodTicks(1250) {}

    explicit Clock(Tick period) : periodTicks(period)
    {
        assert(period > 0);
    }

    /** Build a clock from a frequency in MHz. */
    static Clock
    fromMhz(double mhz)
    {
        return Clock(static_cast<Tick>(1e6 / mhz + 0.5));
    }

    Tick period() const { return periodTicks; }

    double frequencyGhz() const { return 1000.0 / double(periodTicks); }

    /** Convert a cycle count in this domain to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * periodTicks; }

    /** Convert ticks to whole cycles in this domain (rounding up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + periodTicks - 1) / periodTicks;
    }

    /** The first clock edge at or after tick @p t. */
    Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % periodTicks;
        return rem == 0 ? t : t + (periodTicks - rem);
    }

  private:
    Tick periodTicks;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_CLOCK_HH
