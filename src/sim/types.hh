/**
 * @file
 * Fundamental simulation types shared by every cmpmem module.
 *
 * The global time base is one picosecond per Tick. This lets the
 * cycle-domain cores (800 MHz to 6.4 GHz) and the ns-domain uncore
 * (2.2 ns L2, 2.5 ns crossbar, 70 ns DRAM) coexist without rounding
 * surprises, exactly as the paper's Table 2 mixes the two domains.
 */

#ifndef CMPMEM_SIM_TYPES_HH
#define CMPMEM_SIM_TYPES_HH

#include <cstdint>

namespace cmpmem
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Simulated physical (flat, global) byte address. */
using Addr = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per common engineering units. */
constexpr Tick ticksPerNs = 1000;
constexpr Tick ticksPerUs = 1000 * ticksPerNs;
constexpr Tick ticksPerMs = 1000 * ticksPerUs;
constexpr Tick ticksPerSec = 1000 * ticksPerMs;

/** A tick value larger than any reachable simulation time. */
constexpr Tick maxTick = ~Tick(0);

/** The two on-chip memory models compared by the paper (Table 1). */
enum class MemModel
{
    CC,  ///< hardware-managed coherent cache-based memory
    STR, ///< software-managed streaming (local store + DMA) memory
};

/** Short human-readable name for a memory model. */
inline const char *
to_string(MemModel m)
{
    return m == MemModel::CC ? "CC" : "STR";
}

} // namespace cmpmem

#endif // CMPMEM_SIM_TYPES_HH
