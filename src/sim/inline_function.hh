/**
 * @file
 * A small-buffer-only, move-only callable: std::function without the
 * heap.
 *
 * The event engine runs one of these per simulated event, so the
 * per-event cost of the old EventQueue::Callback — a heap allocation
 * for any capture beyond two words plus type-erased dispatch through
 * a potentially cold callee — was pure scheduler overhead. This type
 * keeps the capture inline in the event node itself: construction is
 * a placement-new into caller-provided storage, a move is a relocate
 * (move-construct + destroy source), and there is deliberately *no*
 * heap fallback. A callable larger than the capacity is a
 * compile-time error, which turns "shrink that capture" into a build
 * failure at the offending schedule() site instead of a silent
 * performance regression.
 */

#ifndef CMPMEM_SIM_INLINE_FUNCTION_HH
#define CMPMEM_SIM_INLINE_FUNCTION_HH

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cmpmem
{

template <typename Sig, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineFunction(F &&f) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(f));
    }

    /** Empty, like std::function: supports `= nullptr` detach idioms. */
    InlineFunction(std::nullptr_t) {} // NOLINT: implicit like std::function

    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        assert(ops && "invoking an empty InlineFunction");
        return ops->invoke(buf, std::forward<Args>(args)...);
    }

    void
    reset()
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    /**
     * Construct a callable in place (no intermediate InlineFunction,
     * so the capture is moved exactly once, by inlined code — the
     * scheduler's hot path).
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable signature mismatch");
        static_assert(sizeof(Fn) <= Capacity,
                      "capture too large for the inline callback "
                      "buffer -- shrink the lambda's captures (see "
                      "sim/inline_function.hh)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture");
        reset();
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
        ops = &opsFor<Fn>;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        void (*relocate)(void *dst, void *src); ///< move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops opsFor{
        [](void *p, Args... args) -> R {
            return (*static_cast<Fn *>(p))(std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            ops->relocate(buf, other.buf);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[Capacity];
    const Ops *ops = nullptr;
};

} // namespace cmpmem

#endif // CMPMEM_SIM_INLINE_FUNCTION_HH
