/**
 * @file
 * Shared completion-callback alias for the miss path.
 *
 * Every miss-side structure (MSHR waiters, store-buffer space waiters,
 * barrier/lock waiters, L1 completion callbacks) hands the requester a
 * "done at tick T" continuation. They all use one inline-storage
 * callable so a callback can flow from Context::load through
 * L1Controller into an MshrFile waiter node without ever touching the
 * heap.
 *
 * Capacity is 24 bytes: the largest capture on the miss path is
 * [this, done, line, state, prefetched/cause/completeStoreBuffer]
 * completion lambdas, which L1Controller::scheduleLineDone packs into
 * 32 bytes *once* on the EventQueue (capacity 48); everything that
 * lands in a waiter node is [this] or [this, line] (8 or 16 bytes).
 * With alignas(max_align_t) padding, sizeof(TickCallback) == 32 — two
 * words smaller than the old std::function plus its heap block.
 */

#ifndef CMPMEM_SIM_CALLBACK_HH
#define CMPMEM_SIM_CALLBACK_HH

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace cmpmem
{

/// Miss-completion continuation: invoked with the tick the request
/// finished. Move-only, no heap fallback — an oversized capture is a
/// compile error at the offending call site.
using TickCallback = InlineFunction<void(Tick), 24>;

} // namespace cmpmem

#endif // CMPMEM_SIM_CALLBACK_HH
