#include "core/sync.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cmpmem
{

Barrier::Barrier(int participants, Tick release_latency)
    : parties(participants), releaseLatency(release_latency)
{
    assert(parties > 0);
}

bool
Barrier::arrive(Tick t, Waiter waiter, Tick &release_tick)
{
    latest = std::max(latest, t);
    ++arrived;

    if (arrived < parties) {
        waiters.push_back(std::move(waiter));
        return false;
    }

    // Last arrival: release everyone. Ping-pong swap instead of
    // move+clear so both vectors keep their sticky capacity and
    // steady-state episodes never reallocate (a released waiter may
    // re-arrive and push into `waiters` while we drain `waking`).
    release_tick = latest + releaseLatency;
    ++numEpisodes;
    arrived = 0;
    latest = 0;
    waking.swap(waiters);
    for (auto &w : waking)
        w(release_tick);
    waking.clear();
    return true;
}

Lock::Lock(Addr line_addr, Tick handoff_latency)
    : addr(line_addr), handoffLatency(handoff_latency)
{
}

bool
Lock::tryAcquire(Tick t, Waiter waiter)
{
    (void)t;
    ++numAcquires;
    if (!isHeld) {
        isHeld = true;
        return true;
    }
    ++numContended;
    waiters.push_back(std::move(waiter));
    return false;
}

void
Lock::release(Tick t)
{
    assert(isHeld);
    if (waitHead == waiters.size()) {
        waiters.clear();
        waitHead = 0;
        isHeld = false;
        return;
    }
    Waiter next = std::move(waiters[waitHead++]);
    if (waitHead == waiters.size()) {
        // Compact once drained; capacity is sticky, so steady-state
        // contention cycles stay allocation-free.
        waiters.clear();
        waitHead = 0;
    }
    // Lock stays held; ownership transfers after the handoff delay.
    next(t + handoffLatency);
}

} // namespace cmpmem
