#include "core/sync.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cmpmem
{

Barrier::Barrier(int participants, Tick release_latency)
    : parties(participants), releaseLatency(release_latency)
{
    assert(parties > 0);
}

bool
Barrier::arrive(Tick t, Waiter waiter, Tick &release_tick)
{
    latest = std::max(latest, t);
    ++arrived;

    if (arrived < parties) {
        waiters.push_back(std::move(waiter));
        return false;
    }

    // Last arrival: release everyone.
    release_tick = latest + releaseLatency;
    ++numEpisodes;
    arrived = 0;
    latest = 0;
    std::vector<Waiter> to_wake = std::move(waiters);
    waiters.clear();
    for (auto &w : to_wake)
        w(release_tick);
    return true;
}

Lock::Lock(Addr line_addr, Tick handoff_latency)
    : addr(line_addr), handoffLatency(handoff_latency)
{
}

bool
Lock::tryAcquire(Tick t, Waiter waiter)
{
    (void)t;
    ++numAcquires;
    if (!isHeld) {
        isHeld = true;
        return true;
    }
    ++numContended;
    waiters.push_back(std::move(waiter));
    return false;
}

void
Lock::release(Tick t)
{
    assert(isHeld);
    if (waiters.empty()) {
        isHeld = false;
        return;
    }
    Waiter next = std::move(waiters.front());
    waiters.pop_front();
    // Lock stays held; ownership transfers after the handoff delay.
    next(t + handoffLatency);
}

} // namespace cmpmem
