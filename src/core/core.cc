#include "core/core.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "mem/l1_controller.hh"
#include "sim/log.hh"

namespace cmpmem
{

Core::Core(int id, EventQueue &event_queue, Clock clock, MemModel model,
           L1Controller *dcache, ICacheModel icache, LocalStore *ls,
           DmaEngine *dma, CoherenceFabric *fabric, Cycles quantum_cycles)
    : coreId(id),
      eq(event_queue),
      nowSrc(event_queue.nowPtr()),
      clk(clock),
      memModel(model),
      dcachePtr(dcache),
      icacheModel(icache),
      lsPtr(ls),
      dmaPtr(dma),
      fabricPtr(fabric),
      quantumTicks(clock.cyclesToTicks(quantum_cycles))
{
}

void
Core::bindKernel(KernelTask t)
{
    task = std::move(t);
}

void
Core::start()
{
    assert(task.valid());
    eq.schedule(globalNow(), coreId, [this] { launch(); });
}

void
Core::launch()
{
    curTick = std::max(curTick, globalNow());
    task.resume();
    checkDone();
}

void
Core::checkDone()
{
    // A kernel that died with an exception surfaces here, right
    // after the resumption that killed it: propagate out of the
    // event loop rather than recording the core as finished.
    task.rethrowIfFailed();
    if (!isFinished && task.done()) {
        isFinished = true;
        finishedAt = curTick;
        if (finishCb)
            finishCb();
    }
}

void
Core::advanceUseful(Cycles c)
{
    st.bundles += c;
    Tick dt = clk.cyclesToTicks(c);
    curTick += dt;
    st.usefulTicks += dt;

    // Instruction fetch: statistical I-cache misses count as Useful
    // time per the paper's breakdown definition.
    Tick fetch_stall = icacheModel.accrue(c);
    if (fetch_stall) {
        curTick += fetch_stall;
        st.usefulTicks += fetch_stall;
    }
}

void
Core::advanceIssue()
{
    Tick dt = clk.period();
    curTick += dt;
    st.usefulTicks += dt;
    Tick fetch_stall = icacheModel.accrue(1);
    if (fetch_stall) {
        curTick += fetch_stall;
        st.usefulTicks += fetch_stall;
    }
}

void
Core::advanceUsefulTicks(Tick t)
{
    curTick += t;
    st.usefulTicks += t;
}

void
Core::applySnoopStalls()
{
    if (!dcachePtr)
        return;
    Cycles c = dcachePtr->takeSnoopStallCycles();
    if (c) {
        Tick dt = clk.cyclesToTicks(c);
        curTick += dt;
        st.loadStallTicks += dt;
    }
}

bool
Core::needsQuantumFlush() const
{
    return curTick > globalNow() + quantumTicks;
}

void
Core::beginWait(StallCat cat)
{
    pendingCat = cat;
    pendingIssue = curTick;
}

void
Core::finishWait(Tick when)
{
    Tick resume_at = std::max(when, pendingIssue);
    Tick stall = resume_at - pendingIssue;
    switch (pendingCat) {
      case StallCat::Useful:
        st.usefulTicks += stall;
        break;
      case StallCat::Sync:
        st.syncTicks += stall;
        break;
      case StallCat::Load:
        st.loadStallTicks += stall;
        break;
      case StallCat::Store:
        st.storeStallTicks += stall;
        break;
    }
    resumeKernel(resume_at);
}

TickCallback
Core::waitCallback()
{
    return [this](Tick when) { finishWait(when); };
}

void
Core::scheduleResume(Tick at)
{
    eq.schedule(at, coreId, [this, at] {
        curTick = std::max(curTick, at);
        auto h = std::exchange(suspendedAt, nullptr);
        assert(h && "resume with no suspended kernel");
        h.resume();
        checkDone();
    });
}

void
Core::resumeInline()
{
    auto h = std::exchange(suspendedAt, nullptr);
    assert(h && "inline resume with no suspended kernel");
    h.resume();
    checkDone();
}

void
Core::armQuantumFlush()
{
    // Part of the micro path's invalidation contract: while this
    // core is parked, other cores' fabric activity may remodel its
    // cache, so the cached line/permission must not persist across
    // the flush. (Snoops also invalidate directly; this is the
    // belt-and-braces half of the contract.)
    if (dcachePtr) {
        ParallelHook *h = EventQueue::currentHook();
        if (h && h->workerPhase) {
            // Worker phase: the micro entry is core-private, but the
            // clear must land in key order with the snoops that race
            // it, so it rides the deferred-op stream like every other
            // shared-state touch.
            L1Controller *d = dcachePtr;
            h->recordOp([d] { d->microInvalidate(); });
        } else {
            dcachePtr->microInvalidate();
        }
    }
    // No stall: the local clock already accounts for the elapsed
    // time; this merely hands control back to the event loop.
    scheduleResume(std::max(curTick, globalNow()));
}

void
Core::resumeKernel(Tick when)
{
    scheduleResume(std::max(when, globalNow()));
}

} // namespace cmpmem
