/**
 * @file
 * The kernel-facing execution context: the public API workload code
 * uses to interact with the simulated machine.
 *
 * Kernels are C++20 coroutines (KernelTask / Co<T>); every simulated
 * operation is a co_await on one of the methods below:
 *
 *   co_await ctx.compute(5);                 // 5 instruction bundles
 *   int v = co_await ctx.load<int>(a);       // timed global load
 *   co_await ctx.store<int>(a, v);           // timed global store
 *   co_await ctx.storeNA<int>(a, v);         // output-only store
 *   int idx = co_await ctx.atomicFetchAdd32(q, 1);
 *   co_await ctx.barrier(bar);
 *   co_await ctx.lockAcquire(lk); ... co_await ctx.lockRelease(lk);
 *
 * Streaming-model kernels additionally use the local store and DMA:
 *
 *   auto tk = co_await ctx.dmaGet(mem, lsOff, bytes);
 *   co_await ctx.dmaWait(tk);
 *   float x = co_await ctx.lsRead<float>(off);
 *
 * Loads return real values (functional memory), so kernels are real
 * algorithms and their outputs can be verified.
 */

#ifndef CMPMEM_CORE_CONTEXT_HH
#define CMPMEM_CORE_CONTEXT_HH

#include <coroutine>
#include <cstdint>
#include <cstring>

#include "core/core.hh"
#include "core/sync.hh"
#include "mem/functional_memory.hh"
#include "mem/l1_controller.hh"
#include "sim/task.hh"
#include "sim/types.hh"
#include "stream/dma_engine.hh"
#include "stream/local_store.hh"

namespace cmpmem
{

/** Knobs affecting kernel-visible behaviour. */
struct ContextConfig
{
    /** Honour storeNA() as a non-allocating PFS store. */
    bool pfsEnabled = false;

    /** Instruction-bundle overhead charged per DMA command. */
    Cycles dmaCommandCycles = 6;
};

/** Awaitable for operations without a result value. */
struct OpAwait
{
    Core *core = nullptr; ///< non-null: the kernel must suspend

    bool await_ready() const noexcept { return core == nullptr; }

    void
    await_suspend(std::coroutine_handle<> h) const noexcept
    {
        core->noteSuspended(h);
    }

    void await_resume() const noexcept {}
};

/**
 * Awaitable carrying a value computed at issue — or, for an
 * operation deferred to the parallel engine's serial replay phase,
 * delivered through the context's slot when the replayed body runs
 * (DESIGN.md §17).
 */
template <typename T>
struct ValueAwait
{
    Core *core = nullptr;
    T value{};
    const std::uint64_t *slot = nullptr;

    bool await_ready() const noexcept { return core == nullptr; }

    void
    await_suspend(std::coroutine_handle<> h) const noexcept
    {
        core->noteSuspended(h);
    }

    T
    await_resume() const noexcept
    {
        if (slot) {
            T v{};
            std::memcpy(&v, slot, sizeof(T));
            return v;
        }
        return value;
    }
};

class Context
{
  public:
    Context(Core &core, FunctionalMemory &mem, int tid, int nthreads,
            const ContextConfig &cfg);

    int tid() const { return threadId; }
    int nthreads() const { return threadCount; }
    MemModel model() const { return c.model(); }
    Tick now() const { return c.now(); }

    /** Untimed functional memory (setup/verification only). */
    FunctionalMemory &mem() { return fmem; }

    /** Local-store capacity in bytes (streaming model). */
    std::uint32_t
    lsCapacity() const
    {
        return c.model() == MemModel::STR ? 24 * 1024 : 0;
    }

    //
    // Compute.
    //

    /** Issue @p c fully packed integer instruction bundles. */
    OpAwait
    compute(Cycles cycles)
    {
        c.advanceUseful(cycles);
        return settle();
    }

    /** Issue @p c bundles dominated by floating-point slots. */
    OpAwait
    computeFp(Cycles cycles)
    {
        c.statsMut().fpBundles += cycles;
        c.advanceUseful(cycles);
        return settle();
    }

    //
    // Global (cached) memory.
    //

    template <typename T>
    ValueAwait<T>
    load(Addr addr)
    {
        static_assert(sizeof(T) <= 8, "one load moves at most 8 bytes");
        if (deferActive()) {
            // Worker phase: the probe chain reads and mutates shared
            // L1/fabric state, and even the functional read must wait
            // for the replay phase to observe earlier-tick stores by
            // other cores. The whole access replays at this event's
            // key; the value arrives through the slot.
            recordOp([this, addr] {
                T value = fmem.read<T>(addr);
                deferSlot = 0;
                std::memcpy(&deferSlot, &value, sizeof(T));
                ++c.statsMut().loads;
                c.applySnoopStalls();
                c.advanceIssue();
                if (c.dcache()->microLoad(addr)) {
                    settleInline();
                    return;
                }
                c.beginWait(StallCat::Load);
                if (c.dcache()->load(c.now(), addr, c.waitCallback()))
                    settleInline();
            });
            return {&c, T{}, &deferSlot};
        }
        T value = fmem.read<T>(addr);
        ++c.statsMut().loads;
        c.applySnoopStalls();
        c.advanceIssue();
        // Micro path: a repeat hit to the last line skips the full
        // controller probe and the wait-callback construction. The
        // probe itself performs the hit accounting (DESIGN.md §13).
        if (c.dcache()->microLoad(addr))
            return {settle().core, value};
        c.beginWait(StallCat::Load);
        bool hit = c.dcache()->load(c.now(), addr, c.waitCallback());
        if (hit)
            return {settle().core, value};
        return {&c, value};
    }

    template <typename T>
    OpAwait
    store(Addr addr, T value)
    {
        return storeImpl(addr, value, false);
    }

    /**
     * Store to output-only data: when the configuration enables PFS
     * ("Prepare For Store"), a miss allocates and validates the
     * cache line without reading the old values from memory.
     */
    template <typename T>
    OpAwait
    storeNA(Addr addr, T value)
    {
        return storeImpl(addr, value, cfg.pfsEnabled);
    }

    /** Atomic 32-bit fetch-and-add; the paper's sync building block. */
    ValueAwait<std::uint32_t> atomicFetchAdd32(Addr addr,
                                               std::int32_t delta);

    /**
     * Hybrid bulk prefetch (Section 7: "bulk transfer primitives for
     * cache-based systems could enable more efficient macroscopic
     * prefetching"): request every line of [addr, addr+bytes) into
     * this core's cache, fire-and-forget. Costs one issue bundle per
     * line; no-op on the streaming model (use DMA there).
     */
    OpAwait prefetchBlock(Addr addr, std::uint32_t bytes);

    //
    // Synchronization.
    //

    OpAwait barrier(Barrier &b);
    Co<void> lockAcquire(Lock &l);
    Co<void> lockRelease(Lock &l);

    /**
     * Task-queue helper: returns the next index below @p limit from
     * the shared counter at @p counter_addr, or a negative value
     * when the queue is exhausted.
     */
    Co<std::int64_t> nextTask(Addr counter_addr, std::uint64_t limit);

    //
    // Streaming: local store + DMA (valid only when model()==STR).
    //

    template <typename T>
    ValueAwait<T>
    lsRead(std::uint32_t offset)
    {
        LocalStore *ls = c.localStore();
        ls->countRead();
        ++c.statsMut().lsReads;
        T v = ls->read<T>(offset);
        c.advanceIssue();
        return {settle().core, v};
    }

    template <typename T>
    OpAwait
    lsWrite(std::uint32_t offset, T value)
    {
        LocalStore *ls = c.localStore();
        ls->countWrite();
        ++c.statsMut().lsWrites;
        ls->write<T>(offset, value);
        c.advanceIssue();
        return settle();
    }

    using Ticket = DmaEngine::Ticket;

    ValueAwait<Ticket> dmaGet(Addr mem_addr, std::uint32_t ls_off,
                              std::uint32_t bytes);
    ValueAwait<Ticket> dmaPut(Addr mem_addr, std::uint32_t ls_off,
                              std::uint32_t bytes);
    ValueAwait<Ticket> dmaGetStrided(Addr mem_base,
                                     std::uint64_t mem_stride,
                                     std::uint32_t row_bytes,
                                     std::uint32_t rows,
                                     std::uint32_t ls_off);
    ValueAwait<Ticket> dmaPutStrided(Addr mem_base,
                                     std::uint64_t mem_stride,
                                     std::uint32_t row_bytes,
                                     std::uint32_t rows,
                                     std::uint32_t ls_off);
    ValueAwait<Ticket> dmaGetIndexed(const std::vector<Addr> &addrs,
                                     std::uint32_t elem_bytes,
                                     std::uint32_t ls_off);
    ValueAwait<Ticket> dmaPutIndexed(const std::vector<Addr> &addrs,
                                     std::uint32_t elem_bytes,
                                     std::uint32_t ls_off);

    /** Block until DMA command @p tk has completed (Sync time). */
    OpAwait dmaWait(Ticket tk);

    /** Block until every DMA command issued so far has completed. */
    OpAwait dmaWaitAll();

    Core &core() { return c; }

  private:
    /** fatal() unless this core has a DMA engine (STR model). */
    void requireDma() const;

    /**
     * True while this kernel is executing on a parallel worker
     * thread (DESIGN.md §17): any operation touching shared or
     * cross-core-visible state must be recorded for the serial
     * replay phase instead of executing here. Purely-local work
     * (compute, local store, timing accrual) proceeds as usual.
     */
    static bool
    deferActive()
    {
        ParallelHook *h = EventQueue::currentHook();
        return h && h->workerPhase;
    }

    /** Record a deferred operation body (worker phase only). */
    static void
    recordOp(ParallelHook::OpFn &&op)
    {
        EventQueue::currentHook()->recordOp(std::move(op));
    }

    /**
     * Replay-side settle(): the same quantum decision, applied to a
     * kernel that the deferred awaitable already parked. Where the
     * single-threaded operation returned to the kernel without an
     * event, resume it here on the replay stack — the event count
     * stays identical.
     */
    void
    settleInline()
    {
        if (c.needsQuantumFlush())
            c.armQuantumFlush();
        else
            c.resumeInline();
    }

    /** Replay-side waitUntil(): mirrors waitUntil() exactly. */
    void
    waitUntilInline(Tick when, StallCat cat)
    {
        if (when <= c.now()) {
            settleInline();
            return;
        }
        c.beginWait(cat);
        c.finishWait(when);
    }

    /**
     * Worker-phase DMA command: reserve the ticket now (core-private
     * table, and puts snapshot their local-store source — see
     * DmaEngine::defer), record the timed walk for replay, and let
     * the kernel continue with the ticket exactly as the
     * single-threaded fire-and-forget path does.
     */
    Ticket deferDmaCommand(bool is_get,
                           std::vector<DmaEngine::Chunk> chunks);

    /** Quantum check shared by every inline-completing operation. */
    OpAwait
    settle()
    {
        if (c.needsQuantumFlush()) {
            c.armQuantumFlush();
            return {&c};
        }
        return {};
    }

    template <typename T>
    OpAwait
    storeImpl(Addr addr, T value, bool pfs)
    {
        static_assert(sizeof(T) <= 8, "one store moves at most 8 bytes");
        if (deferActive()) {
            recordOp([this, addr, value, pfs] {
                fmem.write(addr, value);
                ++c.statsMut().stores;
                c.applySnoopStalls();
                c.advanceIssue();
                if (c.dcache()->microStore(c.now(), addr)) {
                    settleInline();
                    return;
                }
                c.beginWait(StallCat::Store);
                if (c.dcache()->store(c.now(), addr, pfs,
                                      c.waitCallback()))
                    settleInline();
            });
            return {&c};
        }
        fmem.write(addr, value);
        ++c.statsMut().stores;
        c.applySnoopStalls();
        c.advanceIssue();
        // Micro path: a repeat store to the last line, held Modified,
        // retires with the same accounting as the full hit path.
        if (c.dcache()->microStore(c.now(), addr))
            return settle();
        c.beginWait(StallCat::Store);
        bool ok = c.dcache()->store(c.now(), addr, pfs, c.waitCallback());
        if (ok)
            return settle();
        return {&c};
    }

    /** Block until @p when, charging the wait to @p cat. */
    OpAwait
    waitUntil(Tick when, StallCat cat)
    {
        if (when <= c.now())
            return settle();
        c.beginWait(cat);
        c.finishWait(when);
        return {&c};
    }

    Core &c;
    FunctionalMemory &fmem;
    int threadId;
    int threadCount;
    ContextConfig cfg;

    /**
     * Value slot for deferred operations: the replayed body writes
     * the result here, the suspended awaitable reads it on resume.
     * One slot suffices — a kernel has at most one deferred
     * value-producing operation outstanding (it suspends on it).
     */
    std::uint64_t deferSlot = 0;
};

} // namespace cmpmem

#endif // CMPMEM_CORE_CONTEXT_HH
