/**
 * @file
 * Statistical instruction-cache model.
 *
 * Each core has a 16 KB 2-way I-cache (Table 2). Simulating real
 * instruction fetch would require real binaries; instead, each
 * workload variant declares a characteristic I-cache miss rate per
 * thousand instruction bundles (see DESIGN.md substitutions). The
 * model deterministically injects that rate and charges a fixed
 * refill latency (code working sets fit in the L2 after warm-up).
 * This is sufficient to reproduce the paper's observations that
 * MPEG-2 "suffers a moderate number of instruction cache misses" and
 * that the stream-optimized code of Figure 9 notably increases them.
 */

#ifndef CMPMEM_CORE_ICACHE_MODEL_HH
#define CMPMEM_CORE_ICACHE_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace cmpmem
{

struct ICacheConfig
{
    Tick missLatency = 25 * ticksPerNs; ///< refill from L2
};

class ICacheModel
{
  public:
    explicit ICacheModel(const ICacheConfig &cfg);

    /** Set by the workload variant before the kernel starts. */
    void setMissesPerKiloInstr(double mpki) { this->mpki = mpki; }
    double missesPerKiloInstr() const { return mpki; }

    /**
     * Account for @p bundles issued instruction bundles.
     * @return the fetch-stall ticks to charge the core.
     */
    Tick accrue(std::uint64_t bundles);

    std::uint64_t fetches() const { return numFetches; }
    std::uint64_t misses() const { return numMisses; }

  private:
    ICacheConfig cfg;
    double mpki = 0.0;
    double missCredit = 0.0;
    std::uint64_t numFetches = 0;
    std::uint64_t numMisses = 0;
};

} // namespace cmpmem

#endif // CMPMEM_CORE_ICACHE_MODEL_HH
