/**
 * @file
 * The in-order processor core timing model.
 *
 * Models a Tensilica-LX-like 3-way VLIW in-order core at the level
 * the paper's comparison needs: one instruction bundle per cycle
 * with at most one load/store slot, blocking on load misses, a
 * store buffer that lets loads bypass store misses (weak
 * consistency), and precise accounting of execution time into the
 * paper's four categories: Useful (execution + fetch + non-memory
 * pipeline stalls), Sync (locks, barriers, DMA waits), Load stalls,
 * and Store stalls (store-buffer-full time).
 *
 * Cores advance a local clock; L1 hits and compute never touch the
 * event queue. A core re-synchronizes with global time whenever it
 * blocks, and at least every quantum cycles, bounding timing skew.
 */

#ifndef CMPMEM_CORE_CORE_HH
#define CMPMEM_CORE_CORE_HH

#include <coroutine>
#include <cstdint>
#include <functional>

#include "core/icache_model.hh"
#include "sim/callback.hh"
#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace cmpmem
{

class L1Controller;
class DmaEngine;
class LocalStore;
class CoherenceFabric;

/** Execution-time categories of the paper's Figure 2 breakdown. */
enum class StallCat : std::uint8_t
{
    Useful,
    Sync,
    Load,
    Store,
};

/** Per-core statistics. */
struct CoreStats
{
    Tick usefulTicks = 0;
    Tick syncTicks = 0;
    Tick loadStallTicks = 0;
    Tick storeStallTicks = 0;

    std::uint64_t bundles = 0; ///< instruction bundles issued
    std::uint64_t fpBundles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomics = 0;
    std::uint64_t lsReads = 0;
    std::uint64_t lsWrites = 0;
    std::uint64_t dmaCommands = 0;
    std::uint64_t barriers = 0;

    Tick totalTicks() const
    {
        return usefulTicks + syncTicks + loadStallTicks + storeStallTicks;
    }

    std::uint64_t
    instructions() const
    {
        return bundles + loads + stores + atomics + lsReads + lsWrites;
    }
};

/**
 * One simulated core.
 */
class Core
{
  public:
    Core(int id, EventQueue &eq, Clock clock, MemModel model,
         L1Controller *dcache, ICacheModel icache, LocalStore *ls,
         DmaEngine *dma, CoherenceFabric *fabric,
         Cycles quantum_cycles = 100);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Attach the kernel coroutine; start() schedules the launch. */
    void bindKernel(KernelTask task);
    void start();

    bool finished() const { return isFinished; }
    Tick finishTick() const { return finishedAt; }

    /** Invoked once when the kernel runs to completion. */
    void onFinish(std::function<void()> cb) { finishCb = std::move(cb); }

    int id() const { return coreId; }
    MemModel model() const { return memModel; }
    Tick now() const { return curTick; }
    const Clock &clock() const { return clk; }
    EventQueue &eventQueue() { return eq; }

    /**
     * Global time as this core must observe it. Defaults to the
     * event queue's tick; the parallel engine repoints it (per-core
     * slot during the worker phase, the shared replay cursor during
     * serial phases) so quantum arithmetic reads the same "now" a
     * single-threaded run would at the same event.
     */
    Tick globalNow() const { return *nowSrc; }

    /** Repoint globalNow() (parallel engine only). */
    void setNowSource(const Tick *src) { nowSrc = src; }

    L1Controller *dcache() { return dcachePtr; }
    LocalStore *localStore() { return lsPtr; }
    DmaEngine *dma() { return dmaPtr; }
    CoherenceFabric *fabric() { return fabricPtr; }
    ICacheModel &icache() { return icacheModel; }
    const ICacheModel &icache() const { return icacheModel; }

    const CoreStats &stats() const { return st; }
    CoreStats &statsMut() { return st; }

    //
    // Methods below are the contract with Context awaitables.
    //

    /** Advance local time by @p c cycles of Useful work. */
    void advanceUseful(Cycles c);

    /**
     * Charge the issue cycle of one memory instruction (a bundle
     * with the load/store slot occupied).
     */
    void advanceIssue();

    /** Charge @p t ticks of Useful time (icache stalls etc.). */
    void advanceUsefulTicks(Tick t);

    /** Consume pending snoop-occupancy stalls from the D-cache. */
    void applySnoopStalls();

    /** Does local time exceed global time by more than the quantum? */
    bool needsQuantumFlush() const;

    /**
     * Record that the kernel is about to suspend waiting for an
     * event classified as @p cat, issued at the current local time.
     */
    void beginWait(StallCat cat);

    /**
     * Completion callback target: schedules the kernel's resumption
     * at @p when (>= current global time) and charges the wait to
     * the category captured by beginWait().
     */
    void finishWait(Tick when);

    /** A reusable completion callback bound to finishWait(). */
    TickCallback waitCallback();

    /** Arm a plain quantum-flush resume at the current local time. */
    void armQuantumFlush();

    /** Stash the suspension point (called from await_suspend). */
    void noteSuspended(std::coroutine_handle<> h) { suspendedAt = h; }

    /**
     * Resume the parked kernel right now, on the current host stack,
     * without an event. Used by replayed deferred operations whose
     * single-threaded counterpart returned to the kernel without
     * suspending (L1 hits, satisfied waits): the event-count and
     * timing effects must match that no-event path exactly.
     */
    void resumeInline();

  private:
    void resumeKernel(Tick when);

    /**
     * The one kernel-resume event: advance the local clock to @p at,
     * resume the parked coroutine, and reap it if it finished. Both
     * quantum flushes and wait completions schedule through here.
     */
    void scheduleResume(Tick at);

    void launch();
    void checkDone();

    int coreId;
    EventQueue &eq;
    const Tick *nowSrc;
    Clock clk;
    MemModel memModel;
    L1Controller *dcachePtr;
    ICacheModel icacheModel;
    LocalStore *lsPtr;
    DmaEngine *dmaPtr;
    CoherenceFabric *fabricPtr;
    Tick quantumTicks;

    KernelTask task;
    std::coroutine_handle<> suspendedAt;
    Tick curTick = 0;

    StallCat pendingCat = StallCat::Useful;
    Tick pendingIssue = 0;

    bool isFinished = false;
    Tick finishedAt = 0;
    std::function<void()> finishCb;

    CoreStats st;
};

} // namespace cmpmem

#endif // CMPMEM_CORE_CORE_HH
