#include "core/icache_model.hh"

#include <cmath>

namespace cmpmem
{

ICacheModel::ICacheModel(const ICacheConfig &config) : cfg(config) {}

Tick
ICacheModel::accrue(std::uint64_t bundles)
{
    numFetches += bundles;
    if (mpki <= 0.0)
        return 0;

    missCredit += double(bundles) * mpki / 1000.0;
    if (missCredit < 1.0)
        return 0;

    auto misses = static_cast<std::uint64_t>(missCredit);
    missCredit -= double(misses);
    numMisses += misses;
    return Tick(misses) * cfg.missLatency;
}

} // namespace cmpmem
