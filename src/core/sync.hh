/**
 * @file
 * Synchronization objects shared by workload kernels: barriers and
 * locks. Time a core spends blocked in these is the "Sync" component
 * of the paper's execution-time breakdown (together with DMA waits
 * in the streaming model).
 *
 * The objects are model-agnostic: a waiting core parks a resume
 * callback; arrival/acquire costs (the atomic operations themselves)
 * are charged by the Context through the cache or the remote-atomic
 * path, so contention timing comes from the real coherence fabric.
 */

#ifndef CMPMEM_CORE_SYNC_HH
#define CMPMEM_CORE_SYNC_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace cmpmem
{

/**
 * A reusable N-party barrier.
 */
class Barrier
{
  public:
    using Waiter = TickCallback;

    /**
     * @param participants number of arriving cores per episode.
     * @param release_latency broadcast delay from last arrival to
     *        waiter wake-up (an invalidate + refetch of the barrier
     *        flag, roughly one global round trip).
     */
    explicit Barrier(int participants,
                     Tick release_latency = 20 * ticksPerNs);

    /**
     * Core arrival at tick @p t.
     * @return true when this arrival releases the barrier; the
     *         release tick is stored in @p release_tick and all
     *         parked waiters have been resumed at it. Otherwise the
     *         caller must suspend; @p waiter fires at release.
     */
    bool arrive(Tick t, Waiter waiter, Tick &release_tick);

    int participants() const { return parties; }
    std::uint64_t episodes() const { return numEpisodes; }

  private:
    int parties;
    Tick releaseLatency;
    int arrived = 0;
    Tick latest = 0;
    std::vector<Waiter> waiters;
    std::vector<Waiter> waking; ///< release scratch; swap()ed so both
                                ///< vectors keep their capacity
    std::uint64_t numEpisodes = 0;
};

/**
 * A queue lock (list-based, FIFO handoff).
 */
class Lock
{
  public:
    using Waiter = TickCallback;

    /**
     * @param line_addr address of the lock word in simulated memory
     *        (the line the acquire/release RMWs bounce through).
     * @param handoff_latency line-transfer delay from releaser to
     *        the next waiter.
     */
    explicit Lock(Addr line_addr, Tick handoff_latency = 20 * ticksPerNs);

    Addr lineAddr() const { return addr; }

    /**
     * Attempt to take the lock at tick @p t.
     * @return true if acquired immediately; otherwise the caller
     *         suspends and @p waiter fires when the lock is handed
     *         over.
     */
    bool tryAcquire(Tick t, Waiter waiter);

    /**
     * Release at tick @p t; hands the lock to the oldest waiter.
     * @pre held()
     */
    void release(Tick t);

    bool held() const { return isHeld; }
    std::uint64_t acquisitions() const { return numAcquires; }
    std::uint64_t contendedAcquisitions() const { return numContended; }

  private:
    Addr addr;
    Tick handoffLatency;
    bool isHeld = false;
    std::vector<Waiter> waiters; ///< FIFO: [waitHead, size) pending
    std::size_t waitHead = 0;
    std::uint64_t numAcquires = 0;
    std::uint64_t numContended = 0;
};

} // namespace cmpmem

#endif // CMPMEM_CORE_SYNC_HH
