#include "core/context.hh"

#include <cassert>

#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

Context::Context(Core &core, FunctionalMemory &mem, int tid, int nthreads,
                 const ContextConfig &config)
    : c(core), fmem(mem), threadId(tid), threadCount(nthreads), cfg(config)
{
}

ValueAwait<std::uint32_t>
Context::atomicFetchAdd32(Addr addr, std::int32_t delta)
{
    if (deferActive()) {
        // Both the functional RMW and the timed path touch shared
        // state; the whole operation replays at this event's key.
        recordOp([this, addr, delta] {
            auto old = fmem.read<std::uint32_t>(addr);
            fmem.write<std::uint32_t>(
                addr, old + std::uint32_t(std::int64_t(delta)));
            deferSlot = old;
            ++c.statsMut().atomics;
            c.applySnoopStalls();
            c.advanceIssue();
            c.beginWait(StallCat::Sync);
            if (c.model() == MemModel::CC) {
                c.dcache()->atomic(c.now(), addr, c.waitCallback());
            } else {
                CoherenceFabric *fab = c.fabric();
                Tick done = fab->remoteAtomic(c.now(),
                                              fab->clusterOf(c.id()),
                                              addr & ~Addr(31));
                c.finishWait(done);
            }
        });
        return {&c, 0, &deferSlot};
    }

    // Functional effect in core-issue order; see DESIGN.md on quantum
    // skew. Data-race-free kernels only reach a shared counter
    // through this path, which serializes them.
    auto old = fmem.read<std::uint32_t>(addr);
    fmem.write<std::uint32_t>(addr,
                              old + std::uint32_t(std::int64_t(delta)));
    ++c.statsMut().atomics;
    c.applySnoopStalls();
    c.advanceIssue();
    c.beginWait(StallCat::Sync);

    if (c.model() == MemModel::CC) {
        c.dcache()->atomic(c.now(), addr, c.waitCallback());
    } else {
        // Streaming model: the RMW executes at the shared L2's
        // atomic unit.
        CoherenceFabric *fab = c.fabric();
        Tick done = fab->remoteAtomic(
            c.now(), fab->clusterOf(c.id()),
            addr & ~Addr(31));
        c.finishWait(done);
    }
    return {&c, old};
}

OpAwait
Context::prefetchBlock(Addr addr, std::uint32_t bytes)
{
    constexpr Addr line = 32;
    Addr first = addr & ~(line - 1);
    Addr last = (addr + bytes - 1) & ~(line - 1);
    if (deferActive()) {
        // Issue timing is local; each prefetch probe is a shared-L1
        // touch, fire-and-forget at the issue tick it would have had.
        for (Addr a = first; a <= last; a += line) {
            c.advanceIssue();
            Tick t = c.now();
            recordOp([this, t, a] { c.dcache()->softwarePrefetch(t, a); });
        }
        return settle();
    }
    for (Addr a = first; a <= last; a += line) {
        c.advanceIssue();
        c.dcache()->softwarePrefetch(c.now(), a);
    }
    return settle();
}

OpAwait
Context::barrier(Barrier &b)
{
    if (deferActive()) {
        Barrier *bp = &b;
        recordOp([this, bp] {
            ++c.statsMut().barriers;
            c.applySnoopStalls();
            c.advanceIssue();
            c.beginWait(StallCat::Sync);
            Tick release = 0;
            if (bp->arrive(c.now(), c.waitCallback(), release))
                c.finishWait(release);
        });
        return {&c};
    }
    ++c.statsMut().barriers;
    c.applySnoopStalls();
    c.advanceIssue(); // the arrival store
    c.beginWait(StallCat::Sync);
    Tick release = 0;
    if (b.arrive(c.now(), c.waitCallback(), release)) {
        // Last arriver also waits for the release broadcast.
        c.finishWait(release);
    }
    return {&c};
}

Co<void>
Context::lockAcquire(Lock &l)
{
    // The lock word itself bounces through the memory system: charge
    // an atomic RMW, then park on the modelled queue if held.
    co_await atomicFetchAdd32(l.lineAddr(), 0);
    if (deferActive()) {
        Lock *lp = &l;
        recordOp([this, lp] {
            c.beginWait(StallCat::Sync);
            // An uncontended acquire returns to the kernel without
            // an event in the single-threaded path (no quantum check
            // there), so the replay mirror is a plain inline resume.
            if (lp->tryAcquire(c.now(), c.waitCallback()))
                c.resumeInline();
        });
        co_await OpAwait{&c};
        co_return;
    }
    c.beginWait(StallCat::Sync);
    if (!l.tryAcquire(c.now(), c.waitCallback()))
        co_await OpAwait{&c};
}

Co<void>
Context::lockRelease(Lock &l)
{
    co_await store<std::uint32_t>(l.lineAddr(), 0);
    if (deferActive()) {
        // Fire-and-forget: the kernel continues, so pin the release
        // to the tick it has now — by replay time the local clock
        // may have moved on.
        Lock *lp = &l;
        Tick t = c.now();
        recordOp([lp, t] { lp->release(t); });
        co_return;
    }
    l.release(c.now());
}

Co<std::int64_t>
Context::nextTask(Addr counter_addr, std::uint64_t limit)
{
    std::uint32_t idx = co_await atomicFetchAdd32(counter_addr, 1);
    if (std::uint64_t(idx) >= limit)
        co_return -1;
    co_return std::int64_t(idx);
}

void
Context::requireDma() const
{
    if (!c.dma())
        throwSimError(SimErrorKind::Model,
                      "DMA used on a core without a DMA engine "
                      "(cache-based model kernels must not issue DMA "
                      "commands)");
}

Context::Ticket
Context::deferDmaCommand(bool is_get, std::vector<DmaEngine::Chunk> chunks)
{
    DmaEngine *dma = c.dma();
    auto p = dma->defer(c.now(), is_get, std::move(chunks));
    Ticket tk = p->ticket;
    recordOp([dma, p = std::move(p)] { dma->executePending(*p); });
    return tk;
}

ValueAwait<Context::Ticket>
Context::dmaGet(Addr mem_addr, std::uint32_t ls_off, std::uint32_t bytes)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    c.advanceUseful(cfg.dmaCommandCycles);
    if (deferActive()) {
        Ticket tk = deferDmaCommand(
            true, DmaEngine::seqChunks(mem_addr, ls_off, bytes));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->get(c.now(), mem_addr, ls_off, bytes);
    return {settle().core, tk};
}

ValueAwait<Context::Ticket>
Context::dmaPut(Addr mem_addr, std::uint32_t ls_off, std::uint32_t bytes)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    c.advanceUseful(cfg.dmaCommandCycles);
    if (deferActive()) {
        Ticket tk = deferDmaCommand(
            false, DmaEngine::seqChunks(mem_addr, ls_off, bytes));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->put(c.now(), mem_addr, ls_off, bytes);
    return {settle().core, tk};
}

ValueAwait<Context::Ticket>
Context::dmaGetStrided(Addr mem_base, std::uint64_t mem_stride,
                       std::uint32_t row_bytes, std::uint32_t rows,
                       std::uint32_t ls_off)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    c.advanceUseful(cfg.dmaCommandCycles);
    if (deferActive()) {
        Ticket tk = deferDmaCommand(
            true, DmaEngine::stridedChunks(mem_base, mem_stride,
                                           row_bytes, rows, ls_off));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->getStrided(c.now(), mem_base, mem_stride,
                                    row_bytes, rows, ls_off);
    return {settle().core, tk};
}

ValueAwait<Context::Ticket>
Context::dmaPutStrided(Addr mem_base, std::uint64_t mem_stride,
                       std::uint32_t row_bytes, std::uint32_t rows,
                       std::uint32_t ls_off)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    c.advanceUseful(cfg.dmaCommandCycles);
    if (deferActive()) {
        Ticket tk = deferDmaCommand(
            false, DmaEngine::stridedChunks(mem_base, mem_stride,
                                            row_bytes, rows, ls_off));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->putStrided(c.now(), mem_base, mem_stride,
                                    row_bytes, rows, ls_off);
    return {settle().core, tk};
}

ValueAwait<Context::Ticket>
Context::dmaGetIndexed(const std::vector<Addr> &addrs,
                       std::uint32_t elem_bytes, std::uint32_t ls_off)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    // Indexed transfers also cost a bundle per element to stage the
    // address list.
    c.advanceUseful(cfg.dmaCommandCycles + Cycles(addrs.size()));
    if (deferActive()) {
        // The chunk list is built now: the caller may reuse its
        // address vector the moment this returns.
        Ticket tk = deferDmaCommand(
            true, DmaEngine::indexedChunks(addrs, elem_bytes, ls_off));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->getIndexed(c.now(), addrs, elem_bytes, ls_off);
    return {settle().core, tk};
}

ValueAwait<Context::Ticket>
Context::dmaPutIndexed(const std::vector<Addr> &addrs,
                       std::uint32_t elem_bytes, std::uint32_t ls_off)
{
    requireDma();
    ++c.statsMut().dmaCommands;
    c.advanceUseful(cfg.dmaCommandCycles + Cycles(addrs.size()));
    if (deferActive()) {
        Ticket tk = deferDmaCommand(
            false, DmaEngine::indexedChunks(addrs, elem_bytes, ls_off));
        return {settle().core, tk};
    }
    Ticket tk = c.dma()->putIndexed(c.now(), addrs, elem_bytes, ls_off);
    return {settle().core, tk};
}

OpAwait
Context::dmaWait(Ticket tk)
{
    if (!c.dma())
        throwSimError(SimErrorKind::Model,
                      "dmaWait() used on a core without a DMA engine "
                      "(cache-based model)");
    if (deferActive()) {
        // The completion tick is only known once the command's walk
        // has replayed; read it in the replay phase, where program
        // order guarantees the walk came first.
        recordOp([this, tk] {
            waitUntilInline(c.dma()->completionTick(tk), StallCat::Sync);
        });
        return {&c};
    }
    return waitUntil(c.dma()->completionTick(tk), StallCat::Sync);
}

OpAwait
Context::dmaWaitAll()
{
    // A no-op on the cache-based model so that kernels shared
    // between models can end with an unconditional drain.
    if (!c.dma())
        return settle();
    if (deferActive()) {
        recordOp([this] {
            waitUntilInline(c.dma()->allDoneTick(), StallCat::Sync);
        });
        return {&c};
    }
    return waitUntil(c.dma()->allDoneTick(), StallCat::Sync);
}

} // namespace cmpmem
