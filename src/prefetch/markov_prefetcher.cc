#include "prefetch/markov_prefetcher.hh"

#include <algorithm>

#include "sim/sim_error.hh"

namespace cmpmem
{

MarkovPrefetcher::MarkovPrefetcher(const PrefetcherConfig &c) : cfg(c)
{
    if (cfg.markovRows == 0 ||
        (cfg.markovRows & (cfg.markovRows - 1)) != 0)
        throwSimError(SimErrorKind::Config,
                      "Markov table rows must be a power of two (got %u)",
                      cfg.markovRows);
    if (cfg.markovSuccessors == 0)
        throwSimError(SimErrorKind::Config,
                      "Markov table needs at least one successor slot");
    rows.resize(cfg.markovRows);
}

MarkovPrefetcher::Row &
MarkovPrefetcher::rowFor(Addr line)
{
    return rows[std::size_t(line / cfg.lineBytes) &
                (cfg.markovRows - 1)];
}

void
MarkovPrefetcher::record(Addr from, Addr to)
{
    Row &row = rowFor(from);
    if (!row.valid || row.tag != from) {
        // Direct-mapped conflict (or cold row): retag and start over.
        row.valid = true;
        row.tag = from;
        row.succ.clear();
    }
    auto it = std::find(row.succ.begin(), row.succ.end(), to);
    if (it != row.succ.end())
        row.succ.erase(it);
    row.succ.insert(row.succ.begin(), to);
    if (row.succ.size() > cfg.markovSuccessors)
        row.succ.resize(cfg.markovSuccessors);
    ++numTransitions;
}

std::vector<Addr>
MarkovPrefetcher::predict(Addr line) const
{
    const Row &row = rows[std::size_t(line / cfg.lineBytes) &
                          (cfg.markovRows - 1)];
    if (!row.valid || row.tag != line)
        return {};
    return row.succ;
}

std::vector<Addr>
MarkovPrefetcher::onMiss(Addr line)
{
    if (haveLast && lastMiss != line)
        record(lastMiss, line);
    lastMiss = line;
    haveLast = true;
    return predict(line);
}

std::vector<Addr>
MarkovPrefetcher::onPrefetchHit(Addr line)
{
    // A correct prediction came true; chase the chain one hop
    // further. The hit is not a miss, so nothing is recorded.
    return predict(line);
}

} // namespace cmpmem
