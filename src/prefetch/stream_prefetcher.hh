/**
 * @file
 * Hardware stream-based prefetcher, modelled after the tagged
 * sequential prefetcher of Vanderwiel & Lilja (the paper's reference
 * [41]): it keeps a history of the last 8 cache misses to identify
 * sequential accesses, runs a configurable number of cache lines
 * ahead of the latest miss, and tracks 4 separate access streams.
 */

#ifndef CMPMEM_PREFETCH_STREAM_PREFETCHER_HH
#define CMPMEM_PREFETCH_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "sim/types.hh"

namespace cmpmem
{

/**
 * The paper's prefetch engine (PrefetchPolicy::Stream).
 *
 * The controller feeds it demand misses and first-use hits on
 * prefetched lines (the "tag" in tagged prefetching); it returns the
 * line addresses to fetch.
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &cfg);

    /**
     * A demand miss on @p line occurred. @return lines to prefetch.
     */
    std::vector<Addr> onMiss(Addr line) override;

    /**
     * A demand access hit a line the prefetcher installed; advance
     * the owning stream. @return lines to prefetch.
     */
    std::vector<Addr> onPrefetchHit(Addr line) override;

    const PrefetcherConfig &config() const { return cfg; }

    std::uint64_t streamsAllocated() const { return numStreams; }

  private:
    struct Stream
    {
        bool valid = false;
        Addr nextDemand = 0;   ///< expected next demand line
        Addr nextPrefetch = 0; ///< next line to issue
        std::uint64_t lastUse = 0;
    };

    /** Issue prefetches so @p s runs depth lines ahead of @p line. */
    void runAhead(Stream &s, Addr line, std::vector<Addr> &out);

    PrefetcherConfig cfg;
    std::vector<Addr> history; ///< circular, most recent misses
    std::size_t histPos = 0;
    std::vector<Stream> streams;
    std::uint64_t useClock = 0;
    std::uint64_t numStreams = 0;
};

} // namespace cmpmem

#endif // CMPMEM_PREFETCH_STREAM_PREFETCHER_HH
