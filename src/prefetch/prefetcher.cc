#include "prefetch/prefetcher.hh"

#include "prefetch/markov_prefetcher.hh"
#include "prefetch/stream_buffer_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetchPolicy policy, const PrefetcherConfig &cfg)
{
    switch (policy) {
      case PrefetchPolicy::Stream:
        return std::make_unique<StreamPrefetcher>(cfg);
      case PrefetchPolicy::Markov:
        return std::make_unique<MarkovPrefetcher>(cfg);
      case PrefetchPolicy::StreamBuffer:
        return std::make_unique<StreamBufferPrefetcher>(cfg);
    }
    throwSimError(SimErrorKind::Config, "unknown prefetch policy");
}

} // namespace cmpmem
