#include "prefetch/stream_prefetcher.hh"

#include <algorithm>

namespace cmpmem
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &c) : cfg(c)
{
    history.assign(cfg.historyEntries, 0);
    streams.resize(cfg.streams);
}

void
StreamPrefetcher::runAhead(Stream &s, Addr line, std::vector<Addr> &out)
{
    Addr target = line + Addr(cfg.depth) * cfg.lineBytes;
    while (s.nextPrefetch <= target) {
        out.push_back(s.nextPrefetch);
        s.nextPrefetch += cfg.lineBytes;
    }
    s.lastUse = ++useClock;
}

std::vector<Addr>
StreamPrefetcher::onMiss(Addr line)
{
    std::vector<Addr> out;

    // Does the miss continue an existing stream?
    for (auto &s : streams) {
        if (s.valid && line == s.nextDemand) {
            s.nextDemand = line + cfg.lineBytes;
            runAhead(s, line, out);
            return out;
        }
    }

    // New stream? Look for the sequential predecessor in the miss
    // history (two sequential misses establish a stream).
    bool predecessor = false;
    for (Addr h : history) {
        if (h != 0 && h + cfg.lineBytes == line) {
            predecessor = true;
            break;
        }
    }

    if (predecessor) {
        // Allocate (LRU) a stream slot.
        Stream *pick = &streams[0];
        for (auto &s : streams) {
            if (!s.valid) {
                pick = &s;
                break;
            }
            if (s.lastUse < pick->lastUse)
                pick = &s;
        }
        pick->valid = true;
        pick->nextDemand = line + cfg.lineBytes;
        pick->nextPrefetch = line + cfg.lineBytes;
        ++numStreams;
        runAhead(*pick, line, out);
    }

    history[histPos] = line;
    histPos = (histPos + 1) % history.size();
    return out;
}

std::vector<Addr>
StreamPrefetcher::onPrefetchHit(Addr line)
{
    std::vector<Addr> out;
    for (auto &s : streams) {
        if (s.valid && line == s.nextDemand) {
            s.nextDemand = line + cfg.lineBytes;
            runAhead(s, line, out);
            return out;
        }
    }
    // The tagged hit did not match a tracked head (stream replaced);
    // ignore.
    return out;
}

} // namespace cmpmem
