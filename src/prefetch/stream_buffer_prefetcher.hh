/**
 * @file
 * Jouppi-style miss-side stream buffers. Where the tagged sequential
 * engine waits for two sequential misses to confirm a stream, stream
 * buffers allocate on *every* miss: each buffer runs a FIFO of
 * consecutive lines ahead of its allocation point, and a hit at the
 * buffer head advances the FIFO by one line. Aggressive on truly
 * sequential code, wasteful on random misses — exactly the trade-off
 * the policy sweep is meant to expose.
 */

#ifndef CMPMEM_PREFETCH_STREAM_BUFFER_PREFETCHER_HH
#define CMPMEM_PREFETCH_STREAM_BUFFER_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace cmpmem
{

/**
 * streamBuffers buffers, LRU-allocated, each streamBufferDepth lines
 * deep. The buffered lines live in the cache (flagged prefetched),
 * so a buffer here is head/tail bookkeeping, not storage.
 */
class StreamBufferPrefetcher : public Prefetcher
{
  public:
    explicit StreamBufferPrefetcher(const PrefetcherConfig &cfg);

    /**
     * Hit at a buffer head advances it; any other miss (re)allocates
     * the LRU buffer one line past the miss. @return lines to fetch.
     */
    std::vector<Addr> onMiss(Addr line) override;

    /** First use of a buffered line: advance the owning buffer. */
    std::vector<Addr> onPrefetchHit(Addr line) override;

    const PrefetcherConfig &config() const { return cfg; }

    std::uint64_t buffersAllocated() const { return numAllocated; }

  private:
    struct Buffer
    {
        bool valid = false;
        Addr head = 0;     ///< next line the demand stream should use
        Addr nextFill = 0; ///< next line to fetch into the buffer
        std::uint64_t lastUse = 0;
    };

    /** Advance @p b so nextFill stays depth lines past head. */
    void topUp(Buffer &b, std::vector<Addr> &out);

    /** Head match for @p line, or nullptr. */
    Buffer *bufferAt(Addr line);

    PrefetcherConfig cfg;
    std::vector<Buffer> buffers;
    std::uint64_t useClock = 0;
    std::uint64_t numAllocated = 0;
};

} // namespace cmpmem

#endif // CMPMEM_PREFETCH_STREAM_BUFFER_PREFETCHER_HH
