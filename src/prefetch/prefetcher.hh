/**
 * @file
 * The hardware-prefetcher interface and policy selector
 * (DESIGN.md §15).
 *
 * The L1 controller is algorithm-agnostic: it feeds the engine
 * demand misses and first-use hits on prefetched lines (the "tag" of
 * tagged prefetching) and issues whatever line addresses come back.
 * Three algorithms implement the interface:
 *
 *  - Stream (stream_prefetcher.hh): the paper's tagged sequential
 *    prefetcher after Vanderwiel & Lilja — two sequential misses
 *    establish a stream that runs `depth` lines ahead.
 *  - Markov (markov_prefetcher.hh): a correlation table mapping a
 *    miss address to its most recent successor misses; prefetches
 *    the learned successors, which also covers non-sequential
 *    pointer-chasing patterns.
 *  - StreamBuffer (stream_buffer_prefetcher.hh): Jouppi-style
 *    miss-side stream buffers that allocate on *every* miss (no
 *    two-miss confirmation) and each run one FIFO of consecutive
 *    lines ahead.
 */

#ifndef CMPMEM_PREFETCH_PREFETCHER_HH
#define CMPMEM_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cmpmem
{

/** Which prefetch algorithm a cache level runs. */
enum class PrefetchPolicy : std::uint8_t
{
    Stream,       ///< tagged sequential streams (the paper's engine)
    Markov,       ///< miss-correlation table
    StreamBuffer, ///< Jouppi miss-side stream buffers
};

inline const char *
to_string(PrefetchPolicy p)
{
    switch (p) {
      case PrefetchPolicy::Stream: return "stream";
      case PrefetchPolicy::Markov: return "markov";
      case PrefetchPolicy::StreamBuffer: return "stream_buffer";
    }
    return "?";
}

/** Parse a policy name; @return false when @p s is not a policy. */
inline bool
parsePrefetchPolicy(const std::string &s, PrefetchPolicy &out)
{
    for (PrefetchPolicy p :
         {PrefetchPolicy::Stream, PrefetchPolicy::Markov,
          PrefetchPolicy::StreamBuffer}) {
        if (s == to_string(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

/** Sizing knobs shared by the prefetch engines. */
struct PrefetcherConfig
{
    std::uint32_t lineBytes = 32;

    // Stream (tagged sequential) engine.
    std::uint32_t historyEntries = 8;
    std::uint32_t streams = 4;
    std::uint32_t depth = 4; ///< lines to run ahead of the latest miss

    // Markov correlation table.
    std::uint32_t markovRows = 256;    ///< direct-mapped; power of two
    std::uint32_t markovSuccessors = 2; ///< successors kept per row

    // Jouppi stream buffers.
    std::uint32_t streamBuffers = 4;
    std::uint32_t streamBufferDepth = 4; ///< lines buffered per stream
};

/**
 * The prefetch engine for one cache. Implementations must be
 * deterministic pure state machines over their inputs: the simulator
 * is bit-reproducible, so no host time, no unseeded randomness.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * A demand miss on @p line occurred. @return lines to prefetch.
     */
    virtual std::vector<Addr> onMiss(Addr line) = 0;

    /**
     * A demand access hit a line the prefetcher installed (tagged
     * first use). @return lines to prefetch.
     */
    virtual std::vector<Addr> onPrefetchHit(Addr line) = 0;
};

/** Build the engine selected by @p policy. */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetchPolicy policy,
                                           const PrefetcherConfig &cfg);

} // namespace cmpmem

#endif // CMPMEM_PREFETCH_PREFETCHER_HH
