#include "prefetch/stream_buffer_prefetcher.hh"

#include "sim/sim_error.hh"

namespace cmpmem
{

StreamBufferPrefetcher::StreamBufferPrefetcher(const PrefetcherConfig &c)
    : cfg(c)
{
    if (cfg.streamBuffers == 0 || cfg.streamBufferDepth == 0)
        throwSimError(SimErrorKind::Config,
                      "stream buffers need at least one buffer of "
                      "depth one");
    buffers.resize(cfg.streamBuffers);
}

void
StreamBufferPrefetcher::topUp(Buffer &b, std::vector<Addr> &out)
{
    Addr limit = b.head + Addr(cfg.streamBufferDepth) * cfg.lineBytes;
    while (b.nextFill < limit) {
        out.push_back(b.nextFill);
        b.nextFill += cfg.lineBytes;
    }
    b.lastUse = ++useClock;
}

StreamBufferPrefetcher::Buffer *
StreamBufferPrefetcher::bufferAt(Addr line)
{
    for (auto &b : buffers) {
        if (b.valid && b.head == line)
            return &b;
    }
    return nullptr;
}

std::vector<Addr>
StreamBufferPrefetcher::onMiss(Addr line)
{
    std::vector<Addr> out;

    // A miss landing on a buffer head means the buffered line was
    // displaced before use; keep the stream alive and advance.
    if (Buffer *b = bufferAt(line)) {
        b->head = line + cfg.lineBytes;
        topUp(*b, out);
        return out;
    }

    // Jouppi allocation: every other miss claims the LRU buffer and
    // starts fetching the lines that follow it.
    Buffer *pick = &buffers[0];
    for (auto &b : buffers) {
        if (!b.valid) {
            pick = &b;
            break;
        }
        if (b.lastUse < pick->lastUse)
            pick = &b;
    }
    pick->valid = true;
    pick->head = line + cfg.lineBytes;
    pick->nextFill = line + cfg.lineBytes;
    ++numAllocated;
    topUp(*pick, out);
    return out;
}

std::vector<Addr>
StreamBufferPrefetcher::onPrefetchHit(Addr line)
{
    std::vector<Addr> out;
    if (Buffer *b = bufferAt(line)) {
        b->head = line + cfg.lineBytes;
        topUp(*b, out);
    }
    // No owning buffer (replaced since the fill): ignore.
    return out;
}

} // namespace cmpmem
