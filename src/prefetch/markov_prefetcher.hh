/**
 * @file
 * Markov (miss-correlation) prefetcher, after Joseph & Grunwald: a
 * table maps a miss address to the most recent miss addresses that
 * followed it, and a miss prefetches the learned successors. Unlike
 * the sequential stream engine it can cover pointer-chasing and
 * other repeating non-sequential miss chains.
 */

#ifndef CMPMEM_PREFETCH_MARKOV_PREFETCHER_HH
#define CMPMEM_PREFETCH_MARKOV_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace cmpmem
{

/**
 * The correlation table is direct-mapped with markovRows rows (a
 * power of two; rows are indexed by line number), each holding the
 * tag plus up to markovSuccessors successor lines in MRU order.
 * Everything is a deterministic function of the miss sequence.
 */
class MarkovPrefetcher : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const PrefetcherConfig &cfg);

    /** Record the lastMiss -> @p line transition, then predict. */
    std::vector<Addr> onMiss(Addr line) override;

    /** Chase the chain one hop further on a tagged first use. */
    std::vector<Addr> onPrefetchHit(Addr line) override;

    const PrefetcherConfig &config() const { return cfg; }

    std::uint64_t transitionsRecorded() const { return numTransitions; }

  private:
    struct Row
    {
        bool valid = false;
        Addr tag = 0;            ///< the miss line this row describes
        std::vector<Addr> succ;  ///< successors, MRU first
    };

    Row &rowFor(Addr line);
    void record(Addr from, Addr to);
    std::vector<Addr> predict(Addr line) const;

    PrefetcherConfig cfg;
    std::vector<Row> rows;
    Addr lastMiss = 0;
    bool haveLast = false;
    std::uint64_t numTransitions = 0;
};

} // namespace cmpmem

#endif // CMPMEM_PREFETCH_MARKOV_PREFETCHER_HH
