/**
 * @file
 * Stereo Depth Extraction, "parallelized by dividing input frames
 * into 32x32 blocks and statically assigning them to processors"
 * (Section 4.2). The most compute-intensive workload of the suite
 * (Table 3: 8662 instructions per L1 miss, 11 MB/s off-chip): block
 * matching over a disparity range, where each fetched byte feeds
 * dozens of SAD operations. Both models perform identically here at
 * every core count and frequency — the paper's control case.
 *
 *  - CC: loads the left block and the right search strip through
 *    the cache (they stay resident), then burns SAD compute.
 *  - STR: DMAs the same pixels into the local store.
 */

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kBlock = 32;
constexpr int kMaxDisp = 16;
constexpr int kWin = 8; ///< per-pixel SAD window
/** Bundles per pixel: 16 disparities x 64-pixel window SAD on a
 *  3-slot VLIW (abs-diff + accumulate pairs) plus argmin logic. */
constexpr Cycles kPixelCycles = 360;

/**
 * Dense per-pixel disparity for one pixel of a 32x32 block, given
 * the block-local left buffer and the right search strip. Runs
 * identically in the host reference and (on loaded values) in the
 * kernel, so outputs verify bit-exactly. The SAD window is clamped
 * inside the block so only fetched data is used.
 */
std::uint8_t
bestDisparityForPixel(const std::uint8_t *lbuf, const std::uint8_t *rbuf,
                      int strip_cols, int px, int py)
{
    int wx = std::min(std::max(px - kWin / 2, 0), kBlock - kWin);
    int wy = std::min(std::max(py - kWin / 2, 0), kBlock - kWin);
    std::uint64_t best = ~0ull;
    int bestD = 0;
    for (int d = 0; d < kMaxDisp; ++d) {
        std::uint64_t sad = 0;
        for (int y = 0; y < kWin; ++y) {
            for (int x = 0; x < kWin; ++x) {
                int rc = std::min(wx + x + d, strip_cols - 1);
                sad += std::uint64_t(
                    std::abs(int(lbuf[(wy + y) * kBlock + wx + x]) -
                             int(rbuf[(wy + y) * strip_cols + rc])));
            }
        }
        if (sad < best) {
            best = sad;
            bestD = d;
        }
    }
    return std::uint8_t(bestD);
}

class DepthWorkload : public Workload
{
  public:
    explicit DepthWorkload(const WorkloadParams &p) : Workload(p)
    {
        width = 320;
        height = 224;
        pairs = p.scale > 0 ? 3 * p.scale : 1; // "3 CIF image pairs"
    }

    std::string name() const override { return "depth"; }

    double icacheMpki(const SystemConfig &) const override { return 0.05; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();
        const std::uint64_t frameBytes =
            std::uint64_t(width) * std::uint64_t(height);
        left = ArrayRef<std::uint8_t>::alloc(mem, frameBytes * pairs);
        right = ArrayRef<std::uint8_t>::alloc(mem, frameBytes * pairs);
        disp = ArrayRef<std::uint8_t>::alloc(mem,
                                              frameBytes * pairs);
        doneBar = std::make_unique<Barrier>(nthreads);

        // Synthesize a stereo pair: the right image is the left one
        // shifted by a per-region disparity plus noise, so the block
        // matcher has a real signal to find.
        Rng rng(77);
        hostLeft.resize(frameBytes * pairs);
        hostRight.resize(frameBytes * pairs);
        for (std::uint32_t p = 0; p < pairs; ++p) {
            std::uint64_t fb = std::uint64_t(p) * frameBytes;
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    auto v = std::uint8_t(
                        (x * 7 + y * 13 + int(rng.nextBelow(32))) &
                        0xff);
                    hostLeft[fb + std::uint64_t(y) * width + x] = v;
                }
            }
            int shift = int(p % kMaxDisp);
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    int sx = std::min(x + shift, width - 1);
                    hostRight[fb + std::uint64_t(y) * width + x] =
                        hostLeft[fb + std::uint64_t(y) * width + sx];
                }
            }
        }
        for (std::uint64_t i = 0; i < hostLeft.size(); ++i) {
            mem.write<std::uint8_t>(left.at(i), hostLeft[i]);
            mem.write<std::uint8_t>(right.at(i), hostRight[i]);
        }
    }

    KernelTask kernel(Context &ctx) override { return kern(ctx); }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        const int bw = width / kBlock;
        const int bh = height / kBlock;
        const int strip = kBlock + kMaxDisp;
        std::vector<std::uint8_t> lbuf(kBlock * kBlock);
        std::vector<std::uint8_t> rbuf(std::size_t(strip) * kBlock);
        for (std::uint32_t p = 0; p < pairs; ++p) {
            for (int by = 0; by < bh; ++by) {
                for (int bx = 0; bx < bw; ++bx) {
                    int lx0 = bx * kBlock;
                    int ly0 = by * kBlock;
                    int rxMax = std::min(lx0 + strip, width) - lx0;
                    for (int y = 0; y < kBlock; ++y) {
                        for (int x = 0; x < kBlock; ++x)
                            lbuf[y * kBlock + x] = hostLeft[pixelIndex(
                                p, lx0 + x, ly0 + y)];
                        for (int x = 0; x < rxMax; ++x)
                            rbuf[y * rxMax + x] = hostRight[pixelIndex(
                                p, lx0 + x, ly0 + y)];
                    }
                    for (int y = 0; y < kBlock; ++y) {
                        for (int x = 0; x < kBlock; ++x) {
                            auto want = bestDisparityForPixel(
                                lbuf.data(), rbuf.data(), rxMax, x, y);
                            auto got = mem.read<std::uint8_t>(disp.at(
                                pixelIndex(p, lx0 + x, ly0 + y)));
                            if (got != want)
                                return false;
                        }
                    }
                }
            }
        }
        return true;
    }

  private:
    std::uint64_t
    pixelIndex(std::uint32_t p, int x, int y) const
    {
        return (std::uint64_t(p) * height + y) * width + x;
    }

    /**
     * One kernel serves both models: the block-loads go through the
     * cache in CC and through DMA + local store in STR, and the SAD
     * math runs on in-register data either way.
     */
    KernelTask
    kern(Context &ctx)
    {
        const int bw = width / kBlock;
        const int bh = height / kBlock;
        const std::uint64_t blocks =
            std::uint64_t(pairs) * bh * bw;
        Range r = splitRange(blocks, ctx.tid(), ctx.nthreads());
        const bool str = ctx.model() == MemModel::STR;
        const int strip = kBlock + kMaxDisp; // right search strip

        std::vector<std::uint8_t> lbuf(kBlock * kBlock);
        std::vector<std::uint8_t> rbuf(std::size_t(strip) * kBlock);

        for (std::uint64_t b = r.begin; b < r.end; ++b) {
            std::uint32_t p = std::uint32_t(b / (std::uint64_t(bh) * bw));
            int by = int((b / bw) % bh);
            int bx = int(b % bw);
            int lx0 = bx * kBlock;
            int ly0 = by * kBlock;
            int rxMax = std::min(lx0 + strip, width) - lx0;

            if (str) {
                // Strided gets: one row per stride.
                auto g1 = co_await ctx.dmaGetStrided(
                    left.at(pixelIndex(p, lx0, ly0)),
                    std::uint64_t(width), kBlock, kBlock, 0);
                auto g2 = co_await ctx.dmaGetStrided(
                    right.at(pixelIndex(p, lx0, ly0)),
                    std::uint64_t(width), std::uint32_t(rxMax), kBlock,
                    kBlock * kBlock);
                co_await ctx.dmaWait(g1);
                co_await ctx.dmaWait(g2);
                for (int y = 0; y < kBlock; ++y) {
                    for (int x = 0; x < kBlock; x += 4) {
                        auto w = co_await ctx.lsRead<std::uint32_t>(
                            std::uint32_t(y * kBlock + x));
                        std::memcpy(&lbuf[y * kBlock + x], &w, 4);
                    }
                    for (int x = 0; x < rxMax; x += 4) {
                        auto w = co_await ctx.lsRead<std::uint32_t>(
                            std::uint32_t(kBlock * kBlock + y * rxMax +
                                          x));
                        std::memcpy(&rbuf[y * rxMax + x], &w,
                                    std::min(4, rxMax - x));
                    }
                }
            } else {
                for (int y = 0; y < kBlock; ++y) {
                    for (int x = 0; x < kBlock; x += 4) {
                        auto w = co_await ctx.load<std::uint32_t>(
                            left.at(pixelIndex(p, lx0 + x, ly0 + y)));
                        std::memcpy(&lbuf[y * kBlock + x], &w, 4);
                    }
                    for (int x = 0; x < rxMax; x += 4) {
                        auto w = co_await ctx.load<std::uint32_t>(
                            right.at(pixelIndex(p, lx0 + x, ly0 + y)));
                        std::memcpy(&rbuf[y * rxMax + x], &w,
                                    std::min(4, rxMax - x));
                    }
                }
            }

            // Dense per-pixel disparity over the block: every
            // pixel runs a windowed SAD across the disparity range
            // (in-register compute on the fetched block data).
            for (int y = 0; y < kBlock; ++y) {
                for (int x = 0; x < kBlock; x += 4) {
                    std::uint8_t d4[4];
                    for (int k = 0; k < 4; ++k) {
                        d4[k] = bestDisparityForPixel(
                            lbuf.data(), rbuf.data(), rxMax, x + k,
                            y);
                    }
                    co_await ctx.compute(4 * kPixelCycles);
                    std::uint32_t w;
                    std::memcpy(&w, d4, 4);
                    co_await ctx.storeNA<std::uint32_t>(
                        disp.at(pixelIndex(p, lx0 + x, ly0 + y)), w);
                }
            }
        }
        co_await ctx.barrier(*doneBar);
    }

    int width;
    int height;
    std::uint32_t pairs;
    int nthreads = 1;
    ArrayRef<std::uint8_t> left, right, disp;
    std::unique_ptr<Barrier> doneBar;
    std::vector<std::uint8_t> hostLeft, hostRight;
};

} // namespace

std::unique_ptr<Workload>
makeDepth(const WorkloadParams &p)
{
    return std::make_unique<DepthWorkload>(p);
}

} // namespace cmpmem
