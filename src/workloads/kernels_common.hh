/**
 * @file
 * Shared kernel helpers: typed array views over simulated memory,
 * bulk load/store coroutines, checksums, and small math utilities
 * used by several workloads.
 */

#ifndef CMPMEM_WORKLOADS_KERNELS_COMMON_HH
#define CMPMEM_WORKLOADS_KERNELS_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/context.hh"
#include "mem/functional_memory.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace cmpmem
{

/**
 * A typed view of an array in simulated memory. Element access
 * computes addresses only; reads/writes go through a Context (timed)
 * or the FunctionalMemory (untimed, setup/verify).
 */
template <typename T>
struct ArrayRef
{
    Addr base = 0;
    std::uint64_t count = 0;

    Addr at(std::uint64_t i) const { return base + i * sizeof(T); }

    /** Allocate an array in @p mem. */
    static ArrayRef
    alloc(FunctionalMemory &mem, std::uint64_t n)
    {
        return {mem.alloc(n * sizeof(T), 64), n};
    }
};

/** Sequentially load @p words 32-bit words starting at @p addr. */
Co<void> loadWords(Context &ctx, Addr addr, std::uint32_t words);

/** Sequentially store @p words zero words (output-only, storeNA). */
Co<void> storeWordsNA(Context &ctx, Addr addr, std::uint32_t words);

/**
 * Thread partition helper: [begin, end) of @p n items for this tid.
 */
struct Range
{
    std::uint64_t begin;
    std::uint64_t end;
};

inline Range
splitRange(std::uint64_t n, int tid, int nthreads)
{
    std::uint64_t per = n / std::uint64_t(nthreads);
    std::uint64_t rem = n % std::uint64_t(nthreads);
    std::uint64_t lo = per * std::uint64_t(tid) +
                       std::min<std::uint64_t>(tid, rem);
    std::uint64_t hi = lo + per + (std::uint64_t(tid) < rem ? 1 : 0);
    return {lo, hi};
}

/**
 * In-place 8x8 integer orthogonal block transform shared by the
 * image/video codecs (a separable butterfly transform; exact integer
 * round trip: inverse(forward(x)) == x after the >>6 normalization).
 */
void forwardTransform8x8(std::int32_t *blk);
void inverseTransform8x8(std::int32_t *blk);

/** FNV-1a checksum over a simulated-memory range (untimed). */
std::uint64_t checksumMem(FunctionalMemory &mem, Addr addr,
                          std::uint64_t bytes);

/** FNV-1a over a host buffer. */
std::uint64_t checksumHost(const void *data, std::uint64_t bytes);

} // namespace cmpmem

#endif // CMPMEM_WORKLOADS_KERNELS_COMMON_HH
