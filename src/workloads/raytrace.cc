/**
 * @file
 * KD-tree raytracer, "parallelized across camera rays. We assign
 * rays to processors in chunks to improve locality. Our streaming
 * version reads the KD-tree from the cache instead of streaming it
 * with a DMA controller" (Section 4.2) — the paper's example of an
 * irregular, pointer-chasing workload where a pure streaming memory
 * cannot help and the STR system leans on its small cache.
 *
 *  - CC: tree, triangles and output all through the coherent cache.
 *  - STR: the BFS-ordered tree-top is replicated into the local
 *    store at startup (Section 2.2's "selective data replication"),
 *    deeper nodes and triangles come through the 8 KB cache
 *    (ctx.load), and pixel tiles gather in the local store and
 *    DMA out per 8x8 ray chunk.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kImg = 128;       // image is kImg x kImg rays
constexpr int kChunk = 64;      // rays per task
constexpr int kLeafTris = 4;
constexpr int kMaxDepth = 20;

struct Vec3
{
    float x, y, z;
};

Vec3
sub(Vec3 a, Vec3 b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

Vec3
cross(Vec3 a, Vec3 b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

float
dot(Vec3 a, Vec3 b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

float
axisOf(Vec3 v, int axis)
{
    return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
}

/** Precomputed triangle for Moller-Trumbore: v0, e1, e2. */
struct HostTri
{
    Vec3 v0, e1, e2;
};

struct HostNode
{
    float split = 0;
    std::int32_t axis = -1; ///< -1: leaf
    std::uint32_t left = 0, right = 0;
    std::uint32_t triStart = 0, triCount = 0;
};

/**
 * Moller-Trumbore; returns t or +inf. Identical code runs on host
 * data (reference) and on values loaded from simulated memory
 * (kernel), so results match bit-exactly.
 */
float
intersectTri(Vec3 o, Vec3 d, const HostTri &tri)
{
    constexpr float inf = std::numeric_limits<float>::infinity();
    Vec3 p = cross(d, tri.e2);
    float det = dot(tri.e1, p);
    if (det > -1e-7f && det < 1e-7f)
        return inf;
    float invDet = 1.0f / det;
    Vec3 s = sub(o, tri.v0);
    float u = dot(s, p) * invDet;
    if (u < 0.0f || u > 1.0f)
        return inf;
    Vec3 q = cross(s, tri.e1);
    float v = dot(d, q) * invDet;
    if (v < 0.0f || u + v > 1.0f)
        return inf;
    float t = dot(tri.e2, q) * invDet;
    return t > 1e-6f ? t : inf;
}

class RaytraceWorkload : public Workload
{
  public:
    explicit RaytraceWorkload(const WorkloadParams &p) : Workload(p)
    {
        // 4000 triangles keep per-ray intersection work (and host
        // simulation cost) tractable while the tree and triangle
        // data still stress the cache hierarchy.
        numTris = p.scale > 0 ? 1500u * std::uint32_t(p.scale) : 400u;
    }

    std::string name() const override { return "raytrace"; }

    double icacheMpki(const SystemConfig &) const override { return 0.4; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();

        buildScene();

        nodes = ArrayRef<std::uint8_t>::alloc(
            mem, hostNodes.size() * kNodeBytes);
        tris = ArrayRef<float>::alloc(mem, hostTris.size() * 10);
        triIdx = ArrayRef<std::uint32_t>::alloc(mem, hostTriIdx.size());
        image = ArrayRef<std::uint32_t>::alloc(
            mem, std::uint64_t(kImg) * kImg);
        taskCounter = ArrayRef<std::uint32_t>::alloc(mem, 1);
        doneBar = std::make_unique<Barrier>(nthreads);
        mem.write<std::uint32_t>(taskCounter.at(0), 0);

        for (std::size_t i = 0; i < hostNodes.size(); ++i) {
            Addr base = nodes.at(i * kNodeBytes);
            mem.write<float>(base + 0, hostNodes[i].split);
            mem.write<std::int32_t>(base + 4, hostNodes[i].axis);
            mem.write<std::uint32_t>(base + 8, hostNodes[i].left);
            mem.write<std::uint32_t>(base + 12, hostNodes[i].right);
            mem.write<std::uint32_t>(base + 16, hostNodes[i].triStart);
            mem.write<std::uint32_t>(base + 20, hostNodes[i].triCount);
        }
        for (std::size_t i = 0; i < hostTris.size(); ++i) {
            const float *f = &hostTris[i].v0.x;
            for (int k = 0; k < 9; ++k)
                mem.write<float>(tris.at(i * 10 + k), f[k]);
            mem.write<float>(tris.at(i * 10 + 9), 0.0f); // pad
        }
        for (std::size_t i = 0; i < hostTriIdx.size(); ++i)
            mem.write<std::uint32_t>(triIdx.at(i), hostTriIdx[i]);
    }

    KernelTask kernel(Context &ctx) override { return kern(ctx); }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        for (int py = 0; py < kImg; ++py) {
            for (int px = 0; px < kImg; ++px) {
                std::uint32_t want = hostTrace(px, py);
                auto got = mem.read<std::uint32_t>(
                    image.at(std::uint64_t(py) * kImg + px));
                if (got != want)
                    return false;
            }
        }
        return true;
    }

  private:
    static constexpr std::uint32_t kNodeBytes = 32;

    static Vec3
    rayOrigin()
    {
        return {0.5f, 0.5f, -2.0f};
    }

    static Vec3
    rayDir(int px, int py)
    {
        float x = (float(px) + 0.5f) / float(kImg) - 0.5f;
        float y = (float(py) + 0.5f) / float(kImg) - 0.5f;
        return {x, y, 1.0f};
    }

    void
    buildScene()
    {
        Rng rng(31337);
        hostTris.reserve(numTris);
        std::vector<Vec3> centroids;
        for (std::uint32_t i = 0; i < numTris; ++i) {
            Vec3 v0{float(rng.nextDouble()), float(rng.nextDouble()),
                    float(rng.nextDouble())};
            auto jitter = [&]() {
                return float(rng.nextDouble(-0.015, 0.015));
            };
            Vec3 v1{v0.x + jitter(), v0.y + jitter(), v0.z + jitter()};
            Vec3 v2{v0.x + jitter(), v0.y + jitter(), v0.z + jitter()};
            hostTris.push_back({v0, sub(v1, v0), sub(v2, v0)});
            centroids.push_back({v0.x + (hostTris[i].e1.x +
                                         hostTris[i].e2.x) / 3.0f,
                                 v0.y + (hostTris[i].e1.y +
                                         hostTris[i].e2.y) / 3.0f,
                                 v0.z + (hostTris[i].e1.z +
                                         hostTris[i].e2.z) / 3.0f});
        }

        std::vector<std::uint32_t> all(numTris);
        for (std::uint32_t i = 0; i < numTris; ++i)
            all[i] = i;
        buildNode(all, centroids, 0, 0.0f, 1.0f, 0);
        reorderBfs();
    }

    /**
     * Renumber nodes in breadth-first order so that the first N
     * bytes of the node array are the top levels of the tree — the
     * prefix the streaming kernel replicates into its local store.
     */
    void
    reorderBfs()
    {
        std::vector<std::uint32_t> order;
        order.push_back(0);
        for (std::size_t i = 0; i < order.size(); ++i) {
            const HostNode &n = hostNodes[order[i]];
            if (n.axis >= 0) {
                order.push_back(n.left);
                order.push_back(n.right);
            }
        }
        std::vector<std::uint32_t> perm(hostNodes.size());
        for (std::uint32_t ni = 0; ni < order.size(); ++ni)
            perm[order[ni]] = ni;
        std::vector<HostNode> renum(hostNodes.size());
        for (std::uint32_t old = 0; old < hostNodes.size(); ++old) {
            HostNode n = hostNodes[old];
            if (n.axis >= 0) {
                n.left = perm[n.left];
                n.right = perm[n.right];
            }
            renum[perm[old]] = n;
        }
        hostNodes = std::move(renum);
    }

    std::uint32_t
    buildNode(std::vector<std::uint32_t> &items,
              const std::vector<Vec3> &centroids, int depth, float lo,
              float hi, int axis)
    {
        std::uint32_t idx = std::uint32_t(hostNodes.size());
        hostNodes.emplace_back();
        if (int(items.size()) <= kLeafTris || depth >= kMaxDepth) {
            hostNodes[idx].axis = -1;
            hostNodes[idx].triStart = std::uint32_t(hostTriIdx.size());
            hostNodes[idx].triCount = std::uint32_t(items.size());
            for (auto t : items)
                hostTriIdx.push_back(t);
            return idx;
        }

        // Centroid-median split: balances the children and keeps
        // straddle duplication low even in dense regions (a spatial
        // midpoint degenerates into giant leaves there).
        std::vector<float> cs;
        cs.reserve(items.size());
        for (auto t : items)
            cs.push_back(axisOf(centroids[t], axis));
        std::nth_element(cs.begin(), cs.begin() + cs.size() / 2,
                         cs.end());
        float split = cs[cs.size() / 2];
        std::vector<std::uint32_t> below, above;
        for (auto t : items) {
            // Triangles straddling the plane (by true extent) go to
            // both sides.
            const HostTri &tri = hostTris[t];
            float v0 = axisOf(tri.v0, axis);
            float v1 = v0 + axisOf(tri.e1, axis);
            float v2 = v0 + axisOf(tri.e2, axis);
            float mn = std::min(v0, std::min(v1, v2));
            float mx = std::max(v0, std::max(v1, v2));
            if (mn <= split)
                below.push_back(t);
            if (mx >= split)
                above.push_back(t);
        }
        // Give up splitting when duplication stops paying off (big
        // triangles relative to the cell) -- otherwise straddlers
        // replicate exponentially with depth.
        if (below.size() == items.size() ||
            above.size() == items.size() ||
            below.size() + above.size() > 2 * items.size() - 2) {
            hostNodes[idx].axis = -1;
            hostNodes[idx].triStart = std::uint32_t(hostTriIdx.size());
            hostNodes[idx].triCount = std::uint32_t(items.size());
            for (auto t : items)
                hostTriIdx.push_back(t);
            return idx;
        }

        int next_axis = (axis + 1) % 3;
        std::uint32_t l = buildNode(below, centroids, depth + 1, lo,
                                    split, next_axis);
        std::uint32_t r = buildNode(above, centroids, depth + 1,
                                    split, hi, next_axis);
        hostNodes[idx].axis = axis;
        hostNodes[idx].split = split;
        hostNodes[idx].left = l;
        hostNodes[idx].right = r;
        return idx;
    }

    /** Host-reference trace (same traversal order as the kernel). */
    std::uint32_t
    hostTrace(int px, int py) const
    {
        constexpr float inf = std::numeric_limits<float>::infinity();
        Vec3 o = rayOrigin();
        Vec3 d = rayDir(px, py);
        float bestT = inf;
        std::uint32_t bestId = 0;

        struct Item
        {
            std::uint32_t node;
            float tmin, tmax;
        };
        std::vector<Item> stack{{0, 0.0f, inf}};
        while (!stack.empty()) {
            Item it = stack.back();
            stack.pop_back();
            if (it.tmin > bestT)
                continue;
            std::uint32_t n = it.node;
            float tmin = it.tmin, tmax = it.tmax;
            while (hostNodes[n].axis >= 0) {
                int ax = hostNodes[n].axis;
                float split = hostNodes[n].split;
                float t = (split - axisOf(o, ax)) / axisOf(d, ax);
                std::uint32_t near = axisOf(o, ax) < split
                                         ? hostNodes[n].left
                                         : hostNodes[n].right;
                std::uint32_t far = axisOf(o, ax) < split
                                        ? hostNodes[n].right
                                        : hostNodes[n].left;
                if (t >= tmax || t < 0) {
                    n = near;
                } else if (t <= tmin) {
                    n = far;
                } else {
                    stack.push_back({far, t, tmax});
                    n = near;
                    tmax = t;
                }
            }
            for (std::uint32_t k = 0; k < hostNodes[n].triCount; ++k) {
                std::uint32_t id =
                    hostTriIdx[hostNodes[n].triStart + k];
                float t = intersectTri(o, d, hostTris[id]);
                if (t < bestT) {
                    bestT = t;
                    bestId = id + 1;
                }
            }
        }
        return bestT < inf ? bestId : 0;
    }

    /** Bytes of tree-top each streaming core pins in its local
     *  store ("selective data replication", Section 2.2); the
     *  remaining LS space holds the output tile. */
    static constexpr std::uint32_t kLsTreeBytes = 20 * 1024;

    /** Timed node loads (two 64-bit accesses per visited node).
     *  Streaming cores serve the replicated tree-top from the local
     *  store and fall back to the 8 KB cache for the rest. */
    Co<HostNode>
    loadNode(Context &ctx, std::uint32_t n, std::uint32_t ls_resident)
    {
        std::uint32_t off = n * kNodeBytes;
        if (off + kNodeBytes <= ls_resident) {
            HostNode out;
            auto w0 = co_await ctx.lsRead<std::uint64_t>(off);
            std::memcpy(&out.split, &w0, 4);
            std::uint32_t hi0 = std::uint32_t(w0 >> 32);
            std::memcpy(&out.axis, &hi0, 4);
            if (out.axis >= 0) {
                auto w1 = co_await ctx.lsRead<std::uint64_t>(off + 8);
                out.left = std::uint32_t(w1);
                out.right = std::uint32_t(w1 >> 32);
            } else {
                auto w2 = co_await ctx.lsRead<std::uint64_t>(off + 16);
                out.triStart = std::uint32_t(w2);
                out.triCount = std::uint32_t(w2 >> 32);
            }
            co_return out;
        }
        Addr base = nodes.at(std::uint64_t(n) * kNodeBytes);
        HostNode out;
        auto w0 = co_await ctx.load<std::uint64_t>(base + 0);
        std::memcpy(&out.split, &w0, 4);
        std::uint32_t hi = std::uint32_t(w0 >> 32);
        std::memcpy(&out.axis, &hi, 4);
        if (out.axis >= 0) {
            auto w1 = co_await ctx.load<std::uint64_t>(base + 8);
            out.left = std::uint32_t(w1);
            out.right = std::uint32_t(w1 >> 32);
        } else {
            auto w2 = co_await ctx.load<std::uint64_t>(base + 16);
            out.triStart = std::uint32_t(w2);
            out.triCount = std::uint32_t(w2 >> 32);
        }
        co_return out;
    }

    /** Timed triangle load: 40 bytes as five 64-bit accesses. */
    Co<HostTri>
    loadTri(Context &ctx, std::uint32_t id)
    {
        HostTri t;
        float f[10];
        Addr base = tris.at(std::uint64_t(id) * 10);
        for (int k = 0; k < 5; ++k) {
            auto w = co_await ctx.load<std::uint64_t>(base + k * 8);
            std::memcpy(&f[k * 2], &w, 8);
        }
        std::memcpy(&t.v0.x, f, 9 * sizeof(float));
        co_return t;
    }

    Co<std::uint32_t>
    traceRaySim(Context &ctx, int px, int py,
                std::uint32_t ls_resident)
    {
        constexpr float inf = std::numeric_limits<float>::infinity();
        Vec3 o = rayOrigin();
        Vec3 d = rayDir(px, py);
        float bestT = inf;
        std::uint32_t bestId = 0;

        struct Item
        {
            std::uint32_t node;
            float tmin, tmax;
        };
        std::vector<Item> stack{{0, 0.0f, inf}};
        while (!stack.empty()) {
            Item it = stack.back();
            stack.pop_back();
            if (it.tmin > bestT)
                continue;
            std::uint32_t n = it.node;
            float tmin = it.tmin, tmax = it.tmax;
            HostNode node = co_await loadNode(ctx, n, ls_resident);
            while (node.axis >= 0) {
                int ax = node.axis;
                float split = node.split;
                co_await ctx.computeFp(3);
                float t = (split - axisOf(o, ax)) / axisOf(d, ax);
                std::uint32_t near =
                    axisOf(o, ax) < split ? node.left : node.right;
                std::uint32_t far =
                    axisOf(o, ax) < split ? node.right : node.left;
                if (t >= tmax || t < 0) {
                    n = near;
                } else if (t <= tmin) {
                    n = far;
                } else {
                    stack.push_back({far, t, tmax});
                    n = near;
                    tmax = t;
                }
                node = co_await loadNode(ctx, n, ls_resident);
            }
            for (std::uint32_t k = 0; k < node.triCount; ++k) {
                auto id = co_await ctx.load<std::uint32_t>(
                    triIdx.at(node.triStart + k));
                HostTri tri = co_await loadTri(ctx, id);
                co_await ctx.computeFp(18);
                float t = intersectTri(o, d, tri);
                if (t < bestT) {
                    bestT = t;
                    bestId = id + 1;
                }
            }
        }
        co_return bestT < inf ? bestId : 0;
    }

    KernelTask
    kern(Context &ctx)
    {
        const bool str = ctx.model() == MemModel::STR;
        const std::uint64_t rays = std::uint64_t(kImg) * kImg;
        const std::uint64_t chunkCount = rays / kChunk;

        // Streaming: replicate the BFS-ordered tree-top into the
        // local store once; the output tile lives above it.
        std::uint32_t lsResident = 0;
        std::uint32_t lsTile = 0;
        if (str) {
            std::uint32_t tree_bytes =
                std::uint32_t(hostNodes.size()) * kNodeBytes;
            lsResident = std::min(kLsTreeBytes, tree_bytes);
            lsTile = lsResident;
            auto g = co_await ctx.dmaGet(nodes.at(0), 0, lsResident);
            co_await ctx.dmaWait(g);
        }

        // "We assign rays to processors in chunks to improve
        // locality": a chunk is an 8x8 screen tile, whose rays share
        // a small KD subtree -- critical for the streaming model,
        // whose 8 KB cache must capture the per-chunk tree working
        // set.
        const int tilesPerRow = kImg / 8;
        while (true) {
            auto t = co_await ctx.nextTask(taskCounter.at(0),
                                           chunkCount);
            if (t < 0)
                break;
            int tx = int(t) % tilesPerRow;
            int ty = int(t) / tilesPerRow;
            for (int i = 0; i < kChunk; ++i) {
                int px = tx * 8 + i % 8;
                int py = ty * 8 + i / 8;
                std::uint32_t result =
                    co_await traceRaySim(ctx, px, py, lsResident);
                std::uint64_t ray =
                    std::uint64_t(py) * kImg + std::uint64_t(px);
                if (str) {
                    co_await ctx.lsWrite<std::uint32_t>(
                        lsTile + std::uint32_t(i) * 4, result);
                } else {
                    co_await ctx.storeNA<std::uint32_t>(
                        image.at(ray), result);
                }
            }
            if (str) {
                // Scatter the tile's eight pixel rows.
                auto pt = co_await ctx.dmaPutStrided(
                    image.at(std::uint64_t(ty) * 8 * kImg +
                             std::uint64_t(tx) * 8),
                    std::uint64_t(kImg) * 4, 8 * 4, 8, lsTile);
                co_await ctx.dmaWait(pt);
            }
        }
        co_await ctx.barrier(*doneBar);
    }

    std::uint32_t numTris;
    int nthreads = 1;
    std::vector<HostTri> hostTris;
    std::vector<HostNode> hostNodes;
    std::vector<std::uint32_t> hostTriIdx;
    ArrayRef<std::uint8_t> nodes;
    ArrayRef<float> tris;
    ArrayRef<std::uint32_t> triIdx;
    ArrayRef<std::uint32_t> image;
    ArrayRef<std::uint32_t> taskCounter;
    std::unique_ptr<Barrier> doneBar;
};

} // namespace

std::unique_ptr<Workload>
makeRaytrace(const WorkloadParams &p)
{
    return std::make_unique<RaytraceWorkload>(p);
}

} // namespace cmpmem
