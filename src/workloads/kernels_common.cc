#include "workloads/kernels_common.hh"

namespace cmpmem
{

Co<void>
loadWords(Context &ctx, Addr addr, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        co_await ctx.load<std::uint32_t>(addr + Addr(i) * 4);
}

Co<void>
storeWordsNA(Context &ctx, Addr addr, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        co_await ctx.storeNA<std::uint32_t>(addr + Addr(i) * 4, 0);
}

namespace
{

void
wht8(std::int32_t *v, int stride)
{
    for (int half = 4; half >= 1; half >>= 1) {
        for (int base = 0; base < 8; base += 2 * half) {
            for (int i = 0; i < half; ++i) {
                std::int32_t a = v[(base + i) * stride];
                std::int32_t b = v[(base + i + half) * stride];
                v[(base + i) * stride] = a + b;
                v[(base + i + half) * stride] = a - b;
            }
        }
    }
}

} // namespace

void
forwardTransform8x8(std::int32_t *blk)
{
    for (int r = 0; r < 8; ++r)
        wht8(blk + r * 8, 1);
    for (int c = 0; c < 8; ++c)
        wht8(blk + c, 8);
}

void
inverseTransform8x8(std::int32_t *blk)
{
    // Self-inverse up to a factor of 64.
    forwardTransform8x8(blk);
    for (int k = 0; k < 64; ++k)
        blk[k] >>= 6;
}

namespace
{
constexpr std::uint64_t fnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t fnvPrime = 1099511628211ULL;
} // namespace

std::uint64_t
checksumMem(FunctionalMemory &mem, Addr addr, std::uint64_t bytes)
{
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        h ^= mem.read<std::uint8_t>(addr + i);
        h *= fnvPrime;
    }
    return h;
}

std::uint64_t
checksumHost(const void *data, std::uint64_t bytes)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

} // namespace cmpmem
