/**
 * @file
 * Internal factory declarations, one per workload translation unit;
 * used only by the registry.
 */

#ifndef CMPMEM_WORKLOADS_FACTORIES_HH
#define CMPMEM_WORKLOADS_FACTORIES_HH

#include <memory>

#include "workloads/workload.hh"

namespace cmpmem
{

std::unique_ptr<Workload> makeFir(const WorkloadParams &);
std::unique_ptr<Workload> makeBitonic(const WorkloadParams &);
std::unique_ptr<Workload> makeMerge(const WorkloadParams &);
std::unique_ptr<Workload> makeArt(const WorkloadParams &);
std::unique_ptr<Workload> makeFem(const WorkloadParams &);
std::unique_ptr<Workload> makeDepth(const WorkloadParams &);
std::unique_ptr<Workload> makeJpegEnc(const WorkloadParams &);
std::unique_ptr<Workload> makeJpegDec(const WorkloadParams &);
std::unique_ptr<Workload> makeMpeg2(const WorkloadParams &);
std::unique_ptr<Workload> makeH264(const WorkloadParams &);
std::unique_ptr<Workload> makeRaytrace(const WorkloadParams &);
std::unique_ptr<Workload> makeStress(const WorkloadParams &);
std::unique_ptr<Workload> makeHang(const WorkloadParams &);
std::unique_ptr<Workload> makeCrash(const WorkloadParams &);
std::unique_ptr<Workload> makeHostspin(const WorkloadParams &);

} // namespace cmpmem

#endif // CMPMEM_WORKLOADS_FACTORIES_HH
