/**
 * @file
 * Deliberately non-terminating workload ("hang").
 *
 * Not a paper application: this workload exists to exercise the
 * liveness watchdog (EventQueue::runGuarded) and the sweep engine's
 * per-job failure isolation. Core 0 spins in an infinite compute loop
 * — the quantum-flush mechanism keeps generating events forever, so
 * the run neither drains the queue (no deadlock) nor finishes, and
 * only a tick/host-time budget can stop it. All other cores park on a
 * barrier that is never satisfied. Registered hidden: creatable via
 * createWorkload("hang"), invisible to workloadNames().
 *
 * With prm.scale > 1 the spin also touches memory, so the hang
 * exercises the progress probe with instructions still retiring.
 */

#include <memory>

#include "core/sync.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

class HangWorkload : public Workload
{
  public:
    explicit HangWorkload(const WorkloadParams &p) : Workload(p) {}

    std::string name() const override { return "hang"; }
    std::string variant() const override { return "hang"; }

    void
    setup(CmpSystem &sys) override
    {
        scratch = ArrayRef<std::uint32_t>::alloc(sys.mem(), 64);
        // One short: with every core's kernel parked on it, the
        // barrier never opens.
        never = std::make_unique<Barrier>(sys.cores() + 1);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.tid() == 0) {
            for (std::uint64_t i = 0;; ++i) {
                co_await ctx.compute(Cycles(1000));
                if (prm.scale > 1) {
                    co_await ctx.store<std::uint32_t>(
                        scratch.at(i % scratch.count),
                        std::uint32_t(i));
                }
            }
        }
        co_await ctx.barrier(*never);
    }

    bool verify(CmpSystem &) override { return false; }

  private:
    ArrayRef<std::uint32_t> scratch;
    std::unique_ptr<Barrier> never;
};

} // namespace
} // namespace cmpmem

namespace cmpmem
{

std::unique_ptr<Workload>
makeHang(const WorkloadParams &p)
{
    return std::make_unique<HangWorkload>(p);
}

} // namespace cmpmem
