/**
 * @file
 * 179.art-like adaptive-resonance neural network, "parallelized
 * across F1 neurons; this application is composed of several
 * data-parallel vector operations and reductions between which we
 * place barriers" (Section 4.2). The paper measures 10 invocations
 * of the train-match function.
 *
 * Two cache-model variants reproduce Figure 10:
 *  - orig (streamOptimized=false): the SPEC-like layout — an
 *    array-of-structs neuron record and one pass per vector
 *    operation with large temporary vectors, so every field access
 *    touches its own cache line (sparse, stride-32 access);
 *  - base (streamOptimized=true): "we reorganized the main data
 *    structure ... and replaced several large temporary vectors with
 *    scalar values by merging several loops": SoA layout + fused
 *    passes. This reduced sparseness is also what lets hardware
 *    prefetching work (Figure 7).
 *
 * The working set fits in the L2 (as in the paper: 7.4% L2 miss
 * rate), making art latency- rather than bandwidth-bound.
 */

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/log.hh"
#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr float kA = 0.5f;
constexpr float kB = 0.3f;
constexpr float kDecay = 0.9f;
constexpr int kIterations = 10;

/** AoS neuron record: one 32-byte cache line per neuron. */
struct F1Neuron
{
    float i, w, x, u, v, p, t, pad;
};
static_assert(sizeof(F1Neuron) == 32);

class ArtWorkload : public Workload
{
  public:
    explicit ArtWorkload(const WorkloadParams &p) : Workload(p)
    {
        // 20000 neurons: the AoS record array is 640 KB, so a
        // 16-way-split per-core slice (40 KB) still exceeds the
        // 32 KB L1 and the whole set exceeds the 512 KB L2 -- the
        // SPEC 179.art regime where layout and fusion matter at
        // every core count (Figure 10).
        numF1 = p.scale > 0 ? 20000u * std::uint32_t(p.scale) : 1200u;
        // Activation threshold: X values are normalized (they sum to
        // one), so the threshold sits at the mean activation, letting
        // roughly half the neurons through.
        theta = 1.0f / float(numF1);
    }

    std::string name() const override { return "art"; }

    double
    icacheMpki(const SystemConfig &) const override
    {
        return prm.streamOptimized ? 0.15 : 0.1;
    }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();
        // The streaming model always uses the blocked SoA layout;
        // the AoS "orig" variant exists for the cache model only
        // (Figure 10 compares CC-orig to CC-optimized).
        soa = prm.streamOptimized ||
              sys.config().model == MemModel::STR;
        if (soa) {
            aI = ArrayRef<float>::alloc(mem, numF1);
            aW = ArrayRef<float>::alloc(mem, numF1);
            aX = ArrayRef<float>::alloc(mem, numF1);
            aU = ArrayRef<float>::alloc(mem, numF1);
            aV = ArrayRef<float>::alloc(mem, numF1);
            aP = ArrayRef<float>::alloc(mem, numF1);
            aT = ArrayRef<float>::alloc(mem, numF1);
        } else {
            aos = ArrayRef<F1Neuron>::alloc(mem, numF1);
        }
        partials = ArrayRef<float>::alloc(mem, std::uint64_t(nthreads));
        iterBar = std::make_unique<Barrier>(nthreads);

        Rng rng(2026);
        hostI.resize(numF1);
        hostU.assign(numF1, 0.1f);
        hostT.resize(numF1);
        for (std::uint32_t i = 0; i < numF1; ++i) {
            hostI[i] = float(rng.nextDouble(0.0, 1.0));
            hostT[i] = float(rng.nextDouble(0.0, 0.5));
            writeField(mem, i, FieldI, hostI[i]);
            writeField(mem, i, FieldU, 0.1f);
            writeField(mem, i, FieldT, hostT[i]);
        }
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return prm.streamOptimized ? kernelCcFused(ctx)
                                   : kernelCcOrig(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        // Host reference replicating the exact arithmetic and the
        // per-thread reduction order.
        std::vector<float> U = hostU;
        std::vector<float> T = hostT;
        std::vector<float> W(numF1), X(numF1), V(numF1), P(numF1);
        for (int it = 0; it < kIterations; ++it) {
            std::vector<float> px(nthreads, 0.0f);
            for (int tid = 0; tid < nthreads; ++tid) {
                Range r = splitRange(numF1, tid, nthreads);
                for (std::uint64_t i = r.begin; i < r.end; ++i) {
                    W[i] = hostI[i] + kA * U[i];
                    px[tid] += W[i];
                }
            }
            float sumW = 0.0f;
            for (int tid = 0; tid < nthreads; ++tid)
                sumW += px[tid];
            std::vector<float> pv(nthreads, 0.0f);
            for (int tid = 0; tid < nthreads; ++tid) {
                Range r = splitRange(numF1, tid, nthreads);
                for (std::uint64_t i = r.begin; i < r.end; ++i) {
                    X[i] = W[i] / sumW;
                    V[i] = X[i] > theta ? X[i] : 0.0f;
                    pv[tid] += V[i];
                }
            }
            float sumV = 0.0f;
            for (int tid = 0; tid < nthreads; ++tid)
                sumV += pv[tid];
            for (int tid = 0; tid < nthreads; ++tid) {
                Range r = splitRange(numF1, tid, nthreads);
                for (std::uint64_t i = r.begin; i < r.end; ++i) {
                    U[i] = V[i] / sumV;
                    P[i] = U[i] + kB * T[i];
                    T[i] = T[i] * kDecay + (1.0f - kDecay) * P[i];
                }
            }
        }

        auto &mem = sys.mem();
        for (std::uint32_t i = 0; i < numF1; ++i) {
            float gotT = readField(mem, i, FieldT);
            float gotU = readField(mem, i, FieldU);
            if (gotT != T[i] || gotU != U[i]) {
                warn("art mismatch at %u: T sim=%.9g host=%.9g, "
                     "U sim=%.9g host=%.9g",
                     i, gotT, T[i], gotU, U[i]);
                return false;
            }
        }
        return true;
    }

  private:
    enum Field
    {
        FieldI,
        FieldW,
        FieldX,
        FieldU,
        FieldV,
        FieldP,
        FieldT
    };

    Addr
    fieldAddr(std::uint32_t i, Field f) const
    {
        if (soa) {
            switch (f) {
              case FieldI: return aI.at(i);
              case FieldW: return aW.at(i);
              case FieldX: return aX.at(i);
              case FieldU: return aU.at(i);
              case FieldV: return aV.at(i);
              case FieldP: return aP.at(i);
              case FieldT: return aT.at(i);
            }
        }
        return aos.at(i) + Addr(f) * 4;
    }

    void
    writeField(FunctionalMemory &mem, std::uint32_t i, Field f, float v)
    {
        mem.write<float>(fieldAddr(i, f), v);
    }

    float
    readField(FunctionalMemory &mem, std::uint32_t i, Field f)
    {
        return mem.read<float>(fieldAddr(i, f));
    }

    /** Reduction: publish a partial, barrier, sum all partials. */
    Co<float>
    reduce(Context &ctx, float partial)
    {
        co_await ctx.store<float>(partials.at(ctx.tid()), partial);
        co_await ctx.barrier(*iterBar);
        float sum = 0.0f;
        for (int t = 0; t < ctx.nthreads(); ++t)
            sum += co_await ctx.load<float>(partials.at(t));
        co_await ctx.computeFp(Cycles(ctx.nthreads()));
        co_await ctx.barrier(*iterBar);
        co_return sum;
    }

    /** Original: one pass per vector op over the AoS records. */
    KernelTask
    kernelCcOrig(Context &ctx)
    {
        Range r = splitRange(numF1, ctx.tid(), ctx.nthreads());
        for (int it = 0; it < kIterations; ++it) {
            // Pass 1: W = I + a*U
            for (auto i = r.begin; i < r.end; ++i) {
                auto vi = co_await ctx.load<float>(fieldAddr(i, FieldI));
                auto vu = co_await ctx.load<float>(fieldAddr(i, FieldU));
                co_await ctx.computeFp(1);
                co_await ctx.store<float>(fieldAddr(i, FieldW),
                                          vi + kA * vu);
            }
            // Pass 2: reduce sum(W)
            float px = 0.0f;
            for (auto i = r.begin; i < r.end; ++i) {
                px += co_await ctx.load<float>(fieldAddr(i, FieldW));
                co_await ctx.computeFp(1);
            }
            float sumW = co_await reduce(ctx, px);
            // Pass 3: X = W/sum
            for (auto i = r.begin; i < r.end; ++i) {
                auto w = co_await ctx.load<float>(fieldAddr(i, FieldW));
                co_await ctx.computeFp(2);
                co_await ctx.store<float>(fieldAddr(i, FieldX),
                                          w / sumW);
            }
            // Pass 4: V = threshold(X)
            for (auto i = r.begin; i < r.end; ++i) {
                auto x = co_await ctx.load<float>(fieldAddr(i, FieldX));
                co_await ctx.computeFp(1);
                co_await ctx.store<float>(fieldAddr(i, FieldV),
                                          x > theta ? x : 0.0f);
            }
            // Pass 5: reduce sum(V)
            float pv = 0.0f;
            for (auto i = r.begin; i < r.end; ++i) {
                pv += co_await ctx.load<float>(fieldAddr(i, FieldV));
                co_await ctx.computeFp(1);
            }
            float sumV = co_await reduce(ctx, pv);
            // Pass 6: U = V/sumV
            for (auto i = r.begin; i < r.end; ++i) {
                auto v = co_await ctx.load<float>(fieldAddr(i, FieldV));
                co_await ctx.computeFp(2);
                co_await ctx.store<float>(fieldAddr(i, FieldU),
                                          v / sumV);
            }
            // Pass 7: P = U + b*T
            for (auto i = r.begin; i < r.end; ++i) {
                auto u = co_await ctx.load<float>(fieldAddr(i, FieldU));
                auto t = co_await ctx.load<float>(fieldAddr(i, FieldT));
                co_await ctx.computeFp(1);
                co_await ctx.store<float>(fieldAddr(i, FieldP),
                                          u + kB * t);
            }
            // Pass 8: T = decay(T, P)
            for (auto i = r.begin; i < r.end; ++i) {
                auto t = co_await ctx.load<float>(fieldAddr(i, FieldT));
                auto p = co_await ctx.load<float>(fieldAddr(i, FieldP));
                co_await ctx.computeFp(2);
                co_await ctx.store<float>(
                    fieldAddr(i, FieldT),
                    t * kDecay + (1.0f - kDecay) * p);
            }
            co_await ctx.barrier(*iterBar);
        }
    }

    /** Stream-optimized: SoA + fused passes + scalar temporaries. */
    KernelTask
    kernelCcFused(Context &ctx)
    {
        Range r = splitRange(numF1, ctx.tid(), ctx.nthreads());
        for (int it = 0; it < kIterations; ++it) {
            float px = 0.0f;
            for (auto i = r.begin; i < r.end; ++i) {
                auto vi = co_await ctx.load<float>(aI.at(i));
                auto vu = co_await ctx.load<float>(aU.at(i));
                co_await ctx.computeFp(2);
                float w = vi + kA * vu;
                co_await ctx.store<float>(aW.at(i), w);
                px += w;
            }
            float sumW = co_await reduce(ctx, px);

            float pv = 0.0f;
            for (auto i = r.begin; i < r.end; ++i) {
                auto w = co_await ctx.load<float>(aW.at(i));
                co_await ctx.computeFp(3);
                float x = w / sumW;
                float v = x > theta ? x : 0.0f;
                co_await ctx.store<float>(aX.at(i), x);
                co_await ctx.store<float>(aV.at(i), v);
                pv += v;
            }
            float sumV = co_await reduce(ctx, pv);

            for (auto i = r.begin; i < r.end; ++i) {
                auto v = co_await ctx.load<float>(aV.at(i));
                auto t = co_await ctx.load<float>(aT.at(i));
                co_await ctx.computeFp(4);
                float u = v / sumV;
                float p = u + kB * t;
                co_await ctx.store<float>(aU.at(i), u);
                co_await ctx.store<float>(aP.at(i), p);
                co_await ctx.store<float>(
                    aT.at(i), t * kDecay + (1.0f - kDecay) * p);
            }
            co_await ctx.barrier(*iterBar);
        }
    }

    /** Streaming: SoA + fused, with double-buffered DMA blocks. */
    KernelTask
    kernelStr(Context &ctx)
    {
        constexpr std::uint32_t blk = 512; // elements per DMA block
        Range r = splitRange(numF1, ctx.tid(), ctx.nthreads());
        // Local-store layout: one block per array stream in flight.
        const std::uint32_t lsA = 0;        // first input stream
        const std::uint32_t lsB = blk * 4;  // second input stream
        const std::uint32_t lsC = 2 * blk * 4; // output stream
        const std::uint32_t lsD = 3 * blk * 4; // second output stream
        const std::uint32_t lsE = 4 * blk * 4; // third output stream

        auto blockElems = [&](std::uint64_t base) {
            return std::uint32_t(
                std::min<std::uint64_t>(blk, r.end - base));
        };

        for (int it = 0; it < kIterations; ++it) {
            float px = 0.0f;
            for (auto base = r.begin; base < r.end; base += blk) {
                std::uint32_t m = blockElems(base);
                auto g1 = co_await ctx.dmaGet(aI.at(base), lsA, m * 4);
                auto g2 = co_await ctx.dmaGet(aU.at(base), lsB, m * 4);
                co_await ctx.dmaWait(g1);
                co_await ctx.dmaWait(g2);
                for (std::uint32_t i = 0; i < m; ++i) {
                    auto vi = co_await ctx.lsRead<float>(lsA + i * 4);
                    auto vu = co_await ctx.lsRead<float>(lsB + i * 4);
                    co_await ctx.computeFp(2);
                    float w = vi + kA * vu;
                    co_await ctx.lsWrite<float>(lsC + i * 4, w);
                    px += w;
                }
                auto pt = co_await ctx.dmaPut(aW.at(base), lsC, m * 4);
                co_await ctx.dmaWait(pt);
            }
            float sumW = co_await reduce(ctx, px);

            float pv = 0.0f;
            for (auto base = r.begin; base < r.end; base += blk) {
                std::uint32_t m = blockElems(base);
                auto g1 = co_await ctx.dmaGet(aW.at(base), lsA, m * 4);
                co_await ctx.dmaWait(g1);
                for (std::uint32_t i = 0; i < m; ++i) {
                    auto w = co_await ctx.lsRead<float>(lsA + i * 4);
                    co_await ctx.computeFp(3);
                    float x = w / sumW;
                    float v = x > theta ? x : 0.0f;
                    co_await ctx.lsWrite<float>(lsC + i * 4, x);
                    co_await ctx.lsWrite<float>(lsD + i * 4, v);
                    pv += v;
                }
                auto p1 = co_await ctx.dmaPut(aX.at(base), lsC, m * 4);
                auto p2 = co_await ctx.dmaPut(aV.at(base), lsD, m * 4);
                co_await ctx.dmaWait(p1);
                co_await ctx.dmaWait(p2);
            }
            float sumV = co_await reduce(ctx, pv);

            for (auto base = r.begin; base < r.end; base += blk) {
                std::uint32_t m = blockElems(base);
                auto g1 = co_await ctx.dmaGet(aV.at(base), lsA, m * 4);
                auto g2 = co_await ctx.dmaGet(aT.at(base), lsB, m * 4);
                co_await ctx.dmaWait(g1);
                co_await ctx.dmaWait(g2);
                for (std::uint32_t i = 0; i < m; ++i) {
                    auto v = co_await ctx.lsRead<float>(lsA + i * 4);
                    auto t = co_await ctx.lsRead<float>(lsB + i * 4);
                    co_await ctx.computeFp(4);
                    float u = v / sumV;
                    float p = u + kB * t;
                    co_await ctx.lsWrite<float>(lsC + i * 4, u);
                    co_await ctx.lsWrite<float>(lsD + i * 4, p);
                    co_await ctx.lsWrite<float>(
                        lsE + i * 4, t * kDecay + (1.0f - kDecay) * p);
                }
                auto p1 = co_await ctx.dmaPut(aU.at(base), lsC, m * 4);
                auto p2 = co_await ctx.dmaPut(aP.at(base), lsD, m * 4);
                auto p3 = co_await ctx.dmaPut(aT.at(base), lsE, m * 4);
                co_await ctx.dmaWait(p1);
                co_await ctx.dmaWait(p2);
                co_await ctx.dmaWait(p3);
            }
            co_await ctx.barrier(*iterBar);
        }
    }

    std::uint32_t numF1;
    float theta = 0.0f;
    int nthreads = 1;
    bool soa = true;
    ArrayRef<F1Neuron> aos;
    ArrayRef<float> aI, aW, aX, aU, aV, aP, aT;
    ArrayRef<float> partials;
    std::unique_ptr<Barrier> iterBar;
    std::vector<float> hostI, hostU, hostT;
};

} // namespace

std::unique_ptr<Workload>
makeArt(const WorkloadParams &p)
{
    return std::make_unique<ArtWorkload>(p);
}

} // namespace cmpmem
