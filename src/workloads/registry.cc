#include "workloads/registry.hh"

#include <functional>
#include <utility>

#include "sim/sim_error.hh"
#include "workloads/factories.hh"

namespace cmpmem
{

namespace
{

using Factory =
    std::unique_ptr<Workload> (*)(const WorkloadParams &);

struct Entry
{
    const char *name;
    Factory factory;
};

/** Table 3 order. */
constexpr Entry entries[] = {
    {"mpeg2", &makeMpeg2},
    {"h264", &makeH264},
    {"raytrace", &makeRaytrace},
    {"jpeg_enc", &makeJpegEnc},
    {"jpeg_dec", &makeJpegDec},
    {"depth", &makeDepth},
    {"fem", &makeFem},
    {"fir", &makeFir},
    {"art", &makeArt},
    {"bitonic", &makeBitonic},
    {"merge", &makeMerge},
};

/**
 * Creatable by name but hidden from workloadNames(): not paper
 * applications, so table/figure sweeps must never iterate them.
 */
constexpr Entry hiddenEntries[] = {
    {"stress", &makeStress},
    {"hang", &makeHang},
    {"crash", &makeCrash},
    {"hostspin", &makeHostspin},
};

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &e : entries)
        names.push_back(e.name);
    return names;
}

std::unique_ptr<Workload>
createWorkload(const std::string &name, const WorkloadParams &params)
{
    for (const auto &e : entries) {
        if (name == e.name)
            return e.factory(params);
    }
    for (const auto &e : hiddenEntries) {
        if (name == e.name)
            return e.factory(params);
    }
    throwSimError(SimErrorKind::Config, "unknown workload '%s'",
                  name.c_str());
}

} // namespace cmpmem
