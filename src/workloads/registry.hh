/**
 * @file
 * Name-based factory for the eleven paper workloads.
 */

#ifndef CMPMEM_WORKLOADS_REGISTRY_HH
#define CMPMEM_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace cmpmem
{

/** All registered workload names, in the paper's Table 3 order. */
std::vector<std::string> workloadNames();

/**
 * Instantiate a workload by name ("fir", "bitonic", "merge", "art",
 * "fem", "depth", "jpeg_enc", "jpeg_dec", "mpeg2", "h264",
 * "raytrace"). fatal()s on an unknown name.
 */
std::unique_ptr<Workload> createWorkload(const std::string &name,
                                         const WorkloadParams &params = {});

} // namespace cmpmem

#endif // CMPMEM_WORKLOADS_REGISTRY_HH
