/**
 * @file
 * MergeSort: "processors first sort chunks of 4096 keys in parallel
 * using quicksort. Then, sorted chunks are merged ... MergeSort
 * gradually reduces in parallelism as it progresses [and] alternates
 * writing output sublists to two buffer arrays" (Section 4.2).
 *
 * Paper behaviours reproduced here:
 *  - decreasing parallelism -> growing Sync fraction at high core
 *    counts (Figure 2);
 *  - sequential output streams -> superfluous write-allocate refills
 *    in CC (fixed by PFS in Figure 8; stores use storeNA);
 *  - the STR inner loop "executes extra comparisons to check if an
 *    output buffer is full and needs to be drained", so it runs more
 *    instructions even when double-buffering hides all data stalls;
 *  - hardware prefetching on the two sequential input runs plus the
 *    output eliminates CC data stalls (Figure 7).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr std::uint32_t kChunk = 4096;

class MergeWorkload : public Workload
{
  public:
    explicit MergeWorkload(const WorkloadParams &p) : Workload(p)
    {
        n = p.scale > 0 ? (1u << (16 + p.scale)) : (1u << 14);
    }

    std::string name() const override { return "merge"; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        bufA = ArrayRef<std::uint32_t>::alloc(mem, n);
        bufB = ArrayRef<std::uint32_t>::alloc(mem, n);
        levels = 0;
        for (std::uint32_t s = kChunk; s < n; s <<= 1)
            ++levels;
        counters = ArrayRef<std::uint32_t>::alloc(mem, levels + 1);
        levelBar = std::make_unique<Barrier>(sys.cores());

        Rng rng(99);
        expected.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            auto v = rng.next32();
            mem.write<std::uint32_t>(bufA.at(i), v);
            expected[i] = v;
        }
        std::sort(expected.begin(), expected.end());
        for (std::uint32_t l = 0; l <= levels; ++l)
            mem.write<std::uint32_t>(counters.at(l), 0);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return kernelCc(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        const ArrayRef<std::uint32_t> &result =
            (levels % 2 == 0) ? bufA : bufB;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (mem.read<std::uint32_t>(result.at(i)) != expected[i])
                return false;
        }
        return true;
    }

  private:
    //
    // Cache-based kernels.
    //

    Co<void>
    quicksortCc(Context &ctx, Addr base, std::int64_t lo,
                std::int64_t hi)
    {
        // Iterative quicksort with an explicit range stack; all key
        // accesses go through the cache.
        std::vector<std::pair<std::int64_t, std::int64_t>> stack;
        stack.emplace_back(lo, hi);
        while (!stack.empty()) {
            auto [l, h] = stack.back();
            stack.pop_back();
            while (h - l > 12) {
                auto pivot = co_await ctx.load<std::uint32_t>(
                    base + Addr((l + h) / 2) * 4);
                std::int64_t i = l;
                std::int64_t j = h;
                while (i <= j) {
                    std::uint32_t a;
                    while (true) {
                        a = co_await ctx.load<std::uint32_t>(
                            base + Addr(i) * 4);
                        co_await ctx.compute(1);
                        if (a >= pivot)
                            break;
                        ++i;
                    }
                    std::uint32_t b;
                    while (true) {
                        b = co_await ctx.load<std::uint32_t>(
                            base + Addr(j) * 4);
                        co_await ctx.compute(1);
                        if (b <= pivot)
                            break;
                        --j;
                    }
                    if (i <= j) {
                        co_await ctx.store<std::uint32_t>(
                            base + Addr(i) * 4, b);
                        co_await ctx.store<std::uint32_t>(
                            base + Addr(j) * 4, a);
                        ++i;
                        --j;
                    }
                }
                stack.emplace_back(i, h);
                h = j;
            }
            // Insertion sort for the small tail.
            for (std::int64_t i = l + 1; i <= h; ++i) {
                auto v = co_await ctx.load<std::uint32_t>(
                    base + Addr(i) * 4);
                std::int64_t j = i - 1;
                while (j >= l) {
                    auto u = co_await ctx.load<std::uint32_t>(
                        base + Addr(j) * 4);
                    co_await ctx.compute(1);
                    if (u <= v)
                        break;
                    co_await ctx.store<std::uint32_t>(
                        base + Addr(j + 1) * 4, u);
                    --j;
                }
                co_await ctx.store<std::uint32_t>(base + Addr(j + 1) * 4,
                                                  v);
            }
        }
    }

    Co<void>
    mergeCc(Context &ctx, Addr srcL, Addr srcR, std::uint32_t len,
            Addr dst)
    {
        std::uint32_t i = 0;
        std::uint32_t j = 0;
        std::uint32_t o = 0;
        // Keep the heads in registers; reload on consumption only.
        std::uint32_t a = co_await ctx.load<std::uint32_t>(srcL);
        std::uint32_t b = co_await ctx.load<std::uint32_t>(srcR);
        while (i < len && j < len) {
            co_await ctx.compute(1);
            if (a <= b) {
                co_await ctx.storeNA<std::uint32_t>(dst + Addr(o++) * 4,
                                                    a);
                if (++i < len) {
                    a = co_await ctx.load<std::uint32_t>(
                        srcL + Addr(i) * 4);
                }
            } else {
                co_await ctx.storeNA<std::uint32_t>(dst + Addr(o++) * 4,
                                                    b);
                if (++j < len) {
                    b = co_await ctx.load<std::uint32_t>(
                        srcR + Addr(j) * 4);
                }
            }
        }
        while (i < len) {
            auto v = co_await ctx.load<std::uint32_t>(srcL + Addr(i) * 4);
            co_await ctx.storeNA<std::uint32_t>(dst + Addr(o++) * 4, v);
            ++i;
        }
        while (j < len) {
            auto v = co_await ctx.load<std::uint32_t>(srcR + Addr(j) * 4);
            co_await ctx.storeNA<std::uint32_t>(dst + Addr(o++) * 4, v);
            ++j;
        }
    }

    KernelTask
    kernelCc(Context &ctx)
    {
        // Phase 1: quicksort chunks, dynamically assigned.
        const std::uint32_t chunks = n / kChunk;
        while (true) {
            auto t = co_await ctx.nextTask(counters.at(0), chunks);
            if (t < 0)
                break;
            Addr base = bufA.at(std::uint64_t(t) * kChunk);
            co_await quicksortCc(ctx, base, 0, kChunk - 1);
        }
        co_await ctx.barrier(*levelBar);

        // Phase 2: merge tree, ping-ponging between the buffers.
        std::uint32_t len = kChunk;
        for (std::uint32_t level = 0; level < levels; ++level) {
            const ArrayRef<std::uint32_t> &src =
                (level % 2 == 0) ? bufA : bufB;
            const ArrayRef<std::uint32_t> &dst =
                (level % 2 == 0) ? bufB : bufA;
            std::uint32_t tasks = n / (2 * len);
            while (true) {
                auto t = co_await ctx.nextTask(counters.at(level + 1),
                                               tasks);
                if (t < 0)
                    break;
                std::uint64_t base = std::uint64_t(t) * 2 * len;
                co_await mergeCc(ctx, src.at(base), src.at(base + len),
                                 len, dst.at(base));
            }
            co_await ctx.barrier(*levelBar);
            len <<= 1;
        }
    }

    //
    // Streaming kernels.
    //

    Co<void>
    quicksortLs(Context &ctx, std::uint32_t ls_base, std::int64_t lo,
                std::int64_t hi)
    {
        std::vector<std::pair<std::int64_t, std::int64_t>> stack;
        stack.emplace_back(lo, hi);
        auto rd = [&](std::int64_t i) {
            return ctx.lsRead<std::uint32_t>(ls_base +
                                             std::uint32_t(i) * 4);
        };
        auto wr = [&](std::int64_t i, std::uint32_t v) {
            return ctx.lsWrite<std::uint32_t>(
                ls_base + std::uint32_t(i) * 4, v);
        };
        while (!stack.empty()) {
            auto [l, h] = stack.back();
            stack.pop_back();
            while (h - l > 12) {
                auto pivot = co_await rd((l + h) / 2);
                std::int64_t i = l;
                std::int64_t j = h;
                while (i <= j) {
                    std::uint32_t a;
                    while (true) {
                        a = co_await rd(i);
                        co_await ctx.compute(1);
                        if (a >= pivot)
                            break;
                        ++i;
                    }
                    std::uint32_t b;
                    while (true) {
                        b = co_await rd(j);
                        co_await ctx.compute(1);
                        if (b <= pivot)
                            break;
                        --j;
                    }
                    if (i <= j) {
                        co_await wr(i, b);
                        co_await wr(j, a);
                        ++i;
                        --j;
                    }
                }
                stack.emplace_back(i, h);
                h = j;
            }
            for (std::int64_t i = l + 1; i <= h; ++i) {
                auto v = co_await rd(i);
                std::int64_t j = i - 1;
                while (j >= l) {
                    auto u = co_await rd(j);
                    co_await ctx.compute(1);
                    if (u <= v)
                        break;
                    co_await wr(j + 1, u);
                    --j;
                }
                co_await wr(j + 1, v);
            }
        }
    }

    /**
     * Streaming merge: both input runs stream through double-
     * buffered local-store windows; output gathers in a local buffer
     * drained by DMA when full. The drain check is the extra
     * comparison per element the paper charges to streaming.
     */
    Co<void>
    mergeStr(Context &ctx, Addr srcL, Addr srcR, std::uint32_t len,
             Addr dst)
    {
        constexpr std::uint32_t win = 512; // elements per window
        const std::uint32_t lsL = 0;
        const std::uint32_t lsR = win * 4;
        const std::uint32_t lsO = 2 * win * 4;

        std::uint32_t li = 0, ri = 0; // consumed from each run
        std::uint32_t lw = 0, rw = 0; // filled window sizes
        std::uint32_t lo = 0, ro = 0; // offset within window
        std::uint32_t oo = 0;         // output fill
        std::uint32_t written = 0;

        auto refillL = [&]() -> Co<void> {
            lw = std::min(win, len - li);
            auto tk = co_await ctx.dmaGet(srcL + Addr(li) * 4, lsL,
                                          lw * 4);
            co_await ctx.dmaWait(tk);
            lo = 0;
        };
        auto refillR = [&]() -> Co<void> {
            rw = std::min(win, len - ri);
            auto tk = co_await ctx.dmaGet(srcR + Addr(ri) * 4, lsR,
                                          rw * 4);
            co_await ctx.dmaWait(tk);
            ro = 0;
        };
        auto drain = [&]() -> Co<void> {
            auto tk = co_await ctx.dmaPut(dst + Addr(written) * 4, lsO,
                                          oo * 4);
            co_await ctx.dmaWait(tk);
            written += oo;
            oo = 0;
        };

        if (len)
            co_await refillL();
        if (len)
            co_await refillR();

        while (li < len || ri < len) {
            std::uint32_t v;
            if (li < len && ri < len) {
                auto a = co_await ctx.lsRead<std::uint32_t>(lsL + lo * 4);
                auto b = co_await ctx.lsRead<std::uint32_t>(lsR + ro * 4);
                co_await ctx.compute(1);
                if (a <= b) {
                    v = a;
                    ++li;
                    if (++lo == lw && li < len)
                        co_await refillL();
                } else {
                    v = b;
                    ++ri;
                    if (++ro == rw && ri < len)
                        co_await refillR();
                }
            } else if (li < len) {
                v = co_await ctx.lsRead<std::uint32_t>(lsL + lo * 4);
                ++li;
                if (++lo == lw && li < len)
                    co_await refillL();
            } else {
                v = co_await ctx.lsRead<std::uint32_t>(lsR + ro * 4);
                ++ri;
                if (++ro == rw && ri < len)
                    co_await refillR();
            }
            co_await ctx.lsWrite<std::uint32_t>(lsO + oo * 4, v);
            ++oo;
            // The output-buffer-full check: one extra comparison per
            // element relative to the cache-based inner loop.
            co_await ctx.compute(1);
            if (oo == win)
                co_await drain();
        }
        if (oo)
            co_await drain();
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        const std::uint32_t chunks = n / kChunk;
        const std::uint32_t chunkBytes = kChunk * 4;

        // Phase 1: DMA each chunk into the local store (16 KB of the
        // 24 KB), quicksort locally, DMA back.
        while (true) {
            auto t = co_await ctx.nextTask(counters.at(0), chunks);
            if (t < 0)
                break;
            Addr base = bufA.at(std::uint64_t(t) * kChunk);
            auto g = co_await ctx.dmaGet(base, 0, chunkBytes);
            co_await ctx.dmaWait(g);
            co_await quicksortLs(ctx, 0, 0, kChunk - 1);
            auto pt = co_await ctx.dmaPut(base, 0, chunkBytes);
            co_await ctx.dmaWait(pt);
        }
        co_await ctx.barrier(*levelBar);

        std::uint32_t len = kChunk;
        for (std::uint32_t level = 0; level < levels; ++level) {
            const ArrayRef<std::uint32_t> &src =
                (level % 2 == 0) ? bufA : bufB;
            const ArrayRef<std::uint32_t> &dst =
                (level % 2 == 0) ? bufB : bufA;
            std::uint32_t tasks = n / (2 * len);
            while (true) {
                auto t = co_await ctx.nextTask(counters.at(level + 1),
                                               tasks);
                if (t < 0)
                    break;
                std::uint64_t base = std::uint64_t(t) * 2 * len;
                co_await mergeStr(ctx, src.at(base), src.at(base + len),
                                  len, dst.at(base));
            }
            co_await ctx.barrier(*levelBar);
            len <<= 1;
        }
    }

    std::uint32_t n;
    std::uint32_t levels = 0;
    ArrayRef<std::uint32_t> bufA;
    ArrayRef<std::uint32_t> bufB;
    ArrayRef<std::uint32_t> counters;
    std::unique_ptr<Barrier> levelBar;
    std::vector<std::uint32_t> expected;
};

} // namespace

std::unique_ptr<Workload>
makeMerge(const WorkloadParams &p)
{
    return std::make_unique<MergeWorkload>(p);
}

} // namespace cmpmem
