/**
 * @file
 * MPEG-2 encoder, "parallelized at the macroblock level ...
 * dynamically assign[ing] macroblocks to cores using a task queue.
 * Macroblocks are entirely data-parallel in MPEG-2" (Section 4.2).
 *
 * Two cache-model variants reproduce Figure 9:
 *  - orig (streamOptimized=false): the ALP-style code "performs an
 *    application kernel on a whole video frame before the next
 *    kernel is invoked (i.e. Motion Estimation, DCT, Quantization)",
 *    with frame-sized temporary arrays for residuals and
 *    coefficients between passes;
 *  - base (streamOptimized=true): the restructured code that
 *    executes all tasks on a macroblock before moving to the next,
 *    condensing the large temporaries into stack variables — cutting
 *    L1 write-backs by ~60% in the paper. The restructured code has
 *    a notably larger I-cache footprint (all kernels in the loop),
 *    which icacheMpki() reflects.
 *
 * The encoder itself: three-step motion search over a +/-8 window
 * against the previous original frame (open-loop prediction, a
 * documented simplification), 8x8 integer transform of the residual,
 * and per-coefficient quantization. Outputs are bit-exact against a
 * host reference performing the identical search.
 */

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kW = 320;
constexpr int kH = 192;
constexpr int kMb = 16;
constexpr int kMbX = kW / kMb;
constexpr int kMbY = kH / kMb;
constexpr int kMbPerFrame = kMbX * kMbY;
constexpr int kSearch = 8; ///< +/- window
/** Consecutive macroblocks per task-queue grab: horizontally
 *  adjacent MBs share two thirds of their search windows, which the
 *  cache-based version reuses for free while the streaming version
 *  re-fetches the whole window per MB (the paper's "streaming system
 *  may naively re-fetch data" observation). */
constexpr int kMbChunk = 5;
/** SAD of a 16x16 block: 256 absolute differences on a 3-slot VLIW
 *  without SIMD. */
constexpr Cycles kSadCycles = 170;
constexpr Cycles kXformCycles = 110; ///< one 8x8 transform
constexpr Cycles kQuantCycles = 40;  ///< quantize one 8x8 block

int
quantShift(int k)
{
    return 3 + ((k % 8) + (k / 8)) / 3;
}

class Mpeg2Workload : public Workload
{
  public:
    explicit Mpeg2Workload(const WorkloadParams &p) : Workload(p)
    {
        pFrames = p.scale > 0 ? 2 * p.scale : 1; // P-frames
    }

    std::string name() const override { return "mpeg2"; }

    double
    icacheMpki(const SystemConfig &) const override
    {
        // The fused (stream-optimized) loop body holds every kernel
        // at once and misses more in the 16 KB I-cache (Section 6).
        return prm.streamOptimized ? 1.6 : 0.6;
    }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();
        const std::uint64_t frame = std::uint64_t(kW) * kH;
        const std::uint32_t frames = pFrames + 1;
        pixels = ArrayRef<std::uint8_t>::alloc(mem, frame * frames);
        mvOut = ArrayRef<std::int8_t>::alloc(
            mem, std::uint64_t(2) * kMbPerFrame * pFrames);
        coefOut = ArrayRef<std::int16_t>::alloc(
            mem, std::uint64_t(256) * kMbPerFrame * pFrames);
        // Frame-sized temporaries for the unoptimized pass-per-kernel
        // variant.
        residTmp = ArrayRef<std::int16_t>::alloc(mem, frame);
        coefTmp = ArrayRef<std::int16_t>::alloc(mem, frame);
        counters = ArrayRef<std::uint32_t>::alloc(
            mem, std::uint64_t(3) * pFrames);
        frameBar = std::make_unique<Barrier>(nthreads);

        // Synthetic video: textured background with a moving box, so
        // motion search finds real motion vectors.
        Rng rng(555);
        hostPix.resize(frame * frames);
        for (std::uint32_t f = 0; f < frames; ++f) {
            int ox = int(f) * 3;
            int oy = int(f) * 2;
            for (int y = 0; y < kH; ++y) {
                for (int x = 0; x < kW; ++x) {
                    int wx = x - ox;
                    int wy = y - oy;
                    int v = ((wx * 13) ^ (wy * 7)) & 0x7f;
                    bool box = wx > 60 && wx < 140 && wy > 40 &&
                               wy < 120;
                    hostPix[f * frame + std::uint64_t(y) * kW + x] =
                        std::uint8_t(box ? 200 + (v & 0x1f) : v);
                }
            }
        }
        for (std::uint64_t i = 0; i < hostPix.size(); ++i)
            mem.write<std::uint8_t>(pixels.at(i), hostPix[i]);
        for (std::uint32_t c = 0; c < 3 * pFrames; ++c)
            mem.write<std::uint32_t>(counters.at(c), 0);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return prm.streamOptimized ? kernelCcFused(ctx)
                                   : kernelCcPasses(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        for (std::uint32_t f = 0; f < pFrames; ++f) {
            for (int mb = 0; mb < kMbPerFrame; ++mb) {
                int bestDx, bestDy;
                std::int16_t coefs[256];
                hostEncodeMb(f + 1, mb, bestDx, bestDy, coefs);
                std::uint64_t mvBase =
                    (std::uint64_t(f) * kMbPerFrame + mb) * 2;
                if (mem.read<std::int8_t>(mvOut.at(mvBase)) != bestDx ||
                    mem.read<std::int8_t>(mvOut.at(mvBase + 1)) !=
                        bestDy)
                    return false;
                std::uint64_t cBase =
                    (std::uint64_t(f) * kMbPerFrame + mb) * 256;
                for (int k = 0; k < 256; ++k) {
                    if (mem.read<std::int16_t>(coefOut.at(cBase + k)) !=
                        coefs[k])
                        return false;
                }
            }
        }
        return true;
    }

  private:
    std::uint64_t
    pix(std::uint32_t f, int x, int y) const
    {
        return (std::uint64_t(f) * kH + std::uint64_t(y)) * kW +
               std::uint64_t(x);
    }

    static int
    clampCoord(int v, int lo, int hi)
    {
        return v < lo ? lo : (v > hi ? hi : v);
    }

    /** SAD between a current-MB buffer and a ref position (host). */
    std::uint64_t
    hostSad(const std::uint8_t *cur, std::uint32_t ref_frame, int rx,
            int ry) const
    {
        std::uint64_t sad = 0;
        for (int y = 0; y < kMb; ++y) {
            for (int x = 0; x < kMb; ++x) {
                int sx = clampCoord(rx + x, 0, kW - 1);
                int sy = clampCoord(ry + y, 0, kH - 1);
                sad += std::uint64_t(std::abs(
                    int(cur[y * kMb + x]) -
                    int(hostPix[pix(ref_frame, sx, sy)])));
            }
        }
        return sad;
    }

    /**
     * Two-stage search: a coarse step-2 scan of the whole +/-8
     * window (81 SADs, the bulk of MPEG-2's compute intensity in the
     * paper's Table 3) followed by a +/-1 refinement (8 SADs).
     * Deterministic candidate order.
     */
    void
    hostSearch(const std::uint8_t *cur, std::uint32_t ref_frame,
               int mbx, int mby, int &bestDx, int &bestDy) const
    {
        int cx = 0, cy = 0;
        std::uint64_t best = ~0ull;
        for (int dy = -kSearch; dy <= kSearch; dy += 2) {
            for (int dx = -kSearch; dx <= kSearch; dx += 2) {
                std::uint64_t s = hostSad(cur, ref_frame,
                                          mbx * kMb + dx,
                                          mby * kMb + dy);
                if (s < best) {
                    best = s;
                    cx = dx;
                    cy = dy;
                }
            }
        }
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                int nx = cx + dx, ny = cy + dy;
                if (nx < -kSearch || nx > kSearch || ny < -kSearch ||
                    ny > kSearch)
                    continue;
                std::uint64_t s = hostSad(cur, ref_frame,
                                          mbx * kMb + nx,
                                          mby * kMb + ny);
                if (s < best) {
                    best = s;
                    cx = nx;
                    cy = ny;
                }
            }
        }
        bestDx = cx;
        bestDy = cy;
    }

    void
    hostResidual(const std::uint8_t *cur, std::uint32_t ref_frame,
                 int mbx, int mby, int dx, int dy,
                 std::int16_t *resid) const
    {
        for (int y = 0; y < kMb; ++y) {
            for (int x = 0; x < kMb; ++x) {
                int sx = clampCoord(mbx * kMb + dx + x, 0, kW - 1);
                int sy = clampCoord(mby * kMb + dy + y, 0, kH - 1);
                resid[y * kMb + x] = std::int16_t(
                    int(cur[y * kMb + x]) -
                    int(hostPix[pix(ref_frame, sx, sy)]));
            }
        }
    }

    static void
    transformQuant(const std::int16_t *resid, std::int16_t *coefs)
    {
        for (int b = 0; b < 4; ++b) {
            int bx = (b % 2) * 8;
            int by = (b / 2) * 8;
            std::int32_t blk[64];
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    blk[y * 8 + x] =
                        resid[(by + y) * kMb + bx + x];
            forwardTransform8x8(blk);
            for (int k = 0; k < 64; ++k)
                coefs[b * 64 + k] =
                    std::int16_t(blk[k] >> quantShift(k));
        }
    }

    void
    hostEncodeMb(std::uint32_t f, int mb, int &bestDx, int &bestDy,
                 std::int16_t *coefs) const
    {
        int mbx = mb % kMbX;
        int mby = mb / kMbX;
        std::uint8_t cur[256];
        for (int y = 0; y < kMb; ++y)
            for (int x = 0; x < kMb; ++x)
                cur[y * kMb + x] =
                    hostPix[pix(f, mbx * kMb + x, mby * kMb + y)];
        hostSearch(cur, f - 1, mbx, mby, bestDx, bestDy);
        std::int16_t resid[256];
        hostResidual(cur, f - 1, mbx, mby, bestDx, bestDy, resid);
        transformQuant(resid, coefs);
    }

    //
    // Timed building blocks shared by the simulated kernels. The
    // pixel *values* come from host arrays (identical to simulated
    // memory contents, which verify() re-checks); the *accesses* are
    // issued against simulated memory so timing sees the real
    // pattern.
    //

    /** Load the current MB (256 B, sequential per row). */
    Co<void>
    loadCurrentMb(Context &ctx, std::uint32_t f, int mbx, int mby,
                  std::uint8_t *cur, bool via_ls, std::uint32_t ls_off)
    {
        for (int y = 0; y < kMb; ++y) {
            for (int x = 0; x < kMb; x += 4) {
                std::uint32_t w;
                if (via_ls) {
                    w = co_await ctx.lsRead<std::uint32_t>(
                        ls_off + std::uint32_t(y * kMb + x));
                } else {
                    w = co_await ctx.load<std::uint32_t>(pixels.at(
                        pix(f, mbx * kMb + x, mby * kMb + y)));
                }
                std::memcpy(&cur[y * kMb + x], &w, 4);
            }
        }
    }

    /** Load the (clamped) 32x32 search window around the MB. */
    Co<void>
    loadWindow(Context &ctx, std::uint32_t ref, int mbx, int mby,
               bool via_ls, std::uint32_t ls_off)
    {
        for (int y = -kSearch; y < kMb + kSearch; y += 1) {
            int sy = clampCoord(mby * kMb + y, 0, kH - 1);
            for (int x = -kSearch; x < kMb + kSearch; x += 4) {
                int sx = clampCoord(mbx * kMb + x, 0, kW - 4);
                if (via_ls) {
                    co_await ctx.lsRead<std::uint32_t>(
                        ls_off +
                        std::uint32_t((y + kSearch) * 32 +
                                      (x + kSearch)));
                } else {
                    co_await ctx.load<std::uint32_t>(
                        pixels.at(pix(ref, sx, sy)));
                }
            }
        }
    }

    /** Charge the compute of the two-stage search (81 + 8 SADs). */
    Co<void>
    chargeSearchCompute(Context &ctx)
    {
        for (int row = 0; row < 9; ++row)
            co_await ctx.compute(9 * kSadCycles); // coarse scan
        co_await ctx.compute(8 * kSadCycles);     // refinement
    }

    /** The fused per-MB encode (used by CC-fused and STR). */
    Co<void>
    encodeMbSim(Context &ctx, std::uint32_t f, int mb, bool via_ls)
    {
        int mbx = mb % kMbX;
        int mby = mb / kMbX;

        // Streaming: DMA the current MB and the search window first.
        const std::uint32_t lsCur = 0;
        const std::uint32_t lsWin = 256;
        const std::uint32_t lsOut = 256 + 1024;
        if (via_ls) {
            auto g1 = co_await ctx.dmaGetStrided(
                pixels.at(pix(f, mbx * kMb, mby * kMb)), kW, kMb, kMb,
                lsCur);
            int wy0 = clampCoord(mby * kMb - kSearch, 0, kH - 32);
            int wx0 = clampCoord(mbx * kMb - kSearch, 0, kW - 32);
            auto g2 = co_await ctx.dmaGetStrided(
                pixels.at(pix(f - 1, wx0, wy0)), kW, 32, 32, lsWin);
            co_await ctx.dmaWait(g1);
            co_await ctx.dmaWait(g2);
        }

        std::uint8_t cur[256];
        co_await loadCurrentMb(ctx, f, mbx, mby, cur, via_ls, lsCur);
        co_await loadWindow(ctx, f - 1, mbx, mby, via_ls, lsWin);
        co_await chargeSearchCompute(ctx);

        int dx, dy;
        hostSearch(cur, f - 1, mbx, mby, dx, dy);
        std::int16_t resid[256];
        hostResidual(cur, f - 1, mbx, mby, dx, dy, resid);
        co_await ctx.compute(128); // residual generation
        std::int16_t coefs[256];
        transformQuant(resid, coefs);
        co_await ctx.compute(4 * (kXformCycles + kQuantCycles));

        // Outputs: motion vector + 512 B of coefficients.
        std::uint64_t idx = (std::uint64_t(f - 1) * kMbPerFrame + mb);
        if (via_ls) {
            for (int k = 0; k < 256; ++k) {
                co_await ctx.lsWrite<std::int16_t>(
                    lsOut + std::uint32_t(k) * 2, coefs[k]);
            }
            auto p1 = co_await ctx.dmaPut(coefOut.at(idx * 256), lsOut,
                                          512);
            co_await ctx.storeNA<std::int8_t>(mvOut.at(idx * 2),
                                              std::int8_t(dx));
            co_await ctx.storeNA<std::int8_t>(mvOut.at(idx * 2 + 1),
                                              std::int8_t(dy));
            co_await ctx.dmaWait(p1);
        } else {
            for (int k = 0; k < 256; k += 4) {
                std::uint64_t two;
                std::memcpy(&two, &coefs[k], 8);
                co_await ctx.storeNA<std::uint64_t>(
                    coefOut.at(idx * 256 + k), two);
            }
            co_await ctx.storeNA<std::int8_t>(mvOut.at(idx * 2),
                                              std::int8_t(dx));
            co_await ctx.storeNA<std::int8_t>(mvOut.at(idx * 2 + 1),
                                              std::int8_t(dy));
        }
    }

    KernelTask
    kernelCcFused(Context &ctx)
    {
        const std::uint64_t chunks =
            (kMbPerFrame + kMbChunk - 1) / kMbChunk;
        for (std::uint32_t f = 1; f <= pFrames; ++f) {
            while (true) {
                auto t = co_await ctx.nextTask(
                    counters.at((f - 1) * 3), chunks);
                if (t < 0)
                    break;
                int lo = int(t) * kMbChunk;
                int hi = std::min(lo + kMbChunk, kMbPerFrame);
                for (int mb = lo; mb < hi; ++mb)
                    co_await encodeMbSim(ctx, f, mb, false);
            }
            co_await ctx.barrier(*frameBar);
        }
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        const std::uint64_t chunks =
            (kMbPerFrame + kMbChunk - 1) / kMbChunk;
        for (std::uint32_t f = 1; f <= pFrames; ++f) {
            while (true) {
                auto t = co_await ctx.nextTask(
                    counters.at((f - 1) * 3), chunks);
                if (t < 0)
                    break;
                int lo = int(t) * kMbChunk;
                int hi = std::min(lo + kMbChunk, kMbPerFrame);
                for (int mb = lo; mb < hi; ++mb)
                    co_await encodeMbSim(ctx, f, mb, true);
            }
            co_await ctx.barrier(*frameBar);
        }
    }

    /**
     * Unoptimized: one kernel pass over the whole frame before the
     * next kernel runs, with frame-sized residual and coefficient
     * temporaries in memory between passes.
     */
    KernelTask
    kernelCcPasses(Context &ctx)
    {
        for (std::uint32_t f = 1; f <= pFrames; ++f) {
            // Pass 1: motion estimation + residual to residTmp.
            while (true) {
                auto t = co_await ctx.nextTask(
                    counters.at((f - 1) * 3), kMbPerFrame);
                if (t < 0)
                    break;
                int mb = int(t);
                int mbx = mb % kMbX;
                int mby = mb / kMbX;
                std::uint8_t cur[256];
                co_await loadCurrentMb(ctx, f, mbx, mby, cur, false, 0);
                co_await loadWindow(ctx, f - 1, mbx, mby, false, 0);
                co_await chargeSearchCompute(ctx);
                int dx, dy;
                hostSearch(cur, f - 1, mbx, mby, dx, dy);
                std::int16_t resid[256];
                hostResidual(cur, f - 1, mbx, mby, dx, dy, resid);
                co_await ctx.compute(128);
                std::uint64_t idx =
                    (std::uint64_t(f - 1) * kMbPerFrame + mb);
                co_await ctx.storeNA<std::int8_t>(mvOut.at(idx * 2),
                                                  std::int8_t(dx));
                co_await ctx.storeNA<std::int8_t>(
                    mvOut.at(idx * 2 + 1), std::int8_t(dy));
                // Residual temporary lives in a frame-sized buffer.
                for (int y = 0; y < kMb; ++y) {
                    for (int x = 0; x < kMb; x += 4) {
                        std::uint64_t two;
                        std::memcpy(&two, &resid[y * kMb + x], 8);
                        co_await ctx.store<std::uint64_t>(
                            residTmp.at(
                                pix(0, mbx * kMb + x, mby * kMb + y)),
                            two);
                    }
                }
            }
            co_await ctx.barrier(*frameBar);

            // Pass 2: transform residTmp -> coefTmp.
            while (true) {
                auto t = co_await ctx.nextTask(
                    counters.at((f - 1) * 3 + 1), kMbPerFrame);
                if (t < 0)
                    break;
                int mb = int(t);
                int mbx = mb % kMbX;
                int mby = mb / kMbX;
                std::int16_t resid[256];
                for (int y = 0; y < kMb; ++y) {
                    for (int x = 0; x < kMb; x += 4) {
                        auto two = co_await ctx.load<std::uint64_t>(
                            residTmp.at(
                                pix(0, mbx * kMb + x, mby * kMb + y)));
                        std::memcpy(&resid[y * kMb + x], &two, 8);
                    }
                }
                co_await ctx.compute(4 * kXformCycles);
                std::int16_t unquant[256];
                for (int b = 0; b < 4; ++b) {
                    int bx = (b % 2) * 8;
                    int by = (b / 2) * 8;
                    std::int32_t blk[64];
                    for (int y = 0; y < 8; ++y)
                        for (int x = 0; x < 8; ++x)
                            blk[y * 8 + x] =
                                resid[(by + y) * kMb + bx + x];
                    forwardTransform8x8(blk);
                    for (int k = 0; k < 64; ++k)
                        unquant[b * 64 + k] = std::int16_t(blk[k]);
                }
                for (int k = 0; k < 256; k += 4) {
                    std::uint64_t two;
                    std::memcpy(&two, &unquant[k], 8);
                    co_await ctx.store<std::uint64_t>(
                        coefTmp.at(pix(0, (mb % kMbX) * kMb +
                                              (k % kMb),
                                       (mb / kMbX) * kMb + k / kMb)),
                        two);
                }
            }
            co_await ctx.barrier(*frameBar);

            // Pass 3: quantize coefTmp -> coefOut.
            while (true) {
                auto t = co_await ctx.nextTask(
                    counters.at((f - 1) * 3 + 2), kMbPerFrame);
                if (t < 0)
                    break;
                int mb = int(t);
                std::int16_t unquant[256];
                for (int k = 0; k < 256; k += 4) {
                    auto two = co_await ctx.load<std::uint64_t>(
                        coefTmp.at(pix(0, (mb % kMbX) * kMb + (k % kMb),
                                       (mb / kMbX) * kMb + k / kMb)));
                    std::memcpy(&unquant[k], &two, 8);
                }
                co_await ctx.compute(4 * kQuantCycles);
                std::uint64_t idx =
                    (std::uint64_t(f - 1) * kMbPerFrame + mb);
                for (int k = 0; k < 256; k += 4) {
                    std::int16_t q[4];
                    for (int j = 0; j < 4; ++j) {
                        q[j] = std::int16_t(
                            unquant[k + j] >> quantShift((k + j) % 64));
                    }
                    std::uint64_t two;
                    std::memcpy(&two, q, 8);
                    co_await ctx.storeNA<std::uint64_t>(
                        coefOut.at(idx * 256 + k), two);
                }
            }
            co_await ctx.barrier(*frameBar);
        }
    }

    std::uint32_t pFrames;
    int nthreads = 1;
    ArrayRef<std::uint8_t> pixels;
    ArrayRef<std::int8_t> mvOut;
    ArrayRef<std::int16_t> coefOut;
    ArrayRef<std::int16_t> residTmp;
    ArrayRef<std::int16_t> coefTmp;
    ArrayRef<std::uint32_t> counters;
    std::unique_ptr<Barrier> frameBar;
    std::vector<std::uint8_t> hostPix;
};

} // namespace

std::unique_ptr<Workload>
makeMpeg2(const WorkloadParams &p)
{
    return std::make_unique<Mpeg2Workload>(p);
}

} // namespace cmpmem
