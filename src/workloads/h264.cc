/**
 * @file
 * H.264 encoder ("H.2" in the paper's garbled tables): "we schedule
 * the processing of dependent macroblocks so as to minimize the
 * length of the critical execution path. With the CIF resolution
 * video frames we encode for this study, the macroblock parallelism
 * available in H.264 is limited" (Section 4.2) — at 16 cores it
 * shows synchronization stalls with both models (Figure 2).
 *
 * Intra-prediction makes macroblock (r, c) depend on its left, top,
 * and top-right reconstructed neighbours, giving the classic 2:1
 * wavefront: wave w contains MBs with c + 2r == w, at most ~10 ready
 * MBs per wave for our frame size. Reconstructed edge pixels are
 * *shared* data: cores communicate through them (coherence traffic
 * in CC; explicit small DMA gathers in STR — exactly the irregular,
 * fine-grained communication the paper says burdens streaming).
 */

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kW = 320;
constexpr int kH = 192;
constexpr int kMb = 16;
constexpr int kMbX = kW / kMb;
constexpr int kMbY = kH / kMb;
constexpr int kWaves = (kMbX - 1) + 2 * (kMbY - 1) + 1;
constexpr Cycles kPredCycles = 48;
constexpr Cycles kXformCycles = 110;
constexpr Cycles kQuantCycles = 40;
/** Rate-distortion intra mode evaluation: 9 prediction modes over
 *  sixteen 4x4 sub-blocks, each a SATD plus mode bookkeeping. This
 *  dominates H.264 encode compute (Table 3 shows 3705 instructions
 *  per L1 miss -- the most compute-intense codec in the suite). */
constexpr Cycles kModeSearchCycles = 9 * 16 * 70;

int
quantShift(int k)
{
    return 2 + ((k % 8) + (k / 8)) / 3;
}

class H264Workload : public Workload
{
  public:
    explicit H264Workload(const WorkloadParams &p) : Workload(p)
    {
        frames = p.scale > 0 ? 2 * p.scale : 1;
    }

    std::string name() const override { return "h264"; }

    double icacheMpki(const SystemConfig &) const override { return 0.8; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();
        const std::uint64_t frame = std::uint64_t(kW) * kH;
        pixels = ArrayRef<std::uint8_t>::alloc(mem, frame * frames);
        recon = ArrayRef<std::uint8_t>::alloc(mem, frame * frames);
        coefOut = ArrayRef<std::int16_t>::alloc(
            mem, std::uint64_t(256) * kMbX * kMbY * frames);
        counters = ArrayRef<std::uint32_t>::alloc(
            mem, std::uint64_t(kWaves) * frames);
        waveBar = std::make_unique<Barrier>(nthreads);

        Rng rng(808);
        hostPix.resize(frame * frames);
        for (std::uint32_t f = 0; f < frames; ++f) {
            for (int y = 0; y < kH; ++y) {
                for (int x = 0; x < kW; ++x) {
                    int v = ((x * 11) ^ (y * 5)) & 0x7f;
                    v += int(f) * 4 + int(rng.nextBelow(6));
                    hostPix[std::uint64_t(f) * frame +
                            std::uint64_t(y) * kW + x] =
                        std::uint8_t(v & 0xff);
                }
            }
        }
        for (std::uint64_t i = 0; i < hostPix.size(); ++i)
            mem.write<std::uint8_t>(pixels.at(i), hostPix[i]);
        for (std::uint32_t c = 0; c < kWaves * frames; ++c)
            mem.write<std::uint32_t>(counters.at(c), 0);

        buildHostReference();
    }

    KernelTask kernel(Context &ctx) override { return kern(ctx); }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        for (std::uint64_t i = 0; i < hostRecon.size(); ++i) {
            if (mem.read<std::uint8_t>(recon.at(i)) != hostRecon[i])
                return false;
        }
        for (std::uint64_t i = 0; i < hostCoefs.size(); ++i) {
            if (mem.read<std::int16_t>(coefOut.at(i)) != hostCoefs[i])
                return false;
        }
        return true;
    }

  private:
    std::uint64_t
    pix(std::uint32_t f, int x, int y) const
    {
        return (std::uint64_t(f) * kH + std::uint64_t(y)) * kW +
               std::uint64_t(x);
    }

    static std::uint8_t
    clampPix(int v)
    {
        return std::uint8_t(v < 0 ? 0 : (v > 255 ? 255 : v));
    }

    /**
     * Encode one MB given its reconstructed neighbours; shared by
     * the host reference and (for values) the simulated kernel.
     */
    void
    encodeMbMath(std::uint32_t f, int mbx, int mby,
                 const std::vector<std::uint8_t> &recon_frame,
                 std::int16_t *coefs, std::uint8_t *out_recon) const
    {
        const std::uint64_t frame = std::uint64_t(kW) * kH;
        // DC intra prediction from the top row and left column of
        // reconstructed neighbours (128 at frame edges).
        int sum = 0;
        int cnt = 0;
        if (mby > 0) {
            for (int x = 0; x < kMb; ++x) {
                sum += recon_frame[std::uint64_t(f) * frame +
                                   std::uint64_t(mby * kMb - 1) * kW +
                                   mbx * kMb + x];
                ++cnt;
            }
        }
        if (mbx > 0) {
            for (int y = 0; y < kMb; ++y) {
                sum += recon_frame[std::uint64_t(f) * frame +
                                   std::uint64_t(mby * kMb + y) * kW +
                                   mbx * kMb - 1];
                ++cnt;
            }
        }
        int pred = cnt ? (sum + cnt / 2) / cnt : 128;

        // Residual, transform, quantize, reconstruct.
        for (int b = 0; b < 4; ++b) {
            int bx = mbx * kMb + (b % 2) * 8;
            int by = mby * kMb + (b / 2) * 8;
            std::int32_t blk[64];
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    blk[y * 8 + x] =
                        int(hostPix[pix(f, bx + x, by + y)]) - pred;
            forwardTransform8x8(blk);
            std::int32_t deq[64];
            for (int k = 0; k < 64; ++k) {
                auto q = std::int16_t(blk[k] >> quantShift(k));
                coefs[b * 64 + k] = q;
                deq[k] = std::int32_t(q) << quantShift(k);
            }
            inverseTransform8x8(deq);
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    out_recon[((b / 2) * 8 + y) * kMb + (b % 2) * 8 +
                              x] = clampPix(deq[y * 8 + x] + pred);
                }
            }
        }
    }

    void
    buildHostReference()
    {
        const std::uint64_t frame = std::uint64_t(kW) * kH;
        hostRecon.assign(frame * frames, 0);
        hostCoefs.assign(std::uint64_t(256) * kMbX * kMbY * frames, 0);
        for (std::uint32_t f = 0; f < frames; ++f) {
            for (int mby = 0; mby < kMbY; ++mby) {
                for (int mbx = 0; mbx < kMbX; ++mbx) {
                    std::int16_t coefs[256];
                    std::uint8_t rec[256];
                    encodeMbMath(f, mbx, mby, hostRecon, coefs, rec);
                    std::uint64_t ci =
                        ((std::uint64_t(f) * kMbY + mby) * kMbX +
                         mbx) *
                        256;
                    for (int k = 0; k < 256; ++k)
                        hostCoefs[ci + k] = coefs[k];
                    for (int y = 0; y < kMb; ++y)
                        for (int x = 0; x < kMb; ++x)
                            hostRecon[pix(f, mbx * kMb + x,
                                          mby * kMb + y)] =
                                rec[y * kMb + x];
                }
            }
        }
    }

    /** MBs on wave w: c + 2r == w. */
    static int
    waveSize(int w)
    {
        int count = 0;
        for (int r = 0; r <= std::min(w / 2, kMbY - 1); ++r) {
            int c = w - 2 * r;
            if (c >= 0 && c < kMbX)
                ++count;
        }
        return count;
    }

    static void
    waveMb(int w, int idx, int &mbx, int &mby)
    {
        int seen = 0;
        for (int r = 0; r <= std::min(w / 2, kMbY - 1); ++r) {
            int c = w - 2 * r;
            if (c >= 0 && c < kMbX) {
                if (seen == idx) {
                    mbx = c;
                    mby = r;
                    return;
                }
                ++seen;
            }
        }
        mbx = -1;
        mby = -1;
    }

    KernelTask
    kern(Context &ctx)
    {
        const bool str = ctx.model() == MemModel::STR;
        const std::uint32_t lsCur = 0;
        const std::uint32_t lsEdge = 256;
        const std::uint32_t lsRec = 512;

        for (std::uint32_t f = 0; f < frames; ++f) {
            for (int w = 0; w < kWaves; ++w) {
                int ready = waveSize(w);
                while (true) {
                    auto t = co_await ctx.nextTask(
                        counters.at(std::uint64_t(f) * kWaves + w),
                        std::uint64_t(ready));
                    if (t < 0)
                        break;
                    int mbx, mby;
                    waveMb(w, int(t), mbx, mby);

                    //
                    // Fetch current MB pixels.
                    //
                    if (str) {
                        auto g = co_await ctx.dmaGetStrided(
                            pixels.at(pix(f, mbx * kMb, mby * kMb)),
                            kW, kMb, kMb, lsCur);
                        co_await ctx.dmaWait(g);
                        for (int y = 0; y < kMb; ++y)
                            for (int x = 0; x < kMb; x += 4)
                                co_await ctx.lsRead<std::uint32_t>(
                                    lsCur +
                                    std::uint32_t(y * kMb + x));
                    } else {
                        for (int y = 0; y < kMb; ++y)
                            for (int x = 0; x < kMb; x += 4)
                                co_await ctx.load<std::uint32_t>(
                                    pixels.at(pix(f, mbx * kMb + x,
                                                  mby * kMb + y)));
                    }

                    //
                    // Fetch reconstructed neighbour edges (shared
                    // inter-core data).
                    //
                    if (mby > 0) {
                        if (str) {
                            auto g = co_await ctx.dmaGet(
                                recon.at(pix(f, mbx * kMb,
                                             mby * kMb - 1)),
                                lsEdge, kMb);
                            co_await ctx.dmaWait(g);
                            for (int x = 0; x < kMb; x += 4)
                                co_await ctx.lsRead<std::uint32_t>(
                                    lsEdge + std::uint32_t(x));
                        } else {
                            for (int x = 0; x < kMb; x += 4)
                                co_await ctx.load<std::uint32_t>(
                                    recon.at(pix(f, mbx * kMb + x,
                                                 mby * kMb - 1)));
                        }
                    }
                    if (mbx > 0) {
                        if (str) {
                            // A 16x1-byte strided gather: tiny
                            // transfers that each occupy a whole
                            // 32-byte granule (streaming's
                            // inefficiency on irregular data).
                            auto g = co_await ctx.dmaGetStrided(
                                recon.at(pix(f, mbx * kMb - 1,
                                             mby * kMb)),
                                kW, 1, kMb, lsEdge + kMb);
                            co_await ctx.dmaWait(g);
                            for (int y = 0; y < kMb; y += 4)
                                co_await ctx.lsRead<std::uint32_t>(
                                    lsEdge + kMb + std::uint32_t(y));
                        } else {
                            for (int y = 0; y < kMb; ++y)
                                co_await ctx.load<std::uint8_t>(
                                    recon.at(pix(f, mbx * kMb - 1,
                                                 mby * kMb + y)));
                        }
                    }

                    //
                    // Compute: predict, transform, quantize,
                    // reconstruct.
                    //
                    co_await ctx.compute(kPredCycles);
                    for (int m = 0; m < 9; ++m)
                        co_await ctx.compute(kModeSearchCycles / 9);
                    co_await ctx.compute(
                        4 * (2 * kXformCycles + 2 * kQuantCycles));
                    std::int16_t coefs[256];
                    std::uint8_t rec[256];
                    encodeMbMath(f, mbx, mby, hostRecon, coefs, rec);

                    //
                    // Write coefficients (output-only) and the
                    // reconstructed MB (shared).
                    //
                    std::uint64_t ci =
                        ((std::uint64_t(f) * kMbY + mby) * kMbX +
                         mbx) *
                        256;
                    for (int k = 0; k < 256; k += 4) {
                        std::uint64_t two;
                        std::memcpy(&two, &coefs[k], 8);
                        co_await ctx.storeNA<std::uint64_t>(
                            coefOut.at(ci + k), two);
                    }
                    if (str) {
                        for (int k = 0; k < 256; k += 4) {
                            std::uint32_t wv;
                            std::memcpy(&wv, &rec[k], 4);
                            co_await ctx.lsWrite<std::uint32_t>(
                                lsRec + std::uint32_t(k), wv);
                        }
                        auto p = co_await ctx.dmaPutStrided(
                            recon.at(pix(f, mbx * kMb, mby * kMb)),
                            kW, kMb, kMb, lsRec);
                        co_await ctx.dmaWait(p);
                    } else {
                        for (int y = 0; y < kMb; ++y) {
                            for (int x = 0; x < kMb; x += 4) {
                                std::uint32_t wv;
                                std::memcpy(&wv, &rec[y * kMb + x], 4);
                                co_await ctx.store<std::uint32_t>(
                                    recon.at(pix(f, mbx * kMb + x,
                                                 mby * kMb + y)),
                                    wv);
                            }
                        }
                    }
                }
                co_await ctx.barrier(*waveBar);
            }
        }
    }

    std::uint32_t frames;
    int nthreads = 1;
    ArrayRef<std::uint8_t> pixels;
    ArrayRef<std::uint8_t> recon;
    ArrayRef<std::int16_t> coefOut;
    ArrayRef<std::uint32_t> counters;
    std::unique_ptr<Barrier> waveBar;
    std::vector<std::uint8_t> hostPix;
    std::vector<std::uint8_t> hostRecon;
    std::vector<std::int16_t> hostCoefs;
};

} // namespace

std::unique_ptr<Workload>
makeH264(const WorkloadParams &p)
{
    return std::make_unique<H264Workload>(p);
}

} // namespace cmpmem
