/**
 * @file
 * Deliberately fatal workloads ("crash", "hostspin").
 *
 * Not paper applications: these exist to exercise the process
 * sandbox (harness/supervisor.hh). Neither can be handled by the
 * in-process failure machinery — that is the point:
 *
 *  - "crash" raises SIGSEGV from core 0's kernel after a few real
 *    simulation events. No exception is thrown, so without a process
 *    boundary the whole sweep dies. The handler is first reset to
 *    SIG_DFL so the raise terminates the process even under
 *    AddressSanitizer (which installs its own SEGV reporter).
 *
 *  - "hostspin" wedges *host* time inside one event callback: the
 *    coroutine body spins on the host clock without scheduling
 *    simulated work, so the cooperative watchdog (which runs between
 *    events) never gets control. Only the supervisor's hard
 *    wall-clock SIGKILL can stop it. The spin gives up after 300
 *    host seconds and throws SimErrorKind::Model, so a missed kill
 *    fails tests by error kind instead of hanging ctest forever.
 *
 * Both are registered hidden: creatable via createWorkload(),
 * invisible to workloadNames(), so table/figure sweeps never
 * iterate them.
 */

#include <chrono>
#include <csignal>
#include <memory>

#include "sim/sim_error.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

class CrashWorkload : public Workload
{
  public:
    explicit CrashWorkload(const WorkloadParams &p) : Workload(p) {}

    std::string name() const override { return "crash"; }
    std::string variant() const override { return "crash"; }

    void
    setup(CmpSystem &sys) override
    {
        scratch = ArrayRef<std::uint32_t>::alloc(sys.mem(), 64);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        // A little genuine simulation first, so the crash lands
        // mid-run (events executed, caches warm) rather than at
        // time zero.
        for (int i = 0; i < 8; ++i) {
            co_await ctx.compute(Cycles(100));
            co_await ctx.store<std::uint32_t>(scratch.at(i),
                                              std::uint32_t(i));
        }
        if (ctx.tid() == 0) {
            std::signal(SIGSEGV, SIG_DFL);
            std::raise(SIGSEGV);
        }
        co_await ctx.compute(Cycles(1));
    }

    bool verify(CmpSystem &) override { return false; }

  private:
    ArrayRef<std::uint32_t> scratch;
};

class HostspinWorkload : public Workload
{
  public:
    explicit HostspinWorkload(const WorkloadParams &p) : Workload(p) {}

    std::string name() const override { return "hostspin"; }
    std::string variant() const override { return "hostspin"; }

    void
    setup(CmpSystem &sys) override
    {
        scratch = ArrayRef<std::uint32_t>::alloc(sys.mem(), 64);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        co_await ctx.compute(Cycles(100));
        if (ctx.tid() == 0) {
            using clock = std::chrono::steady_clock;
            const auto start = clock::now();
            volatile std::uint64_t sink = 0;
            for (;;) {
                // Pure host burn inside one event callback: no
                // co_await, so control never returns to the event
                // loop and no cooperative budget can fire.
                sink = sink + 1;
                if ((sink & 0xfffff) == 0 &&
                    clock::now() - start > std::chrono::seconds(300)) {
                    throwSimError(SimErrorKind::Model,
                                  "hostspin was not killed within "
                                  "300 host seconds");
                }
            }
        }
        co_await ctx.compute(Cycles(1));
    }

    bool verify(CmpSystem &) override { return false; }

  private:
    ArrayRef<std::uint32_t> scratch;
};

} // namespace

std::unique_ptr<Workload>
makeCrash(const WorkloadParams &p)
{
    return std::make_unique<CrashWorkload>(p);
}

std::unique_ptr<Workload>
makeHostspin(const WorkloadParams &p)
{
    return std::make_unique<HostspinWorkload>(p);
}

} // namespace cmpmem
