/**
 * @file
 * JPEG Encode and Decode, "parallelized across input images, in a
 * manner similar to that done by an image thumbnail browser"
 * (Section 4.2). "Note that Encode reads a lot of data but outputs
 * little; Decode behaves in the opposite way" — the asymmetry that
 * drives their bandwidth/energy behaviour (Decode's output stores
 * suffer write-allocate refills in CC; both are in the paper's
 * streaming-wins-10-to-25%-energy group of Figure 4).
 *
 * The codec is a faithful structural stand-in for IJG JPEG: 8x8
 * block transform (an integer orthogonal transform, exact under
 * round trip), per-coefficient quantization shifts, and a
 * sparse (index, value) entropy stage instead of Huffman coding —
 * identical memory structure, deterministic and verifiable.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kImgW = 80;
constexpr int kImgH = 64;
constexpr int kBlocksPerImage = (kImgW / 8) * (kImgH / 8);
/** Max coded bytes per block: count byte + 64 x (idx, val16). */
constexpr std::uint32_t kMaxBlockCode = 1 + 64 * 3;
constexpr std::uint32_t kMaxImageCode = kBlocksPerImage * kMaxBlockCode;

/** Per-coefficient quantization shifts (coarser for high freq). */
int
quantShift(int k)
{
    int dist = (k % 8) + (k / 8);
    return 4 + dist / 2;
}

/** In-place 8-point integer butterfly transform (orthogonal x 8). */
void
wht8(std::int32_t *v, int stride)
{
    for (int half = 4; half >= 1; half >>= 1) {
        for (int base = 0; base < 8; base += 2 * half) {
            for (int i = 0; i < half; ++i) {
                std::int32_t a = v[(base + i) * stride];
                std::int32_t b = v[(base + i + half) * stride];
                v[(base + i) * stride] = a + b;
                v[(base + i + half) * stride] = a - b;
            }
        }
    }
}

void
forwardTransform(std::int32_t *blk)
{
    for (int r = 0; r < 8; ++r)
        wht8(blk + r * 8, 1);
    for (int c = 0; c < 8; ++c)
        wht8(blk + c, 8);
}

void
inverseTransform(std::int32_t *blk)
{
    // The transform is self-inverse up to a factor of 64.
    forwardTransform(blk);
    for (int k = 0; k < 64; ++k)
        blk[k] >>= 6;
}

/** Host-side encoder for one block; returns coded bytes. */
std::vector<std::uint8_t>
encodeBlockHost(const std::uint8_t *pixels, int stride)
{
    std::int32_t blk[64];
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            blk[y * 8 + x] = pixels[y * stride + x];
    forwardTransform(blk);
    std::vector<std::uint8_t> out;
    std::uint8_t count = 0;
    std::vector<std::uint8_t> body;
    for (int k = 0; k < 64; ++k) {
        std::int32_t q = blk[k] >> quantShift(k);
        if (q != 0 && count < 64) {
            auto v = std::int16_t(q);
            body.push_back(std::uint8_t(k));
            body.push_back(std::uint8_t(v & 0xff));
            body.push_back(std::uint8_t((v >> 8) & 0xff));
            ++count;
        }
    }
    out.push_back(count);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Host-side decoder: coded block -> 64 pixels. */
void
decodeBlockHost(const std::uint8_t *code, std::uint8_t *pixels,
                int stride, std::uint32_t *consumed)
{
    std::int32_t blk[64] = {};
    std::uint8_t count = code[0];
    std::uint32_t off = 1;
    for (int i = 0; i < count; ++i) {
        int k = code[off];
        auto v = std::int16_t(code[off + 1] | (code[off + 2] << 8));
        blk[k] = std::int32_t(v) << quantShift(k);
        off += 3;
    }
    inverseTransform(blk);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            std::int32_t p = blk[y * 8 + x];
            pixels[y * stride + x] =
                std::uint8_t(p < 0 ? 0 : (p > 255 ? 255 : p));
        }
    }
    *consumed = off;
}

/** Generate a compressible synthetic image. */
std::vector<std::uint8_t>
makeImage(Rng &rng)
{
    std::vector<std::uint8_t> img(std::size_t(kImgW) * kImgH);
    int cx = int(rng.nextBelow(kImgW));
    int cy = int(rng.nextBelow(kImgH));
    for (int y = 0; y < kImgH; ++y) {
        for (int x = 0; x < kImgW; ++x) {
            int v = 128 + (x - cx) / 2 + (y - cy) / 3 +
                    int(rng.nextBelow(8));
            img[std::size_t(y) * kImgW + x] =
                std::uint8_t(v < 0 ? 0 : (v > 255 ? 255 : v));
        }
    }
    return img;
}

/** State shared by the encode and decode workloads. */
class JpegBase : public Workload
{
  public:
    explicit JpegBase(const WorkloadParams &p) : Workload(p)
    {
        images = p.scale > 0 ? 64u * std::uint32_t(p.scale) : 8u;
    }

    double icacheMpki(const SystemConfig &) const override { return 0.3; }

  protected:
    void
    allocateCommon(CmpSystem &sys)
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();
        const std::uint64_t frame = std::uint64_t(kImgW) * kImgH;
        pixels = ArrayRef<std::uint8_t>::alloc(mem, frame * images);
        coded = ArrayRef<std::uint8_t>::alloc(
            mem, std::uint64_t(kMaxImageCode) * images);
        codedLen = ArrayRef<std::uint32_t>::alloc(mem, images);
        taskCounter = ArrayRef<std::uint32_t>::alloc(mem, 1);
        doneBar = std::make_unique<Barrier>(nthreads);
        sys.mem().write<std::uint32_t>(taskCounter.at(0), 0);
    }

    Addr
    imagePixels(std::uint32_t img) const
    {
        return pixels.at(std::uint64_t(img) * kImgW * kImgH);
    }

    Addr
    imageCode(std::uint32_t img) const
    {
        return coded.at(std::uint64_t(img) * kMaxImageCode);
    }

    std::uint32_t images;
    int nthreads = 1;
    ArrayRef<std::uint8_t> pixels;
    ArrayRef<std::uint8_t> coded;
    ArrayRef<std::uint32_t> codedLen;
    ArrayRef<std::uint32_t> taskCounter;
    std::unique_ptr<Barrier> doneBar;
    std::vector<std::vector<std::uint8_t>> hostImages;
    std::vector<std::vector<std::uint8_t>> hostCodes;
};

//
// Encoder.
//

class JpegEncWorkload : public JpegBase
{
  public:
    using JpegBase::JpegBase;

    std::string name() const override { return "jpeg_enc"; }

    void
    setup(CmpSystem &sys) override
    {
        allocateCommon(sys);
        auto &mem = sys.mem();
        Rng rng(1234);
        hostImages.resize(images);
        hostCodes.resize(images);
        for (std::uint32_t i = 0; i < images; ++i) {
            hostImages[i] = makeImage(rng);
            mem.write(imagePixels(i), hostImages[i].data(),
                      hostImages[i].size());
            // Host reference encoding for verification.
            auto &code = hostCodes[i];
            for (int by = 0; by < kImgH / 8; ++by) {
                for (int bx = 0; bx < kImgW / 8; ++bx) {
                    auto bc = encodeBlockHost(
                        hostImages[i].data() +
                            std::size_t(by) * 8 * kImgW + bx * 8,
                        kImgW);
                    code.insert(code.end(), bc.begin(), bc.end());
                }
            }
        }
    }

    KernelTask kernel(Context &ctx) override { return kern(ctx); }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        for (std::uint32_t i = 0; i < images; ++i) {
            if (mem.read<std::uint32_t>(codedLen.at(i)) !=
                hostCodes[i].size())
                return false;
            for (std::size_t b = 0; b < hostCodes[i].size(); ++b) {
                if (mem.read<std::uint8_t>(imageCode(i) + b) !=
                    hostCodes[i][b])
                    return false;
            }
        }
        return true;
    }

  private:
    KernelTask
    kern(Context &ctx)
    {
        const bool str = ctx.model() == MemModel::STR;
        // STR local-store layout: an 8-row pixel band plus a coded
        // output buffer drained per image.
        const std::uint32_t lsBand = 0;
        const std::uint32_t bandBytes = kImgW * 8;

        while (true) {
            auto t = co_await ctx.nextTask(taskCounter.at(0), images);
            if (t < 0)
                break;
            auto img = std::uint32_t(t);
            Addr codeBase = imageCode(img);
            std::uint32_t codeOff = 0;
            std::vector<std::uint8_t> codeBuf; // STR: gathered locally

            for (int by = 0; by < kImgH / 8; ++by) {
                if (str) {
                    auto g = co_await ctx.dmaGet(
                        imagePixels(img) +
                            Addr(by) * 8 * kImgW,
                        lsBand, bandBytes);
                    co_await ctx.dmaWait(g);
                }
                for (int bx = 0; bx < kImgW / 8; ++bx) {
                    // Fetch the 8x8 block.
                    std::uint8_t blkPix[64];
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; x += 4) {
                            std::uint32_t w;
                            if (str) {
                                w = co_await ctx.lsRead<std::uint32_t>(
                                    std::uint32_t(y * kImgW + bx * 8 +
                                                  x));
                            } else {
                                w = co_await ctx.load<std::uint32_t>(
                                    imagePixels(img) +
                                    Addr((by * 8 + y)) * kImgW +
                                    Addr(bx * 8 + x));
                            }
                            std::memcpy(&blkPix[y * 8 + x], &w, 4);
                        }
                    }
                    co_await ctx.compute(96);  // color/level shift
                    co_await ctx.compute(300); // transform (real DCT)
                    co_await ctx.compute(80);  // quantize + zigzag
                    co_await ctx.compute(180); // entropy coding
                    auto bc = encodeBlockHost(blkPix, 8);
                    if (str) {
                        codeBuf.insert(codeBuf.end(), bc.begin(),
                                       bc.end());
                        co_await ctx.compute(Cycles(bc.size() / 4 + 1));
                    } else {
                        for (std::size_t b = 0; b < bc.size(); ++b) {
                            co_await ctx.storeNA<std::uint8_t>(
                                codeBase + codeOff + b, bc[b]);
                        }
                        codeOff += std::uint32_t(bc.size());
                    }
                }
            }
            if (str) {
                // Stage the coded image into the local store and put
                // it out in one transfer.
                const std::uint32_t lsCode = bandBytes;
                for (std::size_t b = 0; b < codeBuf.size(); ++b) {
                    co_await ctx.lsWrite<std::uint8_t>(
                        lsCode + std::uint32_t(b), codeBuf[b]);
                }
                auto pt = co_await ctx.dmaPut(
                    codeBase, lsCode, std::uint32_t(codeBuf.size()));
                co_await ctx.dmaWait(pt);
                codeOff = std::uint32_t(codeBuf.size());
            }
            co_await ctx.storeNA<std::uint32_t>(codedLen.at(img),
                                                codeOff);
        }
        co_await ctx.dmaWaitAll();
        co_await ctx.barrier(*doneBar);
    }
};

//
// Decoder.
//

class JpegDecWorkload : public JpegBase
{
  public:
    using JpegBase::JpegBase;

    std::string name() const override { return "jpeg_dec"; }

    void
    setup(CmpSystem &sys) override
    {
        allocateCommon(sys);
        auto &mem = sys.mem();
        Rng rng(1234);
        hostImages.resize(images);
        hostCodes.resize(images);
        hostDecoded.resize(images);
        for (std::uint32_t i = 0; i < images; ++i) {
            hostImages[i] = makeImage(rng);
            auto &code = hostCodes[i];
            for (int by = 0; by < kImgH / 8; ++by) {
                for (int bx = 0; bx < kImgW / 8; ++bx) {
                    auto bc = encodeBlockHost(
                        hostImages[i].data() +
                            std::size_t(by) * 8 * kImgW + bx * 8,
                        kImgW);
                    code.insert(code.end(), bc.begin(), bc.end());
                }
            }
            mem.write(imageCode(i), code.data(), code.size());
            mem.write<std::uint32_t>(codedLen.at(i),
                                     std::uint32_t(code.size()));
            // Host reference decode.
            auto &dec = hostDecoded[i];
            dec.assign(std::size_t(kImgW) * kImgH, 0);
            std::uint32_t off = 0;
            for (int by = 0; by < kImgH / 8; ++by) {
                for (int bx = 0; bx < kImgW / 8; ++bx) {
                    std::uint32_t used = 0;
                    decodeBlockHost(code.data() + off,
                                    dec.data() +
                                        std::size_t(by) * 8 * kImgW +
                                        bx * 8,
                                    kImgW, &used);
                    off += used;
                }
            }
        }
    }

    KernelTask kernel(Context &ctx) override { return kern(ctx); }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        const std::uint64_t frame = std::uint64_t(kImgW) * kImgH;
        for (std::uint32_t i = 0; i < images; ++i) {
            for (std::uint64_t pIdx = 0; pIdx < frame; ++pIdx) {
                if (mem.read<std::uint8_t>(imagePixels(i) + pIdx) !=
                    hostDecoded[i][pIdx])
                    return false;
            }
        }
        return true;
    }

  private:
    KernelTask
    kern(Context &ctx)
    {
        const bool str = ctx.model() == MemModel::STR;
        const std::uint32_t lsCode = 0;       // coded stream
        const std::uint32_t lsBand = 16 * 1024; // output band

        while (true) {
            auto t = co_await ctx.nextTask(taskCounter.at(0), images);
            if (t < 0)
                break;
            auto img = std::uint32_t(t);
            Addr codeBase = imageCode(img);
            auto len =
                co_await ctx.load<std::uint32_t>(codedLen.at(img));

            if (str) {
                // Fetch exactly the coded bytes (known length), then
                // decode band by band, putting each band out.
                auto g = co_await ctx.dmaGet(codeBase, lsCode, len);
                co_await ctx.dmaWait(g);
            }

            std::uint32_t off = 0;
            for (int by = 0; by < kImgH / 8; ++by) {
                std::vector<std::uint8_t> band(
                    std::size_t(kImgW) * 8);
                for (int bx = 0; bx < kImgW / 8; ++bx) {
                    // Read the coded block.
                    std::uint8_t count;
                    if (str) {
                        count = co_await ctx.lsRead<std::uint8_t>(
                            lsCode + off);
                    } else {
                        count = co_await ctx.load<std::uint8_t>(
                            codeBase + off);
                    }
                    std::vector<std::uint8_t> bc;
                    bc.push_back(count);
                    for (std::uint32_t b = 1;
                         b < 1u + std::uint32_t(count) * 3; ++b) {
                        std::uint8_t v;
                        if (str) {
                            v = co_await ctx.lsRead<std::uint8_t>(
                                lsCode + off + b);
                        } else {
                            v = co_await ctx.load<std::uint8_t>(
                                codeBase + off + b);
                        }
                        bc.push_back(v);
                    }
                    co_await ctx.compute(180); // entropy decoding
                    co_await ctx.compute(80);  // dequantize
                    co_await ctx.compute(300); // inverse transform
                    co_await ctx.compute(96);  // level shift/clamp
                    std::uint32_t used = 0;
                    decodeBlockHost(bc.data(),
                                    band.data() + bx * 8, kImgW,
                                    &used);
                    off += used;

                    // Write the 64 pixels.
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; x += 4) {
                            std::uint32_t w;
                            std::memcpy(&w,
                                        band.data() +
                                            std::size_t(y) * kImgW +
                                            bx * 8 + x,
                                        4);
                            if (str) {
                                co_await ctx
                                    .lsWrite<std::uint32_t>(
                                        lsBand +
                                            std::uint32_t(y * kImgW +
                                                          bx * 8 + x),
                                        w);
                            } else {
                                co_await ctx.storeNA<std::uint32_t>(
                                    imagePixels(img) +
                                        Addr((by * 8 + y)) * kImgW +
                                        Addr(bx * 8 + x),
                                    w);
                            }
                        }
                    }
                }
                if (str) {
                    auto pt = co_await ctx.dmaPut(
                        imagePixels(img) + Addr(by) * 8 * kImgW,
                        lsBand, kImgW * 8);
                    co_await ctx.dmaWait(pt);
                }
            }
        }
        co_await ctx.dmaWaitAll();
        co_await ctx.barrier(*doneBar);
    }

    std::vector<std::vector<std::uint8_t>> hostDecoded;
};

} // namespace

std::unique_ptr<Workload>
makeJpegEnc(const WorkloadParams &p)
{
    return std::make_unique<JpegEncWorkload>(p);
}

std::unique_ptr<Workload>
makeJpegDec(const WorkloadParams &p)
{
    return std::make_unique<JpegDecWorkload>(p);
}

} // namespace cmpmem
