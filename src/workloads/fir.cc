/**
 * @file
 * 16-tap FIR filter, "parallelized across long strips of samples"
 * (Table 3). The paper's archetypal data-bound workload:
 *
 *  - CC: streams input with a sliding register window, writes an
 *    output stream it never reads -> write-allocate refills waste
 *    half the read bandwidth (the Figure 6/8 story). Output stores
 *    are marked storeNA so the PFS configuration can elide refills.
 *  - STR: double-buffered DMA with 128 elements per transfer; the
 *    DMA management executes ~14% more instructions than the CC
 *    version (Section 5.1).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kTaps = 16;
constexpr std::uint32_t kBlockElems = 128; ///< elements per DMA transfer
/** VLIW bundles per output element (16 MACs across 2 FP slots,
 *  software-pipelined with the loads). */
constexpr Cycles kComputePerElem = 4;
/** Extra per-block bookkeeping bundles in the streaming version,
 *  calibrated to the paper's +14% instruction count. */
constexpr Cycles kStrBlockOverhead = 88;

class FirWorkload : public Workload
{
  public:
    explicit FirWorkload(const WorkloadParams &p) : Workload(p)
    {
        n = p.scale > 0 ? 65536u * std::uint32_t(p.scale) : 16384u;
    }

    std::string name() const override { return "fir"; }

    double
    icacheMpki(const SystemConfig &) const override
    {
        return 0.02; // tiny kernel loop
    }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        in = ArrayRef<float>::alloc(mem, n);
        out = ArrayRef<float>::alloc(mem, n - kTaps + 1);
        tapsArr = ArrayRef<float>::alloc(mem, kTaps);
        doneBar = std::make_unique<Barrier>(sys.cores());

        Rng rng(42);
        for (std::uint32_t i = 0; i < n; ++i)
            mem.write<float>(in.at(i), float(rng.nextDouble(-1.0, 1.0)));
        for (int t = 0; t < kTaps; ++t)
            mem.write<float>(tapsArr.at(t),
                             float(0.05) * float(t % 5) - 0.1f);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return kernelCc(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        std::vector<float> taps(kTaps);
        for (int t = 0; t < kTaps; ++t)
            taps[t] = mem.read<float>(tapsArr.at(t));
        for (std::uint32_t i = 0; i + kTaps <= n; ++i) {
            float acc = 0.0f;
            for (int t = 0; t < kTaps; ++t)
                acc += taps[t] * mem.read<float>(in.at(i + t));
            if (mem.read<float>(out.at(i)) != acc)
                return false;
        }
        return true;
    }

  private:
    KernelTask
    kernelCc(Context &ctx)
    {
        std::uint32_t outputs = n - kTaps + 1;
        Range r = splitRange(outputs, ctx.tid(), ctx.nthreads());

        // Taps load once, then stay in registers.
        float taps[kTaps];
        for (int t = 0; t < kTaps; ++t)
            taps[t] = co_await ctx.load<float>(tapsArr.at(t));

        // Warm the sliding window: win[k % kTaps] holds in[k].
        float win[kTaps];
        for (int t = 0; t < kTaps; ++t) {
            win[(r.begin + t) % kTaps] =
                co_await ctx.load<float>(in.at(r.begin + t));
        }

        for (std::uint64_t i = r.begin; i < r.end; ++i) {
            float acc = 0.0f;
            for (int t = 0; t < kTaps; ++t)
                acc += taps[t] * win[(i + t) % kTaps];
            co_await ctx.computeFp(kComputePerElem);
            co_await ctx.storeNA<float>(out.at(i), acc);
            // Slide: the oldest window slot takes the next sample.
            if (i + 1 < r.end)
                win[i % kTaps] =
                    co_await ctx.load<float>(in.at(i + kTaps));
        }
        co_await ctx.barrier(*doneBar);
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        std::uint32_t outputs = n - kTaps + 1;
        Range r = splitRange(outputs, ctx.tid(), ctx.nthreads());

        float taps[kTaps];
        for (int t = 0; t < kTaps; ++t)
            taps[t] = co_await ctx.load<float>(tapsArr.at(t));

        // Double-buffered local-store layout: two input buffers
        // (block + tap halo) and two output buffers.
        const std::uint32_t inBytes = (kBlockElems + kTaps) * 4;
        const std::uint32_t outBytes = kBlockElems * 4;
        const std::uint32_t lsIn[2] = {0, inBytes};
        const std::uint32_t lsOut[2] = {2 * inBytes, 2 * inBytes +
                                                          outBytes};

        auto blockCount = [&](std::uint64_t base) {
            return std::uint32_t(
                std::min<std::uint64_t>(kBlockElems, r.end - base));
        };

        // Prime the pipeline with the first get.
        Context::Ticket getTk[2] = {0, 0};
        Context::Ticket putTk[2] = {0, 0};
        bool putPending[2] = {false, false};
        std::uint64_t base0 = r.begin;
        if (base0 < r.end) {
            getTk[0] = co_await ctx.dmaGet(
                in.at(base0), lsIn[0],
                (blockCount(base0) + kTaps - 1) * 4);
        }

        int buf = 0;
        for (std::uint64_t base = r.begin; base < r.end;
             base += kBlockElems, buf ^= 1) {
            std::uint32_t count = blockCount(base);

            // Macroscopic prefetch: start the next block's get now.
            std::uint64_t next = base + kBlockElems;
            if (next < r.end) {
                getTk[buf ^ 1] = co_await ctx.dmaGet(
                    in.at(next), lsIn[buf ^ 1],
                    (blockCount(next) + kTaps - 1) * 4);
            }

            co_await ctx.dmaWait(getTk[buf]);
            // Reusing the output buffer requires its put to be done.
            if (putPending[buf]) {
                co_await ctx.dmaWait(putTk[buf]);
                putPending[buf] = false;
            }

            co_await ctx.compute(kStrBlockOverhead);

            float win[kTaps];
            for (int t = 0; t < kTaps; ++t)
                win[t] = co_await ctx.lsRead<float>(lsIn[buf] + t * 4);

            for (std::uint32_t i = 0; i < count; ++i) {
                float acc = 0.0f;
                for (int t = 0; t < kTaps; ++t)
                    acc += taps[t] * win[(i + t) % kTaps];
                co_await ctx.computeFp(kComputePerElem);
                co_await ctx.lsWrite<float>(lsOut[buf] + i * 4, acc);
                if (i + 1 < count) {
                    win[i % kTaps] = co_await ctx.lsRead<float>(
                        lsIn[buf] + (i + kTaps) * 4);
                }
            }

            putTk[buf] = co_await ctx.dmaPut(out.at(base), lsOut[buf],
                                             count * 4);
            putPending[buf] = true;
        }
        co_await ctx.dmaWaitAll();
        co_await ctx.barrier(*doneBar);
    }

    std::uint32_t n;
    ArrayRef<float> in;
    ArrayRef<float> out;
    ArrayRef<float> tapsArr;
    std::unique_ptr<Barrier> doneBar;
};

} // namespace

std::unique_ptr<Workload>
makeFir(const WorkloadParams &p)
{
    return std::make_unique<FirWorkload>(p);
}

} // namespace cmpmem
