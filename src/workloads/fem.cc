/**
 * @file
 * 2D Finite Element Method, "parallelized across mesh cells"
 * (Table 3): an explicit edge-flux relaxation over an irregular
 * planar mesh in CSR adjacency form. A scientific code with "about
 * the same compute intensity as multimedia applications"
 * (Section 4.2); its per-iteration state streams through the L2
 * (high L2 miss rate, several hundred MB/s of off-chip bandwidth in
 * Table 3), and its off-chip traffic is nearly identical across the
 * two models (Figure 3), making the energy difference insignificant
 * (Figure 4).
 *
 *  - CC: cell-centric gather (sequential cell state + indexed
 *    neighbor loads), Jacobi double-buffering, barrier per sweep.
 *  - STR: blocks of cells DMA'd in; neighbor values fetched with
 *    *indexed* DMA gathers built from the local copy of the
 *    adjacency lists (the gather/scatter DMA mode of Table 2).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr int kIterations = 8;
constexpr float kDt = 0.12f;
constexpr float kK = 0.9f;

class FemWorkload : public Workload
{
  public:
    explicit FemWorkload(const WorkloadParams &p) : Workload(p)
    {
        width = p.scale > 0 ? 200 * p.scale : 64;
        height = p.scale > 0 ? 200 * p.scale : 64;
        cells = std::uint32_t(width) * std::uint32_t(height);
    }

    std::string name() const override { return "fem"; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        nthreads = sys.cores();

        // Build an irregular 4-neighbourhood mesh: a grid with ~15%
        // of edges knocked out so that degrees vary from 1 to 4.
        Rng rng(4242);
        hostAdjOff.assign(cells + 1, 0);
        std::vector<std::vector<std::uint32_t>> nbrs(cells);
        auto cellAt = [&](int x, int y) {
            return std::uint32_t(y) * std::uint32_t(width) +
                   std::uint32_t(x);
        };
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                std::uint32_t c = cellAt(x, y);
                if (x + 1 < width && rng.nextDouble() > 0.15) {
                    nbrs[c].push_back(cellAt(x + 1, y));
                    nbrs[cellAt(x + 1, y)].push_back(c);
                }
                if (y + 1 < height && rng.nextDouble() > 0.15) {
                    nbrs[c].push_back(cellAt(x, y + 1));
                    nbrs[cellAt(x, y + 1)].push_back(c);
                }
            }
        }
        hostAdj.clear();
        for (std::uint32_t c = 0; c < cells; ++c) {
            hostAdjOff[c] = std::uint32_t(hostAdj.size());
            for (auto nb : nbrs[c])
                hostAdj.push_back(nb);
        }
        hostAdjOff[cells] = std::uint32_t(hostAdj.size());

        uA = ArrayRef<float>::alloc(mem, cells);
        uB = ArrayRef<float>::alloc(mem, cells);
        adjOff = ArrayRef<std::uint32_t>::alloc(mem, cells + 1);
        adj = ArrayRef<std::uint32_t>::alloc(mem, hostAdj.size());
        sweepBar = std::make_unique<Barrier>(nthreads);

        hostU.resize(cells);
        for (std::uint32_t c = 0; c < cells; ++c) {
            hostU[c] = float(rng.nextDouble(0.0, 100.0));
            mem.write<float>(uA.at(c), hostU[c]);
        }
        for (std::uint32_t c = 0; c <= cells; ++c)
            mem.write<std::uint32_t>(adjOff.at(c), hostAdjOff[c]);
        for (std::size_t e = 0; e < hostAdj.size(); ++e)
            mem.write<std::uint32_t>(adj.at(e), hostAdj[e]);
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return kernelCc(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        std::vector<float> u = hostU;
        std::vector<float> next(cells);
        for (int it = 0; it < kIterations; ++it) {
            for (std::uint32_t c = 0; c < cells; ++c) {
                float acc = 0.0f;
                for (std::uint32_t e = hostAdjOff[c];
                     e < hostAdjOff[c + 1]; ++e)
                    acc += kK * (u[hostAdj[e]] - u[c]);
                next[c] = u[c] + kDt * acc;
            }
            std::swap(u, next);
        }
        const ArrayRef<float> &result =
            (kIterations % 2 == 0) ? uA : uB;
        auto &mem = sys.mem();
        for (std::uint32_t c = 0; c < cells; ++c) {
            if (mem.read<float>(result.at(c)) != u[c])
                return false;
        }
        return true;
    }

  private:
    KernelTask
    kernelCc(Context &ctx)
    {
        Range r = splitRange(cells, ctx.tid(), ctx.nthreads());
        for (int it = 0; it < kIterations; ++it) {
            const ArrayRef<float> &src = (it % 2 == 0) ? uA : uB;
            const ArrayRef<float> &dst = (it % 2 == 0) ? uB : uA;
            for (auto c = r.begin; c < r.end; ++c) {
                auto off0 =
                    co_await ctx.load<std::uint32_t>(adjOff.at(c));
                auto off1 =
                    co_await ctx.load<std::uint32_t>(adjOff.at(c + 1));
                auto uc = co_await ctx.load<float>(src.at(c));
                float acc = 0.0f;
                for (std::uint32_t e = off0; e < off1; ++e) {
                    auto nb =
                        co_await ctx.load<std::uint32_t>(adj.at(e));
                    auto un = co_await ctx.load<float>(src.at(nb));
                    // Edge flux: geometric factors + the update.
                    co_await ctx.computeFp(9);
                    acc += kK * (un - uc);
                }
                co_await ctx.computeFp(14);
                co_await ctx.storeNA<float>(dst.at(c),
                                            uc + kDt * acc);
            }
            co_await ctx.barrier(*sweepBar);
        }
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        constexpr std::uint32_t blk = 256; // cells per block
        Range r = splitRange(cells, ctx.tid(), ctx.nthreads());

        // Local-store layout.
        const std::uint32_t lsU = 0;              // block cell values
        const std::uint32_t lsOff = blk * 4;      // adjOff block (+1)
        const std::uint32_t lsAdj = lsOff + (blk + 1) * 4;
        const std::uint32_t maxAdj = blk * 4;     // degree <= 4
        const std::uint32_t lsNbr = lsAdj + maxAdj * 4;
        const std::uint32_t lsOut = lsNbr + maxAdj * 4;

        for (int it = 0; it < kIterations; ++it) {
            const ArrayRef<float> &src = (it % 2 == 0) ? uA : uB;
            const ArrayRef<float> &dst = (it % 2 == 0) ? uB : uA;
            for (auto base = r.begin; base < r.end; base += blk) {
                std::uint32_t m = std::uint32_t(
                    std::min<std::uint64_t>(blk, r.end - base));

                auto g1 = co_await ctx.dmaGet(src.at(base), lsU, m * 4);
                auto g2 = co_await ctx.dmaGet(adjOff.at(base), lsOff,
                                              (m + 1) * 4);
                co_await ctx.dmaWait(g2);

                // Build the gather list from the local adjacency
                // offsets, then fetch lists and neighbor values with
                // indexed DMA.
                auto e0 = co_await ctx.lsRead<std::uint32_t>(lsOff);
                auto e1 = co_await ctx.lsRead<std::uint32_t>(
                    lsOff + m * 4);
                std::uint32_t edges = e1 - e0;
                auto g3 = co_await ctx.dmaGet(adj.at(e0), lsAdj,
                                              edges * 4);
                co_await ctx.dmaWait(g3);

                std::vector<Addr> gatherAddrs;
                gatherAddrs.reserve(edges);
                for (std::uint32_t e = 0; e < edges; ++e) {
                    auto nb = co_await ctx.lsRead<std::uint32_t>(
                        lsAdj + e * 4);
                    gatherAddrs.push_back(src.at(nb));
                }
                auto g4 = co_await ctx.dmaGetIndexed(gatherAddrs, 4,
                                                     lsNbr);
                co_await ctx.dmaWait(g1);
                co_await ctx.dmaWait(g4);

                for (std::uint32_t c = 0; c < m; ++c) {
                    auto off0 = co_await ctx.lsRead<std::uint32_t>(
                        lsOff + c * 4);
                    auto off1 = co_await ctx.lsRead<std::uint32_t>(
                        lsOff + (c + 1) * 4);
                    auto uc =
                        co_await ctx.lsRead<float>(lsU + c * 4);
                    float acc = 0.0f;
                    for (std::uint32_t e = off0 - e0; e < off1 - e0;
                         ++e) {
                        auto un = co_await ctx.lsRead<float>(
                            lsNbr + e * 4);
                        co_await ctx.computeFp(9);
                        acc += kK * (un - uc);
                    }
                    co_await ctx.computeFp(14);
                    co_await ctx.lsWrite<float>(lsOut + c * 4,
                                                uc + kDt * acc);
                }
                auto pt = co_await ctx.dmaPut(dst.at(base), lsOut,
                                              m * 4);
                co_await ctx.dmaWait(pt);
            }
            co_await ctx.barrier(*sweepBar);
        }
    }

    int width;
    int height;
    std::uint32_t cells;
    int nthreads = 1;
    ArrayRef<float> uA, uB;
    ArrayRef<std::uint32_t> adjOff, adj;
    std::unique_ptr<Barrier> sweepBar;
    std::vector<std::uint32_t> hostAdjOff, hostAdj;
    std::vector<float> hostU;
};

} // namespace

std::unique_ptr<Workload>
makeFem(const WorkloadParams &p)
{
    return std::make_unique<FemWorkload>(p);
}

} // namespace cmpmem
