/**
 * @file
 * Bitonic sort over 2^N 32-bit keys, "parallelized across sub-arrays
 * of a large input array ... BitonicSort retains full parallelism
 * for its duration [and] operates on the list in situ" (Section 4.2).
 *
 * The paper's key observation (Sections 5.1/5.2): sublists are often
 * moderately in-order, so many compare-exchanges swap nothing. The
 * cache-based system naturally skips the write-back of untouched
 * lines, while the streaming version DMAs whole blocks back to
 * memory whether modified or not — so STR moves *more* off-chip data
 * here (Figure 3) and saturates the channel first when compute
 * throughput scales (Figure 5).
 *
 *  - CC: each thread owns a contiguous range of indices; stores
 *    happen only when a swap occurs; barrier between (k, j) stages.
 *  - STR: for j small enough that partners are block-local, blocks
 *    are DMA'd in, exchanged in the local store, and DMA'd back
 *    unconditionally. For large j, block pairs are fetched together.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

/** Elements per streaming block: 2048 x 4 B = 8 KB, two blocks plus
 *  double buffering would exceed the 24 KB local store, so the STR
 *  kernel works on one pair at a time (as in-place bitonic allows). */
constexpr std::uint32_t kBlockElems = 1024;

class BitonicWorkload : public Workload
{
  public:
    explicit BitonicWorkload(const WorkloadParams &p) : Workload(p)
    {
        // 2^18 keys (1 MB) at scale 1: twice the L2, so passes
        // stream off-chip as in the paper's 2 MB / 512 KB setup.
        n = p.scale > 0 ? (1u << (17 + p.scale)) : (1u << 14);
    }

    std::string name() const override { return "bitonic"; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        keys = ArrayRef<std::uint32_t>::alloc(mem, n);
        stageBar = std::make_unique<Barrier>(sys.cores());

        // "Moderately in-order" input, as the paper observes real
        // inputs often are: mostly ascending with random swaps.
        Rng rng(7);
        for (std::uint32_t i = 0; i < n; ++i)
            mem.write<std::uint32_t>(keys.at(i), i * 3 + 1);
        for (std::uint32_t s = 0; s < n / 4; ++s) {
            std::uint32_t a = std::uint32_t(rng.nextBelow(n));
            std::uint32_t b = std::uint32_t(rng.nextBelow(n));
            auto va = mem.read<std::uint32_t>(keys.at(a));
            auto vb = mem.read<std::uint32_t>(keys.at(b));
            mem.write<std::uint32_t>(keys.at(a), vb);
            mem.write<std::uint32_t>(keys.at(b), va);
        }
    }

    KernelTask
    kernel(Context &ctx) override
    {
        if (ctx.model() == MemModel::STR)
            return kernelStr(ctx);
        return kernelCc(ctx);
    }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        std::uint32_t prev = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            auto v = mem.read<std::uint32_t>(keys.at(i));
            if (v < prev)
                return false;
            prev = v;
        }
        return true;
    }

  private:
    /** Ascending iff the k-block bit of i is clear. */
    static bool
    ascending(std::uint64_t i, std::uint64_t k)
    {
        return (i & k) == 0;
    }

    /** The p-th compare-exchange pair of a j-stage: the lower index
     *  interleaves the bits of p around the j bit, keeping work
     *  perfectly balanced across threads at every stage. */
    static std::uint64_t
    pairLowerIndex(std::uint64_t p, std::uint64_t j)
    {
        return ((p & ~(j - 1)) << 1) | (p & (j - 1));
    }

    KernelTask
    kernelCc(Context &ctx)
    {
        Range r = splitRange(n / 2, ctx.tid(), ctx.nthreads());
        for (std::uint64_t k = 2; k <= n; k <<= 1) {
            for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
                for (std::uint64_t p = r.begin; p < r.end; ++p) {
                    std::uint64_t i = pairLowerIndex(p, j);
                    std::uint64_t partner = i | j;
                    auto a = co_await ctx.load<std::uint32_t>(
                        keys.at(i));
                    auto b = co_await ctx.load<std::uint32_t>(
                        keys.at(partner));
                    // Index arithmetic (pair decode, XOR partner,
                    // direction bit) plus the compare and branches.
                    co_await ctx.compute(7);
                    bool asc = ascending(i, k);
                    if ((asc && a > b) || (!asc && a < b)) {
                        // Only swapped elements are written; clean
                        // lines never write back.
                        co_await ctx.store<std::uint32_t>(keys.at(i),
                                                          b);
                        co_await ctx.store<std::uint32_t>(
                            keys.at(partner), a);
                    }
                }
                co_await ctx.barrier(*stageBar);
            }
        }
    }

    /** Compare-exchange two local-store resident runs of a stage. */
    Co<void>
    exchangeInLs(Context &ctx, std::uint32_t count,
                 std::uint64_t base_index, std::uint64_t j,
                 std::uint64_t k, std::uint32_t lsA, std::uint32_t lsB,
                 std::uint64_t partner_offset)
    {
        for (std::uint32_t x = 0; x < count; ++x) {
            std::uint64_t i = base_index + x;
            std::uint64_t partner = i ^ j;
            if (partner <= i)
                continue;
            std::uint32_t offA = lsA + x * 4;
            // Partner lives either in this block (lsA) or in the
            // partner block buffer (lsB).
            std::uint32_t offB;
            if (partner - base_index < count) {
                offB = lsA + std::uint32_t(partner - base_index) * 4;
            } else {
                offB = lsB +
                       std::uint32_t(partner - partner_offset) * 4;
            }
            auto a = co_await ctx.lsRead<std::uint32_t>(offA);
            auto b = co_await ctx.lsRead<std::uint32_t>(offB);
            co_await ctx.compute(7);
            bool asc = ascending(i, k);
            if ((asc && a > b) || (!asc && a < b)) {
                co_await ctx.lsWrite<std::uint32_t>(offA, b);
                co_await ctx.lsWrite<std::uint32_t>(offB, a);
            }
        }
    }

    KernelTask
    kernelStr(Context &ctx)
    {
        const std::uint32_t blocks = n / kBlockElems;
        Range br = splitRange(blocks, ctx.tid(), ctx.nthreads());
        const std::uint32_t lsA = 0;
        const std::uint32_t lsB = kBlockElems * 4;
        const std::uint32_t blockBytes = kBlockElems * 4;

        for (std::uint64_t k = 2; k <= n; k <<= 1) {
            for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
                if (j < kBlockElems) {
                    // Partners are block-local: stream each owned
                    // block through the local store; the whole block
                    // is written back even if nothing was swapped
                    // (the paper's superfluous-write-back effect).
                    for (std::uint64_t b = br.begin; b < br.end; ++b) {
                        std::uint64_t base = b * kBlockElems;
                        auto g = co_await ctx.dmaGet(keys.at(base),
                                                     lsA, blockBytes);
                        co_await ctx.dmaWait(g);
                        co_await exchangeInLs(ctx, kBlockElems, base,
                                              j, k, lsA, lsB, 0);
                        auto pt = co_await ctx.dmaPut(keys.at(base),
                                                      lsA, blockBytes);
                        co_await ctx.dmaWait(pt);
                    }
                } else {
                    // Partners are in block b | (j / kBlockElems);
                    // iterate balanced block-pair indices.
                    std::uint64_t jb = j / kBlockElems;
                    Range pr = splitRange(blocks / 2, ctx.tid(),
                                          ctx.nthreads());
                    for (std::uint64_t pi = pr.begin; pi < pr.end;
                         ++pi) {
                        std::uint64_t b = pairLowerIndex(pi, jb);
                        std::uint64_t pb = b | jb;
                        std::uint64_t base = b * kBlockElems;
                        std::uint64_t pbase = pb * kBlockElems;
                        auto g1 = co_await ctx.dmaGet(keys.at(base),
                                                      lsA, blockBytes);
                        auto g2 = co_await ctx.dmaGet(keys.at(pbase),
                                                      lsB, blockBytes);
                        co_await ctx.dmaWait(g1);
                        co_await ctx.dmaWait(g2);
                        co_await exchangeInLs(ctx, kBlockElems, base,
                                              j, k, lsA, lsB, pbase);
                        auto p1 = co_await ctx.dmaPut(keys.at(base),
                                                      lsA, blockBytes);
                        auto p2 = co_await ctx.dmaPut(keys.at(pbase),
                                                      lsB, blockBytes);
                        co_await ctx.dmaWait(p1);
                        co_await ctx.dmaWait(p2);
                    }
                }
                co_await ctx.barrier(*stageBar);
            }
        }
    }

    std::uint32_t n;
    ArrayRef<std::uint32_t> keys;
    std::unique_ptr<Barrier> stageBar;
};

} // namespace

std::unique_ptr<Workload>
makeBitonic(const WorkloadParams &p)
{
    return std::make_unique<BitonicWorkload>(p);
}

} // namespace cmpmem
