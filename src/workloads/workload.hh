/**
 * @file
 * Workload framework: the contract every application implements.
 *
 * A Workload owns one run: setup() lays out its input data in the
 * system's functional memory, kernel() produces the coroutine each
 * core executes (dispatching internally on ctx.model() and the
 * stream-optimization variant), and verify() checks the computed
 * output against a host-side reference. All eleven paper
 * applications (Table 3) implement this interface; see each .cc for
 * how its parallelization and memory behaviour mirror the paper's
 * description.
 */

#ifndef CMPMEM_WORKLOADS_WORKLOAD_HH
#define CMPMEM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/context.hh"
#include "sim/task.hh"
#include "system/cmp_system.hh"

namespace cmpmem
{

/** Construction-time knobs common to all workloads. */
struct WorkloadParams
{
    /**
     * Input-size scale. 1 is the default used by the reproduction
     * benches (chosen so the full suite runs in minutes on one
     * host); larger values approach the paper's original sizes.
     * EXPERIMENTS.md records the mapping per workload.
     */
    int scale = 1;

    /**
     * Apply stream-programming optimizations (blocking, loop
     * fusion, SoA layout). True is the paper's default for the
     * Section 5 comparisons; false gives the "original" variants of
     * Figures 9 and 10 (MPEG-2 and 179.art).
     */
    bool streamOptimized = true;

    /**
     * Seed for workloads whose access pattern is itself randomized
     * (currently only the coherence stress generator). Ordinary
     * paper workloads use fixed input seeds and ignore this.
     */
    std::uint64_t seed = 1;

    /**
     * Cores per sharing group in the stress generator: cores in one
     * group hammer the same hot lines; different groups use
     * different lines. Clamped to [1, cores].
     */
    int sharingDegree = 4;
};

class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : prm(params) {}
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    virtual std::string name() const = 0;

    /** Short variant tag for reports ("base", "orig", ...). */
    virtual std::string
    variant() const
    {
        return prm.streamOptimized ? "base" : "orig";
    }

    /**
     * Characteristic I-cache miss rate (misses per kilo-bundle) for
     * this variant on the given configuration; see
     * core/icache_model.hh for why this is a declared parameter.
     */
    virtual double
    icacheMpki(const SystemConfig &cfg) const
    {
        (void)cfg;
        return 0.1;
    }

    /** Allocate and initialize inputs in sys.mem(). Called once. */
    virtual void setup(CmpSystem &sys) = 0;

    /** Create the kernel coroutine for one core. */
    virtual KernelTask kernel(Context &ctx) = 0;

    /** Check outputs against the host reference. */
    virtual bool verify(CmpSystem &sys) = 0;

    const WorkloadParams &params() const { return prm; }

  protected:
    WorkloadParams prm;
};

} // namespace cmpmem

#endif // CMPMEM_WORKLOADS_WORKLOAD_HH
