/**
 * @file
 * Deterministic randomized coherence stress generator ("stress").
 *
 * Not a paper application: this workload exists to drive the runtime
 * MESI checker (src/check/) through the protocol corners the Table 3
 * kernels rarely reach — same-line load/store/atomic races, false
 * sharing, upgrade storms, PFS allocates, and prefetches landing on
 * contended lines. It is therefore registered hidden: creatable via
 * createWorkload("stress"), invisible to workloadNames() so table and
 * figure sweeps never pick it up.
 *
 * Every core replays a per-core operation vector precomputed in
 * setup() from Rng(seed, tid), over four regions:
 *
 *  - hot shared lines, partitioned among sharing groups of
 *    `sharingDegree` cores so the contention degree is configurable;
 *  - one false-shared line per 8 cores, each core owning one 4-byte
 *    slot (racy at line granularity, data-race-free at word
 *    granularity — the classic benign-race case);
 *  - a private block per core (48 lines), the only region besides a
 *    core's own false-shared slot that verify() replays exactly;
 *  - two atomic counter lines advanced with atomicFetchAdd32.
 *
 * The run is fully deterministic for a given (seed, cores, model)
 * triple; two barrier episodes split it into three phases so drained
 * and quiesced states interleave with the racy traffic.
 *
 * verify() re-executes each core's private/slot stores host-side and
 * compares against functional memory, checks both atomic counters
 * against the generated op counts, and requires every hot-shared
 * word to be either untouched or carrying a well-formed store tag.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/sync.hh"
#include "sim/rng.hh"
#include "workloads/factories.hh"
#include "workloads/kernels_common.hh"

namespace cmpmem
{
namespace
{

constexpr std::uint32_t kWordsPerLine = 8; ///< 32-byte lines
constexpr std::uint32_t kSharedLines = 8;
constexpr std::uint32_t kPrivateLines = 48;
constexpr std::uint32_t kCounters = 2;

enum class OpKind : std::uint8_t
{
    Load,
    Store,
    StoreNA,
    Atomic,
    Prefetch,
    Compute,
};

struct Op
{
    OpKind kind;
    Addr addr;
    std::uint32_t value;
};

class StressWorkload : public Workload
{
  public:
    explicit StressWorkload(const WorkloadParams &p) : Workload(p)
    {
        opsPerCore = p.scale > 0 ? 256u * std::uint32_t(p.scale) : 96u;
    }

    std::string name() const override { return "stress"; }
    std::string variant() const override { return "stress"; }

    void
    setup(CmpSystem &sys) override
    {
        auto &mem = sys.mem();
        const int cores = sys.cores();
        const int degree =
            std::clamp(prm.sharingDegree, 1, std::max(cores, 1));
        const int groups = (cores + degree - 1) / degree;

        shared = ArrayRef<std::uint32_t>::alloc(
            mem, kSharedLines * kWordsPerLine);
        const std::uint32_t fsLines = std::uint32_t(cores + 7) / 8;
        falseShared = ArrayRef<std::uint32_t>::alloc(
            mem, fsLines * kWordsPerLine);
        priv = ArrayRef<std::uint32_t>::alloc(
            mem, std::uint64_t(cores) * kPrivateLines * kWordsPerLine);
        counters = ArrayRef<std::uint32_t>::alloc(
            mem, kCounters * kWordsPerLine); // one counter per line

        bar1 = std::make_unique<Barrier>(cores);
        bar2 = std::make_unique<Barrier>(cores);
        doneBar = std::make_unique<Barrier>(cores);

        atomicCount.assign(kCounters, 0);
        perCore.assign(cores, {});

        for (int tid = 0; tid < cores; ++tid) {
            // Decorrelate cores while keeping the whole run a pure
            // function of prm.seed.
            Rng rng(prm.seed * 1000003ULL + std::uint64_t(tid) + 1);
            auto &ops = perCore[tid];
            ops.reserve(opsPerCore);

            // This group's slice of the hot lines.
            const int group = tid / degree;
            const std::uint32_t linesPerGroup =
                std::max(1u, kSharedLines / std::uint32_t(groups));
            const std::uint32_t groupBase =
                (std::uint32_t(group) * linesPerGroup) % kSharedLines;

            auto sharedWord = [&] {
                std::uint32_t line =
                    groupBase + std::uint32_t(
                                    rng.nextBelow(linesPerGroup));
                return shared.at((line % kSharedLines) * kWordsPerLine +
                                 rng.nextBelow(kWordsPerLine));
            };
            auto privateWord = [&] {
                return priv.at(std::uint64_t(tid) * kPrivateLines *
                                   kWordsPerLine +
                               rng.nextBelow(kPrivateLines *
                                             kWordsPerLine));
            };
            const Addr mySlot =
                falseShared.at(std::uint64_t(tid / 8) * kWordsPerLine +
                               std::uint64_t(tid % 8));

            for (std::uint32_t i = 0; i < opsPerCore; ++i) {
                const std::uint32_t tag =
                    (std::uint32_t(tid + 1) << 24) | (i & 0xffffffu);
                const std::uint64_t roll = rng.nextBelow(100);
                if (roll < 40) {
                    // Load from any region (counters included, which
                    // forces later atomics through the upgrade path).
                    const std::uint64_t where = rng.nextBelow(10);
                    Addr a;
                    if (where < 4)
                        a = privateWord();
                    else if (where < 7)
                        a = sharedWord();
                    else if (where < 9)
                        a = falseShared.at(rng.nextBelow(
                            falseShared.count));
                    else
                        a = counters.at(rng.nextBelow(kCounters) *
                                        kWordsPerLine);
                    ops.push_back({OpKind::Load, a, 0});
                } else if (roll < 65) {
                    const std::uint64_t where = rng.nextBelow(4);
                    Addr a = where < 2 ? privateWord()
                             : where == 2 ? sharedWord()
                                          : mySlot;
                    ops.push_back({OpKind::Store, a, tag});
                } else if (roll < 75) {
                    ops.push_back({OpKind::StoreNA, privateWord(), tag});
                } else if (roll < 85) {
                    const std::uint32_t c =
                        std::uint32_t(rng.nextBelow(kCounters));
                    ++atomicCount[c];
                    ops.push_back({OpKind::Atomic,
                                   counters.at(c * kWordsPerLine), 0});
                } else if (roll < 90) {
                    // Bulk prefetch of a few private lines (no-op on
                    // the streaming model).
                    ops.push_back(
                        {OpKind::Prefetch, priv.at(
                             std::uint64_t(tid) * kPrivateLines *
                             kWordsPerLine +
                             rng.nextBelow(kPrivateLines) *
                                 kWordsPerLine),
                         2 * kWordsPerLine * 4});
                } else {
                    ops.push_back({OpKind::Compute, 0, 4});
                }
            }
        }
    }

    KernelTask
    kernel(Context &ctx) override
    {
        const auto &ops = perCore.at(ctx.tid());
        const std::size_t third = ops.size() / 3;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (third > 0 && i == third)
                co_await ctx.barrier(*bar1);
            if (third > 0 && i == 2 * third)
                co_await ctx.barrier(*bar2);
            const Op &op = ops[i];
            switch (op.kind) {
              case OpKind::Load:
                (void)co_await ctx.load<std::uint32_t>(op.addr);
                break;
              case OpKind::Store:
                co_await ctx.store<std::uint32_t>(op.addr, op.value);
                break;
              case OpKind::StoreNA:
                co_await ctx.storeNA<std::uint32_t>(op.addr, op.value);
                break;
              case OpKind::Atomic:
                (void)co_await ctx.atomicFetchAdd32(op.addr, 1);
                break;
              case OpKind::Prefetch:
                co_await ctx.prefetchBlock(op.addr, op.value);
                break;
              case OpKind::Compute:
                co_await ctx.compute(Cycles(op.value));
                break;
            }
        }
        co_await ctx.barrier(*doneBar);
    }

    bool
    verify(CmpSystem &sys) override
    {
        auto &mem = sys.mem();

        // Replay single-writer addresses (private region and each
        // core's own false-shared slot) host-side: the last store a
        // core issued must be what functional memory holds.
        for (const auto &ops : perCore) {
            std::unordered_map<Addr, std::uint32_t> last;
            for (const Op &op : ops) {
                if (op.kind == OpKind::Store ||
                    op.kind == OpKind::StoreNA) {
                    const bool sharedAddr =
                        op.addr >= shared.at(0) &&
                        op.addr < shared.at(shared.count);
                    if (!sharedAddr)
                        last[op.addr] = op.value;
                }
            }
            for (const auto &[addr, val] : last) {
                if (mem.read<std::uint32_t>(addr) != val)
                    return false;
            }
        }

        // Counters: every generated atomic added exactly 1.
        for (std::uint32_t c = 0; c < kCounters; ++c) {
            if (mem.read<std::uint32_t>(counters.at(c * kWordsPerLine)) !=
                atomicCount[c])
                return false;
        }

        // Hot shared words are racy by construction; require each to
        // be untouched or a well-formed tag from a real core.
        for (std::uint64_t w = 0; w < shared.count; ++w) {
            const std::uint32_t v =
                mem.read<std::uint32_t>(shared.at(w));
            if (v == 0)
                continue;
            const std::uint32_t who = v >> 24;
            if (who < 1 || who > std::uint32_t(perCore.size()))
                return false;
        }
        return true;
    }

  private:
    std::uint32_t opsPerCore;
    ArrayRef<std::uint32_t> shared;
    ArrayRef<std::uint32_t> falseShared;
    ArrayRef<std::uint32_t> priv;
    ArrayRef<std::uint32_t> counters;
    std::vector<std::vector<Op>> perCore;
    std::vector<std::uint32_t> atomicCount;
    std::unique_ptr<Barrier> bar1;
    std::unique_ptr<Barrier> bar2;
    std::unique_ptr<Barrier> doneBar;
};

} // namespace
} // namespace cmpmem

namespace cmpmem
{

std::unique_ptr<Workload>
makeStress(const WorkloadParams &p)
{
    return std::make_unique<StressWorkload>(p);
}

} // namespace cmpmem
