#include "mem/dram.hh"

#include <cassert>

#include "faults/fault_injector.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

DramChannel::DramChannel(const DramConfig &c) : cfg(c), channel("dram")
{
    if (cfg.bandwidthGBps <= 0)
        throwSimError(SimErrorKind::Config,
                      "DRAM bandwidth must be positive");
    // ticks (ps) to move one granule: bytes / (GB/s) = bytes ns/GB...
    // granule * 1000 / GBps picoseconds.
    ticksPerGranule =
        static_cast<Tick>(double(cfg.granuleBytes) * 1000.0 /
                              cfg.bandwidthGBps +
                          0.5);
    assert(ticksPerGranule > 0);
}

Tick
DramChannel::occupancyFor(std::uint32_t bytes) const
{
    std::uint32_t granules =
        (bytes + cfg.granuleBytes - 1) / cfg.granuleBytes;
    return Tick(granules) * ticksPerGranule;
}

Tick
DramChannel::latencyFor(Addr addr)
{
    if (!cfg.bankModel)
        return cfg.accessLatency;
    std::uint32_t bank =
        std::uint32_t(addr / cfg.rowBytes) % cfg.banks;
    Addr row = addr / (Addr(cfg.rowBytes) * cfg.banks);
    if (openRow.empty())
        openRow.assign(cfg.banks, ~Addr(0));
    if (openRow[bank] == row) {
        ++numRowHits;
        return cfg.rowHitLatency;
    }
    ++numRowMisses;
    openRow[bank] = row;
    return cfg.accessLatency;
}

Tick
DramChannel::read(Tick when, Addr addr, std::uint32_t bytes)
{
    std::uint32_t granules =
        (bytes + cfg.granuleBytes - 1) / cfg.granuleBytes;
    std::uint32_t moved = granules * cfg.granuleBytes;
    rdBytes += moved;
    ++rdCount;
    Tick start = channel.acquire(when, Tick(granules) * ticksPerGranule);
    Tick done = start + latencyFor(addr) +
                Tick(granules) * ticksPerGranule;
    if (faults)
        done += faults->dramReadPenalty(addr);
    return done;
}

Tick
DramChannel::write(Tick when, Addr addr, std::uint32_t bytes)
{
    std::uint32_t granules =
        (bytes + cfg.granuleBytes - 1) / cfg.granuleBytes;
    std::uint32_t moved = granules * cfg.granuleBytes;
    wrBytes += moved;
    ++wrCount;
    (void)latencyFor(addr); // writes update the open-row state too
    Tick start = channel.acquire(when, Tick(granules) * ticksPerGranule);
    return start + Tick(granules) * ticksPerGranule;
}

} // namespace cmpmem
