/**
 * @file
 * Miss Status Holding Registers: track outstanding line fills and
 * merge secondary misses to the same line.
 */

#ifndef CMPMEM_MEM_MSHR_HH
#define CMPMEM_MEM_MSHR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/diagnosable.hh"
#include "sim/types.hh"

namespace cmpmem
{

/**
 * MSHR file for a single cache.
 *
 * Since the paper's cores are in-order, "it is easy to provide
 * sufficient MSHRs for the maximum possible number of concurrent
 * misses"; the default capacity is therefore generous, but a limit is
 * enforced and reported for fidelity.
 */
class MshrFile : public Diagnosable
{
  public:
    using Waiter = std::function<void(Tick fill_tick)>;

    /** Passive observer: (allocated, line) on allocate/complete. */
    using Observer = std::function<void(bool allocated, Addr line)>;

    explicit MshrFile(std::size_t capacity = 16);

    /** Attach a coherence-checker observer (null to detach). */
    void setObserver(Observer o) { obs = std::move(o); }

    /** Is there already an outstanding fill for this line? */
    bool outstanding(Addr line) const;

    /** Can a new miss be tracked right now? */
    bool available() const { return entries.size() < cap; }

    /**
     * Register a primary miss. @pre !outstanding(line) && available().
     * @param exclusive whether the fill requests exclusive ownership.
     */
    void allocate(Addr line, bool exclusive);

    /**
     * Attach a waiter to an outstanding fill. @pre outstanding(line).
     * @return true if the existing fill satisfies @p exclusive intent
     *         (a store merged onto a load fill returns false and the
     *         caller must upgrade separately after the fill).
     */
    bool merge(Addr line, bool exclusive, Waiter waiter);

    /** Attach a waiter to the primary miss itself. */
    void addWaiter(Addr line, Waiter waiter);

    /**
     * Complete a fill: removes the entry and invokes all waiters with
     * @p fill_tick.
     */
    void complete(Addr line, Tick fill_tick);

    std::size_t inFlight() const { return entries.size(); }

    std::uint64_t merges() const { return numMerges; }
    std::uint64_t allocations() const { return numAllocs; }
    std::uint64_t peakOccupancy() const { return peak; }

    std::string diagName() const override { return "mshr"; }

    /** In-flight fills (line, intent, waiter count), sorted by line. */
    std::string diagnose() const override;

  private:
    struct Entry
    {
        bool exclusive = false;
        std::vector<Waiter> waiters;
    };

    std::size_t cap;
    Observer obs;
    std::unordered_map<Addr, Entry> entries;
    std::uint64_t numMerges = 0;
    std::uint64_t numAllocs = 0;
    std::uint64_t peak = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_MSHR_HH
