/**
 * @file
 * Miss Status Holding Registers: track outstanding line fills and
 * merge secondary misses to the same line.
 */

#ifndef CMPMEM_MEM_MSHR_HH
#define CMPMEM_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/callback.hh"
#include "sim/diagnosable.hh"
#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace cmpmem
{

/**
 * MSHR file for a single cache.
 *
 * Since the paper's cores are in-order, "it is easy to provide
 * sufficient MSHRs for the maximum possible number of concurrent
 * misses"; the default capacity is therefore generous, but a limit is
 * enforced and reported for fidelity.
 *
 * Host-side layout (DESIGN.md §18): entries live in a fixed-capacity
 * open-addressed table (linear probing, backward-shift deletion) and
 * waiters in a pooled free-list of intrusive nodes, so steady-state
 * allocate/merge/complete churn never touches the heap. `hostAllocs()`
 * counts the pool growths that *did* hit the allocator (0 after
 * warm-up).
 */
class MshrFile : public Diagnosable
{
  public:
    using Waiter = TickCallback;

    /** Passive observer: (allocated, line) on allocate/complete. */
    using Observer = InlineFunction<void(bool allocated, Addr line), 16>;

    explicit MshrFile(std::size_t capacity = 16);

    /** Attach a coherence-checker observer (null to detach). */
    void setObserver(Observer o) { obs = std::move(o); }

    /** Is there already an outstanding fill for this line? */
    bool outstanding(Addr line) const { return findSlot(line) >= 0; }

    /** Can a new miss be tracked right now? */
    bool available() const { return count < cap; }

    /**
     * Register a primary miss. @pre !outstanding(line) && available().
     * @param exclusive whether the fill requests exclusive ownership.
     */
    void allocate(Addr line, bool exclusive);

    /**
     * Attach a waiter to an outstanding fill. @pre outstanding(line).
     * @return true if the existing fill satisfies @p exclusive intent
     *         (a store merged onto a load fill returns false and the
     *         caller must upgrade separately after the fill).
     */
    bool merge(Addr line, bool exclusive, Waiter waiter);

    /** Attach a waiter to the primary miss itself. */
    void addWaiter(Addr line, Waiter waiter);

    /**
     * Complete a fill: removes the entry and invokes all waiters with
     * @p fill_tick.
     */
    void complete(Addr line, Tick fill_tick);

    std::size_t inFlight() const { return count; }

    std::uint64_t merges() const { return numMerges; }
    std::uint64_t allocations() const { return numAllocs; }
    std::uint64_t peakOccupancy() const { return peak; }

    /** Host heap allocations past the warm-up reservation. */
    std::uint64_t hostAllocs() const { return hostAllocCount; }

    std::string diagName() const override { return "mshr"; }

    /** In-flight fills (line, intent, waiter count), sorted by line. */
    std::string diagnose() const override;

  private:
    struct Slot
    {
        Addr line = 0;
        bool used = false;
        bool exclusive = false;
        std::int32_t head = -1; ///< first waiter node, -1 if none
        std::int32_t tail = -1; ///< last waiter node (FIFO append)
    };

    struct WaiterNode
    {
        Waiter fn;
        std::int32_t next = -1;
    };

    std::size_t homeIndex(Addr line) const
    {
        // Fibonacci hashing: cache line numbers are sequential, a
        // multiplicative mix spreads them across the table.
        return std::size_t((line * 0x9E3779B97F4A7C15ULL) >> shift);
    }

    /** Table index of @p line's slot, or -1 if not present. */
    std::int32_t findSlot(Addr line) const;

    /** Append a waiter to the slot's FIFO chain. */
    void appendWaiter(Slot &s, Waiter waiter);

    std::int32_t allocNode();
    void freeNode(std::int32_t idx);

    std::size_t cap;
    std::size_t mask;  ///< table.size() - 1 (power of two)
    unsigned shift;    ///< 64 - log2(table.size())
    Observer obs;
    std::vector<Slot> table;
    std::size_t count = 0;
    std::vector<WaiterNode> pool;
    std::int32_t freeHead = -1;
    std::uint64_t numMerges = 0;
    std::uint64_t numAllocs = 0;
    std::uint64_t peak = 0;
    std::uint64_t hostAllocCount = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_MSHR_HH
