#include "mem/l1_controller.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "faults/fault_injector.hh"
#include "prefetch/prefetcher.hh"
#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

/** Null-guarded checker notification; no-transition events elided. */
inline void
note(CoherenceChecker *ck, Tick t, int core, Addr line, MesiState from,
     MesiState to, CoherenceChecker::Cause cause)
{
    if (ck && from != to)
        ck->onTransition(t, core, line, from, to, cause);
}

} // namespace

//
// CoherenceFabric
//

CoherenceFabric::CoherenceFabric(const InterconnectConfig &net_cfg,
                                 int cores, int cluster_size, L2Cache &l2,
                                 DramChannel &dram)
    : net(net_cfg),
      numCores(cores),
      clusterSize(cluster_size),
      numClusters((cores + cluster_size - 1) / cluster_size),
      l2cache(l2),
      dramChannel(dram),
      xbar(net_cfg, (cores + cluster_size - 1) / cluster_size)
{
    for (int c = 0; c < numClusters; ++c)
        buses.push_back(std::make_unique<LocalBus>(net, c));
}

void
CoherenceFabric::registerL1(L1Controller *l1)
{
    assert(int(l1s.size()) == l1->coreId());
    l1s.push_back(l1);
}

Tick
CoherenceFabric::busXfer(Tick t, int cluster, std::uint32_t bytes)
{
    if (!faults)
        return bus(cluster).transfer(t, bytes);
    for (int attempt = 1;; ++attempt) {
        Tick done = bus(cluster).transfer(t, bytes);
        if (!faults->netNack())
            return done;
        if (attempt >= faults->config().netMaxRetries) {
            throwSimError(SimErrorKind::Fault,
                          "cluster bus %d transfer still NACKed after %d "
                          "attempts",
                          cluster, attempt);
        }
        faults->noteNetRetry();
        t = done + faults->netBackoff(attempt);
    }
}

Tick
CoherenceFabric::xbarSend(Tick t, int cluster, std::uint32_t bytes)
{
    if (!faults)
        return xbar.sendFromCluster(t, cluster, bytes);
    for (int attempt = 1;; ++attempt) {
        Tick done = xbar.sendFromCluster(t, cluster, bytes);
        if (!faults->netNack())
            return done;
        if (attempt >= faults->config().netMaxRetries) {
            throwSimError(SimErrorKind::Fault,
                          "crossbar send from cluster %d still NACKed "
                          "after %d attempts",
                          cluster, attempt);
        }
        faults->noteNetRetry();
        t = done + faults->netBackoff(attempt);
    }
}

Tick
CoherenceFabric::xbarDeliver(Tick t, int cluster, std::uint32_t bytes)
{
    if (!faults)
        return xbar.deliverToCluster(t, cluster, bytes);
    for (int attempt = 1;; ++attempt) {
        Tick done = xbar.deliverToCluster(t, cluster, bytes);
        if (!faults->netNack())
            return done;
        if (attempt >= faults->config().netMaxRetries) {
            throwSimError(SimErrorKind::Fault,
                          "crossbar delivery to cluster %d still NACKed "
                          "after %d attempts",
                          cluster, attempt);
        }
        faults->noteNetRetry();
        t = done + faults->netBackoff(attempt);
    }
}

std::string
CoherenceFabric::diagnose() const
{
    return strformat(
        "requests: cluster=%llu global=%llu, snoops=%llu, supplies: "
        "local=%llu remote=%llu, upgrades=%llu, writebacks=%llu, "
        "uncore: rd=%llu wr=%llu atomic=%llu",
        (unsigned long long)stats.clusterRequests,
        (unsigned long long)stats.globalRequests,
        (unsigned long long)stats.snoopProbes,
        (unsigned long long)stats.localSupplies,
        (unsigned long long)stats.remoteSupplies,
        (unsigned long long)stats.upgrades,
        (unsigned long long)stats.writebacks,
        (unsigned long long)stats.uncoreReads,
        (unsigned long long)stats.uncoreWrites,
        (unsigned long long)stats.remoteAtomics);
}

int
CoherenceFabric::snoopCluster(int cluster, int requester, Addr line,
                              bool invalidate, bool &supplier_was_dirty,
                              bool &supplier_was_owner,
                              bool &others_retain)
{
    int supplier = -1;
    int lo = cluster * clusterSize;
    int hi = std::min(lo + clusterSize, int(l1s.size()));
    for (int j = lo; j < hi; ++j) {
        if (j == requester)
            continue;
        ++stats.snoopProbes;
        auto res = l1s[j]->snoop(line, invalidate);
        if (res.had) {
            if (supplier < 0 || res.dirty) {
                supplier = j;
                supplier_was_dirty = res.dirty;
                supplier_was_owner = res.owned;
            }
            if (!invalidate)
                others_retain = true;
        }
    }
    return supplier;
}

CoherenceFabric::FetchResult
CoherenceFabric::fetchLine(Tick t, int core_id, Addr line, bool exclusive,
                           bool coherent)
{
    const std::uint32_t line_bytes = l2cache.config().lineBytes;
    const int cl = clusterOf(core_id);
    FetchResult result;

    ++stats.clusterRequests;

    // Step 1: broadcast the request on the local cluster bus.
    Tick t_req = busXfer(t, cl, net.requestBytes);

    if (coherent && !l1s.empty()) {
        bool dirty = false;
        bool owner = false;
        bool retain = false;
        int supplier = snoopCluster(cl, core_id, line, exclusive, dirty,
                                    owner, retain);
        if (supplier >= 0) {
            // Cache-to-cache supply within the cluster.
            ++stats.localSupplies;
            l1s[supplier]->stats.suppliesProvided++;
            if (dirty && !exclusive) {
                // MESI: downgraded dirty owner writes the line back.
                writebackLine(t_req, supplier, line);
            }
            result.done = busXfer(t_req, cl, line_bytes);
            result.othersRetainCopy = retain;
            if (exclusive && !owner) {
                // The supplier held the line Shared, so copies may
                // exist in other clusters: a read-for-ownership must
                // still broadcast invalidations globally and wait
                // for the acknowledgements.
                Tick t_global = xbarSend(t_req, cl, net.requestBytes);
                Tick acked = t_global;
                for (int c2 = 0; c2 < numClusters; ++c2) {
                    if (c2 == cl)
                        continue;
                    Tick tr = busXfer(t_global, c2, net.requestBytes);
                    bool d2 = false, o2 = false, r2 = false;
                    snoopCluster(c2, core_id, line, true, d2, o2, r2);
                    acked = std::max(acked, tr);
                }
                acked = xbarDeliver(acked, cl, net.requestBytes);
                result.done = std::max(result.done, acked);
            }
            return result;
        }
    }

    // Step 2: the request goes global -- broadcast to the other
    // clusters and look up the L2 in parallel.
    ++stats.globalRequests;
    Tick t_global = xbarSend(t_req, cl, net.requestBytes);

    int remote_supplier = -1;
    int remote_cluster = -1;
    bool remote_dirty = false;
    Tick t_remote_snooped = t_global;
    if (coherent && !l1s.empty()) {
        for (int c2 = 0; c2 < numClusters; ++c2) {
            if (c2 == cl)
                continue;
            Tick tr = busXfer(t_global, c2, net.requestBytes);
            t_remote_snooped = std::max(t_remote_snooped, tr);
            bool dirty = false;
            bool owner = false;
            bool retain = false;
            int s = snoopCluster(c2, core_id, line, exclusive, dirty,
                                 owner, retain);
            if (s >= 0 && (remote_supplier < 0 || dirty)) {
                remote_supplier = s;
                remote_cluster = c2;
                remote_dirty = dirty;
            }
            if (retain)
                result.othersRetainCopy = true;
        }
    }

    if (remote_supplier >= 0) {
        // Remote cluster supplies: its bus, through the crossbar,
        // onto our bus.
        ++stats.remoteSupplies;
        l1s[remote_supplier]->stats.suppliesProvided++;
        if (remote_dirty && !exclusive)
            writebackLine(t_remote_snooped, remote_supplier, line);
        Tick t1 = busXfer(t_remote_snooped, remote_cluster, line_bytes);
        Tick t2 = xbarSend(t1, remote_cluster, line_bytes);
        Tick t3 = xbarDeliver(t2, cl, line_bytes);
        result.done = busXfer(t3, cl, line_bytes);
        return result;
    }

    // Step 3: L2 (and DRAM beyond it).
    bool l2_hit = false;
    Tick t_l2 = l2cache.readLine(t_global, line, l2_hit);
    Tick t_back = xbarDeliver(t_l2, cl, line_bytes);
    result.done = busXfer(t_back, cl, line_bytes);
    return result;
}

Tick
CoherenceFabric::upgradeLine(Tick t, int core_id, Addr line)
{
    const int cl = clusterOf(core_id);
    ++stats.upgrades;

    // Invalidate within the cluster.
    Tick t_req = busXfer(t, cl, net.requestBytes);
    bool dirty = false;
    bool owner = false;
    bool retain = false;
    if (!l1s.empty())
        snoopCluster(cl, core_id, line, true, dirty, owner, retain);

    // Upgrades cannot be satisfied within one cluster (another
    // sharer may exist anywhere), so they always broadcast globally.
    Tick t_global = xbarSend(t_req, cl, net.requestBytes);
    Tick done = t_global;
    for (int c2 = 0; c2 < numClusters; ++c2) {
        if (c2 == cl)
            continue;
        Tick tr = busXfer(t_global, c2, net.requestBytes);
        if (!l1s.empty())
            snoopCluster(c2, core_id, line, true, dirty, owner, retain);
        done = std::max(done, tr);
    }
    // Acknowledgement collapses back through the crossbar.
    return xbarDeliver(done, cl, net.requestBytes);
}

void
CoherenceFabric::writebackLine(Tick t, int core_id, Addr line)
{
    const std::uint32_t line_bytes = l2cache.config().lineBytes;
    const int cl = clusterOf(core_id);
    ++stats.writebacks;
    if (checker)
        checker->onWriteback(t, core_id, line);
    Tick t1 = busXfer(t, cl, line_bytes);
    Tick t2 = xbarSend(t1, cl, line_bytes);
    l2cache.writeLine(t2, line, line_bytes, true);
}

Tick
CoherenceFabric::uncoreRead(Tick t, int cluster, Addr line,
                            std::uint32_t bytes)
{
    ++stats.uncoreReads;
    Tick t1 = busXfer(t, cluster, net.requestBytes);
    Tick t2 = xbarSend(t1, cluster, net.requestBytes);
    bool hit = false;
    Tick t3 = l2cache.readLine(t2, line, hit);
    Tick t4 = xbarDeliver(t3, cluster, bytes);
    return busXfer(t4, cluster, bytes);
}

Tick
CoherenceFabric::uncoreWrite(Tick t, int cluster, Addr line,
                             std::uint32_t bytes, bool full_line)
{
    ++stats.uncoreWrites;
    Tick t1 = busXfer(t, cluster, bytes);
    Tick t2 = xbarSend(t1, cluster, bytes);
    return l2cache.writeLine(t2, line, bytes, full_line);
}

Tick
CoherenceFabric::remoteAtomic(Tick t, int cluster, Addr line)
{
    ++stats.remoteAtomics;
    // The L2-side atomic unit mutated functional memory; refresh the
    // checker's golden copy (no requester core: the op is uncore).
    if (checker)
        checker->onStoreData(t, -1, line);
    Tick t1 = busXfer(t, cluster, net.requestBytes);
    Tick t2 = xbarSend(t1, cluster, net.requestBytes);
    // One L2 bank pass performs the read-modify-write at the line
    // holding the synchronization variable. The hit/miss outcome is
    // intentionally unused here: readLine already folds it into the
    // returned completion tick and into the L2's own hit/miss
    // counters (reported as l2.hits/l2.misses), and the fabric keeps
    // no per-outcome remote-atomic stat — remoteAtomics counts both.
    bool hit = false;
    Tick t3 = l2cache.readLine(t2, line, hit);
    (void)hit;
    Tick t4 = xbarDeliver(t3, cluster, net.requestBytes);
    return busXfer(t4, cluster, net.requestBytes);
}

//
// L1Controller
//

L1Controller::L1Controller(int core_id, const L1Config &config,
                           EventQueue &event_queue,
                           CoherenceFabric &coherence_fabric)
    : id(core_id),
      cfg(config),
      eq(event_queue),
      fabric(coherence_fabric),
      array(config.geom, config.repl),
      mshr(config.mshrs),
      sb(config.storeBufferEntries)
{
    if (cfg.coherent)
        fabric.registerL1(this);
    // Part of the micro path's invalidation contract: a draining
    // buffered store changes its line's state, so the entry must not
    // survive it. (Inserts already invalidate, so this is defensive.)
    sb.setDrainHook([this](Addr line) {
        if (line == micro.addr)
            microInvalidate();
    });
}

Cycles
L1Controller::takeSnoopStallCycles()
{
    return std::exchange(snoopStallCycles, 0);
}

void
L1Controller::attachChecker(CoherenceChecker *c)
{
    checker = c;
    microInvalidate();
    if (!c) {
        mshr.setObserver(nullptr);
        sb.setObserver(nullptr);
        return;
    }
    c->attachL1(id, &array, cfg.coherent);
    mshr.setObserver([this](bool allocated, Addr line) {
        if (allocated)
            checker->onMshrAllocate(eq.now(), id, line);
        else
            checker->onMshrComplete(eq.now(), id, line);
    });
    sb.setObserver([this](bool inserted, Addr line) {
        if (inserted)
            checker->onSbInsert(eq.now(), id, line);
        else
            checker->onSbComplete(eq.now(), id, line);
    });
}

void
L1Controller::forgeStateForTest(Addr addr, MesiState state)
{
    Addr line = array.lineAddr(addr);
    CacheArray::Line *l = array.lookup(line);
    if (!l) {
        CacheArray::Victim victim;
        l = &array.allocate(line, victim);
    }
    l->state = state; // deliberately bypasses every checker hook
    microInvalidate();
}

L1Controller::SnoopResult
L1Controller::snoop(Addr line, bool invalidate)
{
    ++stats.snoopsReceived;
    snoopStallCycles += 1; // snoops occupy the cache for one cycle

    // Both snoop outcomes (invalidate, downgrade) break the micro
    // entry's premises; drop it before touching the state.
    if (line == micro.addr)
        microInvalidate();

    CacheArray::Line *l = array.lookup(line);
    if (!l)
        return {false, false};

    SnoopResult res{true, l->dirty(),
                    l->state == MesiState::Modified ||
                        l->state == MesiState::Exclusive};
    MesiState prev = l->state;
    if (invalidate) {
        l->state = MesiState::Invalid;
        ++stats.invalidationsReceived;
    } else if (l->state == MesiState::Modified ||
               l->state == MesiState::Exclusive) {
        l->state = MesiState::Shared;
    }
    note(checker, eq.now(), id, line, prev, l->state,
         invalidate ? CoherenceChecker::Cause::SnoopInvalidate
                    : CoherenceChecker::Cause::SnoopDowngrade);
    return res;
}

void
L1Controller::install(Tick t, Addr line, MesiState state, bool prefetched,
                      CoherenceChecker::Cause cause)
{
    // A snoop may have raced the fill; (re)check for an existing
    // frame before allocating.
    CacheArray::Line *existing = array.lookup(line);
    if (existing) {
        if (state == MesiState::Modified) {
            note(checker, t, id, line, existing->state,
                 MesiState::Modified, cause);
            existing->state = MesiState::Modified;
        }
        return;
    }

    CacheArray::Victim victim;
    CacheArray::Line &l = array.allocate(line, victim);
    if (&l == micro.line)
        microInvalidate(); // the micro entry's frame was re-tagged
    if (victim.valid) {
        note(checker, t, id, victim.addr, victim.state,
             MesiState::Invalid, CoherenceChecker::Cause::Evict);
        if (victim.dirty) {
            ++stats.writebacks;
            fabric.writebackLine(t, id, victim.addr);
        }
    }
    l.state = state;
    l.flags = prefetched ? flagPrefetched : 0;
    note(checker, t, id, line, MesiState::Invalid, state, cause);
    ++stats.fills;
}

void
L1Controller::startFill(Tick t, Addr line, bool exclusive, AccessKind kind)
{
    assert(!mshr.outstanding(line));
    mshr.allocate(line, exclusive);

    auto result = fabric.fetchLine(t, id, line, exclusive, cfg.coherent);
    bool prefetched = (kind == AccessKind::Prefetch);
    MesiState state;
    if (exclusive) {
        state = MesiState::Modified;
    } else if (cfg.coherent && result.othersRetainCopy) {
        state = MesiState::Shared;
    } else {
        state = MesiState::Exclusive;
    }

    scheduleLineDone(result.done, line, state, prefetched,
                     CoherenceChecker::Cause::Fill,
                     /*completeStoreBuffer=*/false);
}

void
L1Controller::scheduleLineDone(Tick done, Addr line, MesiState state,
                               bool prefetched,
                               CoherenceChecker::Cause cause,
                               bool completeStoreBuffer)
{
    eq.schedule(done, [this, done, line, state, prefetched, cause,
                       completeStoreBuffer] {
        install(done, line, state, prefetched, cause);
        mshr.complete(line, done);
        if (completeStoreBuffer)
            sb.complete(line, done);
    });
}

bool
L1Controller::load(Tick t, Addr addr, Callback cb)
{
    Addr line = array.lineAddr(addr);

    // Forwarding from a pending buffered store.
    if (sb.contains(line)) {
        ++stats.loadHits;
        return true;
    }

    CacheArray::Line *l = array.lookup(line);
    if (l) {
        ++stats.loadHits;
        array.touch(*l);
        if ((l->flags & flagPrefetched) != 0) {
            l->flags &= ~flagPrefetched;
            ++stats.prefetchesUseful;
            if (prefetcher) {
                for (Addr pf : prefetcher->onPrefetchHit(line))
                    issuePrefetchLine(t, pf);
            }
        }
        microAdopt(l, line);
        return true;
    }

    ++stats.loadMisses;
    if (mshr.outstanding(line)) {
        mshr.addWaiter(line, std::move(cb));
        // Keep prefetch streams advancing at demand rate even when
        // the demand merges onto an in-flight (prefetch) fill;
        // otherwise streams throttle to the fill latency and lose
        // their run-ahead.
        issuePrefetches(t, line);
        return false;
    }

    startFill(t, line, false, AccessKind::Load);
    mshr.addWaiter(line, std::move(cb));
    issuePrefetches(t, line);
    return false;
}

void
L1Controller::issuePrefetchLine(Tick t, Addr pf_line)
{
    if (array.lookup(pf_line) || mshr.outstanding(pf_line) ||
        sb.contains(pf_line))
        return;
    // Keep MSHR headroom for demand traffic: an in-order core has at
    // most one blocking load, the store-buffer entries, and an
    // atomic outstanding, so reserving a dozen entries guarantees
    // prefetches can never starve a demand miss.
    constexpr std::size_t demand_reserve = 12;
    if (mshr.inFlight() + demand_reserve >= cfg.mshrs)
        return;
    ++stats.prefetchesIssued;
    startFill(t, pf_line, false, AccessKind::Prefetch);
}

void
L1Controller::softwarePrefetch(Tick t, Addr addr)
{
    issuePrefetchLine(t, array.lineAddr(addr));
}

void
L1Controller::issuePrefetches(Tick t, Addr miss_line)
{
    if (!prefetcher)
        return;
    for (Addr pf : prefetcher->onMiss(miss_line))
        issuePrefetchLine(t, pf);
}

void
L1Controller::ensureOwnership(Tick t, Addr line)
{
    CacheArray::Line *l = array.lookup(line);
    if (l && (l->state == MesiState::Modified ||
              l->state == MesiState::Exclusive)) {
        note(checker, t, id, line, l->state, MesiState::Modified,
             CoherenceChecker::Cause::StoreHit);
        l->state = MesiState::Modified;
        sb.complete(line, t);
        return;
    }

    if (mshr.outstanding(line)) {
        // Another transaction is in flight; chain behind it.
        mshr.addWaiter(line, [this, line](Tick ft) {
            ensureOwnership(ft, line);
        });
        return;
    }

    if (l) {
        // Shared here: upgrade (invalidation-only broadcast).
        mshr.allocate(line, true);
        Tick done = fabric.upgradeLine(t, id, line);
        // install() covers both landings: frame still present (note
        // the S->M flip) or evicted mid-upgrade (re-install as M —
        // ownership is still ours).
        scheduleLineDone(done, line, MesiState::Modified, false,
                         CoherenceChecker::Cause::Upgrade,
                         /*completeStoreBuffer=*/true);
        return;
    }

    // Not present anymore (evicted while waiting): full exclusive
    // fetch, completing the buffered store at fill time.
    mshr.allocate(line, true);
    auto result = fabric.fetchLine(t, id, line, true, cfg.coherent);
    scheduleLineDone(result.done, line, MesiState::Modified, false,
                     CoherenceChecker::Cause::Fill,
                     /*completeStoreBuffer=*/true);
}

void
L1Controller::startPfsAllocate(Tick t, Addr line)
{
    assert(!mshr.outstanding(line));
    mshr.allocate(line, true);
    ++stats.pfsStores;
    Tick done = cfg.coherent ? fabric.upgradeLine(t, id, line) : t;
    scheduleLineDone(std::max(done, t), line, MesiState::Modified, false,
                     CoherenceChecker::Cause::PfsAllocate,
                     /*completeStoreBuffer=*/true);
}

bool
L1Controller::store(Tick t, Addr addr, bool pfs, Callback cb)
{
    Addr line = array.lineAddr(addr);

    // The core already performed the store's functional effect;
    // refresh the checker's golden copy of the line.
    if (checker)
        checker->onStoreData(t, id, line);

    // Coalesce into an already-buffered store to the same line.
    if (sb.contains(line)) {
        ++stats.storeMerged;
        return true;
    }

    CacheArray::Line *l = array.lookup(line);
    if (l && (l->state == MesiState::Modified ||
              l->state == MesiState::Exclusive)) {
        ++stats.storeHits;
        note(checker, t, id, line, l->state, MesiState::Modified,
             CoherenceChecker::Cause::StoreHit);
        l->state = MesiState::Modified;
        array.touch(*l);
        microAdopt(l, line);
        return true;
    }

    // Needs an ownership transaction: park in the store buffer.
    if (sb.full()) {
        // Member slot, not a capture: only the owning in-order core
        // can block on its own buffer, so one parked store per L1.
        assert(!parkedCb);
        parked = ParkedStore{t, addr, pfs};
        parkedCb = std::move(cb);
        sb.waitForSpace([this](Tick when) { retryParkedStore(when); });
        return false;
    }

    ++stats.storeMisses;
    sb.insert(line);
    // A buffered store to the micro entry's line changes how loads
    // to it must be accounted (forwarding, no LRU touch): drop it.
    if (line == micro.addr)
        microInvalidate();

    if (l) {
        // Present but Shared: upgrade.
        array.touch(*l);
        ensureOwnership(t, line);
    } else if (mshr.outstanding(line)) {
        // A fill is in flight; take ownership once it lands.
        mshr.addWaiter(line, [this, line](Tick ft) {
            ensureOwnership(ft, line);
        });
    } else if (pfs) {
        startPfsAllocate(t, line);
    } else {
        mshr.allocate(line, true);
        auto result = fabric.fetchLine(t, id, line, true, cfg.coherent);
        scheduleLineDone(result.done, line, MesiState::Modified, false,
                         CoherenceChecker::Cause::Fill,
                         /*completeStoreBuffer=*/true);
        issuePrefetches(t, line);
    }
    return true;
}

void
L1Controller::retryParkedStore(Tick when)
{
    // Copy out both slots before re-entering store(): the retry may
    // immediately re-park (it cannot here — a slot just freed — but
    // the slots must be clear regardless for the next blocked store).
    ParkedStore p = parked;
    Callback cb = std::move(parkedCb);
    parkedCb = nullptr;
    // Retry now that a slot freed; the retry always succeeds in
    // buffering, so complete the core's wait.
    bool ok = store(std::max(when, p.t), p.addr, p.pfs, nullptr);
    assert(ok);
    (void)ok;
    cb(when);
}

void
L1Controller::atomicFinish(Tick t, Addr line)
{
    CacheArray::Line *cur = array.lookup(line);
    if (cur && cur->state == MesiState::Shared) {
        // The atomic merged onto a non-exclusive fill, so other
        // caches may legitimately hold the line Shared; a silent
        // S -> M flip here would break single-writer. Acquire
        // ownership with a real upgrade transaction first. The
        // requester's callback stays in the atomicCb slot.
        if (mshr.outstanding(line)) {
            mshr.addWaiter(line, [this, line](Tick ft) {
                atomicFinish(ft, line);
            });
            return;
        }
        mshr.allocate(line, true);
        Tick done = fabric.upgradeLine(t, id, line);
        scheduleLineDone(done, line, MesiState::Modified, false,
                         CoherenceChecker::Cause::Upgrade,
                         /*completeStoreBuffer=*/false);
        mshr.addWaiter(line, [this, line](Tick ft) {
            atomicFinish(ft, line);
        });
        return;
    }

    if (cur) {
        note(checker, t, id, line, cur->state, MesiState::Modified,
             CoherenceChecker::Cause::AtomicHit);
        cur->state = MesiState::Modified;
    }
    // No frame: filled and already evicted (pathological); just
    // charge the time and proceed.
    Callback cb = std::move(atomicCb);
    atomicCb = nullptr;
    cb(t);
}

void
L1Controller::atomic(Tick t, Addr addr, Callback cb)
{
    Addr line = array.lineAddr(addr);
    ++stats.atomicOps;

    // The core already performed the RMW's functional effect.
    if (checker)
        checker->onStoreData(t, id, line);

    CacheArray::Line *l = array.lookup(line);
    if (l && (l->state == MesiState::Modified ||
              l->state == MesiState::Exclusive) &&
        !sb.contains(line)) {
        note(checker, t, id, line, l->state, MesiState::Modified,
             CoherenceChecker::Cause::AtomicHit);
        l->state = MesiState::Modified;
        array.touch(*l);
        // Completion callbacks must never fire synchronously (the
        // issuing coroutine has not suspended yet); bounce through
        // the event queue.
        Tick done = t + cfg.atomicLatency * cfg.cyclePeriod;
        eq.schedule(done,
                    [cb = std::move(cb), done]() mutable { cb(done); });
        return;
    }

    // Acquire ownership, then complete. The callback parks in the
    // atomicCb member slot (in-order core: at most one outstanding
    // atomic) so the MSHR waiter captures only [this, line].
    assert(!atomicCb);
    atomicCb = std::move(cb);
    auto finish = [this, line](Tick ft) { atomicFinish(ft, line); };

    if (mshr.outstanding(line)) {
        mshr.addWaiter(line, finish);
        return;
    }

    if (l) {
        // Shared: upgrade.
        mshr.allocate(line, true);
        Tick done = fabric.upgradeLine(t, id, line);
        scheduleLineDone(done, line, MesiState::Modified, false,
                         CoherenceChecker::Cause::Upgrade,
                         /*completeStoreBuffer=*/false);
        mshr.addWaiter(line, finish);
        return;
    }

    mshr.allocate(line, true);
    auto result = fabric.fetchLine(t, id, line, true, cfg.coherent);
    scheduleLineDone(result.done, line, MesiState::Modified, false,
                     CoherenceChecker::Cause::Fill,
                     /*completeStoreBuffer=*/false);
    mshr.addWaiter(line, finish);
}

std::string
L1Controller::diagName() const
{
    return strformat("l1[%d]", id);
}

std::string
L1Controller::diagnose() const
{
    std::string out = strformat(
        "mshr in-flight=%zu (peak %zu), store buffer occupancy=%zu, "
        "demand misses=%llu, fills=%llu",
        mshr.inFlight(), mshr.peakOccupancy(), sb.occupancy(),
        (unsigned long long)stats.demandMisses(),
        (unsigned long long)stats.fills);
    std::string lines = mshr.diagnose();
    if (!lines.empty())
        out += "\n" + lines;
    std::string sbd = sb.diagnose();
    if (!sbd.empty())
        out += "\n" + sbd;
    return out;
}

std::uint64_t
L1Controller::drainDirty(Tick t)
{
    microInvalidate(); // the drain downgrades every Modified line
    return array.forEachDirty([&](Addr line) {
        ++stats.writebacks;
        fabric.writebackLine(t, id, line);
        note(checker, t, id, line, MesiState::Modified,
             MesiState::Exclusive, CoherenceChecker::Cause::Drain);
    });
}

} // namespace cmpmem
