#include "mem/mshr.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/log.hh"

namespace cmpmem
{

MshrFile::MshrFile(std::size_t capacity) : cap(capacity) {}

bool
MshrFile::outstanding(Addr line) const
{
    return entries.count(line) != 0;
}

void
MshrFile::allocate(Addr line, bool exclusive)
{
    assert(!outstanding(line));
    assert(available());
    entries.emplace(line, Entry{exclusive, {}});
    ++numAllocs;
    peak = std::max<std::uint64_t>(peak, entries.size());
    if (obs)
        obs(true, line);
}

bool
MshrFile::merge(Addr line, bool exclusive, Waiter waiter)
{
    auto it = entries.find(line);
    assert(it != entries.end());
    it->second.waiters.push_back(std::move(waiter));
    ++numMerges;
    return !exclusive || it->second.exclusive;
}

void
MshrFile::addWaiter(Addr line, Waiter waiter)
{
    auto it = entries.find(line);
    assert(it != entries.end());
    it->second.waiters.push_back(std::move(waiter));
}

std::string
MshrFile::diagnose() const
{
    std::vector<Addr> pending;
    pending.reserve(entries.size());
    for (const auto &kv : entries)
        pending.push_back(kv.first);
    std::sort(pending.begin(), pending.end());
    std::string out;
    for (Addr line : pending) {
        const Entry &e = entries.at(line);
        if (!out.empty())
            out += '\n';
        out += strformat("mshr: line 0x%llx %s, %zu waiter(s)",
                         (unsigned long long)line,
                         e.exclusive ? "exclusive" : "shared",
                         e.waiters.size());
    }
    return out;
}

void
MshrFile::complete(Addr line, Tick fill_tick)
{
    auto it = entries.find(line);
    assert(it != entries.end());
    // Move the waiters out first: a waiter may immediately issue a
    // new miss to the same line.
    std::vector<Waiter> waiters = std::move(it->second.waiters);
    entries.erase(it);
    if (obs)
        obs(false, line);
    for (auto &w : waiters)
        w(fill_tick);
}

} // namespace cmpmem
