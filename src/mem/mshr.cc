#include "mem/mshr.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/log.hh"

namespace cmpmem
{

namespace
{

std::size_t
tableSizeFor(std::size_t capacity)
{
    // Keep load factor <= 0.5 so linear probe chains stay short.
    std::size_t want = std::max<std::size_t>(8, 2 * capacity);
    std::size_t size = 8;
    while (size < want)
        size <<= 1;
    return size;
}

unsigned
log2OfPow2(std::size_t v)
{
    unsigned n = 0;
    while ((std::size_t(1) << n) < v)
        ++n;
    return n;
}

} // namespace

MshrFile::MshrFile(std::size_t capacity)
    : cap(capacity), mask(tableSizeFor(capacity) - 1),
      shift(64 - log2OfPow2(tableSizeFor(capacity))), table(mask + 1)
{
    // Warm-up reservation: one node per MSHR plus slack for transient
    // multi-waiter merges. Growth past this is counted as a host
    // allocation (should never happen in steady state).
    pool.reserve(cap + 16);
}

std::int32_t
MshrFile::findSlot(Addr line) const
{
    std::size_t i = homeIndex(line) & mask;
    while (table[i].used) {
        if (table[i].line == line)
            return std::int32_t(i);
        i = (i + 1) & mask;
    }
    return -1;
}

void
MshrFile::allocate(Addr line, bool exclusive)
{
    assert(!outstanding(line));
    assert(available());
    std::size_t i = homeIndex(line) & mask;
    while (table[i].used)
        i = (i + 1) & mask;
    table[i].line = line;
    table[i].used = true;
    table[i].exclusive = exclusive;
    table[i].head = table[i].tail = -1;
    ++count;
    ++numAllocs;
    peak = std::max<std::uint64_t>(peak, count);
    if (obs)
        obs(true, line);
}

std::int32_t
MshrFile::allocNode()
{
    if (freeHead >= 0) {
        std::int32_t idx = freeHead;
        freeHead = pool[idx].next;
        pool[idx].next = -1;
        return idx;
    }
    if (pool.size() == pool.capacity())
        ++hostAllocCount;
    pool.emplace_back();
    return std::int32_t(pool.size() - 1);
}

void
MshrFile::freeNode(std::int32_t idx)
{
    pool[idx].fn = nullptr;
    pool[idx].next = freeHead;
    freeHead = idx;
}

void
MshrFile::appendWaiter(Slot &s, Waiter waiter)
{
    std::int32_t idx = allocNode();
    pool[idx].fn = std::move(waiter);
    pool[idx].next = -1;
    if (s.tail < 0)
        s.head = idx;
    else
        pool[s.tail].next = idx;
    s.tail = idx;
}

bool
MshrFile::merge(Addr line, bool exclusive, Waiter waiter)
{
    std::int32_t i = findSlot(line);
    assert(i >= 0);
    appendWaiter(table[i], std::move(waiter));
    ++numMerges;
    return !exclusive || table[i].exclusive;
}

void
MshrFile::addWaiter(Addr line, Waiter waiter)
{
    std::int32_t i = findSlot(line);
    assert(i >= 0);
    appendWaiter(table[i], std::move(waiter));
}

std::string
MshrFile::diagnose() const
{
    // diagnose() is cold (watchdog / error paths): sorting and string
    // building here is fine, it just must never leak onto hot paths.
    std::vector<std::size_t> pending;
    pending.reserve(count);
    for (std::size_t i = 0; i < table.size(); ++i)
        if (table[i].used)
            pending.push_back(i);
    std::sort(pending.begin(), pending.end(),
              [this](std::size_t a, std::size_t b) {
                  return table[a].line < table[b].line;
              });
    std::string out;
    for (std::size_t i : pending) {
        const Slot &s = table[i];
        std::size_t waiters = 0;
        for (std::int32_t n = s.head; n >= 0; n = pool[n].next)
            ++waiters;
        if (!out.empty())
            out += '\n';
        out += strformat("mshr: line 0x%llx %s, %zu waiter(s)",
                         (unsigned long long)s.line,
                         s.exclusive ? "exclusive" : "shared", waiters);
    }
    return out;
}

void
MshrFile::complete(Addr line, Tick fill_tick)
{
    std::int32_t si = findSlot(line);
    assert(si >= 0);
    // Detach the waiter chain and free the slot first: a waiter may
    // immediately issue a new miss to the same line.
    std::int32_t head = table[si].head;
    // Backward-shift deletion keeps probe chains intact without
    // tombstones: walk forward from the hole, moving back any entry
    // whose home position does not lie strictly after the hole.
    std::size_t j = std::size_t(si);
    table[j].used = false;
    table[j].head = table[j].tail = -1;
    std::size_t k = (j + 1) & mask;
    while (table[k].used) {
        std::size_t h = homeIndex(table[k].line) & mask;
        if (((k - h) & mask) >= ((k - j) & mask)) {
            table[j] = table[k];
            table[k].used = false;
            table[k].head = table[k].tail = -1;
            j = k;
        }
        k = (k + 1) & mask;
    }
    --count;
    if (obs)
        obs(false, line);
    // Walk the chain node by node, freeing each *before* invoking it:
    // the waiter may re-enter (new miss, new waiter) and reuse the
    // node we just released, so no reference into the pool may be
    // held across the call.
    while (head >= 0) {
        std::int32_t next = pool[head].next;
        Waiter w = std::move(pool[head].fn);
        freeNode(head);
        head = next;
        w(fill_tick);
    }
}

} // namespace cmpmem
