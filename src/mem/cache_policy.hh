/**
 * @file
 * Replacement/insertion policy traits for CacheArray (DESIGN.md §15).
 *
 * The paper fixes true-LRU replacement; the neighbouring design space
 * (insertion-policy variants in the DIP family) differs only in where
 * a newly allocated line lands in the recency stack:
 *
 *  - LRU: insert at MRU, evict the LRU way (the paper's policy).
 *  - MIP: MRU insertion, LRU eviction — identical behaviour to true
 *    LRU in this recency-stamp implementation; kept as its own trait
 *    so the conventional DIP-family name is selectable by sweeps.
 *  - LIP: LRU insertion, LRU eviction — a new line is the next victim
 *    of its set until a demand hit promotes it, which protects the
 *    resident working set from scans.
 *  - BIP: bimodal insertion — LIP, except 1 in bipThrottle insertions
 *    goes to MRU, chosen by a deterministic seeded RNG so runs stay
 *    bit-reproducible.
 *
 * Every trait shares LRU (min recency stamp) *eviction* and MRU
 * promotion on demand hit; only the insertion stamp differs. That is
 * why CacheArray::touch() — and with it the memory-access fast path's
 * MRU-way hint and per-core micro path — stays policy-agnostic: a
 * demand hit means "promote to MRU" under all four policies.
 */

#ifndef CMPMEM_MEM_CACHE_POLICY_HH
#define CMPMEM_MEM_CACHE_POLICY_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace cmpmem
{

/** Insertion/replacement policy of one CacheArray. */
enum class ReplacementPolicy : std::uint8_t
{
    LRU, ///< MRU insertion, LRU eviction (true LRU; the default)
    MIP, ///< MRU insertion, LRU eviction (DIP-family baseline name)
    LIP, ///< LRU insertion, LRU eviction
    BIP, ///< bimodal: LIP with 1-in-N MRU insertions (seeded RNG)
};

inline const char *
to_string(ReplacementPolicy p)
{
    switch (p) {
      case ReplacementPolicy::LRU: return "LRU";
      case ReplacementPolicy::MIP: return "MIP";
      case ReplacementPolicy::LIP: return "LIP";
      case ReplacementPolicy::BIP: return "BIP";
    }
    return "?";
}

/** Parse a policy name; @return false when @p s is not a policy. */
inline bool
parseReplacementPolicy(const std::string &s, ReplacementPolicy &out)
{
    for (ReplacementPolicy p :
         {ReplacementPolicy::LRU, ReplacementPolicy::MIP,
          ReplacementPolicy::LIP, ReplacementPolicy::BIP}) {
        if (s == to_string(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

/** Replacement policy plus its (BIP-only) tuning knobs. */
struct ReplacementConfig
{
    ReplacementPolicy policy = ReplacementPolicy::LRU;

    /** BIP: one in this many insertions goes to MRU. Must be >= 1. */
    std::uint32_t bipThrottle = 32;

    /** Seed of the BIP bimodal RNG (salted per array by the wiring). */
    std::uint64_t seed = 1;
};

/**
 * Compile-time policy traits. Each trait supplies the two dispatch
 * points CacheArray::allocate() needs:
 *
 *  - victimWay(): which way of a full set to displace. All supported
 *    policies evict the minimum recency stamp (first invalid way
 *    wins; stamp ties break to the lowest way index), so the shared
 *    implementation lives in LruEvictionBase.
 *  - insertionStamp(): the recency stamp of a freshly allocated
 *    line. This is the only point where the four policies differ.
 *
 * Demand-hit promotion is deliberately *not* a trait hook: all four
 * policies promote to MRU on a hit, so CacheArray::touch() stays a
 * single inline function and the fast path never pays a dispatch.
 */
struct LruEvictionBase
{
    /** Hits promote to MRU under every supported policy. */
    static constexpr bool promoteOnHit = true;

    template <typename Line>
    static std::uint32_t
    victimWay(const Line *set, std::uint32_t assoc)
    {
        std::uint32_t pick = 0;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!set[w].valid())
                return w;
            if (set[w].lruStamp < set[pick].lruStamp)
                pick = w;
        }
        return pick;
    }
};

struct LruTraits : LruEvictionBase
{
    static std::uint64_t
    insertionStamp(std::uint64_t &clock, Rng &, const ReplacementConfig &)
    {
        return ++clock;
    }
};

/** MIP is MRU-insert / LRU-evict: identical to true LRU here. */
struct MipTraits : LruTraits
{
};

struct LipTraits : LruEvictionBase
{
    static std::uint64_t
    insertionStamp(std::uint64_t &, Rng &, const ReplacementConfig &)
    {
        // Stamp 0 is the stack bottom: the line stays the set's next
        // victim until a demand hit touch()es it to MRU.
        return 0;
    }
};

struct BipTraits : LruEvictionBase
{
    static std::uint64_t
    insertionStamp(std::uint64_t &clock, Rng &rng,
                   const ReplacementConfig &cfg)
    {
        return rng.nextBelow(cfg.bipThrottle) == 0 ? ++clock : 0;
    }
};

} // namespace cmpmem

#endif // CMPMEM_MEM_CACHE_POLICY_HH
