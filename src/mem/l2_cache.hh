/**
 * @file
 * Shared second-level cache: 512 KB, 16-way, non-inclusive, banked,
 * 2.2 ns access, fronting the off-chip memory channel.
 *
 * Both memory models share this structure (the paper keeps an L2 in
 * the streaming system too: "L2 caches are useful with stream
 * processors, as they capture long-term reuse patterns"). The L2
 * avoids refills on writes that overwrite entire lines — both for L1
 * write-backs and for full-line DMA PUTs.
 */

#ifndef CMPMEM_MEM_L2_CACHE_HH
#define CMPMEM_MEM_L2_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/resource.hh"
#include "sim/diagnosable.hh"
#include "sim/types.hh"

namespace cmpmem
{

struct L2Config
{
    std::uint32_t sizeBytes = 512 * 1024;
    std::uint32_t assoc = 16;
    std::uint32_t lineBytes = 32;
    std::uint32_t banks = 4;
    Tick accessLatency = 2200;  ///< ps (2.2 ns)
    Tick portOccupancy = 1250;  ///< ps per access per bank port

    /**
     * Replacement policy of the bank tag arrays (filled from
     * SystemConfig::policy by finalize(); the seed is salted per
     * bank on construction).
     */
    ReplacementConfig repl;
};

/**
 * The banked L2. Addresses interleave across banks at line
 * granularity.
 */
class L2Cache : public Diagnosable
{
  public:
    /**
     * Passive observer over L2 traffic (the coherence checker's view
     * of the writeback side of the hierarchy). Hooks fire after the
     * hit/miss outcome is known and must not affect timing.
     */
    struct Observer
    {
        virtual ~Observer() = default;
        virtual void l2Read(Tick t, Addr line, bool hit) = 0;
        virtual void l2Write(Tick t, Addr line, bool full_line,
                             bool hit) = 0;
    };

    L2Cache(const L2Config &cfg, DramChannel &dram);

    /** Attach an observer (null to detach). */
    void setObserver(Observer *o) { obs = o; }

    /** Which bank serves @p line (for crossbar port selection). */
    int bankFor(Addr line) const;

    /**
     * Read a line on behalf of an L1 miss / DMA get arriving at the
     * bank at @p when.
     * @param[out] hit whether the L2 had the line.
     * @return tick the data leaves the L2 toward the crossbar.
     */
    Tick readLine(Tick when, Addr line, bool &hit);

    /**
     * Accept a write of @p bytes within @p line (an L1 write-back or
     * a DMA put) arriving at @p when.
     *
     * @param full_line the write covers the entire line, so a miss
     *        allocates without refilling from DRAM.
     * @return tick the write completes at the L2.
     */
    Tick writeLine(Tick when, Addr line, std::uint32_t bytes,
                   bool full_line);

    /**
     * Account for dirty lines still resident at the end of a run:
     * they would eventually be written back, so add them to DRAM
     * write traffic (used by the run epilogue so that traffic
     * comparisons are drain-invariant).
     * @return the number of lines drained.
     */
    std::uint64_t drainDirty();

    const L2Config &config() const { return cfg; }

    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }
    std::uint64_t accesses() const { return numHits + numMisses; }
    std::uint64_t writebacksToDram() const { return numWbToDram; }
    std::uint64_t refillsAvoided() const { return numRefillsAvoided; }

    std::string diagName() const override { return "l2"; }
    std::string diagnose() const override;

  private:
    struct Bank
    {
        Bank(const CacheGeometry &geom, const ReplacementConfig &repl,
             const std::string &name)
            : tags(geom, repl), port(name)
        {}
        CacheArray tags;
        Resource port;
    };

    /** Evict whatever allocate displaced; write dirty victims back. */
    void handleVictim(Tick when, const CacheArray::Victim &victim);

    L2Config cfg;
    DramChannel &dram;
    Observer *obs = nullptr;
    std::vector<std::unique_ptr<Bank>> bankArray;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numWbToDram = 0;
    std::uint64_t numRefillsAvoided = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_L2_CACHE_HH
